"""The paper's dataset dimensions and size tables (Figures 10a/10b).

Neuroscience (Section 3.1.1): 288 volumes of 145 x 145 x 174 float32
voxels per subject (~4.2 GB uncompressed, 1.4 GB compressed), up to 25
subjects (~105 GB).  The largest intermediate relation is twice the
input (Figure 10a).

Astronomy (Section 3.2.1): 24 visits, each divided into 60 sensor
images of 4000 x 4072 pixels (~80 MB each with flux/variance/mask and
metadata; ~4.8 GB per visit, ~115 GB total).  Intermediate data grows
2.5x on average, with per-worker skew up to 6x (Section 5.3.2).
"""

GB = 1000 ** 3  # the paper's tables use decimal gigabytes

# ----------------------------------------------------------------------
# Neuroscience constants
# ----------------------------------------------------------------------

NEURO_VOLUME_SHAPE = (145, 145, 174)
NEURO_N_VOLUMES = 288
NEURO_N_B0 = 18
NEURO_DTYPE_BYTES = 4
NEURO_SUBJECT_COUNTS = (1, 2, 4, 8, 12, 25)

#: Growth of the largest intermediate over the input (Figure 10a shows
#: exactly 2x at every subject count).
NEURO_INTERMEDIATE_FACTOR = 2.0


def neuro_subject_bytes():
    """Uncompressed bytes of one subject's 4-D array."""
    x, y, z = NEURO_VOLUME_SHAPE
    return x * y * z * NEURO_N_VOLUMES * NEURO_DTYPE_BYTES


def neuro_volume_bytes():
    """Uncompressed bytes of one 3-D image volume."""
    x, y, z = NEURO_VOLUME_SHAPE
    return x * y * z * NEURO_DTYPE_BYTES


def neuro_size_table(subject_counts=NEURO_SUBJECT_COUNTS):
    """Figure 10a: input and largest-intermediate sizes in GB."""
    rows = []
    for n in subject_counts:
        input_gb = n * neuro_subject_bytes() / GB
        rows.append(
            {
                "subjects": n,
                "input_gb": input_gb,
                "largest_intermediate_gb": input_gb * NEURO_INTERMEDIATE_FACTOR,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Astronomy constants
# ----------------------------------------------------------------------

ASTRO_SENSOR_SHAPE = (4000, 4072)
ASTRO_SENSORS_PER_VISIT = 60
#: Per-sensor file size as stated in the paper ("an 80MB 2D image").
ASTRO_SENSOR_BYTES = 80 * 1000 ** 2
ASTRO_VISIT_COUNTS = (2, 4, 8, 12, 24)

#: "the astronomy pipeline grows the data by 2.5x on average during
#: processing, but some workers experience data growth of 6x due to
#: skew" (Section 5.3.2).
ASTRO_INTERMEDIATE_FACTOR = 2.5
ASTRO_SKEW_FACTOR = 6.0


def astro_visit_bytes():
    """Bytes of one visit's 60 sensor files."""
    return ASTRO_SENSORS_PER_VISIT * ASTRO_SENSOR_BYTES


def astro_size_table(visit_counts=ASTRO_VISIT_COUNTS):
    """Figure 10b: input and largest-intermediate sizes in GB."""
    rows = []
    for n in visit_counts:
        input_gb = n * astro_visit_bytes() / GB
        rows.append(
            {
                "visits": n,
                "input_gb": input_gb,
                "largest_intermediate_gb": input_gb * ASTRO_INTERMEDIATE_FACTOR,
            }
        )
    return rows
