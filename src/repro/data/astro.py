"""Synthetic telescope-visit generator (astronomy stand-in).

Generates structurally faithful substitutes for the High-cadence
Transient Survey data of Section 3.2.1: each *visit* holds 60 sensor
exposures of nominally 4000 x 4072 pixels laid out on a 6 x 10 focal
plane with gaps between sensors (visible in the paper's Figure 4).
Visits of the same field are dithered by a few pixels, so a fixed star
catalog in sky coordinates appears in every visit at slightly different
detector positions.  Each exposure carries flux, variance and mask
planes, as in the FITS files of the use case, plus a sky bounding box.

Real pixels are generated at ``1/scale`` resolution and optionally for a
subset of sensors; nominal sizes stay at paper scale.
"""

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.patches import SkyBox
from repro.data.catalog import (
    ASTRO_SENSOR_BYTES,
    ASTRO_SENSOR_SHAPE,
    ASTRO_SENSORS_PER_VISIT,
)
from repro.formats.fits import FitsFile, FitsHDU

#: Focal plane layout: 6 columns x 10 rows of sensors = 60.
FOCAL_PLANE_COLS = 6
FOCAL_PLANE_ROWS = 10
#: Gap between adjacent sensors, as a fraction of sensor extent
#: ("Spaces between exposures show sensor boundaries", Figure 4).
SENSOR_GAP_FRACTION = 0.03
#: Maximum dither between visits, as a fraction of sensor extent.
DITHER_FRACTION = 0.25

#: Read-noise variance floor (counts^2) and sky level (counts).
READ_VARIANCE = 25.0
SKY_LEVEL = 200.0
#: Point-spread function width in (scaled) pixels.
PSF_SIGMA = 1.6


@dataclass
class SensorExposure:
    """One sensor's calibrated or raw exposure.

    ``bundle`` counts the nominal sensors this real exposure stands in
    for when a visit is generated with fewer than 60 real sensors, so
    per-visit data sizes and compute costs stay at paper scale.
    """

    visit_id: int
    sensor_id: int
    flux: np.ndarray
    variance: np.ndarray
    mask: np.ndarray
    sky_box: SkyBox
    bundle: int = 1

    @property
    def nominal_bytes(self):
        """Size in bytes at the paper's nominal data scale."""
        return ASTRO_SENSOR_BYTES * self.bundle

    @property
    def nominal_elements(self):
        """Element count at the paper's nominal data scale."""
        return ASTRO_SENSOR_SHAPE[0] * ASTRO_SENSOR_SHAPE[1] * self.bundle

    @property
    def shape(self):
        """Real (scaled-down) array shape."""
        return self.flux.shape

    def planes(self):
        """Stacked (3, h, w) float view: flux, variance, mask."""
        return np.stack(
            [self.flux, self.variance, self.mask.astype(np.float64)]
        )

    def to_fits(self):
        """Encode this exposure as a FITS file object."""
        header = {
            "VISIT": self.visit_id,
            "SENSOR": self.sensor_id,
            "SKYY0": self.sky_box.y0,
            "SKYX0": self.sky_box.x0,
        }
        return FitsFile(
            [
                FitsHDU(header=header),
                FitsHDU(data=self.flux.astype(np.float32), name="FLUX"),
                FitsHDU(data=self.variance.astype(np.float32), name="VARIANCE"),
                FitsHDU(data=self.mask.astype(np.int16), name="MASK"),
            ]
        )


@dataclass
class Visit:
    """One visit: a dithered pass over the field with 60 sensors."""

    visit_id: int
    exposures: list = field(default_factory=list)

    @property
    def nominal_bytes(self):
        """Size in bytes at the paper's nominal data scale."""
        return ASTRO_SENSORS_PER_VISIT * ASTRO_SENSOR_BYTES

    def __len__(self):
        return len(self.exposures)


def make_star_catalog(n_stars=600, field_height=None, field_width=None, seed=11):
    """Fixed star catalog in sky coordinates, shared by all visits.

    Returns ``(ys, xs, fluxes)`` arrays.  Fluxes follow a power law so
    a few stars are bright and most are faint, as in real fields.
    """
    rng = np.random.default_rng(seed)
    ys = rng.uniform(0, field_height, n_stars)
    xs = rng.uniform(0, field_width, n_stars)
    fluxes = 2000.0 * rng.pareto(1.7, n_stars) + 500.0
    return ys, xs, fluxes


def _sensor_grid(sensor_shape):
    """Sky origin of each sensor on the focal plane (row-major ids)."""
    h, w = sensor_shape
    gap_y = max(1, int(h * SENSOR_GAP_FRACTION))
    gap_x = max(1, int(w * SENSOR_GAP_FRACTION))
    origins = []
    for row in range(FOCAL_PLANE_ROWS):
        for col in range(FOCAL_PLANE_COLS):
            origins.append((row * (h + gap_y), col * (w + gap_x)))
    return origins


def field_extent(sensor_shape):
    """Total sky footprint (height, width) of the dithered survey."""
    h, w = sensor_shape
    origins = _sensor_grid(sensor_shape)
    max_y = max(y for y, _x in origins) + h
    max_x = max(x for _y, x in origins) + w
    dither = int(max(h, w) * DITHER_FRACTION) + 1
    return max_y + dither, max_x + dither


def _render_stars(flux, box, star_catalog):
    """Add PSF-convolved stars falling inside ``box`` to ``flux``."""
    ys, xs, star_fluxes = star_catalog
    margin = 4 * PSF_SIGMA
    inside = (
        (ys >= box.y0 - margin)
        & (ys < box.y1 + margin)
        & (xs >= box.x0 - margin)
        & (xs < box.x1 + margin)
    )
    if not inside.any():
        return
    yy, xx = np.mgrid[0: box.height, 0: box.width]
    for sy, sx, sf in zip(ys[inside], xs[inside], star_fluxes[inside]):
        dy = yy - (sy - box.y0)
        dx = xx - (sx - box.x0)
        flux += sf * np.exp(-(dy * dy + dx * dx) / (2 * PSF_SIGMA ** 2))


def _add_cosmic_rays(flux, mask, rng, rate=3):
    """Inject a few single-pixel and short-streak cosmic-ray hits."""
    n_hits = rng.poisson(rate)
    h, w = flux.shape
    for _hit in range(n_hits):
        y, x = rng.integers(0, h), rng.integers(0, w)
        length = int(rng.integers(1, 4))
        direction = rng.integers(0, 2)
        for step in range(length):
            yy = min(h - 1, y + (step if direction else 0))
            xx = min(w - 1, x + (0 if direction else step))
            flux[yy, xx] += rng.uniform(3000.0, 12000.0)
            mask[yy, xx] |= 1  # CR bit


def generate_visit(
    visit_id,
    scale=25,
    n_sensors=None,
    star_catalog=None,
    seed=None,
):
    """Generate one synthetic visit.

    Parameters
    ----------
    visit_id:
        Visit number; determines the dither deterministically.
    scale:
        Downscale factor relative to 4000 x 4072 sensors.
    n_sensors:
        Real sensors generated (nominal stays 60).  Sensors are taken
        from the focal-plane center outward so overlaps stay realistic.
    star_catalog:
        ``(ys, xs, fluxes)`` from :func:`make_star_catalog`; generated
        to match the scaled field when omitted.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    sensor_shape = tuple(max(16, s // scale) for s in ASTRO_SENSOR_SHAPE)
    if n_sensors is None:
        n_sensors = ASTRO_SENSORS_PER_VISIT
    if not 1 <= n_sensors <= ASTRO_SENSORS_PER_VISIT:
        raise ValueError(
            f"n_sensors must be in [1, {ASTRO_SENSORS_PER_VISIT}], got {n_sensors}"
        )
    if seed is None:
        seed = _stable_seed("astro", visit_id)
    rng = np.random.default_rng(seed)

    if star_catalog is None:
        fh, fw = field_extent(sensor_shape)
        star_catalog = make_star_catalog(field_height=fh, field_width=fw)

    # Deterministic per-visit dither.
    dither_rng = np.random.default_rng(visit_id * 7919 + 13)
    max_dither = max(1, int(max(sensor_shape) * DITHER_FRACTION))
    dy = int(dither_rng.integers(0, max_dither))
    dx = int(dither_rng.integers(0, max_dither))

    origins = _sensor_grid(sensor_shape)
    # Center-out ordering so partial generation keeps adjacent sensors.
    center = (FOCAL_PLANE_ROWS / 2.0, FOCAL_PLANE_COLS / 2.0)
    order = sorted(
        range(len(origins)),
        key=lambda i: (
            (i // FOCAL_PLANE_COLS - center[0]) ** 2
            + (i % FOCAL_PLANE_COLS - center[1]) ** 2
        ),
    )

    h, w = sensor_shape
    visit = Visit(visit_id=visit_id)
    sky_gradient = rng.uniform(0.02, 0.08)
    bundle = max(1, round(ASTRO_SENSORS_PER_VISIT / n_sensors))
    for sensor_id in order[:n_sensors]:
        oy, ox = origins[sensor_id]
        box = SkyBox(oy + dy, ox + dx, h, w)
        yy, xx = np.mgrid[0:h, 0:w]
        background = SKY_LEVEL * (
            1.0 + sky_gradient * ((box.y0 + yy) + (box.x0 + xx)) / (1000.0 + h + w)
        )
        flux = background.astype(np.float64)
        _render_stars(flux, box, star_catalog)
        # Poisson-ish noise: variance tracks the signal.
        variance = flux + READ_VARIANCE
        flux = flux + rng.normal(0.0, np.sqrt(variance))
        mask = np.zeros(sensor_shape, dtype=np.int32)
        _add_cosmic_rays(flux, mask, rng)
        visit.exposures.append(
            SensorExposure(
                visit_id=visit_id,
                sensor_id=sensor_id,
                flux=flux,
                variance=variance,
                mask=mask,
                sky_box=box,
                bundle=bundle,
            )
        )
    return visit


def _stable_seed(*parts):
    """Process-independent seed (Python's ``hash`` is salted)."""
    return zlib.crc32("/".join(str(p) for p in parts).encode("utf-8"))
