"""Synthetic dataset generators and the paper's data-size catalog.

The paper's inputs -- Human Connectome Project S900 diffusion MRI and
High-cadence Transient Survey telescope exposures -- are not
redistributable, so :mod:`repro.data.neuro` and :mod:`repro.data.astro`
generate structurally faithful synthetic stand-ins: real NIfTI/FITS
payloads at a configurable down-scale, with *nominal* sizes pinned at
paper scale for the simulator's cost accounting.
:mod:`repro.data.catalog` reproduces the size tables of Figures 10a/10b.
"""

from repro.data.astro import SensorExposure, Visit, generate_visit, make_star_catalog
from repro.data.catalog import (
    ASTRO_VISIT_COUNTS,
    NEURO_SUBJECT_COUNTS,
    astro_size_table,
    neuro_size_table,
)
from repro.data.neuro import Subject, generate_subject, make_gradient_table

__all__ = [
    "ASTRO_VISIT_COUNTS",
    "NEURO_SUBJECT_COUNTS",
    "SensorExposure",
    "Subject",
    "Visit",
    "astro_size_table",
    "generate_subject",
    "generate_visit",
    "make_gradient_table",
    "make_star_catalog",
    "neuro_size_table",
]
