"""Synthetic diffusion-MRI subject generator (neuroscience stand-in).

Generates structurally faithful substitutes for Human Connectome Project
S900 subjects (Section 3.1.1): a 4-D array of diffusion-weighted 3-D
volumes over an ellipsoidal brain phantom containing an anisotropic
white-matter tract, plus the gradient table (b-values/b-vectors) whose
b0 entries drive the segmentation step.

Real arrays are generated at ``1/scale`` of the paper's resolution so
tests and examples run in seconds; nominal shapes stay at paper scale
(145 x 145 x 174 x 288) for the simulator's cost accounting.
"""

import zlib
from dataclasses import dataclass

import numpy as np

from repro.algorithms.dtm import GradientTable
from repro.data.catalog import (
    NEURO_N_B0,
    NEURO_N_VOLUMES,
    NEURO_VOLUME_SHAPE,
    neuro_subject_bytes,
)
from repro.formats.nifti import NiftiImage
from repro.formats.sizing import SizedArray

#: Baseline (non-diffusion-weighted) signal inside the brain.
S0_BRAIN = 1000.0
#: Background (skull/air) signal level.
S0_BACKGROUND = 40.0
#: Isotropic diffusivity of grey matter (mm^2/s).
D_ISOTROPIC = 0.7e-3
#: Tract eigenvalues: strongly anisotropic white matter.
D_TRACT = (1.7e-3, 0.2e-3, 0.2e-3)
#: b-value of the diffusion-weighted shells.
B_VALUE = 1000.0


@dataclass
class Subject:
    """One synthetic subject: data, acquisition metadata, bookkeeping."""

    subject_id: str
    data: SizedArray          # 4-d (x, y, z, volumes), float32
    gtab: GradientTable
    brain_mask_truth: np.ndarray  # ground-truth mask for tests

    @property
    def n_volumes(self):
        """N volumes."""
        return self.data.array.shape[-1]

    @property
    def bundle(self):
        """Nominal volumes represented by each real volume.

        When a subject is generated with fewer than 288 real volumes,
        each real volume stands in for a *bundle* of nominal volumes so
        per-record data sizes and compute costs stay at paper scale.
        """
        return max(1, round(NEURO_N_VOLUMES / self.n_volumes))

    @property
    def nominal_bytes(self):
        """Size in bytes at the paper's nominal data scale."""
        return neuro_subject_bytes()

    def volume(self, index):
        """One 3-d volume as a :class:`SizedArray` (the pipelines' unit
        of parallelism).

        The nominal shape carries the bundle factor on the z axis so
        that ``nominal_elements``/``nominal_bytes`` of all of a
        subject's volume records sum to the full 4-D dataset.
        """
        x, y, z = NEURO_VOLUME_SHAPE
        nominal = (x, y, z * self.bundle)
        return SizedArray(
            self.data.array[..., index],
            nominal_shape=nominal,
            meta={"subject_id": self.subject_id, "image_id": index},
        )

    def to_nifti(self):
        """The subject as a NIfTI-1 image (1.25 mm isotropic, per the
        paper's nominal resolution)."""
        return NiftiImage(
            self.data.array.astype(np.float32),
            pixdim=(1.25, 1.25, 1.25, 1.0),
            descrip=f"synthetic dMRI subject {self.subject_id}",
        )


def make_gradient_table(n_volumes=NEURO_N_VOLUMES, n_b0=None, seed=7):
    """Gradient table with the paper's b0 fraction (18 of 288).

    Directions are spread over the unit sphere with a deterministic
    Fibonacci spiral, which gives well-conditioned design matrices even
    for small ``n_volumes``.
    """
    if n_volumes < 10:
        raise ValueError(f"need at least 10 volumes for a stable fit, got {n_volumes}")
    if n_b0 is None:
        n_b0 = max(2, round(n_volumes * NEURO_N_B0 / NEURO_N_VOLUMES))
    n_dw = n_volumes - n_b0
    if n_dw < 7:
        raise ValueError(
            f"need at least 7 diffusion-weighted volumes, got {n_dw}"
        )

    indices = np.arange(n_dw, dtype=np.float64)
    golden = (1 + 5 ** 0.5) / 2
    theta = 2 * np.pi * indices / golden
    z = 1 - 2 * (indices + 0.5) / n_dw
    r = np.sqrt(np.maximum(0.0, 1 - z * z))
    directions = np.stack([r * np.cos(theta), r * np.sin(theta), z], axis=1)

    bvals = np.zeros(n_volumes)
    bvecs = np.zeros((n_volumes, 3))
    # Interleave b0 volumes through the acquisition, as HCP does.
    b0_positions = np.linspace(0, n_volumes - 1, n_b0).round().astype(int)
    dw_positions = np.setdiff1d(np.arange(n_volumes), b0_positions)
    bvals[dw_positions] = B_VALUE
    bvecs[dw_positions] = directions
    return GradientTable(bvals, bvecs)


def _brain_geometry(shape):
    """Ground-truth masks: ellipsoidal brain and an interior tract."""
    zz, yy, xx = [np.arange(s, dtype=np.float64) for s in shape]
    grid = np.meshgrid(zz, yy, xx, indexing="ij")
    center = [(s - 1) / 2.0 for s in shape]
    radii = [s * 0.38 for s in shape]
    dist = sum(
        ((g - c) / r) ** 2 for g, c, r in zip(grid, center, radii)
    )
    brain = dist <= 1.0

    # A slab-shaped "tract" through the middle third, oriented along x.
    tract = np.zeros(shape, dtype=bool)
    z0, z1 = int(shape[0] * 0.42), max(int(shape[0] * 0.58), int(shape[0] * 0.42) + 1)
    y0, y1 = int(shape[1] * 0.35), max(int(shape[1] * 0.65), int(shape[1] * 0.35) + 1)
    tract[z0:z1, y0:y1, :] = True
    tract &= brain
    return brain, tract


def generate_subject(subject_id, scale=8, n_volumes=36, noise_sigma=12.0, seed=None):
    """Generate one synthetic subject.

    Parameters
    ----------
    subject_id:
        Stable identifier; also seeds the noise when ``seed`` is None,
        so each subject is distinct but reproducible.
    scale:
        Downscale factor per spatial axis relative to 145 x 145 x 174.
    n_volumes:
        Real volumes generated (nominal stays 288).
    noise_sigma:
        Gaussian noise added to the signal (SNR knob for denoising).
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    shape = tuple(max(8, s // scale) for s in NEURO_VOLUME_SHAPE)
    if seed is None:
        seed = _stable_seed("neuro", subject_id)
    rng = np.random.default_rng(seed)

    gtab = make_gradient_table(n_volumes=n_volumes)
    brain, tract = _brain_geometry(shape)

    # Per-voxel diffusion tensors: isotropic in brain, anisotropic in
    # the tract; background has near-zero signal.
    b = gtab.bvals
    g = gtab.bvecs
    # Quadratic forms g^T D g for the two tissue classes.
    q_iso = D_ISOTROPIC * np.sum(g * g, axis=1)
    d_tract = np.diag(D_TRACT)
    q_tract = np.einsum("ni,ij,nj->n", g, d_tract, g)

    signal_iso = S0_BRAIN * np.exp(-b * q_iso)
    signal_tract = S0_BRAIN * np.exp(-b * q_tract)

    data = np.empty(shape + (n_volumes,), dtype=np.float64)
    data[...] = S0_BACKGROUND * 0.05
    data[brain & ~tract] = signal_iso
    data[tract] = signal_tract
    # Mild *smooth* spatial modulation so volumes are not
    # piecewise-constant: tissue properties vary gradually, which is
    # also what lets patch-based denoising find similar neighborhoods.
    from repro.algorithms.stencil import convolve3d

    field = rng.standard_normal(shape)
    smooth_field = convolve3d(field, np.full((5, 5, 5), 1.0 / 125.0))
    spread = max(smooth_field.std(), 1e-9)
    modulation = 1.0 + 0.03 * (smooth_field / spread)[..., None]
    data *= modulation
    data += rng.normal(0.0, noise_sigma, size=data.shape)
    data = np.clip(data, 0.0, None).astype(np.float32)

    sized = SizedArray(
        data,
        nominal_shape=NEURO_VOLUME_SHAPE + (NEURO_N_VOLUMES,),
        meta={"subject_id": subject_id},
    )
    return Subject(
        subject_id=subject_id,
        data=sized,
        gtab=gtab,
        brain_mask_truth=brain,
    )


def _stable_seed(*parts):
    """Process-independent seed (Python's ``hash`` is salted)."""
    return zlib.crc32("/".join(str(p) for p in parts).encode("utf-8"))
