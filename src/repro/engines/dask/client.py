"""The miniDask client and its dynamic scheduler.

Scheduling model (calibrated to Sections 4.4, 5.1 and 5.2.1):

- One-time job startup, the largest of the five systems, charged at the
  first barrier ("Dask's efficiency increase is most pronounced,
  indicating that the tool has the largest start-up overhead").
- Centralized dispatch: the scheduler releases tasks serially at
  ``dask_task_overhead`` intervals; with tens of thousands of tasks on
  large clusters this caps scaling (Figure 10g).
- Locality: a task prefers the node holding most of its input bytes
  ("the Dask scheduler did well in distributing tasks across machines
  based on estimating data transfer and computation costs").
- Aggressive work stealing: when the preferred node's queue runs ahead
  of the cluster average, the task is stolen by the least-loaded node,
  paying a steal overhead plus the input transfer (charged through the
  executor's ``output_bytes`` locality accounting).
- No persistence: results stay resident on the computing node until
  released, counted against worker memory.
"""

from repro.cluster.faults import dask_recovery
from repro.cluster.task import Task
from repro.engines.base import Engine, nominal_bytes_of
from repro.engines.dask.delayed import Delayed, DelayedFactory

#: Queue-depth slack before the scheduler steals a task elsewhere.
STEAL_SLACK = 2


class DaskClient(Engine):
    """Entry point: build delayed graphs, compute them at barriers."""

    name = "Dask"

    def __init__(self, cluster):
        super().__init__(cluster)
        self._results = {}          # Delayed.key -> value
        self._result_nodes = {}     # Delayed.key -> node name
        self._result_allocs = {}    # Delayed.key -> (node, alloc_id)
        self._result_epochs = {}    # Delayed.key -> (node, crash_count)
        self._dispatch_count = 0
        self._barrier_count = 0
        self.steal_count = 0
        self.lost_futures = 0
        # Lost futures reschedule onto survivors; no persistence layer
        # means recompute from the S3 inputs (Section 2).
        cluster.install_recovery(dask_recovery())

    def startup_cost(self):
        """One-time engine startup in simulated seconds."""
        return self.cost_model.dask_job_startup

    def delayed(self, fn, cost=None, workers=None, op=None):
        """Wrap ``fn`` for graph construction (Figure 8's ``delayed``).

        ``workers`` pins execution to one node name -- the manual
        data-placement control the paper needed for ingest ("we
        explicitly specify the number of subjects to download per
        node", Section 5.2.1).  ``op`` is the provenance id of the
        logical op this function implements; every task built from the
        factory carries it for per-op blame attribution.
        """
        return DelayedFactory(self, fn, cost=cost, workers=workers, op=op)

    def map(self, fn, *iterables, cost=None, workers=None, op=None):
        """Futures-style fan-out: one delayed node per zipped item."""
        factory = self.delayed(fn, cost=cost, workers=workers, op=op)
        return [factory(*args) for args in zip(*iterables)]

    def scatter(self, values, workers=None):
        """Place driver-side values onto workers ahead of computation.

        Returns one handle per value, usable as a graph input; the
        driver-to-worker transfer is charged now and the values become
        resident on their nodes (round-robin unless ``workers`` pins
        them).
        """
        self.ensure_started()
        nodes = self.cluster.node_order
        values = list(values)
        handles = []
        with self.cluster.obs.span(
            "dask-scatter", category="dask", values=len(values),
        ):
            handles.extend(self._scatter_all(values, workers, nodes))
        return handles

    def _scatter_all(self, values, workers, nodes):
        handles = []
        for index, value in enumerate(values):
            placement = workers or nodes[index % len(nodes)]
            handle = self.delayed(lambda v=value: v, workers=placement)()
            nbytes = nominal_bytes_of(value)
            self.cluster.charge_master(
                self.cost_model.pickle_time(nbytes)
                + self.cluster.network.transfer_time(
                    nbytes, self.cluster.master, placement
                ),
                label="dask scatter",
                category="dask-scatter",
            )
            self._results[handle.key] = value
            self._result_nodes[handle.key] = placement
            self._result_epochs[handle.key] = (
                placement, self.cluster.node(placement).crash_count
            )
            if nbytes > 0:
                node = self.cluster.node(placement)
                alloc_id = node.memory.allocate(nbytes, handle.key)
                self._result_allocs[handle.key] = (node, alloc_id)
            handles.append(handle)
        return handles

    # ------------------------------------------------------------------
    # Barrier execution
    # ------------------------------------------------------------------

    def compute(self, delayeds):
        """Evaluate delayed nodes; returns their values (a barrier)."""
        self.ensure_started()
        graph = self._collect(delayeds)
        self._purge_lost(graph)
        pending = [d for d in graph if d.key not in self._results]
        if pending:
            barrier = self._barrier_count
            self._barrier_count += 1
            with self.cluster.obs.span(
                f"dask-compute-{barrier}", category="dask",
                tasks=len(pending),
            ):
                self._schedule(pending)
        return [self._results[d.key] for d in delayeds]

    def release(self, delayeds):
        """Free worker memory held by computed results."""
        for delayed_node in delayeds:
            alloc = self._result_allocs.pop(delayed_node.key, None)
            if alloc is not None:
                node, alloc_id = alloc
                node.memory.free(alloc_id)
            self._results.pop(delayed_node.key, None)
            self._result_nodes.pop(delayed_node.key, None)
            self._result_epochs.pop(delayed_node.key, None)

    def node_of(self, delayed_node):
        """Which node holds a computed result (no persistence layer)."""
        return self._result_nodes[delayed_node.key]

    # ------------------------------------------------------------------
    # Scheduler internals
    # ------------------------------------------------------------------

    def _purge_lost(self, graph):
        """Drop results whose holding node crashed since they computed.

        With no persistence layer a crashed worker takes its resident
        futures with it; the scheduler transparently recomputes them on
        the surviving nodes at the next barrier.
        """
        for delayed_node in graph:
            key = delayed_node.key
            epoch = self._result_epochs.get(key)
            if epoch is None or key not in self._results:
                continue
            node_name, crash_count = epoch
            node = (
                self.cluster.node(node_name)
                if node_name in self.cluster.nodes else None
            )
            if node is not None and node.crash_count == crash_count:
                continue
            alloc = self._result_allocs.pop(key, None)
            if alloc is not None:
                alloc[0].memory.free(alloc[1])
            self._results.pop(key, None)
            self._result_nodes.pop(key, None)
            self._result_epochs.pop(key, None)
            self.lost_futures += 1

    def _collect(self, delayeds):
        """Topological order over the needed subgraph."""
        order = []
        seen = set()

        def visit(node):
            if node.key in seen:
                return
            seen.add(node.key)
            for dep in node.dependencies():
                visit(dep)
            order.append(node)

        for delayed_node in delayeds:
            visit(delayed_node)
        return order

    def _schedule(self, pending):
        cm = self.cost_model
        queue_depth = {
            name: 0 for name in self.cluster.node_order
            if self.cluster.node(name).alive
        }
        cluster_tasks = {}
        dispatch_interval = cm.dask_task_overhead
        base_time = self.cluster.now

        for delayed_node in pending:
            placement, stolen = self._place(delayed_node, queue_depth, cluster_tasks)
            queue_depth[placement] += 1
            task = self._make_task(
                delayed_node,
                placement,
                cluster_tasks,
                stolen=stolen,
                not_before=base_time + self._dispatch_count * dispatch_interval,
            )
            self._dispatch_count += 1
            cluster_tasks[delayed_node.key] = task

        results = self.cluster.run(list(cluster_tasks.values()))
        for delayed_node in pending:
            task = cluster_tasks[delayed_node.key]
            result = results[task.task_id]
            self._results[delayed_node.key] = result.value
            self._result_nodes[delayed_node.key] = result.node
            self._result_epochs[delayed_node.key] = (
                result.node, self.cluster.node(result.node).crash_count
            )
            # Results stay resident on the worker until released.
            nbytes = nominal_bytes_of(result.value)
            if nbytes > 0:
                node = self.cluster.node(result.node)
                alloc_id = node.memory.allocate(nbytes, delayed_node.key)
                self._result_allocs[delayed_node.key] = (node, alloc_id)

    def _place(self, delayed_node, queue_depth, cluster_tasks):
        """Locality-preferred placement with deterministic stealing.

        Returns ``(node_name, stolen)``.
        """
        if delayed_node.workers is not None:
            return delayed_node.workers, False

        # Prefer the node expected to hold the most input bytes: known
        # exactly for results of earlier barriers, and approximated by
        # planned placement for tasks in this batch.
        bytes_by_node = {}
        for dep in delayed_node.dependencies():
            node = self._result_nodes.get(dep.key)
            weight = 1
            if node is not None:
                value = self._results.get(dep.key)
                if value is not None:
                    weight = max(1, nominal_bytes_of(value))
            elif dep.key in cluster_tasks:
                node = cluster_tasks[dep.key].node
            if node is not None:
                bytes_by_node[node] = bytes_by_node.get(node, 0) + weight
        if bytes_by_node:
            preferred = max(sorted(bytes_by_node), key=lambda n: bytes_by_node[n])
            if preferred not in queue_depth:
                # The byte-preferred node is down; fall back to the
                # least-loaded survivor.
                preferred = min(sorted(queue_depth), key=lambda n: queue_depth[n])
        else:
            preferred = min(sorted(queue_depth), key=lambda n: queue_depth[n])

        mean_depth = sum(queue_depth.values()) / len(queue_depth)
        if queue_depth[preferred] > mean_depth + STEAL_SLACK:
            thief = min(sorted(queue_depth), key=lambda n: queue_depth[n])
            if thief != preferred:
                self.steal_count += 1
                return thief, True
        return preferred, False

    def _make_task(self, delayed_node, placement, cluster_tasks, stolen,
                   not_before):
        """Build the cluster task; Delayed args resolve through Task args."""
        cm = self.cost_model
        fn = delayed_node.fn
        steal_overhead = cm.dask_steal_overhead if stolen else 0.0

        def to_task_arg(arg):
            if isinstance(arg, Delayed):
                if arg.key in cluster_tasks:
                    return cluster_tasks[arg.key]  # resolved by executor
                return self._results[arg.key]      # from an earlier barrier
            return arg

        task_args = [to_task_arg(a) for a in delayed_node.args]
        task_kwargs = {k: to_task_arg(v) for k, v in delayed_node.kwargs.items()}

        def run(*args, **kwargs):
            value = fn(*args, **kwargs)
            task.output_bytes = nominal_bytes_of(value)
            return value

        def duration(*args, **kwargs):
            return fn.cost(*args, **kwargs) + steal_overhead

        fn_name = getattr(fn, "name", None)
        task = Task(
            f"dask-{delayed_node.key}",
            fn=run,
            args=task_args,
            kwargs=task_kwargs,
            duration=duration,
            node=placement,
            not_before=not_before,
            category=f"dask-{fn_name}"
            if fn_name and fn_name != "<lambda>" else "dask-task",
            op=getattr(fn, "op", None),
            memoizable=True,
        )
        return task
