"""The astro plan lowered to miniDask.

Paper caveat (Section 4.4): "We implemented the astronomy use case with
the same approach.  Interestingly, the implementation freezes once
deployed on a cluster and we found it surprisingly difficult to track
down the cause of the problem.  Hence, we do not report performance
numbers."

This reproduction implements the pipeline fully and it *runs* on the
simulated cluster (our miniDask does not reproduce the original
deadlock); the benchmark harness nevertheless excludes Dask from the
astronomy charts to match the paper's reporting -- see EXPERIMENTS.md.

Lowering contract notes: the plan's two shuffling ``group_by`` ops
become pure graph wiring — the (patch, visit) -> contributing-exposure
map is known from geometry, so ``stitch`` and ``coadd`` nodes are built
without any barrier or shuffle.
"""

from repro.pipelines import common
from repro.pipelines.astro import reference as ref
from repro.pipelines.astro.staging import DEFAULT_BUCKET, exposure_key
from repro.plan.astro import astro_plan
from repro.plan.ir import fused_members, provenance_id
from repro.plan.memo import materialize_scope, visit_token


def _pid(op_id):
    """Provenance id of an astro-plan op."""
    return provenance_id("astro", op_id)


def _compose(entries):
    """Compose fused-carrier member kernels into one delayed function.

    ``entries`` is a list of ``(fn, cost_fn)`` member pairs.  A single
    member passes through untouched (the naive plan's graph must stay
    byte-identical).  For a real fusion the composed function runs the
    members back to back, accumulating each member's simulated cost on
    its *own* inputs into a cell; the composed cost function reads the
    cell (miniDask evaluates ``cost`` after ``fn``, same idiom as the
    Spark scheduler's fused narrow stages).
    """
    if len(entries) == 1:
        return entries[0]
    cell = {"cost": 0.0}

    def composed(*args):
        cell["cost"] = 0.0
        value = None
        for index, (fn, cost) in enumerate(entries):
            call_args = args if index == 0 else (value,)
            if cost is not None:
                cell["cost"] += cost(*call_args)
            value = fn(*call_args)
        return value

    def composed_cost(*args):
        return cell["cost"]

    composed.__name__ = "+".join(
        getattr(fn, "__name__", "fn") for fn, _ in entries
    )
    return composed, composed_cost


def run(client, visits, bucket=DEFAULT_BUCKET, grid=None, plan=None):
    """End-to-end astronomy pipeline; returns ``(coadds, sources)``."""
    if plan is None:
        plan = astro_plan(bucket=bucket)
    # Delayed keys come from a process-global counter; the window key
    # below must pin the base the graph was built at (task names embed
    # the keys).
    from repro.engines.dask.delayed import keys_issued

    key_base = keys_issued()
    cm = client.cost_model
    exposures = [e for v in visits for e in v.exposures]
    if grid is None:
        grid = ref.default_patch_grid(exposures[0].shape)
    pixel_scale = ref.nominal_pixel_scale(exposures[0].shape, exposures[0].bundle)
    store = client.cluster.object_store
    nodes = client.cluster.node_order

    def fetch(visit_id, sensor_id):
        return store.get(bucket, exposure_key(visit_id, sensor_id))

    def fetch_cost(visit_id, sensor_id):
        nbytes = store.size_of(bucket, exposure_key(visit_id, sensor_id))
        return client.cluster.network.s3_download_time(nbytes, n_objects=1)

    def pieces_for(exposure):
        return dict(ref.patch_pieces(exposure, grid, pixel_scale))

    # The scan -> patches prefix is where the optimizer may have fused
    # narrow ops into carriers (one delayed node per exposure instead of
    # one per member).  Walk the prefix carrier by carrier; on the naive
    # plan every carrier has one member and this builds exactly the
    # historical graph.
    kernels = {
        "exposures": (fetch, fetch_cost),
        "preprocess": (ref.preprocess_exposure, common.preprocess_cost(cm)),
        "patches": (pieces_for, common.patch_map_cost(cm)),
    }

    current = {}
    for carrier in plan.chain("exposures", "patches"):
        members = fused_members(carrier)
        entries = [kernels[m.op_id] for m in members]
        pid = _pid(carrier.op_id)
        if members[0].op_id == "exposures":
            for index, exposure in enumerate(exposures):
                workers = nodes[index % len(nodes)]
                fn, cost = _compose(entries)
                current[(exposure.visit_id, exposure.sensor_id)] = client.delayed(
                    fn, cost=cost, workers=workers, op=pid
                )(exposure.visit_id, exposure.sensor_id)
        else:
            staged = {}
            for key, d in current.items():
                fn, cost = _compose(entries)
                staged[key] = client.delayed(fn, cost=cost, op=pid)(d)
            current = staged
    pieces = current

    # The (patch, visit) -> contributing exposures map is known from
    # geometry, so the stitch graph is built without a barrier.
    contributors = {}
    for exposure in exposures:
        for patch_id in grid.overlapping_patches(exposure.sky_box):
            contributors.setdefault((patch_id, exposure.visit_id), []).append(
                (exposure.visit_id, exposure.sensor_id)
            )

    def stitch(patch_visit, *piece_maps):
        group = [m[patch_visit] for m in piece_maps]
        return ref.stitch_pieces(group)

    def stitch_cost(patch_visit, *piece_maps):
        return common.stitch_cost(cm)([m[patch_visit] for m in piece_maps])

    stitched = {
        patch_visit: client.delayed(stitch, cost=stitch_cost, op=_pid("stitch"))(
            patch_visit, *[pieces[k] for k in keys]
        )
        for patch_visit, keys in contributors.items()
    }

    by_patch = {}
    for (patch_id, visit_id) in sorted(stitched, key=lambda k: (k[0], k[1])):
        by_patch.setdefault(patch_id, []).append(stitched[(patch_id, visit_id)])

    def coadd(*stack):
        return ref.coadd_patch(list(stack))

    def coadd_cost(*stack):
        return common.coadd_cost(cm, ref.COADD_ITERATIONS)(list(stack))

    coadd_delayed = {
        patch: client.delayed(coadd, cost=coadd_cost, op=_pid("coadd"))(*stack)
        for patch, stack in by_patch.items()
    }

    def detect(coadd_img):
        return coadd_img, ref.detect(coadd_img)

    result_delayed = {
        patch: client.delayed(
            detect, cost=lambda c: common.detect_cost(cm)(c),
            op=_pid("sources"),
        )(d)
        for patch, d in coadd_delayed.items()
    }

    patches = sorted(result_delayed)
    with materialize_scope(
        client.cluster, plan, "sources", "dask",
        extra=lambda: {
            "bucket": bucket,
            "visits": [visit_token(v) for v in visits],
            "grid": [grid.patch_height, grid.patch_width],
            "key_base": key_base,
        },
    ):
        values = client.compute([result_delayed[p] for p in patches])
    coadds = {p: v[0] for p, v in zip(patches, values)}
    sources = {p: v[1] for p, v in zip(patches, values)}
    return coadds, sources


class LoweredAstro:
    """Executable produced by ``lower(astro_plan(), client)``."""

    def __init__(self, plan, client):
        self.plan = plan
        self.client = client
        # member_param resolves through fused carriers (the optimizer
        # may have folded the scan into one).
        self.bucket = plan.member_param("exposures", "bucket")

    def run(self, visits, grid=None):
        return run(
            self.client, visits, bucket=self.bucket, grid=grid,
            plan=self.plan,
        )
