"""Dask lowering backend: translate logical plans into delayed graphs."""

from repro.engines.dask.lowering import astro, neuro
from repro.engines.dask.lowering.astro import LoweredAstro
from repro.engines.dask.lowering.neuro import LoweredNeuro


def lower(plan, ctx):
    """Lower a logical plan against a Dask client ``ctx``."""
    if plan.name == "neuro":
        return LoweredNeuro(plan, ctx)
    if plan.name == "astro":
        return LoweredAstro(plan, ctx)
    raise NotImplementedError(f"dask lowering: unknown plan {plan.name!r}")


__all__ = ["LoweredAstro", "LoweredNeuro", "astro", "lower", "neuro"]
