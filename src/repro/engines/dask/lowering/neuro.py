"""The neuro plan lowered to miniDask (Section 4.4, Figure 8).

Per-subject delayed graphs with per-volume task keys: download-and-
filter, blockwise means, median-Otsu, then denoise/fit -- with the
explicit barrier after the downloads that Figure 8 shows (``numVols``
is read before the rest of the graph is built).  Subjects are
independent, so processing pipelines across subjects overlap freely --
the structural reason "Dask is at best 14% faster than the other two
systems" (Section 5.1) at scale, while its large startup dominates at
one subject.

Graph values are individual volumes and voxel blocks (Figure 8's
``partitionVoxels``), so work stealing moves volume- or block-sized
payloads, never whole subjects.

Lowering contract notes: Dask restructures the plan's ``group_by`` ops
into explicit task graphs (``mean_b0`` becomes a single ``mean_volumes``
node over the b0 volumes; ``regroup``/``fitmodel`` become per-block
``split_block``/``fit_block`` nodes) and replaces the ``mask_bcast``
broadcast with ordinary graph edges — the scheduler ships the mask to
whichever worker needs it.  Delayed-node construction order is part of
the lowering: task keys come from a global counter, so the graph below
is built in exactly the order the paper's Figure 8 pseudocode implies.
"""

import numpy as np

from repro.algorithms.dtm import fit_dtm, fractional_anisotropy
from repro.algorithms.nlmeans import nlmeans_3d
from repro.algorithms.otsu import median_otsu
from repro.formats.sizing import SizedArray
from repro.pipelines import common
from repro.pipelines.neuro.reference import DENOISE_SIGMA, MASK_MEDIAN_RADIUS
from repro.pipelines.neuro.staging import DEFAULT_BUCKET, volume_key
from repro.plan.ir import provenance_id
from repro.plan.memo import materialize_scope, subject_token
from repro.plan.neuro import DEFAULT_BLOCKS, neuro_plan


def _pid(op_id):
    """Provenance id of a neuro-plan op (Dask restructures ``group_by``
    ops into explicit graph nodes, so ids are stamped per kernel)."""
    return provenance_id("neuro", op_id)


def fetch_volume(client, subject, index, bucket=DEFAULT_BUCKET, workers=None):
    """One delayed node fetching one staged volume from S3.

    ``workers`` pins the download (Section 5.2.1: "we explicitly
    specify the number of subjects to download per node" because the
    scheduler does not know download sizes up front).
    """
    store = client.cluster.object_store
    cm = client.cost_model
    key = volume_key(subject.subject_id, index)
    nbytes = store.size_of(bucket, key)

    def fetch(subject_id, image_id):
        return store.get(bucket, key)

    def fetch_cost(subject_id, image_id):
        # Concurrent per-volume fetches on the pinned node share its S3
        # bandwidth (one subject's 288 volumes all land on one node).
        sharing = min(
            client.cluster.spec.slots_per_node, subject.n_volumes
        )
        return client.cluster.network.s3_download_time(
            nbytes, n_objects=1
        ) * sharing + cm.unpickle_time(nbytes)

    return client.delayed(
        fetch, cost=fetch_cost, workers=workers, op=_pid("volumes")
    )(subject.subject_id, index)


def download_and_filter(client, subject, bucket=DEFAULT_BUCKET, workers=None):
    """Figure 8's ``downloadAndFilter``: all of one subject's volumes.

    Returns the list of per-volume :class:`Delayed` values; computing
    them is the barrier Figure 8 inserts before graph construction
    continues.
    """
    return [
        fetch_volume(client, subject, index, bucket=bucket, workers=workers)
        for index in range(subject.n_volumes)
    ]


def build_mask_graph(client, subject, vols_delayed):
    """Step 1-N as a delayed graph (Figure 8 lines 7-11)."""
    cm = client.cost_model
    b0_indices = np.nonzero(subject.gtab.b0s_mask)[0]
    b0_vols = [vols_delayed[i] for i in b0_indices]

    def mean_volumes(*volumes):
        stack = np.stack([v.array for v in volumes], axis=-1)
        return SizedArray(
            stack.mean(axis=-1),
            nominal_shape=volumes[0].nominal_shape,
            meta=volumes[0].meta,
        )

    def mean_cost(*volumes):
        total = sum(v.nominal_elements for v in volumes)
        return total * cm.elementwise_per_element

    mean = client.delayed(mean_volumes, cost=mean_cost, op=_pid("mean_b0"))(
        *b0_vols
    )

    def to_mask(mean_volume):
        _masked, mask = median_otsu(
            mean_volume.array, median_radius=MASK_MEDIAN_RADIUS
        )
        return mask

    return client.delayed(to_mask, cost=common.otsu_cost(cm), op=_pid("otsu"))(
        mean
    )


def build_fit_graph(client, subject, vols_delayed, mask_delayed,
                    n_blocks=DEFAULT_BLOCKS):
    """Steps 2-N and 3-N as one per-subject delayed chain."""
    cm = client.cost_model
    gtab = subject.gtab

    def denoise_one(volume, mask):
        out = nlmeans_3d(volume.array, sigma=DENOISE_SIGMA, mask=mask)
        return volume.with_array(out)

    def denoise_cost(volume, mask):
        fraction = common.masked_fraction(mask)
        return volume.nominal_elements * fraction * cm.nlmeans_per_voxel

    denoised = [
        client.delayed(denoise_one, cost=denoise_cost, op=_pid("denoise"))(
            vol, mask_delayed
        )
        for vol in vols_delayed
    ]

    # Figure 8's partitionVoxels: per-volume voxel blocks are separate
    # graph values, so model fitting only moves block-sized pieces
    # between workers, not whole volumes.
    def split_block(volume, block_index):
        return common.split_volume_blocks(volume, n_blocks)[block_index][1]

    def split_block_cost(volume, block_index):
        return (volume.nominal_bytes / n_blocks) * cm.memcpy_per_byte

    pieces = [
        [
            client.delayed(
                split_block, cost=split_block_cost, op=_pid("repart")
            )(vol, block_index)
            for vol in denoised
        ]
        for block_index in range(n_blocks)
    ]

    def fit_block(mask, block_index, *blocks):
        stacked = np.stack([b.array for b in blocks], axis=-1)
        nz = mask.shape[0]
        bounds = np.linspace(0, nz, min(n_blocks, nz) + 1).astype(int)
        mask_block = mask[bounds[block_index]:bounds[block_index + 1]]
        evals = fit_dtm(stacked, gtab, mask=mask_block)
        fa = fractional_anisotropy(evals)
        return SizedArray(fa, nominal_shape=blocks[0].nominal_shape)

    def fit_block_cost(mask, block_index, *blocks):
        fraction = common.masked_fraction(mask)
        elements = sum(b.nominal_elements for b in blocks)
        return elements * fraction * cm.dtm_fit_per_voxel_sample

    fa_blocks = [
        client.delayed(fit_block, cost=fit_block_cost, op=_pid("fitmodel"))(
            mask_delayed, block_index, *pieces[block_index]
        )
        for block_index in range(n_blocks)
    ]

    def reassemble(*blocks):
        return common.reassemble_blocks(dict(enumerate(blocks)))

    def reassemble_cost(*blocks):
        return sum(b.nominal_bytes for b in blocks) * cm.memcpy_per_byte

    return client.delayed(reassemble, cost=reassemble_cost, op=_pid("fa"))(
        *fa_blocks
    )


def run(client, subjects, n_blocks=DEFAULT_BLOCKS, bucket=DEFAULT_BUCKET,
        plan=None):
    """End-to-end neuroscience pipeline on Dask.

    Returns ``(masks, fa_by_subject)``.  Subject downloads are pinned
    round-robin over the nodes (the paper's manual placement).
    """
    if plan is None:
        plan = neuro_plan(n_blocks=n_blocks, bucket=bucket)

    # Task names embed the process-global delayed-key counter; a window
    # recorded at one counter base cannot replay at another, so the base
    # is part of every window key below.
    from repro.engines.dask.delayed import keys_issued

    key_base = keys_issued()

    def input_token():
        return {
            "bucket": bucket,
            "subjects": [subject_token(s) for s in subjects],
            "key_base": key_base,
        }

    nodes = client.cluster.node_order
    data = {}
    for index, subject in enumerate(subjects):
        workers = nodes[index % len(nodes)]
        data[subject.subject_id] = download_and_filter(
            client, subject, bucket=bucket, workers=workers
        )

    # Figure 8's barrier: materialize the downloads and read numVols.
    all_vols = [v for vols in data.values() for v in vols]
    with materialize_scope(
        client.cluster, plan, "volumes", "dask", extra=input_token
    ):
        client.compute(all_vols)
    num_vols = {
        subject.subject_id: len(data[subject.subject_id])
        for subject in subjects
    }
    assert all(n > 0 for n in num_vols.values())

    masks_delayed = {
        s.subject_id: build_mask_graph(client, s, data[s.subject_id])
        for s in subjects
    }
    fa_delayed = {
        s.subject_id: build_fit_graph(
            client, s, data[s.subject_id], masks_delayed[s.subject_id],
            n_blocks=n_blocks,
        )
        for s in subjects
    }
    # One barrier evaluates every subject's chain; subjects overlap.
    keys = [s.subject_id for s in subjects]
    with materialize_scope(
        client.cluster, plan, "fa", "dask", extra=input_token
    ):
        results = client.compute(
            [masks_delayed[k] for k in keys] + [fa_delayed[k] for k in keys]
        )
    masks = dict(zip(keys, results[: len(keys)]))
    fa = dict(zip(keys, results[len(keys):]))
    return masks, fa


class LoweredNeuro:
    """Executable produced by ``lower(neuro_plan(), client)``.

    Binds the plan's parameters (bucket from the ``volumes`` scan,
    ``n_blocks`` from ``repart``) to the graph builders above.
    """

    def __init__(self, plan, client):
        self.plan = plan
        self.client = client
        self.bucket = plan.member_param("volumes", "bucket")
        self.n_blocks = plan.param("n_blocks")

    def download_and_filter(self, subject, workers=None):
        return download_and_filter(
            self.client, subject, bucket=self.bucket, workers=workers
        )

    def build_mask_graph(self, subject, vols_delayed):
        return build_mask_graph(self.client, subject, vols_delayed)

    def build_fit_graph(self, subject, vols_delayed, mask_delayed):
        return build_fit_graph(
            self.client, subject, vols_delayed, mask_delayed,
            n_blocks=self.n_blocks,
        )

    def run(self, subjects):
        return run(
            self.client, subjects, n_blocks=self.n_blocks,
            bucket=self.bucket, plan=self.plan,
        )
