"""The ``delayed`` graph-construction API (paper Figure 8).

``client.delayed(fn)(args...)`` returns a :class:`Delayed` node; nodes
passed as arguments become graph edges.  Nothing executes until
``result()`` or ``client.compute()`` -- the explicit barriers the
paper's Section 4.4 discusses ("we had to reason about when to insert
barriers to evaluate the constructed graphs").
"""

from repro.engines.base import as_costed

_keys_issued = 0


def keys_issued():
    """How many delayed keys have been handed out so far.

    Task names embed these keys, and the counter is process-global, so
    materialization windows recorded over a delayed graph must include
    the counter base in their key (see ``repro.plan.memo``).
    """
    return _keys_issued


def _next_key():
    global _keys_issued
    n = _keys_issued
    _keys_issued += 1
    return n


class Delayed:
    """One node of a Dask compute graph."""

    __slots__ = ("client", "fn", "args", "kwargs", "key", "workers", "_computed")

    def __init__(self, client, fn, args, kwargs, workers=None):
        self.client = client
        self.fn = fn
        self.args = tuple(args)
        self.kwargs = dict(kwargs or {})
        self.key = f"{fn.name}-{_next_key()}"
        self.workers = workers
        self._computed = False

    def dependencies(self):
        """Upstream tasks/nodes this one waits for."""
        deps = []
        for arg in self.args:
            if isinstance(arg, Delayed):
                deps.append(arg)
        for arg in self.kwargs.values():
            if isinstance(arg, Delayed):
                deps.append(arg)
        return deps

    def result(self):
        """Barrier: evaluate this node (and everything it needs)."""
        with self.client.cluster.obs.span(
            f"dask-result-{self.key}", category="dask",
        ):
            return self.client.compute([self])[0]

    def __repr__(self):
        return f"Delayed({self.key})"


class DelayedFactory:
    """What ``client.delayed(fn, cost=...)`` returns.

    ``op`` stamps the wrapped function with the provenance id of the
    logical plan op it implements; the scheduler copies it onto every
    task built from this factory (see ``repro.obs.attribution``).
    """

    __slots__ = ("client", "fn", "workers")

    def __init__(self, client, fn, cost=None, workers=None, op=None):
        self.client = client
        self.fn = as_costed(fn) if cost is None else _with_cost(fn, cost)
        if op is not None and self.fn.op is None:
            self.fn.op = op
        self.workers = workers

    def __call__(self, *args, **kwargs):
        return Delayed(self.client, self.fn, args, kwargs, workers=self.workers)


def _with_cost(fn, cost):
    from repro.engines.base import CostedFunction

    if isinstance(fn, CostedFunction):
        return CostedFunction(fn.fn, cost_fn=cost, name=fn.name, op=fn.op)
    return CostedFunction(fn, cost_fn=cost)
