"""miniDask: delayed compute graphs with dynamic scheduling.

Reimplements the Dask model of Section 2: computation is marked
``delayed`` to build a task graph over plain Python objects; calling
``result()``/``compute()`` is an explicit barrier where the scheduler
distributes tasks to workers.  Captured behaviors: the largest job
startup overhead of the five systems (Figure 10e), locality-aware
placement with aggressive work stealing whose overhead grows with
cluster size (Figure 10g), centralized dispatch, no data persistence
("computed results remain on the machine where the computation took
place"), and manual data-partitioning control (Sections 4.4, 5.2.1).
"""

from repro.engines.dask.client import DaskClient
from repro.engines.dask.delayed import Delayed

__all__ = ["DaskClient", "Delayed"]
