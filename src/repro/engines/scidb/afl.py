"""AFL (Array Functional Language) front-end for miniSciDB.

SciDB queries are written in AQL or AFL; the paper's SciDB
implementations are "expressed in 180 LoC of AQL" and AFL one-liners
like Figure 5's.  This module parses an AFL expression subset and
evaluates it against a :class:`~repro.engines.scidb.query.SciDBConnection`:

.. code-block:: text

    aggregate(filter(scan(data), vol < 18), avg(v), x, y, z)
    project(apply(scan(data), w, v * 2), w)
    between(scan(sky), 0, 0, 0, 23, 999, 999)
    subarray(scan(sky), 0, 0, 0, 23, 999, 999)

Grammar::

    expr     := call | name | number
    call     := NAME '(' args ')'
    args     := arg (',' arg)*
    arg      := expr | comparison | arithmetic
    comparison := expr OP expr          (inside filter())
    arithmetic := expr ('*'|'+'|'-'|'/') expr   (inside apply())

Supported operators: ``scan``, ``filter`` (on dimension or attribute),
``between``/``subarray`` (dimension ranges), ``aggregate`` with
``avg``/``sum``/``min``/``max``/``count`` over remaining dimensions,
``apply`` (arithmetic on the attribute), and ``project``.
"""

import re

import numpy as np

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|!=|=|<|>)
  | (?P<arith>[*+\-/])
  | (?P<punct>[(),])
    """,
    re.VERBOSE,
)


class AFLError(Exception):
    """Malformed or unsupported AFL."""


def tokenize(text):
    """Split source text into tokens."""
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise AFLError(f"unexpected character {text[pos]!r} at {pos}")
        kind = match.lastgroup
        if kind != "ws":
            tokens.append((kind, match.group(), match.start()))
        pos = match.end()
    return tokens


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------

class Node:
    """Node."""
    __slots__ = ()


class Call(Node):
    """Call."""
    __slots__ = ("fname", "args")

    def __init__(self, fname, args):
        self.fname = fname
        self.args = args


class Name(Node):
    """Name."""
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class Number(Node):
    """Number."""
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class Comparison(Node):
    """Comparison."""
    __slots__ = ("left", "op", "right")

    def __init__(self, left, op, right):
        self.left = left
        self.op = op
        self.right = right


class Arithmetic(Node):
    """Arithmetic."""
    __slots__ = ("left", "op", "right")

    def __init__(self, left, op, right):
        self.left = left
        self.op = op
        self.right = right


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def _peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self):
        token = self._peek()
        if token is None:
            raise AFLError("unexpected end of input")
        self.pos += 1
        return token

    def _expect(self, kind, value=None):
        token = self._next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise AFLError(
                f"expected {value or kind} at offset {token[2]}, got {token[1]!r}"
            )
        return token

    def parse(self):
        """Parse source text into an AST."""
        node = self._argument()
        if self._peek() is not None:
            raise AFLError(f"trailing input at offset {self._peek()[2]}")
        return node

    def _argument(self):
        left = self._atom()
        token = self._peek()
        if token and token[0] == "op":
            self._next()
            right = self._atom()
            return Comparison(left, token[1], right)
        if token and token[0] == "arith":
            self._next()
            right = self._atom()
            return Arithmetic(left, token[1], right)
        return left

    def _atom(self):
        token = self._next()
        if token[0] == "number":
            text = token[1]
            return Number(float(text) if "." in text else int(text))
        if token[0] == "name":
            nxt = self._peek()
            if nxt and nxt[0] == "punct" and nxt[1] == "(":
                self._next()
                args = []
                if not (self._peek() and self._peek()[1] == ")"):
                    args.append(self._argument())
                    while self._peek() and self._peek()[1] == ",":
                        self._next()
                        args.append(self._argument())
                self._expect("punct", ")")
                return Call(token[1].lower(), args)
            return Name(token[1])
        raise AFLError(f"unexpected token {token[1]!r} at offset {token[2]}")


def parse(text):
    """Parse AFL text into an AST."""
    return _Parser(tokenize(text)).parse()


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------

_AGGREGATES = {
    "avg": np.mean,
    "sum": np.sum,
    "min": np.min,
    "max": np.max,
    "count": lambda a, axis: np.full(
        np.delete(np.array(a.shape), axis), a.shape[axis]
    ),
}

_COMPARATORS = {
    "=": np.equal,
    "!=": np.not_equal,
    "<>": np.not_equal,
    "<": np.less,
    ">": np.greater,
    "<=": np.less_equal,
    ">=": np.greater_equal,
}

_ARITHMETIC = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
}


def execute(sdb, text):
    """Parse and run an AFL expression; returns the result array.

    Execution is compositional over the connection's native operators,
    so every step is charged chunk-at-a-time like hand-written calls.
    """
    return _Evaluator(sdb).eval(parse(text))


class _Evaluator:
    def __init__(self, sdb):
        self.sdb = sdb
        self._temp = 0

    def _fresh(self, prefix):
        self._temp += 1
        return f"_afl_{prefix}_{self._temp}"

    def eval(self, node):
        """Evaluate an AST node."""
        if isinstance(node, Call):
            handler = getattr(self, f"_op_{node.fname}", None)
            if handler is None:
                raise AFLError(f"unsupported AFL operator {node.fname!r}")
            return handler(node.args)
        raise AFLError(f"top-level AFL must be an operator call, got {node!r}")

    # -- operators -------------------------------------------------------

    def _op_scan(self, args):
        if len(args) != 1 or not isinstance(args[0], Name):
            raise AFLError("scan() takes one array name")
        name = args[0].value
        if name not in self.sdb.arrays:
            raise AFLError(f"unknown array {name!r}")
        return self.sdb.arrays[name]

    def _op_filter(self, args):
        if len(args) != 2 or not isinstance(args[1], Comparison):
            raise AFLError("filter(array, comparison) expected")
        array = self.eval(args[0])
        comparison = args[1]
        subject = comparison.left
        if not isinstance(subject, Name):
            raise AFLError("filter comparisons must start with a name")
        value = self._literal(comparison.right)
        op = _COMPARATORS[comparison.op]

        dim_names = [d.name for d in array.dims]
        if subject.value in dim_names:
            axis = dim_names.index(subject.value)
            positions = np.arange(array.dims[axis].length)
            keep = op(positions, value)
            return self.sdb.compress(
                array, keep, axis=axis, name=self._fresh("filter")
            )
        if subject.value == array.attr:
            # Attribute filter: a full elementwise pass; non-matching
            # cells become empty (NaN here).
            def apply_filter(a):
                return np.where(op(a, value), a, np.nan)

            return self.sdb.apply_elementwise(
                array,
                apply_filter,
                self.sdb.cost_model.elementwise_per_element,
                name=self._fresh("filter"),
            )
        raise AFLError(
            f"unknown dimension or attribute {subject.value!r}"
        )

    def _op_between(self, args):
        return self._range_op(args, "between")

    def _op_subarray(self, args):
        return self._range_op(args, "subarray")

    def _range_op(self, args, label):
        array = self.eval(args[0])
        bounds = [self._literal(a) for a in args[1:]]
        rank = len(array.dims)
        if len(bounds) != 2 * rank:
            raise AFLError(
                f"{label}() needs {2 * rank} bounds for a rank-{rank} array"
            )
        lows, highs = bounds[:rank], bounds[rank:]
        result = array
        for axis in range(rank):
            dim = result.dims[axis]
            lo = max(0, int(lows[axis]))
            hi = min(dim.length - 1, int(highs[axis]))
            keep = np.zeros(dim.length, dtype=bool)
            keep[lo:hi + 1] = True
            if keep.all():
                continue
            result = self.sdb.compress(
                result, keep, axis=axis, name=self._fresh(label)
            )
        return result

    def _op_aggregate(self, args):
        if len(args) < 2 or not isinstance(args[1], Call):
            raise AFLError("aggregate(array, agg(attr), dims...) expected")
        array = self.eval(args[0])
        agg = args[1]
        if agg.fname not in _AGGREGATES:
            raise AFLError(f"unknown aggregate {agg.fname!r}")
        keep_dims = [a.value for a in args[2:] if isinstance(a, Name)]
        dim_names = [d.name for d in array.dims]
        for name in keep_dims:
            if name not in dim_names:
                raise AFLError(f"unknown dimension {name!r}")
        drop_axes = [
            i for i, name in enumerate(dim_names) if name not in keep_dims
        ]
        if not drop_axes:
            raise AFLError("aggregate() must drop at least one dimension")
        result = array
        # Reduce one axis at a time (axes shift as dimensions drop).
        for axis in sorted(drop_axes, reverse=True):
            if agg.fname == "avg":
                result = self.sdb.mean(result, axis=axis, name=self._fresh("agg"))
            else:
                reducer = _AGGREGATES[agg.fname]
                current = result

                def reduce_axis(a, axis=axis, reducer=reducer):
                    return reducer(a, axis=axis)

                reduced_real = reduce_axis(current.real)
                new_dims = tuple(
                    d for i, d in enumerate(current.dims) if i != axis
                )
                from repro.engines.scidb.array import SciDBArray

                # Charge as an elementwise pass over the input.
                self.sdb.apply_elementwise(
                    current, lambda a: a,
                    self.sdb.cost_model.elementwise_per_element,
                    name=self._fresh("aggpass"),
                )
                result = SciDBArray(
                    self._fresh("agg"), new_dims, reduced_real,
                    attr=current.attr,
                )
                self.sdb.arrays[result.name] = result
        return result

    def _op_apply(self, args):
        if len(args) != 3 or not isinstance(args[1], Name):
            raise AFLError("apply(array, new_attr, expression) expected")
        array = self.eval(args[0])
        new_attr = args[1].value
        expression = args[2]

        def compute(a):
            return self._eval_cellwise(expression, array, a)

        out = self.sdb.apply_elementwise(
            array, compute,
            self.sdb.cost_model.elementwise_per_element,
            name=self._fresh("apply"),
        )
        out.attr = new_attr
        return out

    def _op_project(self, args):
        if len(args) != 2 or not isinstance(args[1], Name):
            raise AFLError("project(array, attr) expected")
        array = self.eval(args[0])
        if args[1].value != array.attr:
            raise AFLError(
                f"array has attribute {array.attr!r}, not {args[1].value!r}"
            )
        return array

    # -- helpers -----------------------------------------------------------

    def _literal(self, node):
        if isinstance(node, Number):
            return node.value
        raise AFLError(f"expected a literal, got {node!r}")

    def _eval_cellwise(self, node, array, cells):
        if isinstance(node, Number):
            return node.value
        if isinstance(node, Name):
            if node.value == array.attr:
                return cells
            raise AFLError(f"unknown attribute {node.value!r}")
        if isinstance(node, Arithmetic):
            left = self._eval_cellwise(node.left, array, cells)
            right = self._eval_cellwise(node.right, array, cells)
            return _ARITHMETIC[node.op](left, right)
        raise AFLError(f"unsupported cellwise expression {node!r}")
