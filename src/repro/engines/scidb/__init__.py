"""miniSciDB: a shared-nothing multidimensional array DBMS.

Reimplements the SciDB model of Section 2: arrays divided into chunks
distributed across instances, operators processing data one chunk at a
time, AFL-style array operations (filter, aggregate, window, join),
two ingest paths (the slow coordinator-mediated ``from_array`` and the
parallel ``aio_input``), and the ``stream()`` interface that pipes
chunks as TSV through an external Python process (Section 4.1).
"""

from repro.engines.scidb.array import DimSpec, SciDBArray
from repro.engines.scidb.query import SciDBConnection

__all__ = ["DimSpec", "SciDBArray", "SciDBConnection"]
