"""SciDB connection and AFL-style array operators.

Operators process arrays chunk-at-a-time on the instances that own the
chunks (Section 2: "operators, including user-defined ones, process
data iteratively one chunk at a time").  Costs follow the behaviors the
paper measures:

- ``compress``/``filter_dim``: selections not aligned with the chunk
  grid must open, subset, and rebuild every chunk (Figure 12a).
- ``mean``: a native array aggregate, SciDB's sweet spot (Figure 12b).
- ``stream``: chunks cross to an external Python process as TSV
  (Figure 12c's overhead).
- ``coadd_aql``: iterative AQL without incremental-iteration support
  rescans and rematerializes the whole array every cleaning pass
  (Figure 12d: "more than one order of magnitude slower"); the
  incremental variant of [34] is available as an ablation.
- chunk-size sensitivity: per-chunk overhead penalizes small chunks,
  instance-buffer overflow penalizes large ones (Section 5.3.1).
"""

import numpy as np

from repro.cluster.faults import abort_recovery
from repro.cluster.task import Task
from repro.engines.base import Engine, as_costed
from repro.engines.scidb.array import DimSpec, SciDBArray
from repro.formats.csvconv import csv_nominal_bytes

#: Per-instance buffer for chunk processing; chunks larger than this
#: spill (calibrated to reproduce the Section 5.3.1 chunk-size curve,
#: mirroring SciDB's mem-array-threshold style settings).
INSTANCE_BUFFER_BYTES = 256 * 1024 ** 2

#: Recommended deployment: "it is good practice to run one instance per
#: 1-2 CPU cores" (Section 5.3.1).
DEFAULT_INSTANCES_PER_NODE = 4


class SciDBConnection(Engine):
    """A connection to a miniSciDB deployment."""

    name = "SciDB"

    def __init__(self, cluster, instances_per_node=DEFAULT_INSTANCES_PER_NODE):
        super().__init__(cluster)
        self.instances_per_node = int(instances_per_node)
        if self.instances_per_node <= 0:
            raise ValueError("instances_per_node must be positive")
        self.n_instances = cluster.spec.n_nodes * self.instances_per_node
        self.arrays = {}
        # Without a configured replica set an instance failure makes
        # its chunks unavailable; the query reruns from the last
        # ingested array once the node rejoins.
        cluster.install_recovery(abort_recovery("scidb-rerun"))

    def startup_cost(self):
        """One-time engine startup in simulated seconds."""
        return self.cost_model.scidb_query_startup

    def instance_node(self, instance):
        """Cluster node hosting the given instance."""
        return self.cluster.node_order[instance // self.instances_per_node]

    # ------------------------------------------------------------------
    # Chunk execution helper
    # ------------------------------------------------------------------

    def _spill_factor(self, chunk_bytes):
        """IO inflation when a chunk exceeds the instance buffer."""
        if chunk_bytes <= INSTANCE_BUFFER_BYTES:
            return 1.0
        return chunk_bytes / INSTANCE_BUFFER_BYTES

    def chunk_efficiency_factor(self, chunk_bytes):
        """Compute-time inflation from chunk sizing (Section 5.3.1).

        Chunks well below ~3/4 of the instance buffer amortize the AQL
        plan's per-chunk operator setup poorly; chunks above the buffer
        thrash it.  Both penalties are calibrated fits (see
        ``CostModel.scidb_small_chunk_penalty``).
        """
        cm = self.cost_model
        reference = 0.75 * INSTANCE_BUFFER_BYTES
        factor = 1.0
        if chunk_bytes < reference:
            factor += cm.scidb_small_chunk_penalty * (
                reference / max(1, chunk_bytes) - 1.0
            )
        if chunk_bytes > INSTANCE_BUFFER_BYTES:
            factor += cm.scidb_buffer_thrash * (
                chunk_bytes / INSTANCE_BUFFER_BYTES - 1.0
            )
        return factor

    def run_chunks(self, array, label, work, cost, extra_chunk_io=0.0,
                   delta_only=False, delta_cells=None, cell_scale=1.0):
        """One task per chunk, placed on the owning instance's node.

        ``work(coords, payload)`` computes the real result for a chunk;
        ``cost(coords)`` prices it (simulated seconds, excluding the
        universal per-chunk overhead and the base chunk read which are
        added here).  With ``delta_only`` the base read covers only the
        changed cells (``delta_cells[coords] * cell_scale`` of them)
        instead of the full chunk -- the incremental-engine access path.
        Returns ``{coords: value}``.
        """
        self.ensure_started()
        cm = self.cost_model
        tasks = {}
        for coords in array.chunk_grid():
            instance = array.instance_of(coords, self.n_instances)
            payload = array.chunk_payload(coords)
            if delta_only:
                changed = (delta_cells or {}).get(coords, 0)
                itemsize = array.real.dtype.itemsize
                read_bytes = int(changed * cell_scale * itemsize)
            else:
                read_bytes = array.chunk_nominal_bytes(coords)
            spill = self._spill_factor(read_bytes)

            def duration(coords=coords, read_bytes=read_bytes, spill=spill):
                total = cm.scidb_chunk_overhead
                total += cm.disk_read_time(read_bytes) * spill
                total += extra_chunk_io * spill
                total += cost(coords)
                return total

            tasks[coords] = Task(
                f"scidb-{label}-{coords}",
                fn=lambda coords=coords, payload=payload: work(coords, payload),
                duration=duration,
                node=self.instance_node(instance),
                category=f"scidb-{label.split('-', 1)[0]}",
                memoizable=True,
            )
        with self.cluster.obs.span(
            f"scidb-{label}", category="scidb", chunks=len(tasks),
        ):
            results = self.cluster.run(list(tasks.values()))
        return {
            coords: results[task.task_id].value for coords, task in tasks.items()
        }

    # ------------------------------------------------------------------
    # Array lifecycle
    # ------------------------------------------------------------------

    def create_array(self, name, dims, real):
        """Register a chunked array on this connection."""
        array = SciDBArray(name, dims, real)
        self.arrays[name] = array
        return array

    def remove(self, name):
        """Drop an array from the connection's namespace."""
        del self.arrays[name]

    # ------------------------------------------------------------------
    # AFL-style operators
    # ------------------------------------------------------------------

    def compress(self, array, keep_mask, axis, name=None):
        """Select positions of ``axis`` where ``keep_mask`` is True.

        Mirrors SciDB-py's ``compress`` used in the paper's Figure 5.
        When chunks span the filtered axis, every chunk must be opened,
        subset and reconstructed ("SciDB does more work including
        extracting subsets out of the chunks and reconstructing them",
        Section 5.2.2).
        """
        keep_mask = np.asarray(keep_mask, dtype=bool)
        dim = array.dims[axis]
        if keep_mask.size != dim.length:
            raise ValueError(
                f"mask length {keep_mask.size} does not match dimension"
                f" {dim.name!r} of length {dim.length}"
            )
        cm = self.cost_model
        aligned = dim.chunk == 1
        kept_nominal = int(keep_mask.sum())

        # Real selection: map nominal mask onto the real axis.
        real_len = array.real.shape[axis]
        real_keep = np.zeros(real_len, dtype=bool)
        for nominal_index in np.nonzero(keep_mask)[0]:
            real_index = nominal_index * real_len // dim.length
            real_keep[real_index] = True
        # Guarantee the kept proportion is faithful for small arrays.
        new_real = np.compress(real_keep, array.real, axis=axis)

        def chunk_selected(coords):
            start, stop = array.chunk_bounds(coords)[axis]
            return keep_mask[start:stop].any()

        def work(coords, payload):
            return None  # selection applied globally above

        def cost(coords):
            if aligned:
                return 0.0
            chunk_bytes = array.chunk_nominal_bytes(coords)
            start, stop = array.chunk_bounds(coords)[axis]
            kept = int(keep_mask[start:stop].sum())
            kept_bytes = chunk_bytes * kept // max(1, stop - start)
            # Open + subset + rebuild the chunk.
            return (chunk_bytes + kept_bytes) * cm.memcpy_per_byte * 4.0

        if aligned:
            # Only matching chunks are touched at all.
            selected = [c for c in array.chunk_grid() if chunk_selected(c)]
            sub = _Subgrid(array, selected)
            self.run_chunks(sub, f"filter-{array.name}", work, cost)
        else:
            self.run_chunks(array, f"filter-{array.name}", work, cost)

        new_dims = list(array.dims)
        new_dims[axis] = DimSpec(dim.name, max(1, kept_nominal), min(dim.chunk, max(1, kept_nominal)))
        result = SciDBArray(
            name or f"{array.name}_filtered", new_dims, new_real, attr=array.attr
        )
        self.arrays[result.name] = result
        return result

    def mean(self, array, axis, name=None):
        """Aggregate mean along one dimension (native array math).

        "SciDB is the fastest for mean computation on the small datasets
        as it is optimized for array operations" (Section 5.2.2).
        """
        cm = self.cost_model

        def work(coords, payload):
            if payload.size == 0:
                return None
            return payload.sum(axis=axis), payload.shape[axis]

        def cost(coords):
            return array.chunk_nominal_elements(coords) * cm.elementwise_per_element

        partials = self.run_chunks(array, f"mean-{array.name}", work, cost)

        # Combine partial sums that share the same non-aggregated chunk
        # coordinates (a small reduction on the coordinator).
        combined = {}
        for coords, value in partials.items():
            if value is None:
                continue
            key = tuple(c for i, c in enumerate(coords) if i != axis)
            total, count = value
            if key in combined:
                prev_total, prev_count = combined[key]
                combined[key] = (prev_total + total, prev_count + count)
            else:
                combined[key] = (total, count)
        reduce_bytes = sum(
            t.size * t.itemsize for (t, _c) in combined.values()
        )
        self.cluster.charge_master(
            self.cluster.network.transfer_time(reduce_bytes, "instances", "combine"),
            label="SciDB mean combine",
            category="scidb-mean",
        )

        mean_real = array.real.mean(axis=axis) if array.real.size else array.real.sum(axis=axis)
        new_dims = tuple(d for i, d in enumerate(array.dims) if i != axis)
        result = SciDBArray(
            name or f"{array.name}_mean", new_dims, mean_real, attr=array.attr
        )
        self.arrays[result.name] = result
        return result

    def apply_elementwise(self, array, fn, per_element_cost, name=None):
        """Native elementwise AFL ``apply`` over every chunk."""
        def work(coords, payload):
            return None

        def cost(coords):
            return array.chunk_nominal_elements(coords) * per_element_cost

        self.run_chunks(array, f"apply-{array.name}", work, cost)
        result = array.with_real(fn(array.real), name=name or f"{array.name}_apply")
        self.arrays[result.name] = result
        return result

    def window(self, array, radii, agg="avg", name=None):
        """AFL-style ``window()``: a box aggregate around every cell.

        This is the stencil operation the paper identifies as a core
        image-analytics pattern (Section 1).  SciDB's window supports
        box aggregates (not arbitrary convolutions -- the missing
        "high-dimensional convolutions" of Section 4.1).  Windows are
        truncated at array edges, matching SciDB's semantics.

        Chunk execution pays a halo exchange: each chunk fetches a
        ``radius``-deep shell of neighbor cells over the network before
        aggregating.
        """
        if agg not in ("avg", "sum"):
            raise ValueError(f"window supports avg/sum, got {agg!r}")
        radii = tuple(int(r) for r in radii)
        if len(radii) != len(array.dims):
            raise ValueError(
                f"need {len(array.dims)} radii, got {len(radii)}"
            )
        if any(r < 0 for r in radii):
            raise ValueError("radii must be non-negative")
        cm = self.cost_model
        taps = 1
        for r in radii:
            taps *= 2 * r + 1
        itemsize = array.real.dtype.itemsize

        def work(coords, payload):
            return None  # computed globally below (exact, no seams)

        def cost(coords):
            cells = array.chunk_nominal_elements(coords)
            compute = cells * taps * cm.elementwise_per_element
            # Halo: the chunk's surface shell, radius deep, per axis.
            bounds = array.chunk_bounds(coords)
            halo_cells = 0
            extents = [stop - start for start, stop in bounds]
            for axis, radius in enumerate(radii):
                if radius == 0:
                    continue
                face = 1
                for other, extent in enumerate(extents):
                    if other != axis:
                        face *= extent
                halo_cells += 2 * radius * face
            halo = self.cluster.network.transfer_time(
                halo_cells * itemsize, "neighbor", "chunk"
            )
            return compute + halo

        self.run_chunks(array, f"window-{array.name}", work, cost)

        out = _box_aggregate(array.real, radii, agg)
        result = array.with_real(out, name=name or f"{array.name}_window")
        self.arrays[result.name] = result
        return result

    def stream(self, array, fn, name=None, output_scale=1.0):
        """The ``stream()`` interface: chunks cross to an external
        process as TSV and return as TSV (Sections 4.1 and 5.2.3).

        ``fn`` is a :class:`CostedFunction` called as ``fn(payload,
        coords)`` for each chunk's real payload.  ``output_scale``
        estimates output bytes relative to input for the return
        conversion.
        """
        fn = as_costed(fn)
        cm = self.cost_model
        outputs = {}

        def work(coords, payload):
            outputs[coords] = fn(payload, coords)
            return None

        def cost(coords):
            elements = array.chunk_nominal_elements(coords)
            tsv_in = csv_nominal_bytes(elements, rank=0, with_coordinates=False)
            tsv_out = int(tsv_in * output_scale)
            total = cm.csv_encode_time(tsv_in)
            total += fn.cost(array.chunk_payload(coords), coords)
            total += cm.csv_decode_time(tsv_out)
            return total

        self.run_chunks(array, f"stream-{array.name}", work, cost)

        new_real = np.zeros_like(array.real, dtype=np.float64)
        for coords, value in outputs.items():
            slices = array.real_slices(coords)
            if new_real[slices].size:
                new_real[slices] = value
        result = array.with_real(new_real, name=name or f"{array.name}_stream")
        self.arrays[result.name] = result
        return result

    # ------------------------------------------------------------------
    # Iterative AQL co-addition (Step 3-A)
    # ------------------------------------------------------------------

    def coadd_aql(self, array, n_sigma=3.0, n_iter=2, incremental=False,
                  name=None):
        """Sigma-clipped co-addition expressed as iterative AQL.

        ``array`` has a leading visit dimension.  "we use the official
        SciDB release, which does not include any optimizations for
        iterative processing" (Section 5.2.4): AQL has no loop state,
        so the unrolled query for cleaning pass *k* re-derives the
        results of all *k-1* earlier passes from the base array, and
        each pass materializes a full new array version.

        With ``incremental=True`` -- the [34] (Soroush et al., SSDBM'15)
        ablation -- aggregate state is maintained between iterations and
        deltas are applied per changed *cell*: passes after the first
        charge only for the cells the previous pass nulled (plus a small
        per-touched-chunk overhead), and materialize only delta bytes.
        The paper reports ~6x improvement from this optimization.
        """
        import warnings

        cm = self.cost_model
        visit_axis = 0
        stack = np.array(array.real, dtype=np.float64)
        real_cells = max(1, stack.size)
        cell_scale = array.nominal_elements / real_cells

        def full_pass_cost(recompute_depth):
            def pass_cost(coords):
                cells = array.chunk_nominal_elements(coords)
                efficiency = self.chunk_efficiency_factor(
                    array.chunk_nominal_bytes(coords)
                )
                return cells * cm.scidb_aql_per_cell * recompute_depth * efficiency
            return pass_cost

        def delta_pass_cost(changed_by_chunk):
            def pass_cost(coords):
                changed = changed_by_chunk.get(coords, 0)
                return changed * cell_scale * cm.scidb_aql_per_cell
            return pass_cost

        changed_by_chunk = {}
        # Passes 1..n_iter are cleaning iterations; pass n_iter+1 is the
        # final outlier-free sum (free under incremental maintenance:
        # the running sum was updated as cells were nulled).
        for iteration in range(n_iter + 1):
            is_sum = iteration == n_iter
            delta_mode = incremental and iteration > 0

            if delta_mode:
                grid = _Subgrid(
                    array, [c for c, n in changed_by_chunk.items() if n > 0]
                )
                cost = delta_pass_cost(changed_by_chunk)
            elif incremental:
                grid = array
                cost = full_pass_cost(1)
            else:
                grid = array
                # AQL has no loop state: pass k re-derives passes 1..k-1.
                cost = full_pass_cost(iteration + 1)

            if not is_sum:
                with np.errstate(invalid="ignore"), warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    mean = np.nanmean(stack, axis=visit_axis)
                    std = np.nanstd(stack, axis=visit_axis)
                    outliers = np.abs(stack - mean) > n_sigma * std
                outliers &= std > 0

            self.run_chunks(
                grid,
                f"coadd-pass{iteration}-{array.name}",
                lambda coords, payload: None,
                cost,
                delta_only=delta_mode,
                delta_cells=changed_by_chunk if delta_mode else None,
                cell_scale=cell_scale,
            )
            if not is_sum:
                # Materialize the cleaned version: full array versions
                # for stock AQL, delta bytes only for the incremental
                # engine.
                if incremental and iteration > 0:
                    self._materialize_delta(
                        array, changed_by_chunk, cell_scale,
                        f"coadd-mat{iteration}-{array.name}",
                    )
                else:
                    self._materialize_wave(
                        array, f"coadd-mat{iteration}-{array.name}"
                    )
                changed_by_chunk = {}
                for coords in array.chunk_grid():
                    slices = array.real_slices(coords)
                    chunk_out = outliers[(slice(None),) + slices[1:]]
                    changed_by_chunk[coords] = int(chunk_out.sum())
                stack[outliers] = np.nan

        coadd = np.nansum(stack, axis=visit_axis)
        new_dims = tuple(d for i, d in enumerate(array.dims) if i != visit_axis)
        result = SciDBArray(
            name or f"{array.name}_coadd", new_dims, coadd, attr=array.attr
        )
        self.arrays[result.name] = result
        return result

    def _materialize_delta(self, array, changed_by_chunk, cell_scale, label):
        """Write only delta bytes (the incremental engine's version log)."""
        cm = self.cost_model
        itemsize = array.real.dtype.itemsize
        tasks = []
        for coords, changed in changed_by_chunk.items():
            if changed <= 0:
                continue
            instance = array.instance_of(coords, self.n_instances)
            nbytes = int(changed * cell_scale * itemsize)
            tasks.append(
                Task(
                    f"scidb-{label}-{coords}",
                    duration=cm.disk_write_time(nbytes) + cm.scidb_chunk_overhead,
                    node=self.instance_node(instance),
                    category="scidb-materialize",
                )
            )
        if tasks:
            self.cluster.run(tasks)

    def _materialize_wave(self, grid, label):
        cm = self.cost_model
        tasks = []
        source = grid.base if isinstance(grid, _Subgrid) else grid
        for coords in grid.chunk_grid():
            instance = source.instance_of(coords, self.n_instances)
            chunk_bytes = source.chunk_nominal_bytes(coords)
            spill = self._spill_factor(chunk_bytes)
            tasks.append(
                Task(
                    f"scidb-{label}-{coords}",
                    duration=cm.disk_write_time(chunk_bytes) * spill
                    + cm.scidb_chunk_overhead,
                    node=self.instance_node(instance),
                    category="scidb-materialize",
                )
            )
        if tasks:
            self.cluster.run(tasks)


class _Subgrid:
    """A view of an array restricted to a subset of its chunks."""

    def __init__(self, base, coords_list):
        self.base = base
        self._coords = list(coords_list)

    def chunk_grid(self):
        """All chunk coordinates in row-major order."""
        return list(self._coords)

    def __getattr__(self, item):
        return getattr(self.base, item)


def _box_aggregate(real, radii, agg):
    """Edge-truncated box sum/avg over an n-d array (separable)."""
    out = np.asarray(real, dtype=np.float64)
    counts = np.ones_like(out)
    for axis, radius in enumerate(radii):
        if radius == 0:
            continue
        out = _axis_box_sum(out, axis, radius)
        counts = _axis_box_sum(counts, axis, radius)
    if agg == "avg":
        return out / counts
    return out


def _axis_box_sum(values, axis, radius):
    """Truncated-window sums of width ``2r+1`` along one axis."""
    length = values.shape[axis]
    cumsum = np.cumsum(values, axis=axis)
    zero_shape = list(cumsum.shape)
    zero_shape[axis] = 1
    padded = np.concatenate([np.zeros(zero_shape), cumsum], axis=axis)
    upper = np.minimum(np.arange(length) + radius + 1, length)
    lower = np.maximum(np.arange(length) - radius, 0)
    return np.take(padded, upper, axis=axis) - np.take(padded, lower, axis=axis)
