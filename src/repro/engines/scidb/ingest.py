"""The two SciDB ingest paths measured in Figure 11.

"We implemented two strategies to ingest the neuroscience use case's
NIfTI files into SciDB: SciDB-py's built-in API (i.e., from_array), and
SciDB's accelerated IO library (i.e., aio_input)." (Section 4.1.)

- :func:`from_array` (SciDB-1): convert NIfTI to NumPy on the client,
  then push everything through the coordinator's Python connection one
  chunk at a time -- "an order of magnitude" slower than aio.
- :func:`aio_input` (SciDB-2): convert NIfTI to CSV, then load in
  parallel on every instance; the CSV conversion overhead is what keeps
  SciDB slightly behind Spark and Myria in Figure 11.
"""

from repro.cluster.task import Task
from repro.engines.scidb.array import SciDBArray
from repro.formats.csvconv import csv_nominal_bytes


def from_array(sdb, name, dims, real, nominal_bytes):
    """SciDB-1: the coordinator-mediated ``from_array()`` path."""
    cm = sdb.cost_model
    sdb.ensure_started()
    # NIfTI -> NumPy conversion on the client.
    sdb.cluster.charge_master(
        nominal_bytes / cm.nifti_parse_bandwidth, label="NIfTI->NumPy",
        category="scidb-convert",
    )
    # Single-stream upload through the coordinator.
    sdb.cluster.charge_master(
        nominal_bytes / cm.scidb_from_array_bandwidth,
        label="from_array upload", category="scidb-ingest",
    )
    array = SciDBArray(name, dims, real)
    # Redistribution: the coordinator scatters chunks to the instances.
    tasks = []
    for coords in array.chunk_grid():
        instance = array.instance_of(coords, sdb.n_instances)
        chunk_bytes = array.chunk_nominal_bytes(coords)
        tasks.append(
            Task(
                f"scidb-scatter-{name}-{coords}",
                duration=cm.disk_write_time(chunk_bytes) + cm.scidb_chunk_overhead,
                node=sdb.instance_node(instance),
                category="scidb-ingest",
            )
        )
    sdb.cluster.run(tasks)
    sdb.arrays[name] = array
    return array


def aio_input(sdb, name, dims, real, nominal_bytes, rank=None):
    """SciDB-2: CSV conversion + parallel ``aio_input`` load."""
    cm = sdb.cost_model
    sdb.ensure_started()
    array = SciDBArray(name, dims, real)
    if rank is None:
        rank = len(array.dims)
    nominal_elements = array.nominal_elements
    csv_bytes = csv_nominal_bytes(
        nominal_elements, rank=rank, with_coordinates=rank > 0
    )

    # File conversion runs in parallel across the nodes (one conversion
    # job per node over its share of the input files).
    n_nodes = sdb.cluster.spec.n_nodes
    share = csv_bytes / n_nodes
    convert_tasks = [
        Task(
            f"scidb-csvconv-{name}-{node}",
            duration=(nominal_bytes / n_nodes) / cm.nifti_parse_bandwidth
            + share / cm.csv_encode_bandwidth,
            node=node,
            category="scidb-convert",
        )
        for node in sdb.cluster.node_order
    ]
    sdb.cluster.run(convert_tasks)

    # Parallel aio load: every instance parses its share of the CSV and
    # writes its chunks.
    per_instance_csv = csv_bytes / sdb.n_instances
    per_instance_binary = nominal_bytes / sdb.n_instances
    load_tasks = [
        Task(
            f"scidb-aio-{name}-i{instance}",
            duration=per_instance_csv / cm.scidb_aio_bandwidth
            + cm.disk_write_time(per_instance_binary),
            node=sdb.instance_node(instance),
            category="scidb-ingest",
        )
        for instance in range(sdb.n_instances)
    ]
    sdb.cluster.run(load_tasks)
    sdb.arrays[name] = array
    return array
