"""SciDB lowering backend: AFL/AQL + convert-then-ingest subsets."""

from repro.engines.scidb.lowering import astro, neuro
from repro.engines.scidb.lowering.astro import LoweredAstro
from repro.engines.scidb.lowering.neuro import LoweredNeuro


def lower(plan, ctx):
    """Lower a logical plan against a SciDB handle ``ctx``.

    Both plans lower only partially (Table 1): the neuro lowering stops
    at denoise, the astro lowering covers ingest + co-addition.
    """
    if plan.name == "neuro":
        return LoweredNeuro(plan, ctx)
    if plan.name == "astro":
        return LoweredAstro(plan, ctx)
    raise NotImplementedError(f"scidb lowering: unknown plan {plan.name!r}")


__all__ = ["LoweredAstro", "LoweredNeuro", "astro", "lower", "neuro"]
