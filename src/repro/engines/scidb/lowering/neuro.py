"""The neuro plan lowered (partially) to miniSciDB (Section 4.1, Fig 5).

The paper could only express parts of this use case in SciDB: Step 1-N
(filter + mean, Figure 5) natively, and Step 2-N through the new
``stream()`` interface.  Step 3-N (model fitting) is **not applicable**
-- "SciDB ... lacks critical functions including high-dimensional
convolutions ... which makes the reimplementation of the use cases
highly nontrivial" (Table 1 marks Model Fitting NA).

Lowering contract notes: this is a pattern-matched subset lowering.
``scan`` becomes convert-then-ingest (CSV staging before ``aio_input``
or ``from_array`` — the paper's SciDB-2 vs SciDB-1 choice); ``b0``/
``mean_b0`` lower to native ``compress``/``mean`` over the chunked
array; ``otsu`` runs client-side (small result); ``denoise`` lowers to
``stream()``; ``fitmodel`` has no lowering and raises.  Chunk shape
(``VOLUME_CHUNK``) is a physical knob of this backend, not plan data.
"""

import numpy as np

from repro.algorithms.nlmeans import nlmeans_3d
from repro.algorithms.otsu import median_otsu
from repro.data.catalog import NEURO_N_VOLUMES, NEURO_VOLUME_SHAPE
from repro.engines.base import udf
from repro.engines.scidb.array import DimSpec
from repro.engines.scidb.ingest import aio_input, from_array
from repro.pipelines.neuro.reference import DENOISE_SIGMA, MASK_MEDIAN_RADIUS
from repro.plan.ir import provenance_id
from repro.plan.memo import materialize_scope, subject_token
from repro.plan.neuro import neuro_plan


def _pid(op_id):
    """Provenance id of a neuro-plan op.  SciDB steps run synchronously,
    so each step body opens an ambient ``obs.provenance`` scope and every
    task/charge it issues inherits the op."""
    return provenance_id("neuro", op_id)

#: Default per-dimension chunking for ingested subjects.  The volume
#: axis is chunked in groups of 16, which leaves the Step 1-N selection
#: misaligned with the chunk grid -- "the internal chunks are not
#: aligned with the selection" (Section 5.2.2).
VOLUME_CHUNK = 16


def subject_dims(subject):
    """Subject dims."""
    x, y, z = NEURO_VOLUME_SHAPE
    return [
        DimSpec("x", x, x),
        DimSpec("y", y, y),
        DimSpec("z", z, z),
        DimSpec("vol", NEURO_N_VOLUMES, VOLUME_CHUNK),
    ]


def cohort_dims(n_subjects):
    """Dimensions for a whole cohort in one 5-D array.

    Multi-subject studies ingest every subject into a single array with
    a leading subject dimension (chunked per subject), so one query
    spreads chunks across all instances.
    """
    x, y, z = NEURO_VOLUME_SHAPE
    return [DimSpec("subj", n_subjects, 1)] + subject_dims(None)


def ingest(sdb, subject, method="aio"):
    """Ingest one subject; ``method`` is ``"from_array"`` (SciDB-1 in
    Figure 11) or ``"aio"`` (SciDB-2)."""
    dims = subject_dims(subject)
    name = f"sub_{subject.subject_id}"
    with sdb.cluster.obs.provenance(_pid("volumes")):
        if method == "from_array":
            return from_array(
                sdb, name, dims, subject.data.array, subject.nominal_bytes
            )
        if method == "aio":
            # Dense arrays load from coordinate-free CSV (one value per
            # cell), the compact form SciDB's aio loader accepts.
            return aio_input(
                sdb, name, dims, subject.data.array, subject.nominal_bytes,
                rank=0,
            )
    raise ValueError(f"unknown ingest method {method!r}")


def filter_step(sdb, array, subject):
    """Figure 5 line 4: ``compress`` on the b0 mask along the 4th axis."""
    nominal_mask = _nominal_b0_mask(subject)
    with sdb.cluster.obs.provenance(_pid("b0")):
        return sdb.compress(array, nominal_mask, axis=3)


def mean_step(sdb, filtered):
    """Figure 5 line 5: mean along the volume axis."""
    with sdb.cluster.obs.provenance(_pid("mean_b0")):
        return sdb.mean(filtered, axis=3)


def segmentation(sdb, array, subject):
    """Step 1-N: filter, mean, then Otsu on the (small) mean volume.

    The Otsu threshold itself runs client-side on the fetched mean
    volume, as SciDB-py applications do for small results.
    """
    filtered = filter_step(sdb, array, subject)
    mean = mean_step(sdb, filtered)
    cm = sdb.cost_model
    sdb.cluster.charge_master(
        sdb.cluster.network.transfer_time(
            mean.nominal_bytes, "instances", "client"
        )
        + mean.nominal_elements
        * (cm.otsu_per_voxel + 27 * cm.elementwise_per_element),
        label="SciDB mask (client-side Otsu)",
        op=_pid("otsu"),
    )
    _masked, mask = median_otsu(mean.real, median_radius=MASK_MEDIAN_RADIUS)
    return mask


def denoise_step(sdb, array, mask):
    """Step 2-N via ``stream()``: each chunk crosses to an external
    Python process as TSV, is denoised with the reference code, and
    returns as TSV (Sections 4.1 and 5.2.3)."""
    cm = sdb.cost_model

    def denoise_chunk(payload, coords):
        out = np.empty_like(payload, dtype=np.float64)
        for v in range(payload.shape[-1]):
            out[..., v] = nlmeans_3d(payload[..., v], sigma=DENOISE_SIGMA, mask=mask)
        return out

    fraction = max(float(np.asarray(mask).mean()), 0.01)
    cell_scale = array.nominal_elements / max(1, array.real.size)

    def cost(payload, coords):
        nominal_voxels = payload.size * cell_scale
        return nominal_voxels * fraction * cm.nlmeans_per_voxel

    with sdb.cluster.obs.provenance(_pid("denoise")):
        return sdb.stream(array, udf(denoise_chunk, cost=cost))


def run(sdb, subject, ingest_method="aio", plan=None):
    """The SciDB-expressible part of the pipeline for one subject.

    Returns ``(mask, denoised_array)``; model fitting raises
    ``NotImplementedError`` by design (Table 1: NA).
    """
    if plan is None:
        plan = neuro_plan()

    def token():
        return {
            "subject": subject_token(subject),
            "ingest": ingest_method,
            "chunk": VOLUME_CHUNK,
        }

    with materialize_scope(sdb.cluster, plan, "volumes", "scidb", extra=token):
        array = ingest(sdb, subject, method=ingest_method)
    with materialize_scope(sdb.cluster, plan, "masks", "scidb", extra=token):
        mask = segmentation(sdb, array, subject)
    with materialize_scope(sdb.cluster, plan, "denoise", "scidb", extra=token):
        denoised = denoise_step(sdb, array, mask)
    return mask, denoised


def fit_step(*_args, **_kwargs):
    """Step 3-N is not expressible in SciDB (Table 1)."""
    raise NotImplementedError(
        "SciDB lacks the operations required for model fitting"
        " (Section 4.1 / Table 1: NA)"
    )


def _nominal_b0_mask(subject):
    """Lift the subject's real b0 pattern onto the nominal 288-volume
    axis so that the proportional chunk mapping selects exactly the
    real b0 volumes.  At benchmark scale (288 real volumes) this is the
    identity; at test scale each real volume owns a stride of nominal
    positions and the stride head is marked."""
    real = subject.gtab.b0s_mask
    nominal = np.zeros(NEURO_N_VOLUMES, dtype=bool)
    stride = NEURO_N_VOLUMES // real.size
    for p in np.nonzero(real)[0]:
        nominal[p * stride] = True
    return nominal


# ----------------------------------------------------------------------
# Multi-subject (cohort) API: one 5-D array for a whole study, so the
# chunk grid spreads across every instance of a large deployment.
# ----------------------------------------------------------------------

def ingest_cohort(sdb, subjects, method="aio"):
    """Ingest all subjects into one array with a leading subject axis."""
    real = np.stack([s.data.array for s in subjects])
    dims = cohort_dims(len(subjects))
    nominal_bytes = sum(s.nominal_bytes for s in subjects)
    with sdb.cluster.obs.provenance(_pid("volumes")):
        if method == "from_array":
            return from_array(sdb, "cohort", dims, real, nominal_bytes)
        if method == "aio":
            return aio_input(sdb, "cohort", dims, real, nominal_bytes, rank=0)
    raise ValueError(f"unknown ingest method {method!r}")


def filter_step_cohort(sdb, array, subjects):
    """Step 1-N filter over the cohort array (volume axis is axis 4)."""
    nominal_mask = _nominal_b0_mask(subjects[0])
    with sdb.cluster.obs.provenance(_pid("b0")):
        return sdb.compress(array, nominal_mask, axis=4)


def mean_step_cohort(sdb, filtered):
    """Step 1-N mean over the cohort array's volume axis."""
    with sdb.cluster.obs.provenance(_pid("mean_b0")):
        return sdb.mean(filtered, axis=4)


def denoise_step_cohort(sdb, array, masks_by_subject_index):
    """Step 2-N via ``stream()`` over the cohort array.

    Each chunk holds one subject's volumes (the subject axis is chunked
    at 1), so the external process picks the right mask from the chunk
    coordinates.
    """
    cm = sdb.cost_model
    cell_scale = array.nominal_elements / max(1, array.real.size)
    fractions = {
        index: max(float(np.asarray(mask).mean()), 0.01)
        for index, mask in masks_by_subject_index.items()
    }

    def denoise_chunk(payload, coords):
        mask = masks_by_subject_index[coords[0]]
        volumes = payload[0]
        out = np.empty_like(volumes, dtype=np.float64)
        for v in range(volumes.shape[-1]):
            out[..., v] = nlmeans_3d(
                volumes[..., v], sigma=DENOISE_SIGMA, mask=mask
            )
        return out[None, ...]

    def cost(payload, coords):
        nominal_voxels = payload.size * cell_scale
        return nominal_voxels * fractions[coords[0]] * cm.nlmeans_per_voxel

    with sdb.cluster.obs.provenance(_pid("denoise")):
        return sdb.stream(array, udf(denoise_chunk, cost=cost))


class LoweredNeuro:
    """Executable produced by ``lower(neuro_plan(), sdb)``.

    Only the plan segment through ``denoise`` is lowered; calling
    :meth:`fit_step` raises like the paper's Table 1 NA cell.
    """

    fit_step = staticmethod(fit_step)

    def __init__(self, plan, sdb):
        self.plan = plan
        self.sdb = sdb

    def run(self, subject, ingest_method="aio"):
        return run(
            self.sdb, subject, ingest_method=ingest_method, plan=self.plan
        )
