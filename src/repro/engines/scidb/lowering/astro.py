"""The astro plan lowered (partially) to miniSciDB (Sections 4.1, 5.2.4).

Per Table 1, only data ingest and co-addition (Step 3-A) were
expressible in SciDB ("Co-addtion (Step 3-A) is expressed in 180 LoC of
AQL, along with 85 LoC Python code for ingesting FITS files"); the
pre-processing, patch-creation and source-detection steps were not
possible (X) or not applicable (NA).

Co-addition operates on calibrated exposures placed onto a global sky
array with a leading visit dimension, chunked at a configurable square
chunk size -- the Section 5.3.1 tuning knob ("a chunk size of
[1000x1000] of the LSST images leads to the best performance").

Lowering contract notes: ``scan`` becomes convert-then-ingest (FITS ->
CSV -> ``aio_input``); the ``coadd`` group_by lowers to the AQL coadd
query; ``preprocess`` and ``detect`` have no SciDB lowering and raise
(the mosaic staging applies calibration client-side before ingest so
the coadd still operates on calibrated pixels).  ``DEFAULT_CHUNK`` is a
physical knob of this backend, not plan data.
"""

import numpy as np

from repro.data.catalog import ASTRO_SENSOR_SHAPE
from repro.engines.scidb.array import DimSpec
from repro.engines.scidb.ingest import aio_input
from repro.formats.sizing import SizedArray
from repro.pipelines.astro import reference as ref
from repro.plan.astro import astro_plan
from repro.plan.ir import provenance_id
from repro.plan.memo import materialize_scope, visit_token


def _pid(op_id):
    """Provenance id of an astro-plan op (ambient scope per step)."""
    return provenance_id("astro", op_id)

#: The paper's best chunk size for Step 3-A.
DEFAULT_CHUNK = 1000


def sky_mosaic(visits, grid=None):
    """Place each visit's calibrated exposures onto a common sky frame.

    Returns ``(stack, origin, nominal_shape)``: a real (visits, H, W)
    array with NaN where a visit has no coverage.
    """
    exposures = [e for v in visits for e in v.exposures]
    y0 = min(e.sky_box.y0 for e in exposures)
    x0 = min(e.sky_box.x0 for e in exposures)
    y1 = max(e.sky_box.y1 for e in exposures)
    x1 = max(e.sky_box.x1 for e in exposures)
    height, width = y1 - y0, x1 - x0
    stack = np.full((len(visits), height, width), np.nan)
    for vi, visit in enumerate(visits):
        for exposure in visit.exposures:
            calibrated = ref.preprocess_exposure(exposure)
            box = exposure.sky_box
            stack[
                vi, box.y0 - y0: box.y1 - y0, box.x0 - x0: box.x1 - x0
            ] = calibrated.flux
    scale_y = ASTRO_SENSOR_SHAPE[0] / exposures[0].shape[0]
    scale_x = ASTRO_SENSOR_SHAPE[1] / exposures[0].shape[1]
    nominal = (len(visits), int(height * scale_y), int(width * scale_x))
    return stack, (y0, x0), nominal


def ingest(sdb, visits, chunk=DEFAULT_CHUNK, grid=None):
    """FITS -> CSV -> ``aio_input`` ingest of the visit mosaic.

    The paper: "We use the latter technique [aio_input] for the FITS
    files from the astronomy use case" (Section 4.1).
    """
    stack, _origin, nominal = sky_mosaic(visits, grid)
    n_visits, height, width = nominal
    dims = [
        DimSpec("visit", n_visits, n_visits),
        DimSpec("y", height, min(chunk, height)),
        DimSpec("x", width, min(chunk, width)),
    ]
    nominal_bytes = n_visits * height * width * 4
    with sdb.cluster.obs.provenance(_pid("exposures")):
        return aio_input(sdb, "sky", dims, stack, nominal_bytes, rank=3)


def coadd_step(sdb, array, incremental=False):
    """Step 3-A in AQL (Figure 12d / the Section 5.2.4 ablation)."""
    with sdb.cluster.obs.provenance(_pid("coadd")):
        return sdb.coadd_aql(
            array,
            n_sigma=ref.COADD_SIGMA,
            n_iter=ref.COADD_ITERATIONS,
            incremental=incremental,
        )


def run(sdb, visits, chunk=DEFAULT_CHUNK, incremental=False, grid=None,
        plan=None):
    """Ingest + co-addition (the SciDB-expressible steps).

    Returns the coadded sky as a :class:`SizedArray`.
    """
    if plan is None:
        plan = astro_plan()

    def token():
        return {
            "visits": [visit_token(v) for v in visits],
            "chunk": chunk,
            "incremental": incremental,
        }

    with materialize_scope(
        sdb.cluster, plan, "exposures", "scidb", extra=token
    ):
        array = ingest(sdb, visits, chunk=chunk, grid=grid)
    with materialize_scope(sdb.cluster, plan, "coadd", "scidb", extra=token):
        coadd = coadd_step(sdb, array, incremental=incremental)
    return SizedArray(
        np.nan_to_num(coadd.real, nan=0.0), nominal_shape=coadd.nominal_shape
    )


def preprocess_step(*_args, **_kwargs):
    """Step 1-A could not be implemented in SciDB (Table 1: X)."""
    raise NotImplementedError(
        "pre-processing is not expressible in AQL/AFL (Table 1: X)"
    )


def detect_step(*_args, **_kwargs):
    """Step 4-A could not be implemented in SciDB (Table 1: NA)."""
    raise NotImplementedError(
        "source detection is not expressible in AQL/AFL (Table 1: NA)"
    )


class LoweredAstro:
    """Executable produced by ``lower(astro_plan(), sdb)``.

    Only ``scan`` (ingest) and ``coadd`` lower; :meth:`preprocess_step`
    and :meth:`detect_step` raise per Table 1.
    """

    preprocess_step = staticmethod(preprocess_step)
    detect_step = staticmethod(detect_step)

    def __init__(self, plan, sdb):
        self.plan = plan
        self.sdb = sdb

    def run(self, visits, chunk=DEFAULT_CHUNK, incremental=False, grid=None):
        return run(
            self.sdb, visits, chunk=chunk, incremental=incremental, grid=grid,
            plan=self.plan,
        )
