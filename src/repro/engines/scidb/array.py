"""Chunked multidimensional arrays.

"users first ingest data into the system, which are stored as arrays
divided into chunks distributed across nodes in a cluster" (Section 2).

Chunking is defined over *nominal* (paper-scale) dimensions; the real
scaled-down payload is sliced proportionally, so a 288-chunk nominal
grid still maps onto a 36-volume test array.  Chunk-size tuning
(Section 5.3.1: "the chunk size ... is more difficult to tune") is
therefore exercised at true paper-scale chunk counts.
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DimSpec:
    """One array dimension: nominal length and nominal chunk extent."""

    name: str
    length: int
    chunk: int

    def __post_init__(self):
        if self.length <= 0:
            raise ValueError(f"dimension {self.name!r} must have positive length")
        if not 1 <= self.chunk <= self.length:
            raise ValueError(
                f"chunk extent for {self.name!r} must be in [1, {self.length}],"
                f" got {self.chunk}"
            )

    @property
    def n_chunks(self):
        """Number of chunks along/over this extent."""
        return -(-self.length // self.chunk)  # ceil division


class SciDBArray:
    """A distributed chunked array.

    ``real`` is the scaled-down payload; its shape may differ from the
    nominal shape, and chunk coordinates are mapped onto it
    proportionally via :meth:`real_slices`.
    """

    def __init__(self, name, dims, real, attr="v"):
        self.name = name
        self.dims = tuple(dims)
        self.real = np.asarray(real)
        self.attr = attr
        if self.real.ndim != len(self.dims):
            raise ValueError(
                f"real payload rank {self.real.ndim} does not match"
                f" {len(self.dims)} dimensions"
            )

    # ------------------------------------------------------------------
    # Nominal geometry
    # ------------------------------------------------------------------

    @property
    def nominal_shape(self):
        """Shape at the paper's nominal data scale."""
        return tuple(d.length for d in self.dims)

    @property
    def chunk_shape(self):
        """Chunk shape."""
        return tuple(d.chunk for d in self.dims)

    @property
    def nominal_elements(self):
        """Element count at the paper's nominal data scale."""
        n = 1
        for d in self.dims:
            n *= d.length
        return n

    @property
    def nominal_bytes(self):
        """Size in bytes at the paper's nominal data scale."""
        return self.nominal_elements * self.real.dtype.itemsize

    def chunk_grid(self):
        """All chunk coordinates, in row-major order."""
        counts = [d.n_chunks for d in self.dims]
        coords = [()]
        for count in counts:
            coords = [c + (i,) for c in coords for i in range(count)]
        return coords

    @property
    def n_chunks(self):
        """Number of chunks along/over this extent."""
        n = 1
        for d in self.dims:
            n *= d.n_chunks
        return n

    def chunk_bounds(self, coords):
        """Nominal [start, stop) per axis for chunk ``coords``."""
        bounds = []
        for dim, c in zip(self.dims, coords):
            start = c * dim.chunk
            stop = min(start + dim.chunk, dim.length)
            bounds.append((start, stop))
        return bounds

    def chunk_nominal_elements(self, coords):
        """Nominal cells inside one chunk."""
        n = 1
        for start, stop in self.chunk_bounds(coords):
            n *= stop - start
        return n

    def chunk_nominal_bytes(self, coords):
        """Nominal bytes of one chunk."""
        return self.chunk_nominal_elements(coords) * self.real.dtype.itemsize

    # ------------------------------------------------------------------
    # Real payload access
    # ------------------------------------------------------------------

    def real_slices(self, coords):
        """Proportional real-array slices for a nominal chunk."""
        slices = []
        for axis, ((start, stop), dim) in enumerate(
            zip(self.chunk_bounds(coords), self.dims)
        ):
            real_len = self.real.shape[axis]
            r0 = start * real_len // dim.length
            r1 = stop * real_len // dim.length
            slices.append(slice(r0, r1))
        return tuple(slices)

    def chunk_payload(self, coords):
        """Real sub-array belonging to one chunk."""
        return self.real[self.real_slices(coords)]

    # ------------------------------------------------------------------
    # Distribution
    # ------------------------------------------------------------------

    def instance_of(self, coords, n_instances):
        """Round-robin chunk placement across instances."""
        flat = 0
        for (dim, c) in zip(self.dims, coords):
            flat = flat * dim.n_chunks + c
        return flat % n_instances

    def with_real(self, real, name=None, dims=None, attr=None):
        """Copy of this array with a new real payload."""
        return SciDBArray(
            name or self.name,
            dims if dims is not None else self.dims,
            real,
            attr=attr or self.attr,
        )

    def __repr__(self):
        return (
            f"SciDBArray({self.name!r}, nominal={self.nominal_shape},"
            f" chunks={self.chunk_shape}, real={self.real.shape})"
        )
