"""Hash partitioning for shuffles.

Keys are hashed with a stable (non-salted) hash so shuffles are
deterministic across runs -- Python's builtin ``hash`` is salted for
strings, so a tiny stable hash is implemented here.
"""


def stable_hash(key):
    """Deterministic hash for the key types the pipelines use."""
    if isinstance(key, tuple):
        value = 0x345678
        for item in key:
            value = (value * 1000003) ^ stable_hash(item)
            value &= 0xFFFFFFFFFFFFFFFF
        return value
    if isinstance(key, str):
        value = 5381
        for ch in key:
            value = ((value * 33) ^ ord(ch)) & 0xFFFFFFFFFFFFFFFF
        return value
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key & 0xFFFFFFFFFFFFFFFF
    if isinstance(key, float):
        return hash(key) & 0xFFFFFFFFFFFFFFFF
    if key is None:
        return 0
    raise TypeError(f"unhashable shuffle key type: {type(key)!r}")


class HashPartitioner:
    """Assigns keys to ``num_partitions`` buckets by stable hash."""

    def __init__(self, num_partitions):
        if num_partitions <= 0:
            raise ValueError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        self.num_partitions = int(num_partitions)

    def partition_for(self, key):
        """Bucket index for a key."""
        return stable_hash(key) % self.num_partitions

    def __eq__(self, other):
        return (
            isinstance(other, HashPartitioner)
            and other.num_partitions == self.num_partitions
        )

    def __repr__(self):
        return f"HashPartitioner({self.num_partitions})"
