"""miniSpark: an RDD-based cluster-computing engine.

Reimplements the Spark execution model of Section 2: lazy RDD lineage
graphs, narrow transformations fused into stages, wide transformations
(shuffles) forming stage barriers, broadcast variables, in-memory
caching with spill-to-disk, and per-task Python-worker serialization --
the model whose consequences the paper measures in Figures 10, 12 and
14 and Sections 5.3.1-5.3.3.
"""

from repro.engines.spark.broadcast import Broadcast
from repro.engines.spark.context import SparkContext
from repro.engines.spark.rdd import RDD

__all__ = ["Broadcast", "RDD", "SparkContext"]
