"""The neuro plan lowered to miniSpark (Section 4.2, Figure 6).

The lowering mirrors the paper's structure: pair records keyed by
(subject, image) with NumPy-array values, the mask as a broadcast
variable to avoid a join, and the Figure 6 chain::

    modelsRDD = imgRDD.map(denoise).flatMap(repart)
                      .groupBy(subject, block).map(regroup).map(fitmodel)

The module-level functions keep the original hand-written API; they are
thin wrappers that build :class:`LoweredNeuro` from the shared logical
plan.
"""

import numpy as np

from repro.algorithms.dtm import fit_dtm, fractional_anisotropy
from repro.algorithms.nlmeans import nlmeans_3d
from repro.algorithms.otsu import median_otsu
from repro.engines.base import udf
from repro.engines.spark.lowering.walker import ChainWalker
from repro.formats.sizing import SizedArray
from repro.pipelines import common
from repro.pipelines.neuro.staging import DEFAULT_BUCKET, gradient_tables
from repro.plan.memo import (
    bucket_token,
    gradient_token,
    mask_token,
    materialize_scope,
)
from repro.plan.neuro import DEFAULT_BLOCKS, neuro_plan


class LoweredNeuro(ChainWalker):
    """Executable produced by ``lower(neuro_plan(), sc)``."""

    def __init__(self, plan, sc):
        self.plan = plan
        self.sc = sc
        self.n_blocks = plan.param("n_blocks")
        self.sigma = plan.param("sigma")
        self.median_radius = plan.param("median_radius")
        self.gtabs = None
        self.masks_b = None
        self.mask_fraction = None
        self.group_partitions = None

    # -- kernel factories, one per logical op --------------------------

    def _udf_b0(self):
        gtabs = self.gtabs

        def is_b0(volume):
            gtab = gtabs[volume.meta["subject_id"]]
            return bool(gtab.b0s_mask[volume.meta["image_id"]])

        return is_b0

    def _udf_mean_b0(self):
        cm = self.sc.cost_model

        def to_pair(volume):
            return volume.meta["subject_id"], (volume.array.astype(np.float64), 1, volume)

        def add(a, b):
            return a[0] + b[0], a[1] + b[1], a[2]

        def add_cost(a, b):
            return a[2].nominal_elements * cm.elementwise_per_element

        def finish(acc):
            total, count, volume = acc
            return SizedArray(
                total / count, nominal_shape=volume.nominal_shape, meta=volume.meta
            )

        return to_pair, udf(add, cost=add_cost), finish

    def _udf_otsu(self):
        cm = self.sc.cost_model
        median_radius = self.median_radius

        def to_mask(mean_volume):
            _masked, mask = median_otsu(
                mean_volume.array, median_radius=median_radius
            )
            return mask

        return "mapValues", udf(to_mask, cost=common.otsu_cost(cm))

    def _udf_denoise(self):
        cm = self.sc.cost_model
        masks_b = self.masks_b
        sigma = self.sigma

        def denoise(volume):
            mask = masks_b.value[volume.meta["subject_id"]]
            out = nlmeans_3d(volume.array, sigma=sigma, mask=mask)
            return volume.with_array(out)

        return "map", udf(denoise, cost=common.denoise_cost(cm, self.mask_fraction))

    def _udf_repart(self):
        cm = self.sc.cost_model
        n_blocks = self.n_blocks

        def repart(volume):
            pairs = []
            for block_id, block in common.split_volume_blocks(volume, n_blocks):
                key = (volume.meta["subject_id"], block_id)
                pairs.append((key, (volume.meta["image_id"], block)))
            return pairs

        return udf(repart, cost=common.repart_cost(cm))

    def _udf_regroup(self):
        cm = self.sc.cost_model

        def regroup(kv):
            key, entries = kv
            ordered = sorted(entries, key=lambda e: e[0])
            stacked = np.stack([e[1].array for e in ordered], axis=-1)
            nominal = ordered[0][1].nominal_shape + (len(ordered),)
            return key, SizedArray(stacked, nominal_shape=nominal)

        def regroup_cost(kv):
            _key, entries = kv
            return sum(e[1].nominal_bytes for e in entries) * cm.memcpy_per_byte

        return None, udf(regroup, cost=regroup_cost)

    def _udf_fitmodel(self):
        cm = self.sc.cost_model
        gtabs = self.gtabs
        masks_b = self.masks_b
        n_blocks = self.n_blocks
        mask_fraction = self.mask_fraction

        def fitmodel(kv):
            (subject_id, block_id), stacked = kv
            gtab = gtabs[subject_id]
            mask = masks_b.value[subject_id]
            block_slices = _block_slices(mask.shape[0], n_blocks)
            mask_block = mask[block_slices[block_id]]
            evals = fit_dtm(stacked.array, gtab, mask=mask_block)
            fa = fractional_anisotropy(evals)
            nominal = stacked.nominal_shape[:-1]
            return (subject_id, block_id), SizedArray(fa, nominal_shape=nominal)

        def fit_cost(kv):
            _key, stacked = kv
            return stacked.nominal_elements * mask_fraction * cm.dtm_fit_per_voxel_sample

        return "map", udf(fitmodel, cost=fit_cost)

    # -- step entry points ---------------------------------------------

    def scan(self, partitions=None, cache=False):
        """Lower the ``volumes`` scan: the staged-volume RDD; records are
        SizedArray volumes with subject/image metadata."""
        op = self.plan.member("volumes")
        rdd = self.sc.s3_objects(op.param("bucket"), numPartitions=partitions)
        rdd.plan_op = self.plan.provenance("volumes")
        if cache:
            rdd = rdd.cache()
        return rdd

    def _input_token(self, img_rdd, gtabs):
        """Descriptor of the staged volumes + gradient tables feeding a
        window, plus the RDD knobs that change its task structure."""
        bucket = self.plan.member_param("volumes", "bucket")
        scheduler = self.sc.scheduler
        return {
            "bucket": bucket,
            "input": bucket_token(self.sc.cluster.object_store, bucket),
            # Task names embed the scheduler's stage counter, and an
            # already-materialized input changes which stages run at all
            # -- both must key the window or two different task streams
            # would collide.
            "materialized": scheduler.cached_partitions(img_rdd) is not None,
            "stage_base": scheduler.stages_run,
            "gtabs": gradient_token(gtabs),
            "partitions": img_rdd.num_partitions,
            "cached": img_rdd.cached,
        }

    def segmentation(self, img_rdd, gtabs):
        """Step 1-N: returns ``{subject_id: mask ndarray}``."""
        self.gtabs = gtabs
        with materialize_scope(
            self.sc.cluster, self.plan, "masks", "spark",
            extra=lambda: self._input_token(img_rdd, gtabs),
        ):
            masks_rdd = self.lower_chain(
                img_rdd, self.plan.expanded_chain("b0", "masks")
            )
            return dict(masks_rdd.collect())

    def denoise_and_fit(self, img_rdd, gtabs, masks, group_partitions=None):
        """Steps 2-N and 3-N (the Figure 6 chain); returns
        ``{subject_id: fa SizedArray}``."""
        self.gtabs = gtabs
        self.group_partitions = group_partitions
        self.mask_fraction = float(
            np.mean([common.masked_fraction(m) for m in masks.values()])
        )
        mask_bytes = sum(m.size for m in masks.values())
        with self.sc.cluster.obs.provenance(self.plan.provenance("mask_bcast")):
            self.masks_b = self.sc.broadcast(masks, nominal_bytes=mask_bytes)
        with materialize_scope(
            self.sc.cluster, self.plan, "fa", "spark",
            extra=lambda: dict(
                self._input_token(img_rdd, gtabs),
                masks=mask_token(masks),
                group_partitions=group_partitions,
            ),
        ):
            models = self.lower_chain(
                img_rdd, self.plan.expanded_chain("denoise", "fa")
            )
            blocks = models.collect()

        fa_by_subject = {}
        for (subject_id, block_id), fa_block in blocks:
            fa_by_subject.setdefault(subject_id, {})[block_id] = fa_block
        return {
            subject: common.reassemble_blocks(by_id)
            for subject, by_id in fa_by_subject.items()
        }

    def run(self, subjects, input_partitions=None, group_partitions=None,
            cache_input=False):
        gtabs = gradient_tables(subjects)
        img_rdd = self.scan(partitions=input_partitions, cache=cache_input)
        masks = self.segmentation(img_rdd, gtabs)
        fa = self.denoise_and_fit(
            img_rdd, gtabs, masks, group_partitions=group_partitions
        )
        return masks, fa


# -- hand-written-era API, now plan-backed -----------------------------
#
# The micro-benchmark helpers (fig 11/12) lower from *plan fragments*
# (repro.plan.fragments): the ancestor closure of the measured op,
# carved out of the full plan.  Fragments keep the plan name and params,
# so provenance ids and lowered task structure are byte-identical to
# lowering the same window out of the full pipeline.


def _lowered(sc, n_blocks=DEFAULT_BLOCKS, bucket=DEFAULT_BUCKET, plan=None):
    if plan is None:
        plan = neuro_plan(n_blocks=n_blocks, bucket=bucket)
    return LoweredNeuro(plan, sc)


def build_image_rdd(sc, partitions=None, bucket=DEFAULT_BUCKET, cache=False,
                    plan=None):
    from repro.plan.fragments import neuro_scan_fragment

    if plan is None:
        plan = neuro_scan_fragment(bucket=bucket)
    return _lowered(sc, plan=plan).scan(partitions=partitions, cache=cache)


def filter_b0(sc, img_rdd, gtabs, plan=None):
    """Figure 12a's step: select the non-diffusion-weighted volumes."""
    from repro.plan.fragments import neuro_filter_fragment

    low = _lowered(sc, plan=plan or neuro_filter_fragment())
    low.gtabs = gtabs
    return low.lower_chain(img_rdd, low.plan.expanded_chain("b0", "b0"))


def mean_b0(sc, b0_rdd, plan=None):
    """Figure 12b's step: per-subject mean volume via reduceByKey."""
    from repro.plan.fragments import neuro_mean_fragment

    low = _lowered(sc, plan=plan or neuro_mean_fragment())
    return low.lower_chain(b0_rdd, low.plan.expanded_chain("mean_b0", "mean_b0"))


def segmentation(sc, img_rdd, gtabs):
    return _lowered(sc).segmentation(img_rdd, gtabs)


def denoise_and_fit(sc, img_rdd, gtabs, masks, n_blocks=DEFAULT_BLOCKS,
                    group_partitions=None):
    return _lowered(sc, n_blocks=n_blocks).denoise_and_fit(
        img_rdd, gtabs, masks, group_partitions=group_partitions
    )


def run(sc, subjects, input_partitions=None, group_partitions=None,
        cache_input=False, n_blocks=DEFAULT_BLOCKS, bucket=DEFAULT_BUCKET):
    """End-to-end neuroscience pipeline on Spark.

    Data must already be staged (see
    :func:`repro.pipelines.neuro.staging.stage_subjects`).  Returns
    ``(masks, fa_by_subject)``.
    """
    return _lowered(sc, n_blocks=n_blocks, bucket=bucket).run(
        subjects, input_partitions=input_partitions,
        group_partitions=group_partitions, cache_input=cache_input,
    )


def _block_slices(nz, n_blocks):
    bounds = np.linspace(0, nz, min(n_blocks, nz) + 1).astype(int)
    return [slice(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]
