"""Generic RDD chain walker shared by the Spark lowerings.

Lowers a linear segment of logical-plan operators onto an RDD by
dispatching on op kind.  Kernel bodies are produced by per-op factory
methods named ``_udf_<op_id>`` on the concrete lowering class — keeping
each kernel a named closure preserves Table 1 LoC attribution
(``loc.py`` counts factories per step) and Spark task naming (task and
blame categories derive from closure ``__name__``).

Physical translation rules (the Spark side of the lowering contract):

* ``filter``       -> ``rdd.filter(udf(pred))``
* ``map``          -> ``rdd.map``/``rdd.mapValues`` (factory chooses)
* ``flat_map``     -> ``rdd.flatMap(costed_udf)``
* ``group_by`` with ``combinable=True`` -> map-side combine via
  ``map(to_pair).reduceByKey(combine).mapValues(finish)``
* ``group_by`` otherwise -> optional re-key ``map`` then
  ``groupByKey(numPartitions).map(agg)`` (a full shuffle)
* ``materialize``  -> identity; the step method collects.

Partition hints resolve against the live cluster: ``"n_nodes"`` ->
one partition per node, ``"total_slots"`` -> the caller's tuning
override or one per slot.
"""

from repro.engines.base import udf


class ChainWalker:
    """Mixin that turns ``plan.chain(first, last)`` into an RDD chain."""

    sc = None
    group_partitions = None

    def lower_chain(self, rdd, ops):
        for op in ops:
            rdd = getattr(self, "_lower_" + op.kind)(rdd, op)
        return rdd

    def _factory(self, op):
        return getattr(self, "_udf_" + op.op_id)

    def _partitions(self, op):
        hint = op.param("partitions")
        if hint == "n_nodes":
            return self.sc.cluster.spec.n_nodes
        if hint == "total_slots":
            return self.group_partitions or self.sc.cluster.spec.total_slots
        return hint

    def _lower_filter(self, rdd, op):
        return rdd.filter(udf(self._factory(op)()))

    def _lower_map(self, rdd, op):
        method, costed = self._factory(op)()
        return getattr(rdd, method)(costed)

    def _lower_flat_map(self, rdd, op):
        return rdd.flatMap(self._factory(op)())

    def _lower_group_by(self, rdd, op):
        n = self._partitions(op)
        if op.param("combinable"):
            to_pair, combine, finish = self._factory(op)()
            return (
                rdd.map(udf(to_pair))
                .reduceByKey(combine, numPartitions=n)
                .mapValues(udf(finish))
            )
        pre, agg = self._factory(op)()
        if pre is not None:
            rdd = rdd.map(udf(pre))
        return rdd.groupByKey(numPartitions=n).map(agg)

    def _lower_materialize(self, rdd, op):
        return rdd
