"""Generic RDD chain walker shared by the Spark lowerings.

Lowers a linear segment of logical-plan operators onto an RDD by
dispatching on op kind.  Kernel bodies are produced by per-op factory
methods named ``_udf_<op_id>`` on the concrete lowering class — keeping
each kernel a named closure preserves Table 1 LoC attribution
(``loc.py`` counts factories per step) and Spark task naming (task and
blame categories derive from closure ``__name__``).

Physical translation rules (the Spark side of the lowering contract):

* ``filter``       -> ``rdd.filter(udf(pred))``
* ``map``          -> ``rdd.map``/``rdd.mapValues`` (factory chooses)
* ``flat_map``     -> ``rdd.flatMap(costed_udf)``
* ``group_by`` with ``combinable=True`` -> map-side combine via
  ``map(to_pair).reduceByKey(combine).mapValues(finish)``
* ``group_by`` otherwise -> optional re-key ``map`` then
  ``groupByKey(numPartitions).map(agg)`` (a full shuffle)
* ``materialize``  -> identity; the step method collects.

Partition hints resolve against the live cluster: ``"n_nodes"`` ->
one partition per node, ``"total_slots"`` -> the caller's tuning
override or one per slot.
"""

from repro.engines.base import udf


class ChainWalker:
    """Mixin that turns ``plan.chain(first, last)`` into an RDD chain.

    Every costed function and RDD node the walker creates is stamped
    with the provenance id of the logical op it implements, so stage
    tasks, spans and blame segments fold back to plan ops (see
    ``repro.obs.attribution``).
    """

    sc = None
    plan = None
    group_partitions = None

    def lower_chain(self, rdd, ops):
        for op in ops:
            rdd = getattr(self, "_lower_" + op.kind)(rdd, op)
            rdd.plan_op = self._pid(op)
        return rdd

    def _factory(self, op):
        return getattr(self, "_udf_" + op.op_id)

    def _pid(self, op):
        return self.plan.provenance(op.op_id) if self.plan is not None else None

    def _stamp(self, fn, op):
        """Coerce to a costed function carrying ``op``'s provenance id."""
        costed = udf(fn)
        if costed.op is None:
            costed.op = self._pid(op)
        return costed

    def _partitions(self, op):
        hint = op.param("partitions")
        if hint == "n_nodes":
            return self.sc.cluster.spec.n_nodes
        if hint == "total_slots":
            return self.group_partitions or self.sc.cluster.spec.total_slots
        return hint

    def _lower_filter(self, rdd, op):
        return rdd.filter(self._stamp(self._factory(op)(), op))

    def _lower_map(self, rdd, op):
        method, costed = self._factory(op)()
        return getattr(rdd, method)(self._stamp(costed, op))

    def _lower_flat_map(self, rdd, op):
        return rdd.flatMap(self._stamp(self._factory(op)(), op))

    def _lower_group_by(self, rdd, op):
        n = self._partitions(op)
        if op.param("combinable"):
            to_pair, combine, finish = self._factory(op)()
            return (
                rdd.map(self._stamp(to_pair, op))
                .reduceByKey(self._stamp(combine, op), numPartitions=n)
                .mapValues(self._stamp(finish, op))
            )
        pre, agg = self._factory(op)()
        if pre is not None:
            rdd = rdd.map(self._stamp(pre, op))
        return rdd.groupByKey(numPartitions=n).map(self._stamp(agg, op))

    def _lower_materialize(self, rdd, op):
        return rdd
