"""Spark lowering backend: translate logical plans into RDD chains."""

from repro.engines.spark.lowering import astro, neuro
from repro.engines.spark.lowering.astro import LoweredAstro
from repro.engines.spark.lowering.neuro import LoweredNeuro


def lower(plan, ctx):
    """Lower a logical plan against a SparkContext ``ctx``."""
    if plan.name == "neuro":
        return LoweredNeuro(plan, ctx)
    if plan.name == "astro":
        return LoweredAstro(plan, ctx)
    raise NotImplementedError(f"spark lowering: unknown plan {plan.name!r}")


__all__ = ["LoweredAstro", "LoweredNeuro", "astro", "lower", "neuro"]
