"""The astro plan lowered to miniSpark (Section 4.2).

Same structure as the neuroscience case: pair RDDs keyed by image
fragment identifiers, reference step functions as lambdas, shuffles at
the two grouping points (patch creation and co-addition).
"""

from repro.engines.base import udf
from repro.engines.spark.lowering.walker import ChainWalker
from repro.pipelines import common
from repro.pipelines.astro import reference as ref
from repro.pipelines.astro.staging import DEFAULT_BUCKET
from repro.plan.astro import astro_plan
from repro.plan.memo import bucket_token, materialize_scope


class LoweredAstro(ChainWalker):
    """Executable produced by ``lower(astro_plan(), sc)``."""

    def __init__(self, plan, sc):
        self.plan = plan
        self.sc = sc
        self.grid = None
        self.pixel_scale = None
        self.group_partitions = None

    # -- kernel factories, one per logical op --------------------------

    def _udf_preprocess(self):
        cm = self.sc.cost_model
        return "map", udf(ref.preprocess_exposure, cost=common.preprocess_cost(cm))

    def _udf_patches(self):
        cm = self.sc.cost_model
        grid = self.grid
        pixel_scale = self.pixel_scale

        def to_pieces(exposure):
            return ref.patch_pieces(exposure, grid, pixel_scale)

        return udf(to_pieces, cost=common.patch_map_cost(cm))

    def _udf_stitch(self):
        cm = self.sc.cost_model

        def stitch(kv):
            key, group = kv
            return key, ref.stitch_pieces(group)

        def stitch_cost(kv):
            return common.stitch_cost(cm)(kv[1])

        return None, udf(stitch, cost=stitch_cost)

    def _udf_coadd(self):
        cm = self.sc.cost_model

        def rekey(kv):
            (patch_id, visit_id), stitched = kv
            return patch_id, (visit_id, stitched)

        def coadd(kv):
            patch_id, entries = kv
            ordered = [s for _v, s in sorted(entries, key=lambda e: e[0])]
            return patch_id, ref.coadd_patch(ordered)

        def coadd_cost(kv):
            return common.coadd_cost(cm, ref.COADD_ITERATIONS)(
                [s for _v, s in kv[1]]
            )

        return rekey, udf(coadd, cost=coadd_cost)

    def _udf_detect(self):
        cm = self.sc.cost_model

        def detect(kv):
            patch_id, coadd_img = kv
            return patch_id, (coadd_img, ref.detect(coadd_img))

        def detect_cost(kv):
            return common.detect_cost(cm)(kv[1])

        return "map", udf(detect, cost=detect_cost)

    # -- step entry points ---------------------------------------------

    def scan(self, partitions=None, cache=False):
        op = self.plan.member("exposures")
        rdd = self.sc.s3_objects(op.param("bucket"), numPartitions=partitions)
        rdd.plan_op = self.plan.provenance("exposures")
        if cache:
            rdd = rdd.cache()
        return rdd

    def run(self, visits, input_partitions=None, group_partitions=None,
            grid=None):
        """End-to-end astronomy pipeline; returns ``(coadds, sources)``."""
        exposures = [e for v in visits for e in v.exposures]
        if grid is None:
            grid = ref.default_patch_grid(exposures[0].shape)
        self.grid = grid
        self.pixel_scale = ref.nominal_pixel_scale(
            exposures[0].shape, exposures[0].bundle
        )
        self.group_partitions = group_partitions

        exp_rdd = self.scan(partitions=input_partitions)
        bucket = self.plan.member_param("exposures", "bucket")
        with materialize_scope(
            self.sc.cluster, self.plan, "sources", "spark",
            extra=lambda: {
                "bucket": bucket,
                "input": bucket_token(self.sc.cluster.object_store, bucket),
                "grid": [grid.patch_height, grid.patch_width],
                "partitions": input_partitions,
                "group_partitions": group_partitions,
                # Task names embed the scheduler stage counter; a window
                # recorded at one counter value cannot replay at another.
                "stage_base": self.sc.scheduler.stages_run,
            },
        ):
            results = self.lower_chain(
                exp_rdd, self.plan.expanded_chain("preprocess", "sources")
            ).collect()

        coadds = {patch: coadd_img for patch, (coadd_img, _s) in results}
        sources = {patch: srcs for patch, (_c, srcs) in results}
        return coadds, sources


# -- hand-written-era API, now plan-backed -----------------------------


def build_exposure_rdd(sc, partitions=None, bucket=DEFAULT_BUCKET, cache=False):
    """Build exposure rdd."""
    return LoweredAstro(astro_plan(bucket=bucket), sc).scan(
        partitions=partitions, cache=cache
    )


def run(sc, visits, input_partitions=None, group_partitions=None,
        bucket=DEFAULT_BUCKET, grid=None):
    return LoweredAstro(astro_plan(bucket=bucket), sc).run(
        visits, input_partitions=input_partitions,
        group_partitions=group_partitions, grid=grid,
    )
