"""Broadcast variables.

Section 4.2: "To avoid joins, we make the mask a broadcast variable,
which gets automatically replicated on all workers."  The broadcast
charges a tree-topology replication cost once at creation.
"""

from repro.engines.base import nominal_bytes_of


class Broadcast:
    """A read-only value replicated to every node."""

    def __init__(self, sc, value, nominal_bytes=None):
        self._sc = sc
        self._value = value
        self.nominal_bytes = (
            nominal_bytes_of(value) if nominal_bytes is None else int(nominal_bytes)
        )
        cost = sc.cluster.network.broadcast_time(
            self.nominal_bytes, sc.cluster.spec.n_nodes
        )
        serialize = sc.cluster.cost_model.pickle_time(self.nominal_bytes)
        sc.cluster.charge_master(
            cost + serialize, label="broadcast", category="spark-broadcast"
        )

    @property
    def value(self):
        """The wrapped value."""
        return self._value

    def __repr__(self):
        return f"Broadcast({self.nominal_bytes} bytes)"
