"""The driver-side entry point: ``SparkContext``.

Mirrors the PySpark API surface the paper's implementation uses
(Section 4.2): ``parallelize``, reading staged objects from S3,
``broadcast``, and the RDD transformation/action methods.
"""

from repro.cluster.faults import spark_recovery
from repro.engines.base import Engine
from repro.engines.spark.broadcast import Broadcast
from repro.engines.spark.rdd import RDD
from repro.engines.spark.stage import SparkScheduler

#: Bytes per input split when the user does not specify partitioning.
#: Calibrated to the paper's observation that "for the neuroscience use
#: case with a single subject, Spark creates only 4 partitions"
#: (Section 5.3.1) for a ~4.2 GB subject.
DEFAULT_SPLIT_BYTES = 1_050_000_000


class SparkContext(Engine):
    """miniSpark driver."""

    name = "Spark"

    def __init__(self, cluster):
        super().__init__(cluster)
        self.scheduler = SparkScheduler(self)
        # Lineage recompute with spark.task.maxFailures-style retry
        # bounds and node blacklisting (Section 2).
        cluster.install_recovery(spark_recovery())

    def startup_cost(self):
        """One-time engine startup in simulated seconds."""
        return self.cost_model.spark_job_startup

    # ------------------------------------------------------------------
    # RDD factories
    # ------------------------------------------------------------------

    def parallelize(self, data, numSlices=None):  # noqa: N803
        """Distribute a driver-side collection as an RDD."""
        data = list(data)
        if numSlices is None:
            numSlices = min(
                max(1, len(data)), self.cluster.spec.total_slots
            )
        if numSlices <= 0:
            raise ValueError(f"numSlices must be positive, got {numSlices}")
        return RDD(
            self,
            "parallelize",
            num_partitions=int(numSlices),
            params={"data": data},
        )

    def s3_objects(self, bucket, prefix="", loader=None, numPartitions=None):  # noqa: N803
        """RDD over staged S3 objects (the paper's ingest pattern).

        ``loader`` converts a stored object into a record; default is
        identity.  When ``numPartitions`` is unspecified, one partition
        is created per :data:`DEFAULT_SPLIT_BYTES` of input -- the
        HDFS-block-like behavior that under-utilizes the cluster in
        Figure 14 unless tuned.
        """
        store = self.cluster.object_store
        keys = store.list_keys(bucket, prefix)
        if not keys:
            raise ValueError(f"no objects under s3://{bucket}/{prefix}")
        if numPartitions is None:
            total = store.total_bytes(bucket, prefix)
            numPartitions = max(1, total // DEFAULT_SPLIT_BYTES)
        numPartitions = int(min(numPartitions, len(keys)))
        if loader is None:
            loader = _identity
        return RDD(
            self,
            "s3_objects",
            num_partitions=numPartitions,
            params={"bucket": bucket, "keys": keys, "loader": loader},
        )

    # ------------------------------------------------------------------
    # Shared variables
    # ------------------------------------------------------------------

    def broadcast(self, value, nominal_bytes=None):
        """Broadcast."""
        self.ensure_started()
        return Broadcast(self, value, nominal_bytes=nominal_bytes)


def _identity(value):
    return value
