"""Stage-based execution of RDD lineage.

The scheduler cuts lineage at wide dependencies (shuffles) and cached
RDDs, fuses narrow transformations into their stage's tasks, and runs
one :class:`~repro.cluster.cluster.SimulatedCluster` DAG per stage.
Stage boundaries are genuine barriers -- the behavior the paper blames
for Spark/Myria trailing Dask on large inputs (Section 5.1: "must thus
wait for the preceding step to output the entire RDD").
"""

from repro.cluster.task import Task
from repro.engines.base import nominal_bytes_of
from repro.engines.spark.partitioner import HashPartitioner
from repro.engines.spark.rdd import NARROW_OPS, SOURCE_OPS, WIDE_OPS


class Partition:
    """A materialized partition: records resident on one node.

    ``task`` is the simulated task that produced the partition -- the
    lineage link downstream stages declare as a dependency, so that a
    node crash can trigger recomputation of exactly the lost partitions.
    """

    __slots__ = ("records", "nominal_bytes", "node", "on_disk", "task")

    def __init__(self, records, nominal_bytes, node, on_disk=False, task=None):
        self.records = records
        self.nominal_bytes = int(nominal_bytes)
        self.node = node
        self.on_disk = on_disk
        self.task = task

    def __repr__(self):
        return (
            f"Partition({len(self.records)} records, {self.nominal_bytes} B"
            f" on {self.node})"
        )


class _StagePlan:
    """One stage: a base (source/wide/cached input) plus fused narrow ops."""

    def __init__(self, base_rdd, narrow_ops):
        self.base = base_rdd
        self.narrow_ops = narrow_ops  # in application order

    @property
    def result_rdd(self):
        """Result rdd."""
        return self.narrow_ops[-1] if self.narrow_ops else self.base


class SparkScheduler:
    """Turns lineage into simulated-cluster task DAGs, stage by stage."""

    def __init__(self, sc):
        self.sc = sc
        self._cache_store = {}
        self.stages_run = 0

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def materialize(self, rdd):
        """Compute ``rdd``; returns its list of :class:`Partition`."""
        self.sc.ensure_started()
        plans = self._plan_stages(rdd)
        partitions = None
        obs = self.sc.cluster.obs
        for index, plan in enumerate(plans):
            shuffle_partitioner = None
            if index + 1 < len(plans) and plans[index + 1].base.op in WIDE_OPS:
                nxt = plans[index + 1].base
                shuffle_partitioner = HashPartitioner(nxt.num_partitions)
            with obs.span(
                f"spark-stage{self.stages_run}", category="spark",
                op=plan.base.op, plan_op=self._stage_op(plan),
            ):
                partitions = self._run_stage(plan, partitions, shuffle_partitioner)
                self.stages_run += 1
                for node in plan.narrow_ops + [plan.base]:
                    if node.cached and node is plan.result_rdd:
                        self._store_cache(node, partitions)
        return partitions

    def cached_partitions(self, rdd):
        """Stored partitions of a cached RDD, if any."""
        return self._cache_store.get(rdd.rdd_id)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _plan_stages(self, rdd):
        """Split lineage into stages, newest last.

        A stage starts at a source, a wide op, or a cached RDD that has
        already been materialized (its partitions short-circuit the
        upstream lineage).
        """
        lineage = rdd.lineage()
        # Find the latest point we can restart from.
        start = 0
        for i, node in enumerate(lineage):
            if node.rdd_id in self._cache_store:
                start = i
        stages = []
        current_base = None
        current_narrow = []
        pending = False
        for node in lineage[start:]:
            if node.rdd_id in self._cache_store and node is lineage[start]:
                current_base = node
                continue
            if node.op in SOURCE_OPS or node.op in WIDE_OPS:
                if current_base is not None and pending:
                    stages.append(_StagePlan(current_base, current_narrow))
                current_base = node
                current_narrow = []
                pending = True
            elif node.op in NARROW_OPS:
                if current_base is None:
                    raise RuntimeError(f"narrow op {node.op} with no base stage")
                current_narrow.append(node)
                pending = True
            else:
                raise RuntimeError(f"unknown RDD op {node.op!r}")
            # A cached RDD is a materialization point: close the stage
            # here so its partitions are computed once and stored; the
            # rest of the lineage reads from the cache.
            if node.cached:
                stages.append(_StagePlan(current_base, current_narrow))
                current_base = node
                current_narrow = []
                pending = False
        if pending or not stages:
            stages.append(_StagePlan(current_base, current_narrow))
        return stages

    # ------------------------------------------------------------------
    # Stage execution
    # ------------------------------------------------------------------

    def _run_stage(self, plan, upstream, shuffle_partitioner):
        base = plan.base
        if base.rdd_id in self._cache_store:
            inputs = self._read_cache(base)
            tasks = self._narrow_tasks(plan, inputs, shuffle_partitioner)
        elif base.op == "parallelize":
            tasks = self._parallelize_tasks(plan, shuffle_partitioner)
        elif base.op == "s3_objects":
            tasks = self._s3_tasks(plan, shuffle_partitioner)
        elif base.op in WIDE_OPS:
            tasks = self._reduce_tasks(plan, upstream, shuffle_partitioner)
        else:
            raise RuntimeError(f"cannot run stage rooted at {base.op!r}")

        results = self.sc.cluster.run(tasks)
        partitions = []
        for task in tasks:
            result = results[task.task_id]
            records = result.value
            partitions.append(
                Partition(records, nominal_bytes_of(records), result.node,
                          task=task)
            )
        return partitions

    # -- stage bodies ---------------------------------------------------

    def _stage_category(self, plan, default):
        """Blame category of a stage's tasks.

        Named after the last costed narrow op fused into the stage
        (``spark-denoise``), so per-step blame survives stage-number
        churn; stages with only anonymous ops fall back to ``default``.
        """
        for op in reversed(plan.narrow_ops):
            name = getattr(op.fn, "name", None)
            if name and name != "<lambda>":
                return f"spark-{name}"
        return default

    def _stage_op(self, plan):
        """Provenance id of a stage's tasks.

        Narrow fusion means one physical task implements several logical
        ops; the stage is attributed to the *last* stamped op in the
        fused chain, falling back to the base RDD's own stamp (wide ops,
        sources) so every Spark task carries a provenance id whenever
        the lineage came from a lowering.
        """
        for op in reversed(plan.narrow_ops):
            pid = getattr(op.fn, "op", None)
            if pid is not None:
                return pid
        if plan.base.fn is not None:
            pid = getattr(plan.base.fn, "op", None)
            if pid is not None:
                return pid
        return getattr(plan.base, "plan_op", None)

    def _apply_narrow(self, records, narrow_ops):
        """Run the fused narrow chain over a record list.

        Executes the real compute exactly once and simultaneously prices
        it; returns ``(out_records, simulated_seconds)``.
        """
        out = records
        cost = 0.0
        for op in narrow_ops:
            fn = op.fn
            if op.op == "map":
                cost += sum(fn.cost(r) for r in out)
                out = [fn(r) for r in out]
            elif op.op == "flatMap":
                cost += sum(fn.cost(r) for r in out)
                out = [item for r in out for item in fn(r)]
            elif op.op == "filter":
                cost += sum(fn.cost(r) for r in out)
                out = [r for r in out if fn(r)]
            elif op.op == "mapValues":
                cost += sum(fn.cost(v) for _k, v in out)
                out = [(k, fn(v)) for k, v in out]
            else:
                raise RuntimeError(f"not a narrow op: {op.op}")
        return out, cost

    def _finish_records(self, records, shuffle_partitioner):
        """Optionally bucket output records for the next shuffle."""
        if shuffle_partitioner is None:
            return records
        buckets = {}
        for key, value in records:
            bucket = shuffle_partitioner.partition_for(key)
            buckets.setdefault(bucket, []).append((key, value))
        return buckets

    def _boundary_and_overhead(self, in_bytes, out_bytes, shuffle_partitioner):
        """Fixed per-task costs: scheduling + Python boundary + shuffle
        write.  This serialization tax is why Spark's cheap operations
        trail Dask by an order of magnitude (Section 5.2.2)."""
        cm = self.sc.cluster.cost_model
        cost = cm.spark_task_overhead
        cost += cm.python_boundary_time(in_bytes + out_bytes)
        if shuffle_partitioner is not None:
            cost += cm.pickle_time(out_bytes) + cm.disk_write_time(out_bytes)
        return cost

    def _parallelize_tasks(self, plan, shuffle_partitioner):
        base = plan.base
        data = base.params["data"]
        n = base.num_partitions
        slices = [data[i::n] for i in range(n)]
        cm = self.sc.cluster.cost_model
        category = self._stage_category(plan, "spark-parallelize")
        stage_op = self._stage_op(plan)
        tasks = []
        for index, part_records in enumerate(slices):
            in_bytes = nominal_bytes_of(part_records)
            cell = {}

            def run(records=part_records, cell=cell):
                out, narrow_cost = self._apply_narrow(records, plan.narrow_ops)
                cell["narrow_cost"] = narrow_cost
                cell["out_bytes"] = nominal_bytes_of(out)
                return self._finish_records(out, shuffle_partitioner)

            def cost(in_bytes=in_bytes, cell=cell):
                # Driver ships the slice to the worker.
                total = cm.pickle_time(in_bytes)
                total += self.sc.cluster.network.transfer_time(
                    in_bytes, "driver", "worker"
                )
                total += cell["narrow_cost"]
                total += self._boundary_and_overhead(
                    in_bytes, cell["out_bytes"], shuffle_partitioner
                )
                return total

            tasks.append(
                Task(
                    f"spark-stage{self.stages_run}-part{index}",
                    fn=run,
                    duration=cost,
                    memory_bytes=in_bytes,
                    on_oom="spill",
                    category=category,
                    op=stage_op,
                    memoizable=True,
                )
            )
        return tasks

    def _s3_tasks(self, plan, shuffle_partitioner):
        base = plan.base
        store = self.sc.cluster.object_store
        bucket = base.params["bucket"]
        keys = base.params["keys"]
        loader = base.params["loader"]
        n = base.num_partitions
        # The Spark S3 API enumerates objects on the master before
        # scheduling the parallel download (Section 5.2.1).
        cm = self.sc.cluster.cost_model
        stage_op = self._stage_op(plan)
        self.sc.cluster.charge_master(
            cm.s3_list_time(len(keys)), label="s3 listing",
            category="spark-s3-ingest",
            op=getattr(base, "plan_op", None),
        )
        groups = [keys[i::n] for i in range(n)]
        tasks = []
        for index, group in enumerate(groups):
            if not group:
                group = []
            group_bytes = sum(store.size_of(bucket, k) for k in group)
            cell = {}

            def run(group=group, cell=cell):
                records = [loader(store.get(bucket, k)) for k in group]
                out, narrow_cost = self._apply_narrow(records, plan.narrow_ops)
                cell["narrow_cost"] = narrow_cost
                cell["out_bytes"] = nominal_bytes_of(out)
                return self._finish_records(out, shuffle_partitioner)

            def cost(group=group, group_bytes=group_bytes, cell=cell):
                # Concurrent download tasks on one node share its S3
                # bandwidth.
                spec = self.sc.cluster.spec
                s3_sharing = min(spec.slots_per_node, -(-n // spec.n_nodes))
                total = self.sc.cluster.network.s3_download_time(
                    group_bytes, n_objects=max(1, len(group))
                ) * s3_sharing
                total += cm.unpickle_time(group_bytes)
                total += cell["narrow_cost"]
                total += self._boundary_and_overhead(
                    group_bytes, cell["out_bytes"], shuffle_partitioner
                )
                return total

            tasks.append(
                Task(
                    f"spark-stage{self.stages_run}-s3part{index}",
                    fn=run,
                    duration=cost,
                    memory_bytes=group_bytes,
                    on_oom="spill",
                    category="spark-s3-ingest",
                    op=stage_op,
                    memoizable=True,
                )
            )
        return tasks

    def _narrow_tasks(self, plan, inputs, shuffle_partitioner):
        """Stage over already-materialized partitions (cache reads)."""
        cm = self.sc.cluster.cost_model
        category = self._stage_category(plan, "spark-cache-read")
        stage_op = self._stage_op(plan)
        tasks = []
        for index, partition in enumerate(inputs):
            cell = {}

            def run(partition=partition, cell=cell):
                out, narrow_cost = self._apply_narrow(
                    partition.records, plan.narrow_ops
                )
                cell["narrow_cost"] = narrow_cost
                cell["out_bytes"] = nominal_bytes_of(out)
                return self._finish_records(out, shuffle_partitioner)

            def cost(partition=partition, cell=cell):
                total = 0.0
                if partition.on_disk:
                    total += cm.disk_read_time(partition.nominal_bytes)
                total += cell["narrow_cost"]
                total += self._boundary_and_overhead(
                    partition.nominal_bytes, cell["out_bytes"], shuffle_partitioner
                )
                return total

            tasks.append(
                Task(
                    f"spark-stage{self.stages_run}-cached{index}",
                    fn=run,
                    duration=cost,
                    node=partition.node,  # locality: cache lives there
                    # Lineage link (timing-neutral: zero output bytes):
                    # if the cached partition died with its node, the
                    # executor recomputes it before this task runs.
                    deps=[partition.task] if partition.task is not None else (),
                    memory_bytes=partition.nominal_bytes,
                    on_oom="spill",
                    category=category,
                    op=stage_op,
                    memoizable=True,
                )
            )
        return tasks

    def _reduce_tasks(self, plan, upstream, shuffle_partitioner):
        """Shuffle-read side of a wide op, with fused narrow follow-ups."""
        base = plan.base
        cm = self.sc.cluster.cost_model
        n_reducers = base.num_partitions
        n_nodes = self.sc.cluster.spec.n_nodes
        remote_fraction = (n_nodes - 1) / n_nodes if n_nodes > 1 else 0.0

        stage_op = self._stage_op(plan)

        if base.op == "repartition":
            # Upstream produced plain record lists; round-robin them.
            all_records = []
            for partition in upstream:
                all_records.extend(partition.records)
            buckets = {
                r: all_records[r::n_reducers] for r in range(n_reducers)
            }
            upstream_buckets = [buckets]
        else:
            upstream_buckets = [p.records for p in upstream]  # dicts

        tasks = []
        for reducer in range(n_reducers):
            cell = {}

            def gather(reducer=reducer):
                records = []
                for bucket_map in upstream_buckets:
                    records.extend(bucket_map.get(reducer, []))
                return records

            def run(reducer=reducer, cell=cell):
                records = gather(reducer)
                cell["in_bytes"] = nominal_bytes_of(records)
                combine_cost = 0.0
                if base.op == "groupByKey":
                    grouped = {}
                    for key, value in records:
                        grouped.setdefault(key, []).append(value)
                    mid = [(k, vs) for k, vs in grouped.items()]
                elif base.op == "reduceByKey":
                    reduced = {}
                    for key, value in records:
                        if key in reduced:
                            combine_cost += base.fn.cost(reduced[key], value)
                            reduced[key] = base.fn(reduced[key], value)
                        else:
                            reduced[key] = value
                    mid = list(reduced.items())
                else:  # repartition
                    mid = records
                out, narrow_cost = self._apply_narrow(mid, plan.narrow_ops)
                cell["compute_cost"] = combine_cost + narrow_cost
                cell["out_bytes"] = nominal_bytes_of(out)
                return self._finish_records(out, shuffle_partitioner)

            def cost(cell=cell):
                in_bytes = cell["in_bytes"]
                total = cm.disk_read_time(in_bytes)
                # Concurrent reducers on a node share its NIC, so each
                # task's shuffle read is slowed by the per-node task
                # concurrency (bounded by how many reducers exist).
                spec = self.sc.cluster.spec
                nic_sharing = min(
                    spec.slots_per_node,
                    -(-n_reducers // spec.n_nodes),
                )
                total += self.sc.cluster.network.transfer_time(
                    int(in_bytes * remote_fraction), "maps", "reduce"
                ) * nic_sharing
                total += cm.unpickle_time(in_bytes)
                total += cell["compute_cost"]
                total += self._boundary_and_overhead(
                    in_bytes, cell["out_bytes"], shuffle_partitioner
                )
                return total

            in_estimate = sum(
                nominal_bytes_of(bm.get(reducer, [])) for bm in upstream_buckets
            )
            tasks.append(
                Task(
                    f"spark-stage{self.stages_run}-reduce{reducer}",
                    fn=run,
                    duration=cost,
                    # Lineage links to every map-side partition (a wide
                    # dependency): lost shuffle outputs recompute first.
                    deps=[p.task for p in upstream if p.task is not None],
                    memory_bytes=in_estimate,
                    on_oom="spill",
                    category="spark-shuffle",
                    op=stage_op,
                    memoizable=True,
                )
            )
        return tasks

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------

    def _store_cache(self, rdd, partitions):
        """Pin partitions in node memory; overflow spills to disk.

        "Spark supports caching data in memory ... Caching can be
        harmful if the results are not needed by multiple steps as
        caching reduces the memory available to query processing."
        (Section 5.3.3.)
        """
        cm = self.sc.cluster.cost_model
        stored = []
        for partition in partitions:
            node = self.sc.cluster.node(partition.node)
            if node.memory.would_fit(partition.nominal_bytes):
                node.memory.allocate(partition.nominal_bytes, f"cache-rdd{rdd.rdd_id}")
                stored.append(partition)
            else:
                # Spill the cached partition to local disk.
                self.sc.cluster.charge_master(
                    cm.disk_write_time(partition.nominal_bytes),
                    label="cache spill",
                    category="spark-cache",
                    op=getattr(rdd, "plan_op", None),
                )
                stored.append(
                    Partition(
                        partition.records,
                        partition.nominal_bytes,
                        partition.node,
                        on_disk=True,
                    )
                )
        self._cache_store[rdd.rdd_id] = stored

    def _read_cache(self, rdd):
        return self._cache_store[rdd.rdd_id]
