"""Resilient Distributed Datasets: the lazy lineage graph.

RDDs record transformations without executing them; actions hand the
lineage to the scheduler (:mod:`repro.engines.spark.stage`), which cuts
it into stages at shuffle boundaries, exactly as described in Section 2:
"Programs that manipulate RDDs are represented as graphs."
"""

import itertools

from repro.engines.base import as_costed

_rdd_counter = itertools.count()

#: Operations that repartition by key and therefore end a stage.
WIDE_OPS = frozenset({"groupByKey", "reduceByKey", "repartition"})
#: Per-record narrow operations fused into their parent's stage.
NARROW_OPS = frozenset({"map", "flatMap", "filter", "mapValues"})
#: Lineage sources.
SOURCE_OPS = frozenset({"parallelize", "s3_objects"})


class RDD:
    """One node of the lineage graph.

    Not intended to be constructed directly; use
    :class:`~repro.engines.spark.context.SparkContext` factories and the
    transformation methods below.
    """

    def __init__(self, sc, op, parent=None, fn=None, num_partitions=None, params=None):
        self.rdd_id = next(_rdd_counter)
        self.sc = sc
        self.op = op
        self.parent = parent
        self.fn = as_costed(fn) if fn is not None else None
        if num_partitions is None and parent is not None:
            num_partitions = parent.num_partitions
        self.num_partitions = num_partitions
        self.params = dict(params or {})
        self.cached = False
        #: Provenance id of the logical op this node implements, stamped
        #: by the lowering walker; None for ad-hoc RDDs.
        self.plan_op = None

    # ------------------------------------------------------------------
    # Narrow transformations (fused into the current stage)
    # ------------------------------------------------------------------

    def map(self, fn):
        """Apply ``fn`` to every record."""
        return RDD(self.sc, "map", parent=self, fn=fn)

    def flatMap(self, fn):  # noqa: N802 - mirrors the PySpark API
        """Apply ``fn`` and flatten the returned iterables."""
        return RDD(self.sc, "flatMap", parent=self, fn=fn)

    def filter(self, fn):
        """Keep records for which ``fn`` is truthy."""
        return RDD(self.sc, "filter", parent=self, fn=fn)

    def mapValues(self, fn):  # noqa: N802
        """Apply ``fn`` to the value of every (key, value) record."""
        return RDD(self.sc, "mapValues", parent=self, fn=fn)

    def keyBy(self, fn):  # noqa: N802
        """Turn records into ``(fn(record), record)`` pairs."""
        keyer = as_costed(fn)
        return self.map(
            as_costed(lambda record: (keyer(record), record))
        )

    # ------------------------------------------------------------------
    # Wide transformations (stage boundaries / shuffles)
    # ------------------------------------------------------------------

    def groupByKey(self, numPartitions=None):  # noqa: N802,N803
        """Shuffle (key, value) records into (key, [values]) groups."""
        return RDD(
            self.sc,
            "groupByKey",
            parent=self,
            num_partitions=numPartitions or self.num_partitions,
        )

    def groupBy(self, key_fn, numPartitions=None):  # noqa: N802,N803
        """``keyBy`` then ``groupByKey`` -- the paper's Figure 6 idiom."""
        return self.keyBy(key_fn).groupByKey(numPartitions=numPartitions)

    def reduceByKey(self, fn, numPartitions=None):  # noqa: N802,N803
        """Shuffle then combine values per key with a binary ``fn``."""
        return RDD(
            self.sc,
            "reduceByKey",
            parent=self,
            fn=fn,
            num_partitions=numPartitions or self.num_partitions,
        )

    def repartition(self, numPartitions):  # noqa: N802,N803
        """Round-robin shuffle into ``numPartitions`` partitions."""
        return RDD(
            self.sc, "repartition", parent=self, num_partitions=numPartitions
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def cache(self):
        """Keep this RDD's partitions in cluster memory after first
        computation (Section 5.3.3)."""
        self.cached = True
        return self

    # ------------------------------------------------------------------
    # Actions (trigger execution)
    # ------------------------------------------------------------------

    def collect(self):
        """Materialize all records at the driver."""
        partitions = self.sc.scheduler.materialize(self)
        records = []
        for partition in partitions:
            records.extend(partition.records)
        # Results return to the driver: charge the boundary crossing.
        total = sum(p.nominal_bytes for p in partitions)
        self.sc.cluster.charge_master(
            self.sc.cluster.cost_model.python_boundary_time(total),
            label="collect",
            category="spark-collect",
            op=self.plan_op,
        )
        return records

    def count(self):
        """Number of records (counts computed on workers, tiny result)."""
        partitions = self.sc.scheduler.materialize(self)
        return sum(len(p.records) for p in partitions)

    def take(self, n):
        """First ``n`` records (in partition order)."""
        if n <= 0:
            return []
        partitions = self.sc.scheduler.materialize(self)
        out = []
        taken_bytes = 0
        for partition in partitions:
            for record in partition.records:
                out.append(record)
                if len(out) == n:
                    from repro.engines.base import nominal_bytes_of

                    self.sc.cluster.charge_master(
                        self.sc.cluster.cost_model.python_boundary_time(
                            nominal_bytes_of(out)
                        ),
                        label="take",
                        category="spark-collect",
                        op=self.plan_op,
                    )
                    return out
        self.sc.cluster.charge_master(
            self.sc.cluster.cost_model.python_boundary_time(
                sum(p.nominal_bytes for p in partitions)
            ),
            label="take",
            category="spark-collect",
            op=self.plan_op,
        )
        return out

    def first(self):
        """The first record; raises ``ValueError`` on an empty RDD."""
        records = self.take(1)
        if not records:
            raise ValueError("RDD is empty")
        return records[0]

    def distinct(self, numPartitions=None):  # noqa: N802,N803
        """Unique records, via the classic map/reduceByKey encoding."""
        from repro.engines.base import udf as _udf

        return (
            self.map(_udf(lambda x: (x, None)))
            .reduceByKey(_udf(lambda a, b: a),
                         numPartitions=numPartitions or self.num_partitions)
            .map(_udf(lambda kv: kv[0]))
        )

    def persist_to_workers(self):
        """Materialize partitions but leave them on the workers.

        This mirrors the paper's end-to-end methodology: "We materialize
        the final output in worker memories" (Section 5.1).
        """
        return self.sc.scheduler.materialize(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def lineage(self):
        """RDDs from source to self."""
        chain = []
        node = self
        while node is not None:
            chain.append(node)
            node = node.parent
        return list(reversed(chain))

    def __repr__(self):
        return f"RDD(#{self.rdd_id} {self.op}, partitions={self.num_partitions})"
