"""Five from-scratch mini big-data systems.

Each subpackage reimplements the execution model of one of the paper's
evaluated systems over the simulated cluster substrate:

- :mod:`repro.engines.spark` -- miniSpark: lazy RDD lineage, stages
  split at shuffles, broadcast variables, caching, spill-to-disk.
- :mod:`repro.engines.myria` -- miniMyria: shared-nothing relational
  engine with a MyriaL-subset parser, Python UDF/UDAs over a blob type,
  per-worker PostgreSQL-like storage with selection pushdown, and
  pipelined/materialized execution modes.
- :mod:`repro.engines.scidb` -- miniSciDB: chunked multidimensional
  arrays, an AFL-subset evaluator, ``from_array``/``aio_input`` ingest,
  and the ``stream()`` interface.
- :mod:`repro.engines.dask` -- miniDask: delayed compute graphs,
  dynamic locality-aware scheduling with work stealing, explicit
  barriers, no persistence layer.
- :mod:`repro.engines.tensorflow` -- miniTensorFlow: static tensor
  dataflow graphs, manual device placement, master-mediated data
  movement, and the 2 GB serialized-graph limit.
"""

from repro.engines.base import CostedFunction, Engine, nominal_bytes_of, udf

__all__ = ["CostedFunction", "Engine", "nominal_bytes_of", "udf"]
