"""Physical query execution for miniMyria.

A parsed MyriaL :class:`~repro.engines.myria.myrial.Program` executes
statement by statement across the workers.  Three execution modes model
the memory-management trade-off of Section 5.3.2 / Figure 15:

- ``"pipelined"`` -- intermediates stay in worker memory for the whole
  query (fastest; fails with :class:`OutOfMemoryError` when the data
  outgrows the cluster).
- ``"materialized"`` -- every statement's output is written to local
  disk and read back by the next (8-11% slower in the paper).
- ``"chunked"`` -- the materialized plan runs serially over ``chunks``
  subsets of the input (15-23% slower; survives the largest inputs).

Worker-per-node contention reproduces Figure 13: more workers increase
parallelism until they compete for cores, memory bandwidth and disk.
"""

from repro.cluster.errors import NodeCrashedError
from repro.cluster.faults import abort_recovery
from repro.cluster.task import Task
from repro.engines.myria.myrial import (
    Assign,
    Column,
    Emit,
    Scan,
    Store,
    UdfCall,
    Unnest,
)
from repro.engines.myria.operators import (
    RowContext,
    build_column_map,
    check_condition,
    evaluate,
    expression_cost,
    group_rows,
    hash_join,
    rows_bytes,
    shard_by_key,
    split_conditions,
)
from repro.engines.myria.relation import Schema
from repro.engines.myria.storage import ShardedRelation, WorkerStorage

EXECUTION_MODES = ("pipelined", "materialized", "chunked")


def _make_builtin_udfs():
    """Native aggregates, evaluated without Python UDF overhead."""
    from repro.engines.base import CostedFunction

    def per_row_cost(values):
        return len(values) * 2.0e-9  # one vectorized pass

    return {
        "__builtin_count": CostedFunction(
            lambda values: len(values), cost_fn=per_row_cost, name="COUNT"
        ),
        "__builtin_sum": CostedFunction(
            lambda values: sum(values), cost_fn=per_row_cost, name="SUM"
        ),
        "__builtin_min": CostedFunction(
            lambda values: min(values), cost_fn=per_row_cost, name="MIN"
        ),
        "__builtin_max": CostedFunction(
            lambda values: max(values), cost_fn=per_row_cost, name="MAX"
        ),
        "__builtin_avg": CostedFunction(
            lambda values: sum(values) / len(values),
            cost_fn=per_row_cost, name="AVG",
        ),
    }


class _ScanRef:
    """Lazy reference to a stored relation (enables pushdown)."""

    def __init__(self, sharded):
        self.sharded = sharded


class S3Relation:
    """A relation whose tuples live as staged S3 objects.

    "Myria can both directly process data stored in HDFS/S3 or ingest
    data into its own internal representation" (Section 2); the
    end-to-end experiments use the direct path ("we read the NumPy
    version of the input data directly from S3", Section 4.3).  Scans
    download each worker's share in parallel; there is no selection
    pushdown into S3 objects, so predicates evaluate after the load.
    """

    def __init__(self, name, schema, bucket, keys, loader, n_workers):
        self.name = name
        self.schema = schema
        self.bucket = bucket
        self.keys = list(keys)
        self.loader = loader
        self.n_workers = n_workers

    def worker_keys(self, worker):
        """This worker's share of the S3 object list."""
        return self.keys[worker::self.n_workers]


class Intermediate:
    """A computed relation held as per-worker shards."""

    def __init__(self, name, columns, shards, on_disk=False):
        self.name = name
        self.columns = list(columns)
        self.shards = shards
        self.on_disk = on_disk

    @property
    def total_rows(self):
        """Rows across all shards."""
        return sum(len(s) for s in self.shards)

    def shard_bytes(self, worker):
        """Nominal bytes held by one worker's shard."""
        return rows_bytes(self.shards[worker])

    def total_bytes(self):
        """Total stored bytes (optionally under a prefix)."""
        return sum(rows_bytes(s) for s in self.shards)


class MyriaServer:
    """The shared-nothing execution engine behind a connection."""

    def __init__(self, cluster, workers_per_node):
        self.cluster = cluster
        self.workers_per_node = int(workers_per_node)
        if self.workers_per_node <= 0:
            raise ValueError("workers_per_node must be positive")
        self.n_workers = cluster.spec.n_nodes * self.workers_per_node
        self.storages = []
        for worker in range(self.n_workers):
            node = self.worker_node(worker)
            self.storages.append(
                WorkerStorage(worker, node, cluster.nodes[node].disk)
            )
        self.catalog = {}
        self.udfs = _make_builtin_udfs()
        self._resident = []  # (node, alloc_id) pinned during a query
        self._stored_this_query = []  # tables STOREd by the running attempt
        # A worker crash aborts the running statement; the coordinator
        # resubmits the whole query once the node rejoins (Section 2).
        cluster.install_recovery(abort_recovery("myria-restart"))

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def worker_node(self, worker):
        """Cluster node hosting the given worker."""
        return self.cluster.node_order[worker // self.workers_per_node]

    def contention_factor(self):
        """CPU slowdown when workers compete on a node.

        Past half the cores, worker processes contend with each other
        and the JVM/OS for cores and memory bandwidth; calibrated so
        that 4 workers per node is optimal on 8-core nodes (Figure 13).
        """
        cores = self.cluster.spec.node.cores
        w = self.workers_per_node
        over = max(0, w - cores // 2)
        return 1.0 + 1.3 * over / max(1, cores // 2)

    def overlap_factor(self):
        """Within-worker pipelining speedup.

        A Myria worker runs its JVM operator pipeline and its Python
        UDF process concurrently, so one worker keeps up to two cores
        busy (but never more than its fair share of the node).  This is
        why 4 workers saturate an 8-core node (Figure 13) and why Myria
        matches Spark's throughput despite fewer worker slots.
        """
        cores = self.cluster.spec.node.cores
        return min(2.0, cores / self.workers_per_node)

    def cpu_time(self, seconds):
        """Worker-level CPU cost adjusted for overlap and contention."""
        return seconds * self.contention_factor() / self.overlap_factor()

    # ------------------------------------------------------------------
    # Catalog / ingest
    # ------------------------------------------------------------------

    def register_udf(self, name, fn):
        """Register a Python UDF/UDA under a name."""
        self.udfs[name] = fn

    def create_relation(self, name, schema, partition_column):
        """Create an empty sharded relation."""
        sharded = ShardedRelation(name, schema, partition_column, self.n_workers)
        self.catalog[name] = sharded
        for storage in self.storages:
            storage.create_table(name, schema)
        return sharded

    def insert_relation(self, relation, partition_column):
        """Insert a driver-side relation, hash-partitioned (used by tests
        and small metadata tables)."""
        sharded = self.create_relation(
            relation.name, relation.schema, partition_column
        )
        shards = sharded.shard_rows(relation.rows)
        cm = self.cluster.cost_model
        tasks = []
        for worker, rows in enumerate(shards):
            storage = self.storages[worker]

            def run(storage=storage, rows=rows):
                storage.insert_rows(relation.name, rows)

            nbytes = rows_bytes(rows)
            duration = (
                len(rows) * cm.myria_insert_per_tuple
                + cm.disk_write_time(nbytes) * self.workers_per_node
            )
            tasks.append(
                Task(
                    f"myria-insert-{relation.name}-w{worker}",
                    fn=run,
                    duration=duration,
                    node=self.worker_node(worker),
                    category="myria-ingest",
                )
            )
        with self.cluster.obs.span(
            f"myria-insert-{relation.name}", category="myria",
        ):
            self.cluster.run(tasks)
        return sharded

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    #: Restart budget for crash recovery: Myria has no mid-query
    #: checkpoints, so a worker crash means resubmitting the whole
    #: query once the node rejoins.
    MAX_QUERY_RESTARTS = 3

    def execute(self, program, mode="pipelined", chunks=1):
        """Run a parsed program; returns ``{name: Intermediate}`` for
        every assignment plus stored relations in the catalog.

        A worker-node crash aborts the running statement; the
        coordinator rolls back relations stored by the aborted attempt,
        waits for the node to rejoin, and resubmits the whole query (up
        to :data:`MAX_QUERY_RESTARTS` times).
        """
        if mode not in EXECUTION_MODES:
            raise ValueError(f"mode must be one of {EXECUTION_MODES}, got {mode!r}")
        if mode == "chunked" and chunks < 2:
            raise ValueError("chunked mode requires chunks >= 2")
        if mode != "chunked":
            chunks = 1

        with self.cluster.obs.span(
            "myria-query", category="myria", mode=mode, chunks=chunks,
        ):
            for attempt in range(self.MAX_QUERY_RESTARTS + 1):
                self.cluster.charge_master(
                    self.cluster.cost_model.myria_query_startup,
                    label="Myria query submit",
                    category="myria-coordinator",
                )
                self._stored_this_query = []
                try:
                    try:
                        return self._execute_program(program, mode, chunks)
                    finally:
                        self._release_resident()
                except NodeCrashedError as exc:
                    if attempt >= self.MAX_QUERY_RESTARTS or exc.recover_at is None:
                        raise
                    self._restart_after_crash(exc, attempt)

    def _execute_program(self, program, mode, chunks):
        if chunks == 1:
            return self._execute_once(program, mode, chunk=(0, 1))
        merged = {}
        for chunk_index in range(chunks):
            partial = self._execute_once(
                program, "materialized", chunk=(chunk_index, chunks)
            )
            for name, intermediate in partial.items():
                if name not in merged:
                    merged[name] = intermediate
                else:
                    for w in range(self.n_workers):
                        merged[name].shards[w].extend(
                            intermediate.shards[w]
                        )
        return merged

    def _restart_after_crash(self, exc, attempt):
        """Roll back the aborted attempt and wait for the node to rejoin."""
        from repro.obs.events import QueryRestarted

        for table in self._stored_this_query:
            self.catalog.pop(table, None)
            for storage in self.storages:
                if storage.has_table(table):
                    storage.drop_table(table)
        if exc.recover_at > self.cluster.now:
            self.cluster.charge_master(
                exc.recover_at - self.cluster.now,
                label="Myria restart wait",
                category="myria-restart",
            )
        if self.cluster.obs.events:
            self.cluster.obs.events.emit(
                QueryRestarted(
                    self.cluster.now, "Myria", attempt + 1,
                    f"node {exc.node} crashed",
                )
            )

    #: Safety bound for DO...WHILE loops (a query bug, not a data size,
    #: if an iterative analysis needs more).
    MAX_LOOP_ITERATIONS = 1000

    def _execute_once(self, program, mode, chunk):
        env = {}
        results = {}
        for statement in program.statements:
            self._execute_statement(statement, env, results, mode, chunk)
        return results

    def _execute_statement(self, statement, env, results, mode, chunk):
        from repro.engines.myria.myrial import DoWhile

        if isinstance(statement, Assign):
            if isinstance(statement.source, Scan):
                sharded = self.catalog.get(statement.source.table)
                if sharded is None:
                    raise KeyError(
                        f"unknown relation {statement.source.table!r}"
                    )
                env[statement.name] = _ScanRef(sharded)
            else:
                intermediate = self._run_query(
                    statement.name, statement.source, env, mode, chunk
                )
                env[statement.name] = intermediate
                results[statement.name] = intermediate
        elif isinstance(statement, Store):
            intermediate = env[statement.source]
            if isinstance(intermediate, _ScanRef):
                raise ValueError("STORE of a raw SCAN is not supported")
            self._store(intermediate, statement.table)
        elif isinstance(statement, DoWhile):
            for _iteration in range(self.MAX_LOOP_ITERATIONS):
                for inner in statement.body:
                    self._execute_statement(inner, env, results, mode, chunk)
                condition = env.get(statement.condition)
                if condition is None:
                    raise KeyError(
                        f"WHILE references unknown relation"
                        f" {statement.condition!r}"
                    )
                if isinstance(condition, _ScanRef):
                    raise ValueError("WHILE condition must be computed")
                if condition.total_rows == 0:
                    break
            else:
                raise RuntimeError(
                    f"DO...WHILE exceeded {self.MAX_LOOP_ITERATIONS} iterations"
                )
        else:
            raise TypeError(f"unknown statement {statement!r}")

    # -- query body -------------------------------------------------------

    def _run_query(self, name, query, env, mode, chunk):
        with self.cluster.obs.span(f"myria-{name}", category="myria"):
            return self._run_query_inner(name, query, env, mode, chunk)

    def _run_query_inner(self, name, query, env, mode, chunk):
        join_conditions, selections = split_conditions(query.conditions)

        if len(query.froms) == 1:
            shards, refs = self._resolve_input(
                query.froms[0], env, selections, chunk
            )
            selections_left = [] if self._pushed_down(query.froms[0], env) else selections
        elif len(query.froms) == 2:
            shards, refs = self._join_inputs(
                query.froms, env, join_conditions, selections, chunk
            )
            selections_left = [
                s for f in query.froms
                if not self._pushed_down(f, env)
                for s in selections
                if self._condition_alias(s) == f.name
            ]
        else:
            raise ValueError("queries over more than two relations are not supported")

        # Aggregation?  Implicit group-by when a UDA appears in emits.
        has_uda = any(
            isinstance(e, Emit)
            and isinstance(e.expr, UdfCall)
            and e.expr.kind == "UDA"
            for e in query.emits
        )
        has_unnest = any(isinstance(e, Unnest) for e in query.emits)
        if has_uda and has_unnest:
            raise ValueError("cannot mix UDA and UNNEST in one emit list")

        if has_uda:
            return self._aggregate(name, query, shards, refs, selections_left, mode)
        return self._project(
            name, query, shards, refs, selections_left, mode, flatmap=has_unnest
        )

    def _condition_alias(self, condition):
        for side in (condition.left, condition.right):
            if isinstance(side, Column) and side.alias:
                return side.alias
        return ""

    def _pushed_down(self, from_item, env):
        return isinstance(env.get(from_item.name), _ScanRef)

    def _resolve_input(self, from_item, env, selections, chunk):
        source = env.get(from_item.name)
        if source is None:
            raise KeyError(f"unknown relation alias {from_item.name!r}")
        if isinstance(source, _ScanRef):
            return self._scan_shards(
                from_item.name, source.sharded, selections, chunk
            )
        shards = [list(s) for s in source.shards]
        shards = self._select_chunk(shards, chunk)
        refs = build_column_map(from_item.name, source.columns)
        if source.on_disk:
            self._charge_shard_reads(source)
        return shards, refs

    def _select_chunk(self, shards, chunk):
        index, total = chunk
        if total == 1:
            return shards
        return [s[index::total] for s in shards]

    def _scan_shards(self, alias, sharded, selections, chunk):
        """Parallel storage scan with selection pushdown (Figure 12a)."""
        if isinstance(sharded, S3Relation):
            return self._scan_s3(alias, sharded, selections, chunk)
        cm = self.cluster.cost_model
        refs = build_column_map(alias, sharded.schema.columns)

        applicable = [
            s for s in selections if self._condition_alias(s) in ("", alias)
        ]

        def predicate(row):
            ctx = RowContext(refs, row)
            return all(check_condition(c, ctx, self.udfs) for c in applicable)

        shards = []
        tasks = []
        outputs = [None] * self.n_workers
        for worker in range(self.n_workers):
            storage = self.storages[worker]

            def run(worker=worker, storage=storage):
                rows, scanned, _matched = storage.scan(
                    sharded.name, predicate if applicable else None
                )
                outputs[worker] = (rows, scanned)
                return rows

            def cost(worker=worker, storage=storage):
                rows, scanned = outputs[worker]
                total = storage.row_count(sharded.name) * cm.myria_index_scan_per_tuple
                total += cm.disk_read_time(scanned) * self.workers_per_node
                total += cm.myria_operator_overhead
                return total * 1.0

            tasks.append(
                Task(
                    f"myria-scan-{sharded.name}-w{worker}",
                    fn=run,
                    duration=cost,
                    node=self.worker_node(worker),
                    category="myria-scan",
                    memoizable=True,
                )
            )
        results = self.cluster.run(tasks)
        for worker, task in enumerate(tasks):
            shards.append(results[task.task_id].value)
        shards = self._select_chunk(shards, chunk)
        return shards, refs

    def _scan_s3(self, alias, relation, selections, chunk):
        """Parallel S3 scan (no pushdown into opaque staged objects)."""
        cm = self.cluster.cost_model
        store = self.cluster.object_store
        refs = build_column_map(alias, relation.schema.columns)
        applicable = [
            s for s in selections if self._condition_alias(s) in ("", alias)
        ]

        def predicate(row):
            ctx = RowContext(refs, row)
            return all(check_condition(c, ctx, self.udfs) for c in applicable)

        tasks = []
        shards = []
        for worker in range(self.n_workers):
            keys = relation.worker_keys(worker)

            def run(keys=keys):
                rows = [relation.loader(store.get(relation.bucket, k)) for k in keys]
                if applicable:
                    rows = [r for r in rows if predicate(r)]
                return rows

            def cost(keys=keys):
                nbytes = sum(store.size_of(relation.bucket, k) for k in keys)
                # Workers on one node share its S3 bandwidth.
                total = self.cluster.network.s3_download_time(
                    nbytes, n_objects=max(1, len(keys))
                ) * self.workers_per_node
                total += cm.unpickle_time(nbytes)
                total += cm.myria_operator_overhead
                return total

            tasks.append(
                Task(
                    f"myria-s3scan-{relation.name}-w{worker}",
                    fn=run,
                    duration=cost,
                    node=self.worker_node(worker),
                    category="myria-ingest",
                    memoizable=True,
                )
            )
        results = self.cluster.run(tasks)
        for task in tasks:
            shards.append(results[task.task_id].value)
        shards = self._select_chunk(shards, chunk)
        return shards, refs

    def _join_inputs(self, froms, env, join_conditions, selections, chunk):
        """Two-way join: broadcast when flagged, else repartition both."""
        if not join_conditions:
            raise ValueError("joins require at least one equi-join condition")
        cm = self.cluster.cost_model

        sides = []
        for from_item in froms:
            shards, refs = self._resolve_input(from_item, env, selections, chunk)
            sides.append((from_item, shards, refs))

        broadcast_side = next(
            (i for i, (f, _s, _r) in enumerate(sides) if f.broadcast), None
        )
        if broadcast_side is not None:
            small = sides[broadcast_side]
            large = sides[1 - broadcast_side]
            small_rows = [row for shard in small[1] for row in shard]
            small_bytes = rows_bytes(small_rows)
            self.cluster.charge_master(
                self.cluster.network.broadcast_time(
                    small_bytes, self.cluster.spec.n_nodes
                ),
                label="Myria broadcast join",
                category="myria-shuffle",
            )
            left_refs = large[2]
            right_refs = build_column_map(
                small[0].name,
                list(self._ref_columns(small[2])),
                offset=len(self._ref_columns(left_refs)),
            )
            joined_shards = [
                hash_join(
                    shard, large[2], small_rows, small[2], join_conditions, self.udfs
                )
                for shard in large[1]
            ]
            refs = dict(left_refs)
            for (alias, col), idx in small[2].items():
                if alias:
                    refs[(alias, col)] = idx + len(self._ref_columns(left_refs))
                    refs.setdefault((
                        "", col), idx + len(self._ref_columns(left_refs)))
            return joined_shards, refs

        # Repartition join: shuffle both sides on the join key.
        left_item, left_shards, left_refs = sides[0]
        right_item, right_shards, right_refs = sides[1]
        left_key_cols, right_key_cols = self._join_key_indices(
            join_conditions, left_item.name, left_refs, right_item.name, right_refs
        )
        left_re = self._shuffle(left_shards, left_key_cols, "join-left")
        right_re = self._shuffle(right_shards, right_key_cols, "join-right")
        n_left_cols = len(self._ref_columns(left_refs))
        joined_shards = [
            hash_join(lrows, left_refs, rrows, right_refs, join_conditions, self.udfs)
            for lrows, rrows in zip(left_re, right_re)
        ]
        refs = dict(left_refs)
        for (alias, col), idx in right_refs.items():
            if alias:
                refs[(alias, col)] = idx + n_left_cols
                refs.setdefault(("", col), idx + n_left_cols)
        return joined_shards, refs

    def _join_key_indices(self, join_conditions, left_alias, left_refs,
                          right_alias, right_refs):
        left_cols, right_cols = [], []
        for condition in join_conditions:
            a, b = condition.left, condition.right
            if a.alias == left_alias:
                left_cols.append(left_refs[(a.alias, a.name)])
                right_cols.append(right_refs[(b.alias, b.name)])
            else:
                left_cols.append(left_refs[(b.alias, b.name)])
                right_cols.append(right_refs[(a.alias, a.name)])
        return left_cols, right_cols

    @staticmethod
    def _ref_columns(refs):
        """Distinct column positions covered by a reference map."""
        return sorted({idx for _key, idx in refs.items()})

    # -- shuffle ---------------------------------------------------------

    def _shuffle(self, shards, key_indices, label):
        """Hash-repartition shards by key; charges network + (de)serialization."""
        with self.cluster.obs.span(f"myria-shuffle-{label}", category="myria"):
            return self._shuffle_inner(shards, key_indices, label)

    def _shuffle_inner(self, shards, key_indices, label):
        cm = self.cluster.cost_model
        n_nodes = self.cluster.spec.n_nodes
        remote_fraction = (n_nodes - 1) / n_nodes if n_nodes > 1 else 0.0
        new_shards = [[] for _w in range(self.n_workers)]
        for rows in shards:
            for dest, rows_out in enumerate(shard_by_key(rows, key_indices, self.n_workers)):
                new_shards[dest].extend(rows_out)

        tasks = []
        for worker in range(self.n_workers):
            nbytes = rows_bytes(new_shards[worker])
            # Workers sharing a node also share its NIC during the
            # all-to-all exchange.
            duration = (
                cm.pickle_time(nbytes)
                + self.cluster.network.transfer_time(
                    int(nbytes * remote_fraction), "shuffle-src", "shuffle-dst"
                ) * self.workers_per_node
                + cm.unpickle_time(nbytes)
                + cm.myria_operator_overhead
            )
            tasks.append(
                Task(
                    f"myria-shuffle-{label}-w{worker}",
                    duration=duration,
                    node=self.worker_node(worker),
                    category="myria-shuffle",
                )
            )
        self.cluster.run(tasks)
        return new_shards

    # -- projection / flatmap / aggregation -------------------------------

    def _project(self, name, query, shards, refs, selections, mode, flatmap):
        out_columns = self._output_columns(query)
        tasks = []
        cm = self.cluster.cost_model

        for worker in range(self.n_workers):
            rows = shards[worker]

            def run(worker=worker, rows=rows):
                out = []
                for row in rows:
                    ctx = RowContext(refs, row)
                    if not all(
                        check_condition(c, ctx, self.udfs) for c in selections
                    ):
                        continue
                    if flatmap:
                        out.extend(self._emit_flatmap(query.emits, ctx))
                    else:
                        out.append(self._emit_row(query.emits, ctx))
                return out

            def cost(worker=worker, rows=rows):
                cpu = 0.0
                for row in rows:
                    ctx = RowContext(refs, row)
                    if not all(
                        check_condition(c, ctx, self.udfs) for c in selections
                    ):
                        continue
                    for emit in query.emits:
                        expr = emit.call if isinstance(emit, Unnest) else emit.expr
                        cpu += expression_cost(expr, ctx, self.udfs)
                return self.cpu_time(cpu) + cm.myria_operator_overhead

            tasks.append(
                Task(
                    f"myria-{name}-w{worker}",
                    fn=run,
                    duration=cost,
                    node=self.worker_node(worker),
                    category=f"myria-{name}",
                    memoizable=True,
                )
            )
        results = self.cluster.run(tasks)
        out_shards = [results[task.task_id].value for task in tasks]
        intermediate = Intermediate(name, out_columns, out_shards)
        self._account_intermediate(intermediate, mode)
        return intermediate

    def _aggregate(self, name, query, shards, refs, selections, mode):
        """Implicit group-by: shuffle on key columns, then run the UDA."""
        key_emits = [
            e for e in query.emits
            if not (isinstance(e.expr, UdfCall) and e.expr.kind == "UDA")
        ]
        uda_emits = [
            e for e in query.emits
            if isinstance(e.expr, UdfCall) and e.expr.kind == "UDA"
        ]

        # Phase 1: evaluate selections, project (key..., uda-args...).
        pre_shards = []
        for rows in shards:
            out = []
            for row in rows:
                ctx = RowContext(refs, row)
                if not all(check_condition(c, ctx, self.udfs) for c in selections):
                    continue
                key = tuple(evaluate(e.expr, ctx, self.udfs) for e in key_emits)
                args = tuple(
                    tuple(evaluate(a, ctx, self.udfs) for a in e.expr.args)
                    for e in uda_emits
                )
                out.append(key + (args,))
            pre_shards.append(out)

        key_indices = list(range(len(key_emits)))
        shuffled = self._shuffle(pre_shards, key_indices, f"groupby-{name}")

        out_columns = self._output_columns(query)
        cm = self.cluster.cost_model

        tasks = []
        for worker in range(self.n_workers):
            rows = shuffled[worker]

            def run(worker=worker, rows=rows):
                groups = group_rows(rows, key_indices)
                out = []
                for key, members in groups.items():
                    aggregated = []
                    for uda_index, emit in enumerate(uda_emits):
                        fn = self.udfs[emit.expr.fname]
                        arg_lists = list(zip(*(m[-1][uda_index] for m in members)))
                        aggregated.append(fn(*arg_lists))
                    out.append(tuple(key) + tuple(aggregated))
                return out

            def cost(worker=worker, rows=rows):
                groups = group_rows(rows, key_indices)
                cpu = 0.0
                for _key, members in groups.items():
                    for uda_index, emit in enumerate(uda_emits):
                        fn = self.udfs[emit.expr.fname]
                        arg_lists = list(zip(*(m[-1][uda_index] for m in members)))
                        cpu += fn.cost(*arg_lists)
                return self.cpu_time(cpu) + cm.myria_operator_overhead

            tasks.append(
                Task(
                    f"myria-uda-{name}-w{worker}",
                    fn=run,
                    duration=cost,
                    node=self.worker_node(worker),
                    category=f"myria-{name}",
                    memoizable=True,
                )
            )
        results = self.cluster.run(tasks)
        out_shards = [results[task.task_id].value for task in tasks]
        intermediate = Intermediate(name, out_columns, out_shards)
        self._account_intermediate(intermediate, mode)
        return intermediate

    def _emit_row(self, emits, ctx):
        return tuple(evaluate(e.expr, ctx, self.udfs) for e in emits)

    def _emit_flatmap(self, emits, ctx):
        """UNNEST semantics: the PYUDF returns an iterable of tuples;
        any sibling plain emits are appended to every produced row."""
        unnests = [e for e in emits if isinstance(e, Unnest)]
        plains = [e for e in emits if isinstance(e, Emit)]
        if len(unnests) != 1:
            raise ValueError("exactly one UNNEST per emit list is supported")
        produced = evaluate(unnests[0].call, ctx, self.udfs)
        suffix = tuple(evaluate(e.expr, ctx, self.udfs) for e in plains)
        out = []
        for item in produced:
            item = tuple(item) if isinstance(item, (tuple, list)) else (item,)
            if len(item) != len(unnests[0].aliases):
                raise ValueError(
                    f"UNNEST produced arity {len(item)}, expected"
                    f" {len(unnests[0].aliases)}"
                )
            out.append(item + suffix)
        return out

    def _output_columns(self, query):
        columns = []
        for index, emit in enumerate(query.emits):
            if isinstance(emit, Unnest):
                columns.extend(emit.aliases)
            elif emit.alias:
                columns.append(emit.alias)
            elif isinstance(emit.expr, Column):
                columns.append(emit.expr.name)
            else:
                columns.append(f"col{index}")
        return columns

    # -- memory / materialization accounting -------------------------------

    def _account_intermediate(self, intermediate, mode):
        cm = self.cluster.cost_model
        if mode == "pipelined":
            # Intermediates stay resident until the query finishes.
            for worker in range(self.n_workers):
                nbytes = intermediate.shard_bytes(worker)
                if nbytes == 0:
                    continue
                node = self.cluster.node(self.worker_node(worker))
                alloc = node.memory.allocate(
                    nbytes, f"pipelined-{intermediate.name}"
                )
                self._resident.append((node, alloc))
        else:
            # Materialize to local disk: charge parallel writes.
            intermediate.on_disk = True
            tasks = []
            for worker in range(self.n_workers):
                nbytes = intermediate.shard_bytes(worker)
                tasks.append(
                    Task(
                        f"myria-materialize-{intermediate.name}-w{worker}",
                        duration=cm.disk_write_time(nbytes) * self.workers_per_node,
                        node=self.worker_node(worker),
                        category="myria-materialize",
                    )
                )
            self.cluster.run(tasks)

    def _charge_shard_reads(self, intermediate):
        cm = self.cluster.cost_model
        tasks = []
        for worker in range(self.n_workers):
            nbytes = intermediate.shard_bytes(worker)
            tasks.append(
                Task(
                    f"myria-read-{intermediate.name}-w{worker}",
                    duration=cm.disk_read_time(nbytes) * self.workers_per_node,
                    node=self.worker_node(worker),
                    category="myria-materialize",
                )
            )
        self.cluster.run(tasks)

    def _release_resident(self):
        for node, alloc in self._resident:
            node.memory.free(alloc)
        self._resident.clear()

    # -- store ------------------------------------------------------------

    def _store(self, intermediate, table):
        schema = Schema(intermediate.columns)
        partition_column = intermediate.columns[0]
        sharded = ShardedRelation(table, schema, partition_column, self.n_workers)
        self.catalog[table] = sharded
        self._stored_this_query.append(table)
        cm = self.cluster.cost_model
        all_rows = [row for shard in intermediate.shards for row in shard]
        shards = sharded.shard_rows(all_rows)
        tasks = []
        for worker, rows in enumerate(shards):
            storage = self.storages[worker]
            if not storage.has_table(table):
                storage.create_table(table, schema)

            def run(storage=storage, rows=rows):
                storage.insert_rows(table, rows)

            nbytes = rows_bytes(rows)
            tasks.append(
                Task(
                    f"myria-store-{table}-w{worker}",
                    fn=run,
                    duration=(
                        len(rows) * cm.myria_insert_per_tuple
                        + cm.disk_write_time(nbytes) * self.workers_per_node
                    ),
                    node=self.worker_node(worker),
                    category="myria-store",
                )
            )
        self.cluster.run(tasks)
