"""miniMyria: a shared-nothing parallel relational DBMS.

Reimplements the Myria model of Section 2: relations hash-partitioned
across per-node workers backed by PostgreSQL-like local storage, queries
written in a MyriaL subset (imperative-declarative hybrid), Python
UDF/UDA support over a blob column type holding NumPy arrays, and
operator pipelining with optional intermediate materialization -- the
memory-management trade-off of Figure 15.
"""

from repro.engines.myria.connection import MyriaConnection, MyriaQuery
from repro.engines.myria.relation import Relation, Schema

__all__ = ["MyriaConnection", "MyriaQuery", "Relation", "Schema"]
