"""Relations, schemas and the blob column type.

"To support Python user-defined functions, Myria supports the blob data
type, which allows users to write queries that directly manipulate
NumPy arrays or other specialized data types by storing them as blobs."
(Section 2.)  Any non-scalar Python object in a column -- in practice
:class:`~repro.formats.sizing.SizedArray` volumes -- is a blob here.
"""

import numpy as np

from repro.engines.base import nominal_bytes_of
from repro.formats.sizing import SizedArray

#: Column type tags.
LONG = "LONG"
DOUBLE = "DOUBLE"
STRING = "STRING"
BLOB = "BLOB"


def infer_type(value):
    """Infer type."""
    if isinstance(value, bool):
        return LONG
    if isinstance(value, (int, np.integer)):
        return LONG
    if isinstance(value, (float, np.floating)):
        return DOUBLE
    if isinstance(value, str):
        return STRING
    return BLOB


class Schema:
    """Ordered column names with type tags."""

    def __init__(self, columns, types=None):
        self.columns = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column names in {self.columns}")
        if types is None:
            types = (None,) * len(self.columns)
        self.types = tuple(types)
        if len(self.types) != len(self.columns):
            raise ValueError("types and columns must have equal length")

    def index_of(self, column):
        """Position of a column; raises ``KeyError`` if absent."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise KeyError(
                f"no column {column!r}; schema has {self.columns}"
            ) from None

    def type_of(self, column):
        """Type tag of a column."""
        return self.types[self.index_of(column)]

    def __len__(self):
        return len(self.columns)

    def __eq__(self, other):
        return isinstance(other, Schema) and other.columns == self.columns

    def __repr__(self):
        return f"Schema({list(self.columns)})"


class Relation:
    """An in-memory relation: a schema plus a list of row tuples."""

    def __init__(self, name, schema, rows=None):
        self.name = name
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        self.rows = list(rows or [])
        for row in self.rows:
            if len(row) != len(self.schema):
                raise ValueError(
                    f"row arity {len(row)} does not match schema"
                    f" {len(self.schema)}"
                )

    @classmethod
    def from_rows(cls, name, columns, rows):
        """Build a relation, inferring column types from row 0."""
        rows = [tuple(r) for r in rows]
        types = None
        if rows:
            types = tuple(infer_type(v) for v in rows[0])
        return cls(name, Schema(columns, types), rows)

    def column(self, name):
        """Values of one column across all rows."""
        idx = self.schema.index_of(name)
        return [row[idx] for row in self.rows]

    def nominal_bytes(self):
        """Size in bytes at the paper's nominal data scale."""
        return sum(nominal_bytes_of(row) for row in self.rows)

    def blob_columns(self):
        """Indices of columns holding blobs (by inspection of row 0)."""
        if not self.rows:
            return []
        return [
            i
            for i, value in enumerate(self.rows[0])
            if isinstance(value, (SizedArray, np.ndarray))
        ]

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self):
        return f"Relation({self.name!r}, {len(self.rows)} rows, {self.schema})"
