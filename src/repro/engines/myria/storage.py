"""Per-worker PostgreSQL-like local storage.

"Myria uses the relational data model and PostgreSQL as its node-local
storage subsystem." (Section 2.)  Relations are hash-partitioned across
workers; each worker's shard lives on its node's simulated disk.  The
storage layer supports *selection pushdown* on scalar columns: "Myria
pushes the selection down to PostgreSQL, which efficiently scans the
data and returns only the matching records" (Section 5.2.2) -- the
reason Myria wins the filter microbenchmark of Figure 12a.
"""

from repro.engines.base import nominal_bytes_of
from repro.engines.spark.partitioner import stable_hash


class WorkerStorage:
    """One worker's PostgreSQL instance (a shard store on local disk)."""

    def __init__(self, worker_id, node, disk):
        self.worker_id = worker_id
        self.node = node
        self.disk = disk
        self._tables = {}

    def create_table(self, name, schema):
        """Create an empty shard for a relation."""
        self._tables[name] = (schema, [])
        self.disk.write(self._path(name), [], 0)

    def insert_rows(self, name, rows):
        """Append rows to a shard; returns (n_rows, nominal_bytes)."""
        schema, existing = self._tables[name]
        existing.extend(rows)
        nbytes = sum(nominal_bytes_of(r) for r in existing)
        self.disk.write(self._path(name), existing, nbytes)
        return len(rows), sum(nominal_bytes_of(r) for r in rows)

    def has_table(self, name):
        """Whether this worker stores the named shard."""
        return name in self._tables

    def row_count(self, name):
        """Rows currently in this worker's shard."""
        return len(self._tables[name][1])

    def shard_bytes(self, name):
        """Nominal bytes held by one worker's shard."""
        return self.disk.size_of(self._path(name))

    def scan(self, name, predicate=None):
        """Read the shard, optionally filtering with a row predicate.

        Returns ``(rows, scanned_bytes, matched_bytes)``: with a
        predicate, the scalar columns are index-scanned and only
        matching rows' blob bytes are read from disk (pushdown); without
        one, the full shard is read.
        """
        schema, rows = self._tables[name]
        if predicate is None:
            nbytes = self.shard_bytes(name)
            self.disk.bytes_read += nbytes
            return list(rows), nbytes, nbytes
        matching = [r for r in rows if predicate(r)]
        matched_bytes = sum(nominal_bytes_of(r) for r in matching)
        self.disk.bytes_read += matched_bytes
        return matching, matched_bytes, matched_bytes

    def drop_table(self, name):
        """Delete a shard from this worker."""
        del self._tables[name]
        self.disk.delete(self._path(name))

    def _path(self, name):
        return f"myria/worker{self.worker_id}/{name}"


class ShardedRelation:
    """Catalog entry: a relation hash-partitioned across all workers."""

    def __init__(self, name, schema, partition_column, n_workers):
        self.name = name
        self.schema = schema
        self.partition_column = partition_column
        self.n_workers = n_workers

    def worker_for(self, row):
        """Owning worker of one row (hash partitioning)."""
        idx = self.schema.index_of(self.partition_column)
        return stable_hash(row[idx]) % self.n_workers

    def shard_rows(self, rows):
        """Split rows into per-worker shards by the partition column."""
        shards = [[] for _worker in range(self.n_workers)]
        for row in rows:
            shards[self.worker_for(row)].append(row)
        return shards

    def __repr__(self):
        return (
            f"ShardedRelation({self.name!r}, partitioned by"
            f" {self.partition_column!r} over {self.n_workers} workers)"
        )
