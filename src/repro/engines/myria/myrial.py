"""Parser for the MyriaL subset used by the paper's pipelines.

MyriaL is Myria's "imperative-declarative hybrid language, with SQL-like
declarative query constructs and imperative statements" (Section 2).
The subset covers everything Figure 7 and the two use cases need:

.. code-block:: text

    T1 = SCAN(Images);
    T2 = SCAN(Mask);
    Joined = [SELECT T1.subjId, T1.imgId, T1.img, T2.mask
              FROM T1, BROADCAST(T2)
              WHERE T1.subjId = T2.subjId];
    Denoised = [FROM Joined EMIT
                PYUDF(Denoise, Joined.img, Joined.mask) AS img,
                Joined.subjId, Joined.imgId];
    Blocks = [FROM Denoised EMIT
              UNNEST(PYUDF(Repart, Denoised.img)) AS (subjId, blockId, block)];
    Fitted = [FROM Blocks EMIT Blocks.subjId, Blocks.blockId,
              UDA(FitModel, Blocks.block) AS fa];
    STORE(Fitted, Results);

Aggregation is implicit: when an emit list contains a ``UDA`` call, the
remaining emitted columns form the grouping key (Myria's Python UDAs,
Section 4.3).
"""

import re
from dataclasses import dataclass, field

KEYWORDS = {
    "SCAN", "SELECT", "FROM", "WHERE", "EMIT", "AS", "AND", "STORE",
    "PYUDF", "UDA", "UNNEST", "BROADCAST", "DO", "WHILE",
    "COUNT", "SUM", "MIN", "MAX", "AVG",
}

#: Built-in aggregate keywords (parsed like UDAs, evaluated natively).
BUILTIN_AGGREGATES = ("COUNT", "SUM", "MIN", "MAX", "AVG")

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<string>'[^']*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[\[\](),;.])
    """,
    re.VERBOSE,
)


class MyriaLSyntaxError(Exception):
    """Raised on malformed MyriaL input, with position context."""


@dataclass(frozen=True)
class Token:
    """Token."""
    kind: str
    value: str
    position: int


def tokenize(text):
    """Split source text into tokens."""
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise MyriaLSyntaxError(
                f"unexpected character {text[pos]!r} at offset {pos}"
            )
        kind = match.lastgroup
        value = match.group()
        pos = match.end()
        if kind in ("ws", "comment"):
            continue
        if kind == "name" and value.upper() in KEYWORDS:
            tokens.append(Token("keyword", value.upper(), match.start()))
        else:
            tokens.append(Token(kind, value, match.start()))
    return tokens


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------

@dataclass
class Program:
    """Program."""
    statements: list


@dataclass
class Assign:
    """Assign."""
    name: str
    source: object  # Scan or Query


@dataclass
class Store:
    """Store."""
    source: str
    table: str


@dataclass
class Scan:
    """Scan."""
    table: str


@dataclass
class FromItem:
    """Fromitem."""
    name: str
    broadcast: bool = False


@dataclass
class Query:
    """Query."""
    froms: list
    conditions: list
    emits: list


@dataclass
class Column:
    """Column."""
    alias: str  # may be "" for unqualified
    name: str


@dataclass
class Literal:
    """Literal."""
    value: object


@dataclass
class UdfCall:
    """Udfcall."""
    kind: str  # "PYUDF" or "UDA"
    fname: str
    args: list


@dataclass
class Emit:
    """Emit."""
    expr: object
    alias: str = ""


@dataclass
class Unnest:
    """Unnest."""
    call: UdfCall
    aliases: list = field(default_factory=list)


@dataclass
class Condition:
    """Condition."""
    left: object
    op: str
    right: object

    def is_join(self):
        """Whether this condition compares two relations."""
        return isinstance(self.left, Column) and isinstance(self.right, Column)


@dataclass
class DoWhile:
    """MyriaL's imperative loop: ``DO <statements> WHILE <relation>;``.

    The body repeats while the named relation (recomputed by the body)
    is non-empty -- Section 2: MyriaL mixes "SQL-like declarative query
    constructs and imperative statements such as loops".
    """

    body: list
    condition: str


# ----------------------------------------------------------------------
# Recursive-descent parser
# ----------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self):
        token = self._peek()
        if token is None:
            raise MyriaLSyntaxError("unexpected end of input")
        self.pos += 1
        return token

    def _expect(self, kind, value=None):
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            raise MyriaLSyntaxError(
                f"expected {value or kind} at offset {token.position},"
                f" got {token.value!r}"
            )
        return token

    def _accept(self, kind, value=None):
        token = self._peek()
        if token and token.kind == kind and (value is None or token.value == value):
            self.pos += 1
            return token
        return None

    # -- grammar ----------------------------------------------------------

    def parse_program(self):
        """Parse a full program (one or more statements)."""
        statements = []
        while self._peek() is not None:
            statements.append(self._statement())
            self._accept("punct", ";")
        if not statements:
            raise MyriaLSyntaxError("empty program")
        return Program(statements)

    def _statement(self):
        if self._accept("keyword", "DO"):
            body = []
            while not self._accept("keyword", "WHILE"):
                body.append(self._statement())
                self._accept("punct", ";")
                if self._peek() is None:
                    raise MyriaLSyntaxError("DO block missing WHILE")
            condition = self._expect("name").value
            if not body:
                raise MyriaLSyntaxError("empty DO body")
            return DoWhile(body, condition)
        if self._accept("keyword", "STORE"):
            self._expect("punct", "(")
            source = self._expect("name").value
            self._expect("punct", ",")
            table = self._expect("name").value
            self._expect("punct", ")")
            return Store(source, table)
        name = self._expect("name").value
        self._expect("op", "=")
        if self._accept("keyword", "SCAN"):
            self._expect("punct", "(")
            table = self._expect("name").value
            self._expect("punct", ")")
            return Assign(name, Scan(table))
        self._expect("punct", "[")
        query = self._query()
        self._expect("punct", "]")
        return Assign(name, query)

    def _query(self):
        if self._accept("keyword", "SELECT"):
            emits = self._emit_list()
            self._expect("keyword", "FROM")
            froms = self._from_list()
            conditions = self._opt_where()
            return Query(froms, conditions, emits)
        self._expect("keyword", "FROM")
        froms = self._from_list()
        conditions = self._opt_where()
        self._expect("keyword", "EMIT")
        emits = self._emit_list()
        return Query(froms, conditions, emits)

    def _from_list(self):
        items = [self._from_item()]
        while self._accept("punct", ","):
            items.append(self._from_item())
        return items

    def _from_item(self):
        if self._accept("keyword", "BROADCAST"):
            self._expect("punct", "(")
            name = self._expect("name").value
            self._expect("punct", ")")
            return FromItem(name, broadcast=True)
        return FromItem(self._expect("name").value)

    def _opt_where(self):
        if not self._accept("keyword", "WHERE"):
            return []
        conditions = [self._condition()]
        while self._accept("keyword", "AND"):
            conditions.append(self._condition())
        return conditions

    def _condition(self):
        left = self._expr()
        op = self._expect("op").value
        right = self._expr()
        return Condition(left, op, right)

    def _emit_list(self):
        emits = [self._emit()]
        while self._accept("punct", ","):
            emits.append(self._emit())
        return emits

    def _emit(self):
        if self._accept("keyword", "UNNEST"):
            self._expect("punct", "(")
            call = self._expr()
            if not isinstance(call, UdfCall) or call.kind != "PYUDF":
                raise MyriaLSyntaxError("UNNEST expects a PYUDF call")
            self._expect("punct", ")")
            self._expect("keyword", "AS")
            self._expect("punct", "(")
            aliases = [self._expect("name").value]
            while self._accept("punct", ","):
                aliases.append(self._expect("name").value)
            self._expect("punct", ")")
            return Unnest(call, aliases)
        expr = self._expr()
        alias = ""
        if self._accept("keyword", "AS"):
            alias = self._expect("name").value
        return Emit(expr, alias)

    def _expr(self):
        token = self._peek()
        if token is None:
            raise MyriaLSyntaxError("unexpected end of input in expression")
        if token.kind == "keyword" and token.value in ("PYUDF", "UDA"):
            self._next()
            self._expect("punct", "(")
            fname = self._expect("name").value
            args = []
            while self._accept("punct", ","):
                args.append(self._expr())
            self._expect("punct", ")")
            return UdfCall(token.value, fname, args)
        if token.kind == "keyword" and token.value in BUILTIN_AGGREGATES:
            self._next()
            self._expect("punct", "(")
            args = [self._expr()]
            self._expect("punct", ")")
            # Built-ins behave like single-argument UDAs with reserved
            # names, so the planner's implicit group-by applies.
            return UdfCall("UDA", f"__builtin_{token.value.lower()}", args)
        if token.kind == "number":
            self._next()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.kind == "string":
            self._next()
            return Literal(token.value[1:-1])
        name = self._expect("name").value
        if self._accept("punct", "."):
            column = self._expect("name").value
            return Column(name, column)
        return Column("", name)


def parse(text):
    """Parse MyriaL text into a :class:`Program`."""
    return _Parser(tokenize(text)).parse_program()
