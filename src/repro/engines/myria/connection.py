"""Client API for miniMyria: ``MyriaConnection`` and ``MyriaQuery``.

Mirrors the usage in the paper's Figure 7:

.. code-block:: python

    conn = MyriaConnection(cluster)
    conn.create_function("Denoise", denoise_udf)
    query = MyriaQuery.submit(conn, '''
        T1 = SCAN(Images); ...
    ''')
"""

from repro.engines.base import Engine, as_costed, nominal_bytes_of
from repro.engines.myria.myrial import parse
from repro.engines.myria.plan import MyriaServer
from repro.engines.myria.relation import Relation, Schema
from repro.cluster.task import Task

#: The paper's tuned optimum: "four workers per node yields the best
#: results" (Section 5.3.1, Figure 13).
DEFAULT_WORKERS_PER_NODE = 4


class MyriaConnection(Engine):
    """A connection to a miniMyria deployment on a simulated cluster."""

    name = "Myria"

    def __init__(self, cluster, workers_per_node=DEFAULT_WORKERS_PER_NODE):
        super().__init__(cluster)
        self.server = MyriaServer(cluster, workers_per_node)

    def startup_cost(self):
        # Myria is a long-running service; per-query submission costs are
        # charged by the server instead.
        """One-time engine startup in simulated seconds."""
        return 0.0

    # ------------------------------------------------------------------
    # Functions and relations
    # ------------------------------------------------------------------

    def create_function(self, name, fn):
        """Register a Python UDF or UDA under ``name`` (Figure 7 line 2)."""
        self.server.register_udf(name, as_costed(fn))

    def ingest_relation(self, relation, partition_column):
        """Ingest a driver-side :class:`Relation` (small tables)."""
        return self.server.insert_relation(relation, partition_column)

    def register_s3_relation(self, table, bucket, columns, loader, prefix="",
                             keys=None):
        """Expose staged S3 objects as a scannable relation without
        ingesting them (the end-to-end path of Section 4.3).

        ``keys`` restricts the relation to an explicit object list --
        Myria "can directly work with a csv list of files", so callers
        that know which files matter (e.g. one sky band's exposures)
        hand over just those.
        """
        from repro.engines.myria.plan import S3Relation
        from repro.engines.myria.relation import Schema

        store = self.cluster.object_store
        if keys is None:
            keys = store.list_keys(bucket, prefix)
        if not keys:
            raise ValueError(f"no objects under s3://{bucket}/{prefix}")
        relation = S3Relation(
            table, Schema(columns), bucket, keys, loader, self.server.n_workers
        )
        self.server.catalog[table] = relation
        return relation

    def ingest_s3(self, table, bucket, columns, loader, partition_column,
                  prefix=""):
        """Parallel S3 ingest into per-worker PostgreSQL storage.

        Each worker downloads its share of the object list directly --
        "Myria can directly work with a csv list of files avoiding
        overhead" (Section 5.2.1), so unlike Spark no master-side
        listing cost is charged.  ``loader`` maps a stored object to a
        row tuple.
        """
        store = self.cluster.object_store
        keys = store.list_keys(bucket, prefix)
        if not keys:
            raise ValueError(f"no objects under s3://{bucket}/{prefix}")
        server = self.server
        schema = Schema(columns)
        sharded = server.create_relation(table, schema, partition_column)
        cm = self.cluster.cost_model

        groups = [keys[w::server.n_workers] for w in range(server.n_workers)]
        tasks = []
        for worker, group in enumerate(groups):
            storage = server.storages[worker]

            def run(worker=worker, group=group, storage=storage):
                rows = [loader(store.get(bucket, key)) for key in group]
                storage.insert_rows(table, rows)
                return rows

            def cost(worker=worker, group=group):
                nbytes = sum(store.size_of(bucket, key) for key in group)
                rows = [loader(store.get(bucket, key)) for key in group]
                total = self.cluster.network.s3_download_time(
                    nbytes, n_objects=max(1, len(group))
                ) * server.workers_per_node
                total += len(rows) * cm.myria_insert_per_tuple
                row_bytes = sum(nominal_bytes_of(r) for r in rows)
                total += cm.disk_write_time(row_bytes) * server.workers_per_node
                return total

            tasks.append(
                Task(
                    f"myria-ingest-{table}-w{worker}",
                    fn=run,
                    duration=cost,
                    node=server.worker_node(worker),
                )
            )
        self.cluster.run(tasks)
        return sharded


class MyriaQuery:
    """A submitted MyriaL query and its results."""

    def __init__(self, connection, results):
        self.connection = connection
        self.results = results

    @classmethod
    def submit(cls, connection, text, mode="pipelined", chunks=1):
        """Parse and execute MyriaL ``text``; returns a MyriaQuery.

        ``mode``/``chunks`` select the memory-management strategy of
        Figure 15 ("pipelined", "materialized", or "chunked").
        """
        program = parse(text)
        results = connection.server.execute(program, mode=mode, chunks=chunks)
        return cls(connection, results)

    def relation(self, name):
        """Gather one result as a driver-side :class:`Relation`.

        Charges the network cost of collecting shards at the
        coordinator.
        """
        intermediate = self.results[name]
        cluster = self.connection.cluster
        total = intermediate.total_bytes()
        cluster.charge_master(
            cluster.cost_model.unpickle_time(total)
            + cluster.network.transfer_time(total, "workers", "coordinator"),
            label="Myria collect",
            category="myria-coordinator",
        )
        rows = [row for shard in intermediate.shards for row in shard]
        return Relation(name, Schema(intermediate.columns), rows)

    def shards(self, name):
        """Per-worker shards left in place (worker-memory materialization)."""
        return self.results[name].shards
