"""The astro plan lowered to miniMyria (Section 4.3).

MyriaL drives the plan; reference step functions run as Python
UDFs/UDAs.  Patch ids travel as key columns (Myria supports arbitrary
hashable keys through its shuffle), visits as longs, image payloads as
blobs.

Lowering contract notes: the MyriaL text is emitted from the logical
plan by :func:`pipeline_query`.  The ``stitch`` and ``coadd`` group_bys
lower to Myria UDAs fed by the engine's hash shuffle; multi-query
execution (Figure 15) additionally restricts the plan to patch-column
bands with the ``x0`` pushdown — a physical rewrite the plan permits
because patches are independent.
"""

from repro.engines.base import udf
from repro.engines.myria.connection import MyriaQuery
from repro.pipelines import common
from repro.pipelines.astro import reference as ref
from repro.pipelines.astro.staging import DEFAULT_BUCKET
from repro.plan.astro import astro_plan
from repro.plan.memo import materialize_scope, visit_token

EXPOSURES_COLUMNS = ("expId", "visit", "sensor", "x0", "img")


def _lines(*parts):
    return "\n".join(("",) + parts + ("",))


def pipeline_query(plan):
    """Emit the full-sky MyriaL pipeline from the logical plan."""
    for op_id, kind in (("preprocess", "map"), ("patches", "flat_map"),
                        ("stitch", "group_by"), ("coadd", "group_by"),
                        ("detect", "map"), ("sources", "materialize")):
        if plan.member(op_id).kind != kind:
            raise NotImplementedError(f"myria lowering: missing {op_id}")
    return _lines(
        "E = SCAN(Exposures);",
        "Calib = [FROM E EMIT PYUDF(Preproc, E.img) AS img, E.visit, E.expId];",
        "Pieces = [FROM Calib EMIT",
        "          UNNEST(PYUDF(PatchMap, Calib.img)) AS (patchY, patchX, visitId, piece)];",
        "PatchExp = [FROM Pieces EMIT Pieces.patchY, Pieces.patchX, Pieces.visitId,",
        "            UDA(Stitch, Pieces.piece) AS img];",
        "Coadds = [FROM PatchExp EMIT PatchExp.patchY, PatchExp.patchX,",
        "          UDA(CoaddAgg, PatchExp.img, PatchExp.visitId) AS coadd];",
        "Sources = [FROM Coadds EMIT Coadds.patchY, Coadds.patchX,",
        "           PYUDF(Detect, Coadds.coadd) AS srcs];",
    )


PIPELINE_QUERY = pipeline_query(astro_plan())


def _loader(exposure):
    exp_id = exposure.visit_id * 1000 + exposure.sensor_id
    return (
        exp_id,
        exposure.visit_id,
        exposure.sensor_id,
        exposure.sky_box.x0,
        exposure,
    )


def ingest(conn, visits, bucket=DEFAULT_BUCKET):
    """Ingest staged exposures into the ``Exposures`` relation."""
    return conn.ingest_s3(
        "Exposures", bucket, EXPOSURES_COLUMNS, _loader, partition_column="expId"
    )


def register_s3(conn, bucket=DEFAULT_BUCKET):
    """End-to-end path: scan staged FITS exposures directly from S3."""
    return conn.register_s3_relation(
        "Exposures", bucket, EXPOSURES_COLUMNS, _loader
    )


def declare_provenance(conn, plan=None):
    """Declare the span/category -> logical-op maps for attribution.

    Statement spans map to the last op they realize; the shuffles
    feeding the ``Stitch``/``CoaddAgg`` UDAs belong to the ``stitch``
    and ``coadd`` group_by ops themselves.
    """
    plan = plan or astro_plan()
    pid = plan.provenance
    conn.cluster.obs.declare_provenance(
        spans={
            "myria-insert-Exposures": pid("exposures"),
            "myria-E": pid("exposures"),
            "myria-InBand": pid("exposures"),
            "myria-Calib": pid("preprocess"),
            "myria-Pieces": pid("patches"),
            "myria-Band": pid("patches"),
            "myria-PatchExp": pid("stitch"),
            "myria-Coadds": pid("coadd"),
            "myria-Sources": pid("sources"),
            "myria-shuffle-groupby-PatchExp": pid("stitch"),
            "myria-shuffle-groupby-Coadds": pid("coadd"),
        },
        categories={
            "myria-ingest": pid("exposures"),
            "myria-scan": pid("exposures"),
        },
    )


def register_udfs(conn, grid, pixel_scale):
    """Register udfs."""
    declare_provenance(conn)
    cm = conn.cost_model

    def patch_map(exposure):
        rows = []
        for (patch_id, visit_id), piece in ref.patch_pieces(
            exposure, grid, pixel_scale
        ):
            rows.append((patch_id[0], patch_id[1], visit_id, piece))
        return rows

    def stitch_uda(pieces):
        return ref.stitch_pieces(list(pieces))

    def coadd_uda(imgs, visit_ids):
        ordered = [img for _v, img in sorted(zip(visit_ids, imgs))]
        return ref.coadd_patch(ordered)

    def coadd_uda_cost(imgs, visit_ids):
        return common.coadd_cost(cm, ref.COADD_ITERATIONS)(list(imgs))

    conn.create_function(
        "Preproc", udf(ref.preprocess_exposure, cost=common.preprocess_cost(cm))
    )
    conn.create_function(
        "PatchMap", udf(patch_map, cost=common.patch_map_cost(cm))
    )
    conn.create_function(
        "Stitch", udf(stitch_uda, cost=lambda pieces: common.stitch_cost(cm)(list(pieces)))
    )
    conn.create_function("CoaddAgg", udf(coadd_uda, cost=coadd_uda_cost))
    conn.create_function("Detect", udf(ref.detect, cost=common.detect_cost(cm)))


def band_query(x_lo, x_hi, px_lo, px_hi):
    """The pipeline restricted to a band of patch columns.

    Used by multi-query execution (Figure 15): "the system must cut the
    data analysis into even smaller pieces" -- patches are independent,
    so the sky is processed one column band at a time.  The band
    predicate pushes down to the scalar ``x0`` column of the Exposures
    relation, so each sub-query only preprocesses exposures that can
    contribute to its band (boundary exposures are processed twice).
    """
    return f"""
E = SCAN(Exposures);
InBand = [SELECT E.expId, E.visit, E.img FROM E
          WHERE E.x0 >= {px_lo} AND E.x0 < {px_hi}];
Calib = [FROM InBand EMIT PYUDF(Preproc, InBand.img) AS img,
         InBand.visit, InBand.expId];
Pieces = [FROM Calib EMIT
          UNNEST(PYUDF(PatchMap, Calib.img)) AS (patchY, patchX, visitId, piece)];
Band = [SELECT Pieces.patchY, Pieces.patchX, Pieces.visitId, Pieces.piece
        FROM Pieces
        WHERE Pieces.patchX >= {x_lo} AND Pieces.patchX < {x_hi}];
PatchExp = [FROM Band EMIT Band.patchY, Band.patchX, Band.visitId,
            UDA(Stitch, Band.piece) AS img];
Coadds = [FROM PatchExp EMIT PatchExp.patchY, PatchExp.patchX,
          UDA(CoaddAgg, PatchExp.img, PatchExp.visitId) AS coadd];
Sources = [FROM Coadds EMIT Coadds.patchY, Coadds.patchX,
           PYUDF(Detect, Coadds.coadd) AS srcs];
"""


def run(conn, visits, mode="pipelined", chunks=1, bucket=DEFAULT_BUCKET,
        grid=None, source="s3", plan=None):
    """End-to-end astronomy pipeline; returns ``(coadds, sources)``.

    ``mode`` is ``"pipelined"`` or ``"materialized"``; pass
    ``mode="multiquery"`` with ``chunks=k`` to process the sky in ``k``
    patch-column bands as separate (materialized) queries.  ``source``
    selects direct S3 scans (the paper's end-to-end path) or ingested
    PostgreSQL storage.
    """
    exposures = [e for v in visits for e in v.exposures]
    if grid is None:
        grid = ref.default_patch_grid(exposures[0].shape)
    pixel_scale = ref.nominal_pixel_scale(exposures[0].shape, exposures[0].bundle)
    if plan is None:
        plan = astro_plan(bucket=bucket)

    def input_token(**config):
        return dict(
            config,
            visits=[visit_token(v) for v in visits],
            grid=[grid.patch_height, grid.patch_width],
            mode=mode,
            source=source,
        )

    if source == "s3":
        register_s3(conn, bucket=bucket)
    elif source == "ingested":
        if not conn.server.catalog.get("Exposures"):
            ingest(conn, visits, bucket=bucket)
    else:
        raise ValueError(f"unknown source {source!r}")
    register_udfs(conn, grid, pixel_scale)

    coadds = {}
    sources = {}
    if mode == "multiquery":
        if chunks < 2:
            raise ValueError("multiquery mode requires chunks >= 2")
        xs = sorted(
            {
                patch[1]
                for e in exposures
                for patch in grid.overlapping_patches(e.sky_box)
            }
        )
        bounds = [xs[0] + (xs[-1] + 1 - xs[0]) * i // chunks for i in range(chunks + 1)]
        width = exposures[0].shape[1]
        from repro.pipelines.astro.staging import exposure_key

        bands = []
        for i in range(chunks):
            if bounds[i] >= bounds[i + 1]:
                continue
            # Pixel bounds for the exposure-level pushdown: an exposure
            # of width w contributes to band [lo, hi) patch columns iff
            # its x0 lies in [lo * pw - w, hi * pw).
            px_lo = max(0, bounds[i] * grid.patch_width - width)
            px_hi = bounds[i + 1] * grid.patch_width
            # The file list for this band (Myria consumes a csv list of
            # files, so only in-band exposures are even fetched).
            band_keys = [
                exposure_key(e.visit_id, e.sensor_id)
                for e in exposures
                if px_lo <= e.sky_box.x0 < px_hi
            ]
            bands.append(
                (band_query(bounds[i], bounds[i + 1], px_lo, px_hi), band_keys)
            )
        for band_index, (text, band_keys) in enumerate(bands):
            conn.register_s3_relation(
                "Exposures", bucket, EXPOSURES_COLUMNS, _loader, keys=band_keys
            )
            with materialize_scope(
                conn.cluster, plan, "sources", "myria",
                extra=lambda band_index=band_index: input_token(
                    chunks=chunks, band=band_index
                ),
            ):
                query = MyriaQuery.submit(conn, text, mode="materialized")
            for patch_y, patch_x, coadd_img in query.relation("Coadds").rows:
                coadds[(patch_y, patch_x)] = coadd_img
            for patch_y, patch_x, srcs in query.relation("Sources").rows:
                sources[(patch_y, patch_x)] = srcs
        return coadds, sources

    with materialize_scope(
        conn.cluster, plan, "sources", "myria", extra=input_token
    ):
        query = MyriaQuery.submit(conn, PIPELINE_QUERY, mode=mode)
    for patch_y, patch_x, coadd_img in query.relation("Coadds").rows:
        coadds[(patch_y, patch_x)] = coadd_img
    for patch_y, patch_x, srcs in query.relation("Sources").rows:
        sources[(patch_y, patch_x)] = srcs
    return coadds, sources


class LoweredAstro:
    """Executable produced by ``lower(astro_plan(), conn)``."""

    def __init__(self, plan, conn):
        self.plan = plan
        self.conn = conn
        self.bucket = plan.member_param("exposures", "bucket")
        self.pipeline_query = pipeline_query(plan)

    def run(self, visits, mode="pipelined", chunks=1, grid=None, source="s3"):
        return run(
            self.conn, visits, mode=mode, chunks=chunks, bucket=self.bucket,
            grid=grid, source=source, plan=self.plan,
        )
