"""The neuro plan lowered to miniMyria (Section 4.3, Figure 7).

"We specify the overall pipeline in MyriaL, but call Python UDFs and
UDAs for all core image processing operations.  ... we execute a query
to compute the mask, which we broadcast across the cluster.  A second
query then computes the rest of the pipeline starting from a broadcast
join between the data and the mask."

Lowering contract notes: MyriaL text is *emitted* from the logical plan
by the ``*_query`` functions.  The lowering makes three engine-specific
structural choices the paper documents:

* ``mean_b0`` + ``otsu`` fuse into one ``UDA(MeanOtsu, ...)`` (query 1);
* ``regroup`` + ``fitmodel`` fuse into one ``UDA(FitModel, ...)``
  (Myria's shuffle feeds the UDA directly, no separate regroup stage);
* ``mask_bcast`` + ``denoise`` lower to a ``BROADCAST(T2)`` join —
  Myria rebinds the plan's broadcast side-input as a relation join.
"""

import numpy as np

from repro.algorithms.dtm import fit_dtm, fractional_anisotropy
from repro.algorithms.nlmeans import nlmeans_3d
from repro.algorithms.otsu import median_otsu
from repro.engines.base import udf
from repro.engines.myria.connection import MyriaQuery
from repro.formats.sizing import SizedArray
from repro.pipelines import common
from repro.pipelines.neuro.reference import DENOISE_SIGMA, MASK_MEDIAN_RADIUS
from repro.pipelines.neuro.staging import DEFAULT_BUCKET, gradient_tables
from repro.plan.memo import materialize_scope, subject_token
from repro.plan.neuro import DEFAULT_BLOCKS, neuro_plan

IMAGES_COLUMNS = ("subjId", "imgId", "b0flag", "img")


def _lines(*parts):
    return "\n".join(("",) + parts + ("",))


_SCAN_IMAGES = "T1 = SCAN(Images);"


def _b0_select(plan, columns):
    """Lower the ``b0`` filter: the predicate pushes down to the scalar
    ``b0flag`` column the loader precomputes."""
    op = plan.member("b0")
    if op.kind != "filter" or op.param("predicate") != "is_b0":
        raise NotImplementedError(f"myria lowering: unexpected filter {op}")
    cols = ", ".join("T1." + c for c in columns)
    return f"B0 = [SELECT {cols} FROM T1 WHERE T1.b0flag = 1];"


def mask_query(plan):
    """Query 1: the ``b0 -> mean_b0 -> otsu -> masks`` segment, with the
    aggregate and the Otsu map fused into ``UDA(MeanOtsu)`` and the
    materialization lowered to a ``STORE``."""
    for op_id, kind in (("mean_b0", "group_by"), ("otsu", "map"),
                        ("masks", "materialize")):
        if plan.member(op_id).kind != kind:
            raise NotImplementedError(f"myria lowering: missing {op_id}")
    return _lines(
        _SCAN_IMAGES,
        _b0_select(plan, ("subjId", "img")),
        "Masks = [FROM B0 EMIT B0.subjId, UDA(MeanOtsu, B0.img) AS mask];",
        "STORE(Masks, Mask);",
    )


def filter_query(plan):
    """Figure 12a's step: just the ``b0`` selection."""
    return _lines(
        _SCAN_IMAGES,
        _b0_select(plan, ("subjId", "imgId", "img")),
    )


def mean_query(plan):
    """Figure 12b's step: ``b0 -> mean_b0`` as ``UDA(MeanVol)``."""
    if plan.member("mean_b0").param("agg") != "mean_volume":
        raise NotImplementedError("myria lowering: unexpected mean agg")
    return _lines(
        _SCAN_IMAGES,
        _b0_select(plan, ("subjId", "img")),
        "Means = [FROM B0 EMIT B0.subjId, UDA(MeanVol, B0.img) AS mean];",
    )


def pipeline_query(plan):
    """Query 2: ``denoise -> repart -> regroup+fitmodel``, starting from
    the broadcast join that realizes the plan's ``mask_bcast`` op."""
    if plan.member("denoise").uses != ("mask_bcast",):
        raise NotImplementedError("myria lowering: denoise must use the mask")
    if plan.member("regroup").param("key") != ("subject", "block"):
        raise NotImplementedError("myria lowering: unexpected regroup key")
    return _lines(
        _SCAN_IMAGES,
        "T2 = SCAN(Mask);",
        "Joined = [SELECT T1.subjId, T1.imgId, T1.img, T2.mask",
        "          FROM T1, BROADCAST(T2)",
        "          WHERE T1.subjId = T2.subjId];",
        "Denoised = [FROM Joined EMIT PYUDF(Denoise, Joined.img, Joined.mask) AS img,",
        "            Joined.subjId, Joined.imgId];",
        "Blocks = [FROM Denoised EMIT",
        "          UNNEST(PYUDF(Repart, Denoised.img)) AS (blockId, imgId, block),",
        "          Denoised.subjId];",
        "Fitted = [FROM Blocks EMIT Blocks.subjId, Blocks.blockId,",
        "          UDA(FitModel, Blocks.block, Blocks.imgId) AS fa];",
    )


MASK_QUERY = mask_query(neuro_plan())
FILTER_QUERY = filter_query(neuro_plan())
MEAN_QUERY = mean_query(neuro_plan())
PIPELINE_QUERY = pipeline_query(neuro_plan())


def declare_provenance(conn, plan=None):
    """Declare the span/category -> logical-op maps for attribution.

    Myria work is observed through statement and shuffle spans rather
    than per-task stamps, so the lowering publishes how those spans map
    back to plan ops: fused statements attribute to the *last* op in
    the fused chain (``Masks`` = mean_b0+otsu -> otsu, ``Fitted`` =
    regroup+fitmodel -> fitmodel) while the shuffle feeding a fused UDA
    belongs to the ``group_by`` op itself.
    """
    plan = plan or neuro_plan()
    pid = plan.provenance
    conn.cluster.obs.declare_provenance(
        spans={
            "myria-insert-Images": pid("volumes"),
            "myria-T1": pid("volumes"),
            "myria-B0": pid("b0"),
            "myria-Masks": pid("otsu"),
            "myria-Means": pid("mean_b0"),
            "myria-T2": pid("mask_bcast"),
            "myria-Joined": pid("mask_bcast"),
            "myria-Denoised": pid("denoise"),
            "myria-Blocks": pid("repart"),
            "myria-Fitted": pid("fitmodel"),
            "myria-shuffle-groupby-Masks": pid("mean_b0"),
            "myria-shuffle-groupby-Fitted": pid("regroup"),
        },
        categories={
            "myria-ingest": pid("volumes"),
            "myria-scan": pid("volumes"),
        },
    )


def make_loader(subjects):
    """Staged volume -> Images row: (subjId, imgId, b0flag, img-blob)."""
    gtabs = gradient_tables(subjects)

    def loader(volume):
        subject_id = volume.meta["subject_id"]
        image_id = volume.meta["image_id"]
        b0flag = int(bool(gtabs[subject_id].b0s_mask[image_id]))
        return (subject_id, image_id, b0flag, volume)

    return loader


def ingest(conn, subjects, bucket=DEFAULT_BUCKET):
    """Ingest staged volumes into the ``Images`` relation.

    Each tuple is (subjId, imgId, b0flag, img-blob) -- "each tuple
    consisting of subject ID, image ID and image volume ... stored using
    the Myria blob data type" (Section 4.3), plus a scalar b0 flag so
    the segmentation selection can be pushed into storage.
    """
    return conn.ingest_s3(
        "Images", bucket, IMAGES_COLUMNS, make_loader(subjects),
        partition_column="subjId",
    )


def register_s3(conn, subjects, bucket=DEFAULT_BUCKET):
    """End-to-end path: scan the staged volumes directly from S3."""
    return conn.register_s3_relation(
        "Images", bucket, IMAGES_COLUMNS, make_loader(subjects)
    )


def register_udfs(conn, subjects, n_blocks=DEFAULT_BLOCKS, mask_fraction=None):
    """Register every Python UDF/UDA the queries call."""
    cm = conn.cost_model
    gtabs = gradient_tables(subjects)
    if mask_fraction is None:
        mask_fraction = 0.45  # refined after the mask query runs

    def mean_otsu_uda(volumes):
        stack = np.stack([v.array for v in volumes], axis=-1)
        mean = stack.mean(axis=-1)
        _masked, mask = median_otsu(mean, median_radius=MASK_MEDIAN_RADIUS)
        return SizedArray(
            mask, nominal_shape=volumes[0].nominal_shape, meta=volumes[0].meta
        )

    def mean_otsu_cost(volumes):
        per = volumes[0].nominal_elements
        return per * len(volumes) * cm.elementwise_per_element + per * (
            cm.otsu_per_voxel + 27 * cm.elementwise_per_element
        )

    def mean_vol_uda(volumes):
        stack = np.stack([v.array for v in volumes], axis=-1)
        return volumes[0].with_array(stack.mean(axis=-1))

    def mean_vol_cost(volumes):
        return (
            volumes[0].nominal_elements * len(volumes) * cm.elementwise_per_element
        )

    def denoise(volume, mask):
        out = nlmeans_3d(volume.array, sigma=DENOISE_SIGMA, mask=mask.array)
        return volume.with_array(out)

    def repart(volume):
        rows = []
        for block_id, block in common.split_volume_blocks(volume, n_blocks):
            tagged = SizedArray(
                block.array,
                nominal_shape=block.nominal_shape,
                meta={**block.meta, "block_id": block_id},
            )
            rows.append((block_id, volume.meta["image_id"], tagged))
        return rows

    def fit_model(blocks, image_ids):
        order = np.argsort(image_ids)
        stacked = np.stack([blocks[i].array for i in order], axis=-1)
        meta = blocks[0].meta
        subject_id = meta["subject_id"]
        gtab = gtabs[subject_id]
        mask = _MASK_CACHE[subject_id]
        block_id = _block_of(blocks[0], n_blocks, mask.shape[0])
        mask_block = mask[block_id]
        evals = fit_dtm(stacked, gtab, mask=mask_block)
        fa = fractional_anisotropy(evals)
        return SizedArray(fa, nominal_shape=blocks[0].nominal_shape, meta=meta)

    def fit_cost(blocks, image_ids):
        elements = blocks[0].nominal_elements * len(blocks)
        return elements * mask_fraction * cm.dtm_fit_per_voxel_sample

    declare_provenance(conn)
    conn.create_function("MeanOtsu", udf(mean_otsu_uda, cost=mean_otsu_cost))
    conn.create_function("MeanVol", udf(mean_vol_uda, cost=mean_vol_cost))
    conn.create_function(
        "Denoise", udf(denoise, cost=common.denoise_cost(cm, mask_fraction))
    )
    conn.create_function("Repart", udf(repart, cost=common.repart_cost(cm)))
    conn.create_function("FitModel", udf(fit_model, cost=fit_cost))


#: Masks keyed by subject, filled by the mask query before the second
#: query runs (the paper broadcasts the Mask relation; the FitModel UDA
#: additionally needs mask blocks, captured here driver-side).
_MASK_CACHE = {}


def _block_of(block, n_blocks, nz):
    """Recover the mask slice for a voxel block from its z extent."""
    bounds = np.linspace(0, nz, min(n_blocks, nz) + 1).astype(int)
    slices = [slice(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]
    block_id = block.meta.get("block_id")
    if block_id is not None:
        return slices[block_id]
    # Match by block height (blocks carry no id in their meta).
    for candidate in slices:
        if candidate.stop - candidate.start == block.array.shape[0]:
            return candidate
    return slice(0, nz)


def _subjects_token(subjects, **config):
    return dict(config, subjects=[subject_token(s) for s in subjects])


def compute_masks(conn, subjects, mode="pipelined", plan=None, source="s3"):
    """Query 1: per-subject masks; stores the Mask relation."""
    if plan is None:
        plan = neuro_plan()
    with materialize_scope(
        conn.cluster, plan, "masks", "myria",
        extra=lambda: _subjects_token(subjects, mode=mode, source=source),
    ):
        query = MyriaQuery.submit(conn, MASK_QUERY, mode=mode)
    masks = {}
    for subj, mask in query.relation("Masks").rows:
        masks[subj] = mask.array.astype(bool)
    _MASK_CACHE.clear()
    _MASK_CACHE.update(masks)
    return masks


def run(conn, subjects, n_blocks=DEFAULT_BLOCKS, mode="pipelined",
        chunks=1, bucket=DEFAULT_BUCKET, source="s3", plan=None):
    """End-to-end neuroscience pipeline on Myria.

    ``source`` is ``"s3"`` (the paper's end-to-end path: read staged
    NumPy volumes directly from S3) or ``"ingested"`` (scan previously
    ingested per-worker PostgreSQL storage).  Returns
    ``(masks, fa_by_subject)``.
    """
    if source == "s3":
        register_s3(conn, subjects, bucket=bucket)
    elif source == "ingested":
        if not conn.server.catalog.get("Images"):
            ingest(conn, subjects, bucket=bucket)
    else:
        raise ValueError(f"unknown source {source!r}")
    if plan is None:
        plan = neuro_plan(n_blocks=n_blocks, bucket=bucket)
    register_udfs(conn, subjects, n_blocks=n_blocks)
    masks = compute_masks(conn, subjects, mode=mode, plan=plan, source=source)
    mask_fraction = float(np.mean([common.masked_fraction(m) for m in masks.values()]))
    register_udfs(conn, subjects, n_blocks=n_blocks, mask_fraction=mask_fraction)

    with materialize_scope(
        conn.cluster, plan, "fa", "myria",
        extra=lambda: _subjects_token(
            subjects, mode=mode, chunks=chunks, source=source
        ),
    ):
        query = MyriaQuery.submit(conn, PIPELINE_QUERY, mode=mode, chunks=chunks)
    fitted = query.relation("Fitted")
    fa_by_subject = {}
    for subj, block_id, fa_block in fitted.rows:
        fa_by_subject.setdefault(subj, {})[block_id] = fa_block
    fa = {
        subject: common.reassemble_blocks(by_id)
        for subject, by_id in fa_by_subject.items()
    }
    return masks, fa


class LoweredNeuro:
    """Executable produced by ``lower(neuro_plan(), conn)``."""

    def __init__(self, plan, conn):
        self.plan = plan
        self.conn = conn
        self.bucket = plan.member_param("volumes", "bucket")
        self.n_blocks = plan.param("n_blocks")
        self.mask_query = mask_query(plan)
        self.pipeline_query = pipeline_query(plan)

    def run(self, subjects, mode="pipelined", chunks=1, source="s3"):
        return run(
            self.conn, subjects, n_blocks=self.n_blocks, mode=mode,
            chunks=chunks, bucket=self.bucket, source=source,
            plan=self.plan,
        )
