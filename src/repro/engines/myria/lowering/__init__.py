"""Myria lowering backend: emit MyriaL query text from logical plans."""

from repro.engines.myria.lowering import astro, neuro
from repro.engines.myria.lowering.astro import LoweredAstro
from repro.engines.myria.lowering.neuro import LoweredNeuro


def lower(plan, ctx):
    """Lower a logical plan against a Myria connection ``ctx``."""
    if plan.name == "neuro":
        return LoweredNeuro(plan, ctx)
    if plan.name == "astro":
        return LoweredAstro(plan, ctx)
    raise NotImplementedError(f"myria lowering: unknown plan {plan.name!r}")


__all__ = ["LoweredAstro", "LoweredNeuro", "astro", "lower", "neuro"]
