"""Logical operators and row-level evaluation for miniMyria.

The planner (:mod:`repro.engines.myria.plan`) compiles parsed MyriaL
into chains of these operators; each operator knows how to process one
worker's rows (real compute) and how to price that work (simulated
seconds), mirroring Myria's operator-graph query plans (Section 2).
"""

from repro.engines.base import nominal_bytes_of
from repro.engines.myria.myrial import Column, Literal, UdfCall
from repro.engines.spark.partitioner import stable_hash


class RowContext:
    """Column resolution for a row produced by one or two aliases."""

    def __init__(self, columns_by_ref, row):
        # columns_by_ref: {(alias, column) or ("", column): index}
        self.columns_by_ref = columns_by_ref
        self.row = row

    def value(self, column):
        """The wrapped value."""
        key = (column.alias, column.name)
        if key in self.columns_by_ref:
            return self.row[self.columns_by_ref[key]]
        # Fall back to unqualified lookup.
        fallback = ("", column.name)
        if fallback in self.columns_by_ref:
            return self.row[self.columns_by_ref[fallback]]
        matches = [
            idx for (alias, name), idx in self.columns_by_ref.items()
            if name == column.name
        ]
        if len(matches) == 1:
            return self.row[matches[0]]
        raise KeyError(
            f"cannot resolve column {column.alias}.{column.name};"
            f" known: {sorted(self.columns_by_ref)}"
        )


def build_column_map(alias, columns, offset=0):
    """Reference map for one alias's columns starting at ``offset``."""
    refs = {}
    for i, name in enumerate(columns):
        refs[(alias, name)] = offset + i
        refs.setdefault(("", name), offset + i)
    return refs


def evaluate(expr, ctx, udfs):
    """Evaluate an emit/condition expression against a row context."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Column):
        return ctx.value(expr)
    if isinstance(expr, UdfCall):
        fn = udfs[expr.fname]
        args = [evaluate(a, ctx, udfs) for a in expr.args]
        return fn(*args)
    raise TypeError(f"cannot evaluate expression {expr!r}")


def expression_cost(expr, ctx, udfs):
    """Simulated seconds to evaluate ``expr`` on this row."""
    if isinstance(expr, UdfCall):
        fn = udfs[expr.fname]
        args = [evaluate(a, ctx, udfs) for a in expr.args]
        inner = sum(expression_cost(a, ctx, udfs) for a in expr.args)
        return inner + fn.cost(*args)
    return 0.0


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


def check_condition(condition, ctx, udfs):
    """Check condition."""
    left = evaluate(condition.left, ctx, udfs)
    right = evaluate(condition.right, ctx, udfs)
    return _COMPARATORS[condition.op](left, right)


def split_conditions(conditions):
    """Separate equi-join conditions from single-table selections."""
    joins, selections = [], []
    for condition in conditions:
        if condition.is_join() and condition.left.alias != condition.right.alias:
            if condition.op != "=":
                raise ValueError(
                    f"only equi-joins are supported, got {condition.op}"
                )
            joins.append(condition)
        else:
            selections.append(condition)
    return joins, selections


def hash_join(left_rows, left_refs, right_rows, right_refs, join_conditions, udfs):
    """In-memory hash join; returns concatenated rows.

    The right side is built into a hash table (the broadcast side in a
    broadcast join); the left side probes.
    """
    def left_key(row):
        ctx = RowContext(left_refs, row)
        return tuple(
            evaluate(c.left if c.left.alias in _aliases(left_refs) else c.right, ctx, udfs)
            for c in join_conditions
        )

    def right_key(row):
        ctx = RowContext(right_refs, row)
        return tuple(
            evaluate(c.right if c.right.alias in _aliases(right_refs) else c.left, ctx, udfs)
            for c in join_conditions
        )

    table = {}
    for row in right_rows:
        table.setdefault(right_key(row), []).append(row)
    out = []
    for row in left_rows:
        for match in table.get(left_key(row), ()):
            out.append(tuple(row) + tuple(match))
    return out


def _aliases(refs):
    return {alias for alias, _name in refs if alias}


def group_rows(rows, key_indices):
    """Group rows by the values at ``key_indices`` (insertion order)."""
    groups = {}
    for row in rows:
        key = tuple(row[i] for i in key_indices)
        groups.setdefault(key, []).append(row)
    return groups


def shard_by_key(rows, key_indices, n_workers):
    """Hash-repartition rows by group key across workers."""
    shards = [[] for _worker in range(n_workers)]
    for row in rows:
        key = tuple(row[i] for i in key_indices)
        shards[stable_hash(key) % n_workers].append(row)
    return shards


def rows_bytes(rows):
    """Rows bytes."""
    return sum(nominal_bytes_of(r) for r in rows)
