"""Tensors: real payloads with nominal shapes.

Tensor values flowing through a miniTF graph carry the same
real-vs-nominal duality as the rest of the reproduction.
"""

import numpy as np


class Tensor:
    """An immutable tensor value."""

    __slots__ = ("array", "nominal_shape")

    def __init__(self, array, nominal_shape=None):
        self.array = np.asarray(array)
        if nominal_shape is None:
            nominal_shape = self.array.shape
        self.nominal_shape = tuple(int(d) for d in nominal_shape)

    @property
    def nominal_elements(self):
        """Element count at the paper's nominal data scale."""
        n = 1
        for d in self.nominal_shape:
            n *= d
        return n

    @property
    def nominal_bytes(self):
        """Size in bytes at the paper's nominal data scale."""
        return self.nominal_elements * self.array.dtype.itemsize

    @classmethod
    def wrap(cls, value):
        """Coerce ndarray / SizedArray / Tensor into a Tensor."""
        if isinstance(value, Tensor):
            return value
        nominal = getattr(value, "nominal_shape", None)
        array = getattr(value, "array", value)
        return cls(array, nominal_shape=nominal)

    def __repr__(self):
        return f"Tensor(real={self.array.shape}, nominal={self.nominal_shape})"
