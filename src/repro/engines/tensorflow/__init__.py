"""miniTensorFlow: static tensor dataflow graphs.

Reimplements the TensorFlow-0.x model of Section 2/4.5: operations over
N-dimensional tensors organized into static dataflow graphs, manual
device placement (``with graph.device(...)``), master-mediated data
distribution ("all data ingest goes through the master and results are
always returned to the master"), a 2 GB serialized-graph limit, and an
op set with the restrictions the paper hit: gathering only along the
first axis and no element-wise masked assignment.
"""

from repro.engines.tensorflow.graph import Graph
from repro.engines.tensorflow.placement import (
    fixed_assignment,
    one_item_per_node,
    round_robin_steps,
)
from repro.engines.tensorflow.session import Session
from repro.engines.tensorflow.tensor import Tensor

__all__ = [
    "Graph",
    "Session",
    "Tensor",
    "fixed_assignment",
    "one_item_per_node",
    "round_robin_steps",
]
