"""Static dataflow graph construction with device placement.

Mirrors the construction pattern of the paper's Figure 9: a context
manager pins ops to devices, placeholders receive data from the master
at ``session.run`` time, and the serialized graph must stay under 2 GB
("size limitation necessitates multiple graphs as each compute graph
must be smaller than 2GB when serialized", Section 4.5).
"""

import itertools
from contextlib import contextmanager

import numpy as np

from repro.cluster.errors import GraphTooLargeError
from repro.engines.tensorflow.ops import OPS, OpError
from repro.engines.tensorflow.tensor import Tensor

#: The serialized-graph size limit (protobuf limit in real TensorFlow).
GRAPH_SIZE_LIMIT = 2 * 1024 ** 3

#: Serialized overhead per graph node (op metadata).
NODE_OVERHEAD_BYTES = 256

_node_counter = itertools.count()


class GraphNode:
    """One op (or placeholder/constant) in the dataflow graph."""

    __slots__ = ("graph", "op", "inputs", "attrs", "device", "name", "node_id")

    def __init__(self, graph, op, inputs, attrs, device, name=None):
        self.graph = graph
        self.op = op
        self.inputs = tuple(inputs)
        self.attrs = dict(attrs)
        self.device = device
        self.node_id = next(_node_counter)
        self.name = name or f"{op}_{self.node_id}"

    def __repr__(self):
        return f"GraphNode({self.name}, device={self.device})"


class Graph:
    """A static computation graph."""

    def __init__(self):
        self.nodes = []
        self._device_stack = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @contextmanager
    def device(self, name):
        """Pin ops created in this context to a device (a node name)."""
        self._device_stack.append(name)
        try:
            yield
        finally:
            self._device_stack.pop()

    def _current_device(self):
        return self._device_stack[-1] if self._device_stack else None

    def _add(self, op, inputs, **attrs):
        if op not in OPS and op not in ("placeholder", "constant"):
            raise OpError(f"unknown op {op!r}")
        node = GraphNode(self, op, inputs, attrs, self._current_device())
        self.nodes.append(node)
        return node

    def placeholder(self, nominal_shape, name=None):
        """Declare a fed input of the given nominal shape."""
        node = self._add("placeholder", (), nominal_shape=tuple(nominal_shape))
        if name:
            node.name = name
        return node

    def constant(self, value):
        """Embed a constant tensor in the graph."""
        tensor = Tensor.wrap(np.asarray(value))
        return self._add("constant", (), value=tensor)

    # -- op wrappers -----------------------------------------------------

    def reduce_mean(self, t, axis=None):
        """Reduce mean."""
        return self._add("reduce_mean", (t,), axis=axis)

    def reduce_sum(self, t, axis=None):
        """Reduce sum."""
        return self._add("reduce_sum", (t,), axis=axis)

    def add(self, a, b):
        """Add."""
        return self._add("add", (a, b))

    def sub(self, a, b):
        """Sub."""
        return self._add("sub", (a, b))

    def mul(self, a, b):
        """Mul."""
        return self._add("mul", (a, b))

    def reshape(self, t, new_nominal, new_real):
        """Reshape."""
        return self._add("reshape", (t,), new_nominal=tuple(new_nominal),
                         new_real=tuple(new_real))

    def gather(self, t, indices, nominal_indices):
        """Select rows along the FIRST axis only (the TF restriction)."""
        return self._add(
            "gather", (t,), indices=list(indices),
            nominal_indices=list(nominal_indices),
        )

    def transpose(self, t, perm):
        """Transpose."""
        return self._add("transpose", (t,), perm=tuple(perm))

    def conv3d(self, t, kernel):
        """Conv3d."""
        return self._add("conv3d", (t,), kernel=np.asarray(kernel))

    def py_func(self, fn, inputs, cost_fn=None):
        """Escape hatch mirroring tf.py_func (runs on the op's device)."""
        return self._add("py_func", tuple(inputs), fn=fn, cost_fn=cost_fn)

    def identity(self, t):
        """Pass-through op (useful as a fetch point)."""
        return self._add("identity", (t,))

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def serialized_bytes(self):
        """Estimated protobuf size: constants embed their data."""
        total = 0
        for node in self.nodes:
            total += NODE_OVERHEAD_BYTES
            if node.op == "constant":
                total += node.attrs["value"].nominal_bytes
        return total

    def check_size(self):
        """Raise when the graph exceeds the 2 GB limit."""
        size = self.serialized_bytes()
        if size > GRAPH_SIZE_LIMIT:
            raise GraphTooLargeError(
                f"serialized graph is {size} bytes, exceeding the"
                f" {GRAPH_SIZE_LIMIT} byte limit; split the computation"
                f" into multiple graphs (Section 4.5)"
            )
        return size
