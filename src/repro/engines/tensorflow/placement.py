"""Manual device-placement helpers (the paper's ``steps`` tables).

"TensorFlow's support for distributed computation is currently limited.
The developer must manually map computation and data to each worker as
TensorFlow does not provide automatic static or dynamic work
assignment." (Section 4.5.)  Figure 9's code iterates over a predefined
``steps`` structure mapping data partitions to worker devices; these
helpers build such structures.
"""


def round_robin_steps(devices, n_items):
    """Figure 9's ``steps``: batches of items assigned round-robin.

    Returns a list of steps; each step is a list of ``(item_index,
    device)`` pairs with at most one item per device -- the global
    barrier between steps is the caller's ``session.run``.
    """
    devices = list(devices)
    if not devices:
        raise ValueError("need at least one device")
    steps = []
    for start in range(0, n_items, len(devices)):
        batch = range(start, min(start + len(devices), n_items))
        steps.append(
            [(index, devices[i]) for i, index in enumerate(batch)]
        )
    return steps


def one_item_per_node(devices, n_items):
    """Memory-bound placement: one (large) item per physical machine.

    The paper's denoising step needed "the assignment of one image
    volume per physical machine" because memory was the bottleneck
    (Section 5.3.1); identical to :func:`round_robin_steps` but named
    for intent and validated for the memory-bound case.
    """
    return round_robin_steps(devices, n_items)


def fixed_assignment(devices, items_per_device):
    """A static table: device -> list of item indices.

    For the filter experiments the paper "experimented with assigning
    different numbers of image volumes at a time to different workers"
    (Section 5.3.1); ``items_per_device`` gives each device's batch
    size, and items are dealt in order.
    """
    devices = list(devices)
    if len(items_per_device) != len(devices):
        raise ValueError(
            f"{len(devices)} devices but {len(items_per_device)} batch sizes"
        )
    assignment = {}
    cursor = 0
    for device, count in zip(devices, items_per_device):
        if count < 0:
            raise ValueError("batch sizes must be non-negative")
        assignment[device] = list(range(cursor, cursor + count))
        cursor += count
    return assignment
