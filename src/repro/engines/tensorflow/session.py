"""Graph execution with master-mediated data movement.

"In TensorFlow, the master node handles data distribution: it converts
the input data to tensors, and distributes it to the worker nodes. ...
all data ingest goes through the master and results are always returned
to the master." (Sections 2 and 4.5.)  Every ``run`` is a global
barrier: feeds convert serially on the master, ops execute on their
pinned devices, fetches convert back on the master.
"""

from repro.cluster.faults import abort_recovery
from repro.cluster.task import Task
from repro.engines.base import Engine
from repro.engines.tensorflow.ops import OPS, OpError
from repro.engines.tensorflow.tensor import Tensor


class Session(Engine):
    """Executes graphs on the simulated cluster."""

    name = "TensorFlow"

    def __init__(self, cluster):
        super().__init__(cluster)
        self._run_count = 0
        # No checkpointing in the paper's usage: a worker crash loses
        # in-memory tensors and the whole job restarts from scratch.
        cluster.install_recovery(abort_recovery("tf-rerun"))

    def startup_cost(self):
        """One-time engine startup in simulated seconds."""
        return self.cost_model.tf_session_startup

    def run(self, graph, fetches, feed_dict=None):
        """Execute ``graph`` for ``fetches``; returns their Tensors.

        ``feed_dict`` maps placeholder nodes to arrays/SizedArrays.
        """
        self.ensure_started()
        step = self._run_count
        self._run_count += 1
        with self.cluster.obs.span(
            f"tf-run-{step}", category="tensorflow", fetches=len(fetches),
        ):
            return self._run(graph, fetches, feed_dict)

    def _run(self, graph, fetches, feed_dict):
        graph.check_size()
        feed_dict = {k: Tensor.wrap(v) for k, v in (feed_dict or {}).items()}
        cm = self.cost_model
        master = self.cluster.master

        needed = self._topological(fetches)
        for node in needed:
            if node.op == "placeholder" and node not in feed_dict:
                raise OpError(f"placeholder {node.name} was not fed")

        # Feeds convert to tensors serially on the master before
        # distribution (the TF ingest bottleneck of Figure 11).
        for node in needed:
            if node.op == "placeholder":
                tensor = feed_dict[node]
                self.cluster.charge_master(
                    cm.tensor_convert_time(tensor.nominal_bytes),
                    label="tensor convert (feed)",
                    category="tf-convert",
                )

        self.cluster.charge_master(
            cm.tf_step_overhead, label="TF step dispatch",
            category="tf-dispatch",
        )

        tasks = {}
        for node in needed:
            tasks[node.node_id] = self._make_task(node, tasks, feed_dict, master)
        results = self.cluster.run(list(tasks.values()))

        out = []
        for fetch in fetches:
            result = results[tasks[fetch.node_id].task_id]
            tensor = result.value
            # Results return to the master and convert back to NumPy.
            if result.node != master:
                self.cluster.charge_master(
                    self.cluster.network.transfer_time(
                        tensor.nominal_bytes, result.node, master
                    ),
                    label="fetch to master",
                    category="tf-fetch",
                )
            self.cluster.charge_master(
                cm.tensor_convert_time(tensor.nominal_bytes),
                label="tensor convert (fetch)",
                category="tf-convert",
            )
            out.append(tensor)
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _topological(self, fetches):
        order = []
        seen = set()

        def visit(node):
            if node.node_id in seen:
                return
            seen.add(node.node_id)
            for parent in node.inputs:
                visit(parent)
            order.append(node)

        for fetch in fetches:
            visit(fetch)
        return order

    def _make_task(self, node, tasks, feed_dict, master):
        cm = self.cost_model
        device = node.device or master

        if node.op == "placeholder":
            tensor = feed_dict[node]
            # The master ships the feed to the placeholder's device.
            transfer = self.cluster.network.transfer_time(
                tensor.nominal_bytes, master, device
            ) if device != master else 0.0
            return Task(
                f"tf-feed-{node.name}",
                fn=lambda tensor=tensor: tensor,
                duration=transfer,
                node=device,
                category="tf-broadcast",
                memoizable=True,
            )
        if node.op == "constant":
            return Task(
                f"tf-const-{node.name}",
                fn=lambda value=node.attrs["value"]: value,
                duration=0.0,
                node=device,
                category="tf-const",
                memoizable=True,
            )

        evaluate, cost = OPS[node.op]
        parent_tasks = [tasks[p.node_id] for p in node.inputs]

        def run(*inputs):
            value = evaluate(cm, list(inputs), **node.attrs)
            task.output_bytes = value.nominal_bytes
            return value

        def duration(*inputs):
            return cost(cm, list(inputs), **node.attrs)

        task = Task(
            f"tf-{node.name}",
            fn=run,
            args=tuple(parent_tasks),
            duration=duration,
            node=device,
            category=f"tf-{node.op}",
            memoizable=True,
        )
        return task
