"""The neuro plan lowered (partially) to miniTensorFlow (Section 4.5,
Figure 9).

The paper's TensorFlow implementation required a full rewrite with
several compromises, all reproduced here:

- Data distribution is manual: "The developer must manually map
  computation and data to each worker" -- the ``steps`` batching of
  Figure 9.
- Filtering volumes (4th axis) needs transpose/reshape gymnastics
  because gather works only on the first axis: "TensorFlow is orders of
  magnitude slower than the other engines on this operation"
  (Figure 12a).
- The mean runs per-worker over batches with a global barrier per step.
- Denoising is rewritten as convolutions, *without* the mask:
  "we could not use the mask to reduce the computation ... as
  TensorFlow's operations can only be applied to whole tensors"
  (Figure 12c).
- Mask generation is "a somewhat simplified version" (a plain
  threshold instead of median-Otsu).
- Model fitting was not implemented (Table 1: NA).

Lowering contract notes: this backend substitutes kernels the plan
permits substituting (unmasked conv denoise for ``denoise``, plain Otsu
threshold for ``otsu``'s median-Otsu), replaces the plan's shuffling
group_bys with whole-dataset broadcast + per-step device placement, and
refuses ``fitmodel``.  The astro plan has no TF lowering at all.
"""

import numpy as np

from repro.algorithms.otsu import otsu_threshold
from repro.engines.tensorflow import Graph
from repro.formats.sizing import SizedArray
from repro.plan.ir import provenance_id
from repro.plan.memo import materialize_scope, subject_token
from repro.plan.neuro import neuro_plan


def _pid(op_id):
    """Provenance id of a neuro-plan op.  TF steps execute synchronously
    under ``session.run``, so each step opens an ambient
    ``obs.provenance`` scope and its tasks inherit the op."""
    return provenance_id("neuro", op_id)


def make_steps(cluster, n_items):
    """The Figure 9 ``steps`` table: batches of items mapped round-robin
    to worker devices."""
    from repro.engines.tensorflow.placement import round_robin_steps

    return round_robin_steps(cluster.node_order, n_items)


def filter_step(session, subject):
    """Select b0 volumes: transpose volume axis first, gather, reshape.

    The transpose and reshape move the whole 4-D tensor twice -- the
    Figure 12a penalty.
    """
    graph = Graph()
    data = subject.data
    x, y, z, n = data.array.shape
    nominal = data.nominal_shape
    with graph.device(session.cluster.master):
        ph = graph.placeholder(nominal)
        # (x, y, z, vol) -> (vol, x, y, z): volume axis first.
        perm = (3, 0, 1, 2)
        transposed = graph.transpose(ph, perm)
        real_indices = np.nonzero(subject.gtab.b0s_mask)[0]
        nominal_indices = list(range(18))
        gathered = graph.gather(transposed, real_indices, nominal_indices)
        # Back to (x, y, z, vol) layout.
        back = graph.transpose(gathered, (1, 2, 3, 0))
    with session.cluster.obs.provenance(_pid("b0")):
        out = session.run(graph, [back], feed_dict={ph: data})[0]
    return SizedArray(out.array, nominal_shape=out.nominal_shape, meta=data.meta)


def mean_step(session, filtered):
    """Figure 9's distributed mean: partitions of the filtered data are
    assigned to devices in predefined steps, with a barrier per step."""
    cluster = session.cluster
    array = filtered.array
    n_parts = max(1, cluster.spec.n_nodes * 2)
    parts = np.array_split(array, n_parts, axis=0)
    nominal_x = filtered.nominal_shape[0]
    part_nominal = [
        (max(1, p.shape[0] * nominal_x // max(1, array.shape[0])),)
        + tuple(filtered.nominal_shape[1:])
        for p in parts
    ]

    steps = make_steps(cluster, n_parts)
    partial = [None] * n_parts
    for step in steps:
        graph = Graph()
        placeholders = []
        works = []
        for index, device in step:
            with graph.device(device):
                ph = graph.placeholder(part_nominal[index])
                placeholders.append((index, ph))
                works.append(graph.reduce_mean(ph, axis=3))
        feed = {
            ph: SizedArray(parts[index], nominal_shape=part_nominal[index])
            for index, ph in placeholders
        }
        with cluster.obs.provenance(_pid("mean_b0")):
            outs = session.run(graph, works, feed_dict=feed)
        for (index, _ph), out in zip(step, outs):
            partial[index] = out.array
    mean = np.concatenate(partial, axis=0)
    return SizedArray(mean, nominal_shape=filtered.nominal_shape[:3])


def mask_step(session, mean_volume):
    """Simplified mask: plain Otsu threshold, no median filtering
    ("a somewhat simplified version of the final mask generation")."""
    threshold = otsu_threshold(mean_volume.array)
    return mean_volume.array > threshold


def denoise_step(session, subject):
    """Denoise rewritten as 3-d convolutions over whole (unmasked)
    volumes, one volume per device per step (memory-bound placement:
    "the assignment of one image volume per physical machine")."""
    cluster = session.cluster
    data = subject.data
    n = data.array.shape[-1]
    kernel = _gaussian_kernel_3d(radius=1, sigma=1.0)
    out = np.empty_like(data.array, dtype=np.float64)

    steps = make_steps(cluster, n)
    vol_nominal = data.nominal_shape[:3]
    for step in steps:
        graph = Graph()
        feeds = {}
        works = []
        for index, device in step:
            with graph.device(device):
                ph = graph.placeholder(vol_nominal)
                feeds[ph] = SizedArray(
                    data.array[..., index].astype(np.float64),
                    nominal_shape=vol_nominal,
                )
                works.append(graph.conv3d(ph, kernel))
        with cluster.obs.provenance(_pid("denoise")):
            results = session.run(graph, works, feed_dict=feeds)
        for (index, _device), tensor in zip(step, results):
            out[..., index] = tensor.array
    return SizedArray(out, nominal_shape=data.nominal_shape, meta=data.meta)


def run(session, subject, plan=None):
    """The TensorFlow-expressible part: segmentation + denoise.

    Returns ``(mask, denoised)``; model fitting raises
    ``NotImplementedError`` (Table 1: NA).
    """
    if plan is None:
        plan = neuro_plan()

    def token():
        return {"subject": subject_token(subject)}

    cluster = session.cluster
    with materialize_scope(cluster, plan, "b0", "tensorflow", extra=token):
        filtered = filter_step(session, subject)
    with materialize_scope(
        cluster, plan, "mean_b0", "tensorflow", extra=token
    ):
        mean = mean_step(session, filtered)
    mask = mask_step(session, mean)
    with materialize_scope(
        cluster, plan, "denoise", "tensorflow", extra=token
    ):
        denoised = denoise_step(session, subject)
    return mask, denoised


def fit_step(*_args, **_kwargs):
    """Step 3-N was not implemented in TensorFlow (Table 1: NA)."""
    raise NotImplementedError(
        "model fitting was not implemented in TensorFlow (Section 4.5)"
    )


def _gaussian_kernel_3d(radius, sigma):
    ax = np.arange(-radius, radius + 1, dtype=np.float64)
    zz, yy, xx = np.meshgrid(ax, ax, ax, indexing="ij")
    kernel = np.exp(-(zz ** 2 + yy ** 2 + xx ** 2) / (2 * sigma ** 2))
    return kernel / kernel.sum()


class LoweredNeuro:
    """Executable produced by ``lower(neuro_plan(), session)``."""

    fit_step = staticmethod(fit_step)

    def __init__(self, plan, session):
        self.plan = plan
        self.session = session

    def run(self, subject):
        return run(self.session, subject, plan=self.plan)
