"""TensorFlow lowering backend: per-step graphs + manual placement.

Only the neuro plan lowers (and only through denoise); the paper did
not implement the astronomy use case in TensorFlow (Table 1).
"""

from repro.engines.tensorflow.lowering import neuro
from repro.engines.tensorflow.lowering.neuro import LoweredNeuro


def lower(plan, ctx):
    """Lower a logical plan against a TF session ``ctx``."""
    if plan.name == "neuro":
        return LoweredNeuro(plan, ctx)
    raise NotImplementedError(
        f"the {plan.name!r} plan has no TensorFlow lowering"
        " (the astronomy use case was not implemented; Table 1)"
    )


__all__ = ["LoweredNeuro", "lower", "neuro"]
