"""The miniTF op set, with the paper's documented restrictions.

Each op defines real evaluation over :class:`Tensor` payloads and a
nominal cost.  Restrictions faithful to Section 4.5 / 5.2.2:

- ``gather`` selects only along the FIRST axis ("TensorFlow, however,
  only supports filtering along the first dimension"), so selecting
  image volumes requires transposing/reshaping first -- priced as full
  data movement, which is why the TF filter is orders of magnitude
  slower (Figure 12a).
- There is no masked element-wise assignment ("TensorFlow does not
  support element-wise data assignment"), so the denoise step must
  process whole tensors (Figure 12c).
"""

import numpy as np

from repro.engines.tensorflow.tensor import Tensor


class OpError(Exception):
    """Unsupported or ill-typed graph operation."""


def _elements(tensor):
    return tensor.nominal_elements


# Each entry: (evaluate(cost_model, *inputs, **attrs) -> Tensor,
#              cost(cost_model, *inputs, **attrs) -> seconds)

def _reduce_mean_eval(inputs, axis):
    t = inputs[0]
    out = t.array.mean(axis=axis)
    nominal = tuple(
        d for i, d in enumerate(t.nominal_shape) if i != axis % len(t.nominal_shape)
    ) if axis is not None else ()
    if axis is None:
        out = np.asarray(t.array.mean())
        nominal = ()
    return Tensor(out, nominal_shape=nominal or (1,))


def _reduce_mean_cost(cm, inputs, axis):
    return _elements(inputs[0]) * cm.elementwise_per_element


def _reduce_sum_eval(inputs, axis):
    t = inputs[0]
    out = t.array.sum(axis=axis)
    nominal = tuple(
        d for i, d in enumerate(t.nominal_shape) if i != axis % len(t.nominal_shape)
    )
    return Tensor(out, nominal_shape=nominal or (1,))


def _binary_eval(op):
    def evaluate(inputs):
        a, b = inputs
        return Tensor(op(a.array, b.array), nominal_shape=a.nominal_shape)
    return evaluate


def _binary_cost(cm, inputs):
    return max(_elements(t) for t in inputs) * cm.elementwise_per_element


def _reshape_eval(inputs, new_nominal, new_real):
    t = inputs[0]
    return Tensor(t.array.reshape(new_real), nominal_shape=new_nominal)


def _reshape_cost(cm, inputs, new_nominal, new_real):
    # Reshape across non-contiguous layouts moves the whole tensor
    # twice (read + write): "reshaping is expensive compared with
    # filtering" (Section 5.2.2).
    return 2.0 * inputs[0].nominal_bytes * cm.memcpy_per_byte


def _gather_eval(inputs, indices, nominal_indices):
    t = inputs[0]
    real = t.array[np.asarray(indices, dtype=int)]
    nominal = (len(nominal_indices),) + tuple(t.nominal_shape[1:])
    return Tensor(real, nominal_shape=nominal)


def _gather_cost(cm, inputs, indices, nominal_indices):
    t = inputs[0]
    per_row = t.nominal_bytes // max(1, t.nominal_shape[0])
    return len(nominal_indices) * per_row * cm.memcpy_per_byte


def _transpose_eval(inputs, perm):
    t = inputs[0]
    real = np.transpose(t.array, perm)
    nominal = tuple(t.nominal_shape[p] for p in perm)
    return Tensor(real, nominal_shape=nominal)


def _transpose_cost(cm, inputs, perm):
    return 2.0 * inputs[0].nominal_bytes * cm.memcpy_per_byte


def _conv3d_eval(inputs, kernel):
    from repro.algorithms.stencil import convolve3d

    t = inputs[0]
    return Tensor(convolve3d(t.array, kernel), nominal_shape=t.nominal_shape)


def _conv3d_cost(cm, inputs, kernel):
    taps = int(np.asarray(kernel).size)
    return _elements(inputs[0]) * taps * cm.elementwise_per_element


OPS = {
    "reduce_mean": (
        lambda cm, inputs, **a: _reduce_mean_eval(inputs, **a),
        lambda cm, inputs, **a: _reduce_mean_cost(cm, inputs, **a),
    ),
    "reduce_sum": (
        lambda cm, inputs, **a: _reduce_sum_eval(inputs, **a),
        lambda cm, inputs, **a: _reduce_mean_cost(cm, inputs, **a),
    ),
    "add": (
        lambda cm, inputs, **a: _binary_eval(np.add)(inputs),
        lambda cm, inputs, **a: _binary_cost(cm, inputs),
    ),
    "sub": (
        lambda cm, inputs, **a: _binary_eval(np.subtract)(inputs),
        lambda cm, inputs, **a: _binary_cost(cm, inputs),
    ),
    "mul": (
        lambda cm, inputs, **a: _binary_eval(np.multiply)(inputs),
        lambda cm, inputs, **a: _binary_cost(cm, inputs),
    ),
    "reshape": (
        lambda cm, inputs, **a: _reshape_eval(inputs, **a),
        lambda cm, inputs, **a: _reshape_cost(cm, inputs, **a),
    ),
    "gather": (
        lambda cm, inputs, **a: _gather_eval(inputs, **a),
        lambda cm, inputs, **a: _gather_cost(cm, inputs, **a),
    ),
    "transpose": (
        lambda cm, inputs, **a: _transpose_eval(inputs, **a),
        lambda cm, inputs, **a: _transpose_cost(cm, inputs, **a),
    ),
    "conv3d": (
        lambda cm, inputs, **a: _conv3d_eval(inputs, **a),
        lambda cm, inputs, **a: _conv3d_cost(cm, inputs, **a),
    ),
    "py_func": (
        lambda cm, inputs, fn, **a: Tensor.wrap(fn(*[t.array for t in inputs])),
        lambda cm, inputs, fn, cost_fn=None, **a: (
            cost_fn(*inputs) if cost_fn is not None else 0.0
        ),
    ),
    "identity": (
        lambda cm, inputs, **a: inputs[0],
        lambda cm, inputs, **a: 0.0,
    ),
}
