"""Shared engine abstractions.

The engines execute *real* user functions over real (scaled-down) data
while charging *nominal* simulated time.  :class:`CostedFunction` binds
those two facets together: the wrapped callable computes actual results
and its ``cost_fn`` prices the work from nominal data sizes, playing the
role of the paper's Python UDFs whose runtime the systems cannot see
inside.
"""

import numpy as np

from repro.formats.sizing import SizedArray

#: Nominal size assumed for small opaque records (ids, small tuples).
SMALL_RECORD_BYTES = 64


def nominal_bytes_of(item):
    """Nominal byte size of a data item flowing through an engine.

    :class:`SizedArray` reports its paper-scale size; tuples/lists/dicts
    sum their members; ndarrays report their real size (they only occur
    for genuinely small payloads like masks at test scale); everything
    else counts as a small record.
    """
    if isinstance(item, SizedArray):
        return item.nominal_bytes
    nominal = getattr(item, "nominal_bytes", None)
    if nominal is not None and not callable(nominal):
        return int(nominal)
    if isinstance(item, np.ndarray):
        return item.nbytes
    if isinstance(item, (tuple, list)):
        return sum(nominal_bytes_of(x) for x in item)
    if isinstance(item, dict):
        return sum(nominal_bytes_of(x) for x in item.values())
    if isinstance(item, (bytes, bytearray, str)):
        return len(item)
    return SMALL_RECORD_BYTES


class CostedFunction:
    """A user function paired with a simulated cost.

    ``cost_fn(*args)`` returns simulated seconds for one invocation at
    nominal scale; when omitted the call is priced as free (appropriate
    for metadata-only lambdas like key extractors).  ``op`` optionally
    names the logical plan op the function implements (a provenance id
    like ``"neuro/denoise"``); lowerings stamp it so physical tasks
    built from the function inherit the attribution.
    """

    __slots__ = ("fn", "cost_fn", "name", "op")

    def __init__(self, fn, cost_fn=None, name=None, op=None):
        if not callable(fn):
            raise TypeError(f"fn must be callable, got {type(fn)!r}")
        if cost_fn is not None and not callable(cost_fn):
            raise TypeError(f"cost_fn must be callable, got {type(cost_fn)!r}")
        self.fn = fn
        self.cost_fn = cost_fn
        self.name = name or getattr(fn, "__name__", "udf")
        self.op = op

    def __call__(self, *args, **kwargs):
        return self.fn(*args, **kwargs)

    def cost(self, *args, **kwargs):
        """Simulated seconds charged for one invocation."""
        if self.cost_fn is None:
            return 0.0
        return float(self.cost_fn(*args, **kwargs))

    def __repr__(self):
        return f"CostedFunction({self.name!r})"


def udf(fn=None, cost=None, name=None, op=None):
    """Convenience wrapper: ``udf(fn, cost=...)`` or decorator form."""
    if fn is None:
        return lambda f: CostedFunction(f, cost_fn=cost, name=name, op=op)
    if isinstance(fn, CostedFunction):
        return fn
    return CostedFunction(fn, cost_fn=cost, name=name, op=op)


def as_costed(fn):
    """Coerce a plain callable into a zero-cost :class:`CostedFunction`."""
    if isinstance(fn, CostedFunction):
        return fn
    return CostedFunction(fn)


class Engine:
    """Base class for the five mini systems."""

    #: Engine display name, e.g. ``"Spark"``; subclasses override.
    name = "engine"

    def __init__(self, cluster):
        self.cluster = cluster
        self._started = False

    @property
    def cost_model(self):
        """Cost model."""
        return self.cluster.cost_model

    @property
    def spec(self):
        """Spec."""
        return self.cluster.spec

    def startup_cost(self):
        """One-time job/session startup in simulated seconds."""
        return 0.0

    def ensure_started(self):
        """Charge the startup cost exactly once per engine instance."""
        if not self._started:
            self._started = True
            cost = self.startup_cost()
            if cost > 0:
                self.cluster.charge_master(
                    cost, label=f"{self.name} startup",
                    category=f"{self.name.lower()}-startup",
                )

    def __repr__(self):
        return f"{type(self).__name__}(nodes={self.spec.n_nodes})"
