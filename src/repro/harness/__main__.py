"""Command-line runner: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.harness --list
    python -m repro.harness table1 fig10a fig12a
    python -m repro.harness fig10c --quick --jobs 4
    python -m repro.harness all --quick
    python -m repro.harness trace neuro --engine spark --out trace.json
    python -m repro.harness fig10c --quick --optimize --route auto
    python -m repro.harness optimize --quick --check
    python -m repro.harness ledger --optimize --quick
    python -m repro.harness ledger fig12c --quick
    python -m repro.harness ledger --figure fig10c --jobs 4 --quick
    python -m repro.harness compare benchmarks/ledger/fig12c-quick.json new.json
    python -m repro.harness bench --jobs 4

``--quick`` swaps the benchmark dataset profile for a miniature one, so
every experiment finishes in seconds (shapes are still indicative but
noisier; the pytest benchmark suite asserts them at the full profile).

``--jobs N`` fans a figure's independent trials across N worker
processes; results are byte-identical to ``--jobs 1`` (DESIGN.md
section 11).  Trials are cached content-addressed under
``.harness-cache/`` (or ``$REPRO_CACHE_DIR``) so re-running a figure
replays instantly; ``--no-cache`` disables that, and any edit to the
``repro`` source tree or a relevant cost constant invalidates the
affected entries automatically.  ``bench`` times serial vs parallel vs
warm-cache execution per figure and writes ``BENCH_harness.json``.

The ``trace`` subcommand runs one experiment with the observability
layer attached, prints the "where did the time go" breakdown (plus the
critical-path blame report with ``--critical-path``), and writes a
Chrome ``trace_event`` JSON file for chrome://tracing or Perfetto.

The ``ledger`` subcommand records versioned run snapshots under
``benchmarks/ledger/``; ``compare`` diffs two snapshots and exits
non-zero when the candidate regressed past the tolerance.
"""

import argparse
import json
import sys

from repro.harness import experiments as E
from repro.harness.cache import TrialCache
from repro.harness.parallel import collecting_snapshots, configured
from repro.harness.report import (
    print_breakdown,
    print_series,
    print_snapshot_blame,
    print_table,
)
from repro.harness.runner import (
    DEFAULT_NODES,
    astro_visits,
    neuro_subjects,
    observe_clusters,
)

QUICK_NEURO = {"scale": 20, "n_volumes": 24}
QUICK_ASTRO = {"scale": 100, "n_sensors": 6}


def _run_table1(_quick):
    tables = E.table1()
    print_table(tables["neuro"], title="Table 1 (neuroscience)")
    print_table(tables["astro"], title="Table 1 (astronomy)")


def _run_fig10a(_quick):
    print_table(E.fig10a_sizes(), title="Figure 10a: neuro data sizes (GB)")


def _run_fig10b(_quick):
    print_table(E.fig10b_sizes(), title="Figure 10b: astro data sizes (GB)")


def _run_fig10c(quick, optimize=False, route=None):
    kwargs = {"optimize": optimize}
    if route == "auto":
        kwargs["engines"] = ("auto",)
    rows = E.fig10c_neuro_end_to_end(
        subject_counts=(1, 2, 4) if quick else E.NEURO_SIZES,
        profile=QUICK_NEURO if quick else None,
        **kwargs,
    )
    suffix = " [optimized]" if optimize else ""
    print_series(rows, "subjects", "engine",
                 title=f"Figure 10c: neuro end-to-end (simulated s){suffix}")
    return rows


def _run_fig10d(quick, optimize=False, route=None):
    kwargs = {"optimize": optimize}
    if route == "auto":
        kwargs["engines"] = ("auto",)
    rows = E.fig10d_astro_end_to_end(
        visit_counts=(2, 4) if quick else E.ASTRO_SIZES,
        profile=QUICK_ASTRO if quick else None,
        **kwargs,
    )
    suffix = " [optimized]" if optimize else ""
    print_series(rows, "visits", "engine",
                 title=f"Figure 10d: astro end-to-end (simulated s){suffix}")
    return rows


def _run_fig10e(quick):
    rows = E.fig10e_neuro_normalized(rows=_run_fig10c(quick))
    print_series(rows, "subjects", "engine", value="normalized",
                 title="Figure 10e: normalized runtime per subject")


def _run_fig10f(quick):
    rows = E.fig10f_astro_normalized(rows=_run_fig10d(quick))
    print_series(rows, "visits", "engine", value="normalized",
                 title="Figure 10f: normalized runtime per visit")


def _run_fig10g(quick):
    rows = E.fig10g_neuro_speedup(
        node_counts=(4, 8) if quick else E.CLUSTER_SIZES,
        n_subjects=4 if quick else 25,
        profile=QUICK_NEURO if quick else None,
    )
    print_series(rows, "nodes", "engine",
                 title="Figure 10g: neuro runtime vs cluster size")


def _run_fig10h(quick):
    rows = E.fig10h_astro_speedup(
        node_counts=(4, 8) if quick else E.CLUSTER_SIZES,
        n_visits=4 if quick else 24,
        profile=QUICK_ASTRO if quick else None,
    )
    print_series(rows, "nodes", "engine",
                 title="Figure 10h: astro runtime vs cluster size")


def _run_fig11(quick):
    with collecting_snapshots() as collected:
        rows = E.fig11_ingest(
            subject_counts=(1, 2) if quick else E.NEURO_SIZES,
            profile=QUICK_NEURO if quick else None,
        )
    print_series(rows, "subjects", "system",
                 title="Figure 11: ingest time (simulated s, log y)")
    print_snapshot_blame(collected.snapshots,
                         title="Figure 11 blame (critical path)")
    return rows


def _run_fig12a(quick):
    rows = E.fig12a_filter(
        n_subjects=2 if quick else 25,
        profile=QUICK_NEURO if quick else None,
    )
    print_table(rows, title="Figure 12a: filter step")


def _run_fig12b(quick):
    rows = E.fig12b_mean(
        n_subjects=2 if quick else 25,
        profile=QUICK_NEURO if quick else None,
    )
    print_table(rows, title="Figure 12b: mean step")


def _run_fig12c(quick):
    rows = E.fig12c_denoise(
        n_subjects=2 if quick else 25,
        profile=QUICK_NEURO if quick else None,
    )
    print_table(rows, title="Figure 12c: denoise step")


def _run_fig12d(quick):
    rows = E.fig12d_coadd(
        n_visits=4 if quick else 24,
        profile=QUICK_ASTRO if quick else None,
    )
    print_table(rows, title="Figure 12d: co-addition step")


def _run_fig13(quick):
    rows = E.fig13_myria_workers(
        n_subjects=2 if quick else 25,
        n_nodes=4 if quick else 16,
        profile=QUICK_NEURO if quick else None,
    )
    print_table(rows, title="Figure 13: Myria workers per node")


def _run_fig14(quick):
    rows = E.fig14_spark_partitions(
        partition_counts=(1, 4, 16) if quick else None or
        (1, 2, 4, 8, 16, 32, 64, 97, 128, 192, 256),
        profile={"scale": 20, "n_volumes": 24} if quick else None,
    )
    print_table(rows, title="Figure 14: Spark input partitions")


def _run_fig15(quick):
    rows = E.fig15_myria_memory(
        visit_counts=(2,) if quick else (2, 8, 24, 96),
        n_nodes=4 if quick else 16,
        profile=QUICK_ASTRO if quick else None,
    )
    print_series(rows, "visits", "mode",
                 title="Figure 15: Myria memory management")


def _run_s531(quick):
    rows = E.s531_scidb_chunks(
        chunk_sizes=(500, 1000) if quick else (500, 1000, 1500, 2000),
        n_visits=4 if quick else 24,
        profile=QUICK_ASTRO if quick else None,
    )
    print_table(rows, title="Section 5.3.1: SciDB chunk size")


def _run_s533(quick):
    rows = E.s533_spark_caching(
        subject_counts=(2,) if quick else (1, 4, 12, 25),
        n_nodes=4 if quick else 16,
        profile=QUICK_NEURO if quick else None,
    )
    print_series(rows, "subjects", "cached",
                 title="Section 5.3.3: Spark input caching")


def _run_f16(quick):
    with collecting_snapshots() as collected:
        rows = E.f16_recovery(
            n_subjects=2 if quick else 4,
            profile=QUICK_NEURO if quick else None,
        )
    print_table(
        rows,
        title="F16: recovery overhead, 1 of 16 nodes killed at 50% progress",
    )
    print_snapshot_blame(collected.snapshots,
                         title="F16 blame (critical path)")
    return rows


def _run_opt(quick):
    rows = E.opt_comparison(
        n_subjects=2 if quick else 4,
        n_visits=2 if quick else 4,
        neuro_profile=QUICK_NEURO if quick else None,
        astro_profile=QUICK_ASTRO if quick else None,
    )
    print_table(
        rows, title="Optimizer: naive vs optimized per (pipeline, engine)"
    )
    return rows


def _opt_failures(rows):
    """Gate violations in naive-vs-optimized comparison rows."""
    failures = []
    for row in rows:
        cell = f"{row['pipeline']}/{row['engine']}"
        if row["optimized_s"] > row["naive_s"] + 1e-6:
            failures.append(
                f"{cell}: optimized makespan {row['optimized_s']}s exceeds"
                f" naive {row['naive_s']}s"
            )
        if not row["identical"]:
            failures.append(
                f"{cell}: optimized results are not byte-identical to naive"
            )
    return failures


def _run_ablation(quick):
    rows = E.ablation_scidb_incremental(
        n_visits=4 if quick else 24,
        profile=QUICK_ASTRO if quick else None,
    )
    print_table(rows, title="Ablation: SciDB incremental iteration [34]")


def _run_ablation_tf(quick):
    rows = E.ablation_tf_format_conversion(
        n_subjects=2 if quick else 4,
        profile=QUICK_NEURO if quick else None,
    )
    print_table(rows, title="Ablation: TF format conversions (Section 6)")


def _run_ablation_tuning(quick):
    rows = E.ablation_spark_self_tuning(
        profile={"scale": 20, "n_volumes": 48} if quick else None,
        n_nodes=8 if quick else 16,
    )
    print_table(rows, title="Ablation: Spark default vs tuned partitions")


EXPERIMENTS = {
    "table1": _run_table1,
    "fig10a": _run_fig10a,
    "fig10b": _run_fig10b,
    "fig10c": _run_fig10c,
    "fig10d": _run_fig10d,
    "fig10e": _run_fig10e,
    "fig10f": _run_fig10f,
    "fig10g": _run_fig10g,
    "fig10h": _run_fig10h,
    "fig11": _run_fig11,
    "fig12a": _run_fig12a,
    "fig12b": _run_fig12b,
    "fig12c": _run_fig12c,
    "fig12d": _run_fig12d,
    "fig13": _run_fig13,
    "fig14": _run_fig14,
    "fig15": _run_fig15,
    "f16": _run_f16,
    "opt": _run_opt,
    "s531": _run_s531,
    "s533": _run_s533,
    "ablation": _run_ablation,
    "ablation-tf": _run_ablation_tf,
    "ablation-tuning": _run_ablation_tuning,
}


def _trace_main(argv):
    """``python -m repro.harness trace <experiment>`` entry point."""
    import contextlib

    from repro.obs import (
        ClusterMetrics,
        compute_critical_path,
        format_critical_path,
        run_snapshot,
        write_chrome_trace,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness trace",
        description="Run one experiment under the observability layer;"
        " print its time/bytes breakdown and export a Chrome trace.",
    )
    parser.add_argument(
        "experiment",
        help="'neuro' or 'astro' for one end-to-end run, or any"
        " experiment id from --list (the last cluster it builds is"
        " traced)",
    )
    parser.add_argument("--engine", default="spark",
                        choices=("spark", "myria", "dask"),
                        help="engine for neuro/astro end-to-end runs")
    parser.add_argument("--nodes", type=int, default=DEFAULT_NODES,
                        help="cluster size for neuro/astro runs")
    parser.add_argument("--subjects", type=int, default=2,
                        help="neuro dataset size")
    parser.add_argument("--visits", type=int, default=4,
                        help="astro dataset size")
    parser.add_argument("--quick", action="store_true",
                        help="miniature dataset profile")
    parser.add_argument("--out", default=None,
                        help="trace JSON path (default <experiment>-trace.json)")
    parser.add_argument("--critical-path", action="store_true",
                        help="print the critical-path blame report and"
                        " highlight the path with flow arrows in the trace")
    parser.add_argument("--by-op", action="store_true",
                        help="fold critical-path blame up to logical plan"
                        " ops and print the per-op attribution table")
    parser.add_argument("--json", action="store_true",
                        help="emit the run snapshot (the ledger serializer)"
                        " as JSON on stdout; human output moves to stderr")
    args = parser.parse_args(argv)

    captured = []

    def observer(cluster):
        captured.append((cluster, ClusterMetrics.attach(cluster)))

    # With --json, stdout carries only the snapshot document.
    human_out = sys.stderr if args.json else sys.stdout
    with observe_clusters(observer), contextlib.redirect_stdout(human_out):
        if args.experiment == "neuro":
            subjects = neuro_subjects(
                args.subjects, **(QUICK_NEURO if args.quick else {})
            )
            seconds = E.run_neuro_end_to_end(
                args.engine, subjects, n_nodes=args.nodes
            )
            print(f"{args.engine} neuro end-to-end over {args.nodes} nodes:"
                  f" {seconds:.1f} simulated s\n")
        elif args.experiment == "astro":
            visits = astro_visits(
                args.visits, **(QUICK_ASTRO if args.quick else {})
            )
            seconds = E.run_astro_end_to_end(
                args.engine, visits, n_nodes=args.nodes
            )
            print(f"{args.engine} astro end-to-end over {args.nodes} nodes:"
                  f" {seconds:.1f} simulated s\n")
        elif args.experiment in EXPERIMENTS:
            EXPERIMENTS[args.experiment](args.quick)
            print()
        else:
            parser.error(
                f"unknown experiment {args.experiment!r}; expected 'neuro',"
                " 'astro', or an id from --list"
            )
    if not captured:
        parser.error(
            f"experiment {args.experiment!r} built no cluster to trace"
        )
    cluster, metrics = captured[-1]
    path = compute_critical_path(cluster) if (
        args.critical_path or args.by_op or args.json
    ) else None
    print_breakdown(
        cluster, metrics=metrics,
        out=lambda text: print(text, file=human_out),
    )
    if args.critical_path:
        print("\n" + format_critical_path(path), file=human_out)
    if args.by_op:
        from repro.obs.attribution import (
            attribute_critical_path,
            format_attribution,
        )

        rows = attribute_critical_path(cluster, path=path)
        print("\n" + format_attribution(rows), file=human_out)
    out_path = args.out or f"{args.experiment}-trace.json"
    write_chrome_trace(cluster, out_path, metrics=metrics,
                       critical_path=path if args.critical_path else None)
    print(f"\nwrote Chrome trace to {out_path}"
          " (load in chrome://tracing or ui.perfetto.dev)", file=human_out)
    if args.json:
        snapshot = run_snapshot(cluster, label=args.experiment,
                                critical_path=path)
        print(json.dumps(snapshot, indent=1, sort_keys=True))
    return 0


def build_experiment_snapshot(name, quick=True):
    """Run one experiment id and snapshot every cluster it builds.

    Grid experiments report their runs through the trial executor's
    snapshot sink (so they work at ``--jobs N`` and from the cache,
    where the parent never holds the cluster objects); experiments not
    yet routed through :func:`repro.harness.parallel.run_grid` fall
    back to observing the clusters directly.
    """
    from repro.obs import run_snapshot
    from repro.obs.breakdown import records_of, summarize_records
    from repro.obs.ledger import experiment_snapshot

    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; use --list to see choices"
        )
    clusters = []
    with observe_clusters(clusters.append), \
            collecting_snapshots() as collected:
        EXPERIMENTS[name](quick)
    if collected.snapshots:
        runs = []
        for index, snapshot in enumerate(collected.snapshots):
            snapshot = dict(snapshot)
            snapshot["label"] = f"{index:02d}-{snapshot['label']}"
            runs.append(snapshot)
    else:
        runs = []
        for index, cluster in enumerate(clusters):
            groups = summarize_records(records_of(cluster))
            top_group = groups[0]["group"] if groups else "empty"
            runs.append(
                run_snapshot(cluster, label=f"{index:02d}-{top_group}")
            )
    scale = {
        "quick": bool(quick),
        "neuro_profile": QUICK_NEURO if quick else None,
        "astro_profile": QUICK_ASTRO if quick else None,
    }
    return experiment_snapshot(name, runs, quick=quick, scale=scale)


def _optimize_main(argv):
    """``python -m repro.harness optimize`` entry point.

    Explains the query compiler: per-(pipeline, engine) rule firing
    traces with estimated savings, the cost table behind the router's
    decision, and — with ``--check`` — an executed naive-vs-optimized
    comparison of every cell that gates on the two invariants
    (non-increasing makespan, byte-identical results).
    """
    from repro.plan import astro_plan, choose_engine, neuro_plan, optimize_for
    from repro.plan import route as R

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness optimize",
        description="Explain the rewrite-rule optimizer and the"
        " cost-based engine router; optionally verify both invariants"
        " by running every cell naive and optimized.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="miniature dataset profiles")
    parser.add_argument("--subjects", type=int, default=None,
                        help="neuro workload size (default 2 quick / 4)")
    parser.add_argument("--visits", type=int, default=None,
                        help="astro workload size (default 2 quick / 4)")
    parser.add_argument("--nodes", type=int, default=DEFAULT_NODES,
                        help="cluster size the estimates assume")
    parser.add_argument("--engines", default="dask,myria,spark",
                        help="comma-separated engines to trace/check")
    parser.add_argument("--check", action="store_true",
                        help="execute every (pipeline, engine) cell naive"
                        " and optimized; non-zero exit on a makespan"
                        " regression or a result byte-diff")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for --check trials")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the content-addressed trial cache")
    args = parser.parse_args(argv)

    n_subjects = args.subjects or (2 if args.quick else 4)
    n_visits = args.visits or (2 if args.quick else 4)
    engines = tuple(e.strip() for e in args.engines.split(",") if e.strip())
    subjects = neuro_subjects(n_subjects,
                              **(QUICK_NEURO if args.quick else {}))
    visits = astro_visits(n_visits, **(QUICK_ASTRO if args.quick else {}))
    workloads = (
        ("neuro", neuro_plan(), R.neuro_profile(subjects)),
        ("astro", astro_plan(), R.astro_profile(visits)),
    )

    print("Rule firing trace (per-engine calibrated cost guards)")
    for pipeline, plan, prof in workloads:
        for engine in engines:
            result = optimize_for(plan, engine, profile=prof)
            naive_est = R.estimate_plan_cost(
                plan, engine, profile=prof, n_nodes=args.nodes
            ).total
            opt_est = R.estimate_plan_cost(
                result.plan, engine, profile=prof, n_nodes=args.nodes
            ).total
            print(f"  {pipeline}/{engine}: estimated {naive_est:.1f}s"
                  f" -> {opt_est:.1f}s, {len(result.firings)} rewrite(s)"
                  f" in {result.passes} pass(es)"
                  f" [fingerprint {result.fingerprint()[:12]}]")
            for firing in result.firings:
                saving = (f", est. -{firing.saving:.3f}s"
                          if firing.saving is not None else "")
                print(f"    pass {firing.pass_no} {firing.rule}:"
                      f" {firing.detail}{saving}")
            if not result.firings:
                print("    (no rewrites accepted: every candidate was"
                      " cost-neutral or worse on this engine)")

    print("\nRouter decisions (Table-1 constraints + cheapest estimate)")
    for pipeline, plan, prof in workloads:
        decision = choose_engine(plan, prof, n_nodes=args.nodes)
        print_table(
            [dict({"pipeline": pipeline}, **row)
             for row in decision.as_rows()],
            title=f"{pipeline}: routed to {decision.engine}",
        )

    if not args.check:
        return 0

    from repro.obs import format_opt_comparison
    from repro.obs.ledger import experiment_snapshot

    cache = None if args.no_cache else TrialCache()
    with configured(jobs=args.jobs, cache=cache), \
            collecting_snapshots() as collected:
        rows = E.opt_comparison(
            n_subjects=n_subjects, n_visits=n_visits, n_nodes=args.nodes,
            neuro_profile=QUICK_NEURO if args.quick else None,
            astro_profile=QUICK_ASTRO if args.quick else None,
            engines=engines,
        )
    print()
    print_table(rows, title="Executed naive vs optimized (simulated s)")
    runs = [dict(s, label=f"{i:02d}-{s['label']}")
            for i, s in enumerate(collected.snapshots)]
    print()
    print(format_opt_comparison(experiment_snapshot("opt", runs)))
    failures = _opt_failures(rows)
    for failure in failures:
        print(f"optimize check: {failure}", file=sys.stderr)
    if not failures:
        print("\noptimize check: all cells non-increasing and"
              " byte-identical")
    return 1 if failures else 0


def _ledger_main(argv):
    """``python -m repro.harness ledger <experiment...>`` entry point."""
    import contextlib
    import os

    from repro.obs.ledger import write_snapshot

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness ledger",
        description="Run experiments and write versioned ledger snapshots"
        " (makespan, blame, bytes, memory) for regression tracking.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (see --list), or 'all'")
    parser.add_argument("--figure", action="append", dest="figures",
                        default=[], metavar="ID",
                        help="experiment id to run (repeatable; alias for"
                        " the positional form)")
    parser.add_argument("--quick", action="store_true",
                        help="miniature datasets (the checked-in baselines"
                        " use this)")
    parser.add_argument("--optimize", action="store_true",
                        help="also run the naive-vs-optimized comparison"
                        " ('opt' snapshot) and fail on a makespan"
                        " regression or a result byte-diff")
    parser.add_argument("--out-dir", default="benchmarks/ledger",
                        help="directory snapshots are written into")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for independent trials"
                        " (results are byte-identical to --jobs 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the content-addressed trial cache")
    args = parser.parse_args(argv)

    requested = list(args.experiments) + list(args.figures)
    if not requested and args.optimize:
        requested = ["opt"]
    if not requested:
        parser.error("no experiments given (positional ids or --figure)")
    names = list(EXPERIMENTS) if requested == ["all"] else requested
    if args.optimize and "opt" not in names:
        names.append("opt")
    for name in names:
        if name not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {name!r}; use --list to see choices"
            )
    os.makedirs(args.out_dir, exist_ok=True)
    cache = None if args.no_cache else TrialCache()
    failures = []
    with configured(jobs=args.jobs, cache=cache):
        for name in names:
            with contextlib.redirect_stdout(sys.stderr):
                snapshot = build_experiment_snapshot(name, quick=args.quick)
            suffix = "-quick" if args.quick else ""
            path = os.path.join(args.out_dir, f"{name}{suffix}.json")
            write_snapshot(snapshot, path)
            print(
                f"wrote {path} (makespan {snapshot['total_makespan_s']:.1f}s,"
                f" {len(snapshot['runs'])} run(s))"
            )
            if name == "opt" and args.optimize:
                from repro.obs import format_opt_comparison

                print(format_opt_comparison(snapshot))
                # Replays from the trial cache the figure just filled;
                # the rows carry the per-cell digests the byte-identity
                # gate needs (snapshots only record makespans).
                with contextlib.redirect_stdout(sys.stderr):
                    rows = E.opt_comparison(
                        n_subjects=2 if args.quick else 4,
                        n_visits=2 if args.quick else 4,
                        neuro_profile=QUICK_NEURO if args.quick else None,
                        astro_profile=QUICK_ASTRO if args.quick else None,
                    )
                failures.extend(_opt_failures(rows))
    if cache is not None and (cache.hits or cache.misses):
        print(f"trial cache: {cache.hits} hit(s), {cache.misses} miss(es)",
              file=sys.stderr)
    for failure in failures:
        print(f"ledger --optimize: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _compare_main(argv):
    """``python -m repro.harness compare`` entry point.

    Exit codes: 0 comparable and no regression, 1 regression past the
    tolerance, 2 the two documents cannot be compared at all (mismatched
    schema versions, or one is a ledger snapshot and the other a bench
    report) -- with a diagnostic instead of a traceback.
    """
    from repro.obs.ledger import (
        DEFAULT_TOLERANCE,
        LedgerSchemaError,
        compare_snapshots,
        format_compare,
        load_snapshot,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness compare",
        description="Diff two ledger snapshots; non-zero exit when the"
        " candidate's makespan regressed past the tolerance.",
    )
    parser.add_argument("baseline", help="baseline snapshot JSON path")
    parser.add_argument("candidate", help="candidate snapshot JSON path")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="relative regression tolerance"
                        f" (default {DEFAULT_TOLERANCE})")
    parser.add_argument("--json", action="store_true",
                        help="emit the comparison report as JSON")
    args = parser.parse_args(argv)

    try:
        with open(args.baseline) as fh:
            raw_baseline = json.load(fh)
        with open(args.candidate) as fh:
            raw_candidate = json.load(fh)
    except (OSError, ValueError) as exc:
        parser.error(str(exc))
    is_bench = [
        "bench_schema_version" in raw_baseline,
        "bench_schema_version" in raw_candidate,
    ]
    if any(is_bench) and not all(is_bench):
        bench_path = args.baseline if is_bench[0] else args.candidate
        ledger_path = args.candidate if is_bench[0] else args.baseline
        print(
            f"cannot compare: {bench_path} is a harness bench report"
            f" while {ledger_path} is a ledger snapshot;"
            " compare bench against bench (harness bench) or ledger"
            " against ledger (harness ledger)",
            file=sys.stderr,
        )
        return 2
    if all(is_bench):
        return _compare_bench(
            raw_baseline, raw_candidate,
            paths=(args.baseline, args.candidate), as_json=args.json,
        )

    try:
        baseline = load_snapshot(args.baseline)
        candidate = load_snapshot(args.candidate)
    except LedgerSchemaError as exc:
        print(exc.diagnostic(), file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        parser.error(str(exc))
    report = compare_snapshots(baseline, candidate, tolerance=args.tolerance)
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        print(format_compare(report))
    return 1 if report["makespan"]["regression"] else 0


def _warm_hits(figure_row):
    """Warm-run cache hits from a v1 (``cache_hits``) or v2
    (``warm_cache``) bench figure row."""
    warm = figure_row.get("warm_cache")
    if warm is not None:
        return warm.get("hits")
    return figure_row.get("cache_hits")


def _compare_bench(baseline, candidate, paths=("baseline", "candidate"),
                   as_json=False):
    """Diff two ``BENCH_harness.json`` files (report-only: wall-clock
    depends on the machine, so bench deltas never fail the build).

    Mismatched layouts -- different ``bench_schema_version``, or phase
    decompositions present on only one side -- exit 2 with a diagnostic
    rather than comparing apples to oranges.
    """
    b_version = baseline.get("bench_schema_version")
    c_version = candidate.get("bench_schema_version")
    if b_version != c_version:
        detail = ""
        if {b_version, c_version} == {2, 3}:
            v2_path = paths[0] if b_version == 2 else paths[1]
            detail = (
                f" (v3 adds per-figure op_cache hit/miss counters,"
                f" the dispatch chunk_size, and the snapshots_identical"
                f" flag; {v2_path} predates them)"
            )
        print(
            f"cannot compare: {paths[0]} has bench_schema_version"
            f" {b_version!r} but {paths[1]} has {c_version!r}{detail};"
            " regenerate both with the same build"
            " (PYTHONPATH=src python -m repro.harness bench)",
            file=sys.stderr,
        )
        return 2
    has_phases = [
        any("phases" in row for row in doc.get("figures", {}).values())
        for doc in (baseline, candidate)
    ]
    if any(has_phases) and not all(has_phases):
        with_p = paths[0] if has_phases[0] else paths[1]
        without_p = paths[1] if has_phases[0] else paths[0]
        print(
            f"cannot compare: {with_p} carries a --phases wall-clock"
            f" decomposition but {without_p} does not;"
            " rerun both with (or both without) --phases",
            file=sys.stderr,
        )
        return 2
    figures = sorted(
        set(baseline.get("figures", {})) | set(candidate.get("figures", {}))
    )
    rows = []
    for name in figures:
        b = baseline.get("figures", {}).get(name, {})
        c = candidate.get("figures", {}).get(name, {})
        row = {"figure": name}
        for key in ("serial_s", "parallel_s", "warm_s"):
            b_v, c_v = b.get(key), c.get(key)
            row[f"baseline_{key}"] = b_v
            row[f"candidate_{key}"] = c_v
            if b_v and c_v:
                row[f"{key}_ratio"] = round(c_v / b_v, 3)
        row["baseline_cache_hits"] = _warm_hits(b)
        row["candidate_cache_hits"] = _warm_hits(c)
        rows.append(row)
    report = {
        "bench_compare": True,
        "baseline_jobs": baseline.get("jobs"),
        "candidate_jobs": candidate.get("jobs"),
        "figures": rows,
    }
    if as_json:
        print(json.dumps(report, indent=1, sort_keys=True))
        return 0
    print("Harness bench comparison (wall-clock; report only)")
    for row in rows:
        parts = [row["figure"]]
        for key in ("serial_s", "parallel_s", "warm_s"):
            b_v = row.get(f"baseline_{key}")
            c_v = row.get(f"candidate_{key}")
            if b_v is not None and c_v is not None:
                ratio = row.get(f"{key}_ratio")
                parts.append(
                    f"{key} {b_v:.2f}s -> {c_v:.2f}s"
                    + (f" (x{ratio:.2f})" if ratio else "")
                )
        print("  " + "; ".join(parts))
    return 0


#: Figures the self-benchmark times by default: the two end-to-end
#: grids the CI parallel job replays plus the per-step figure.
BENCH_FIGURES = ("fig10c", "fig11", "fig12c")

#: ``BENCH_harness.json`` layout version.  v2 split the conflated v1
#: ``cache_hits``/``cache_misses`` pair into per-phase ``cold_cache``/
#: ``warm_cache`` counters and added the optional ``--phases``
#: wall-clock decomposition.  v3 adds per-figure ``op_cache`` counters
#: (the sub-trial memoization tier), the dispatch ``chunk_size``, and
#: ``snapshots_identical`` -- every leg now collects ledger snapshots,
#: so serial, parallel and warm runs do identical work and the recorded
#: speedups compare like with like.
BENCH_SCHEMA_VERSION = 3


def _timed_run(run, quick, label, phases=False, log_path=None):
    """Time one figure run; returns ``(wall_s, phase_report, canon)``.

    Every run executes under a :func:`collecting_snapshots` sink and
    ``canon`` is the canonical JSON of the snapshots it produced, so
    the bench can assert serial/parallel/warm byte-identity and every
    leg pays the same snapshot-extraction work.

    With ``phases`` the run additionally executes under an active
    telemetry recorder whose top-level ``other`` phase wraps the whole
    figure, so the executor's phases (cache-lookup, pool-startup,
    dispatch, row-assemble, cache-store, result-merge) plus the
    ``other`` residue tile the measured wall time by construction.
    """
    import time

    if not phases:
        with collecting_snapshots() as sink:
            start = time.perf_counter()
            run(quick)
            wall = time.perf_counter() - start
        return wall, None, json.dumps(sink.snapshots, sort_keys=True)
    from repro.obs import telemetry

    with telemetry.recording(log_path=log_path) as rec:
        rec.event("bench-run", label=label)
        with collecting_snapshots() as sink:
            start = time.perf_counter()
            with rec.phase("other", run=label):
                run(quick)
                # Close the bracket before the phase's exit bookkeeping
                # (its own log write is telemetry overhead, not figure
                # wall time).
                wall = time.perf_counter() - start
        report = telemetry.phase_report(rec.phase_totals(), wall)
        report["metrics"] = rec.metrics.snapshot()
    return wall, report, json.dumps(sink.snapshots, sort_keys=True)


def _bench_main(argv):
    """``python -m repro.harness bench`` entry point.

    For each figure: one serial uncached run, one parallel cold-cache
    run, one parallel warm-cache run.  Writes wall-clock seconds and
    per-phase cache counters to ``BENCH_harness.json`` -- the harness's
    own perf trajectory, the way ``benchmarks/ledger/`` tracks the
    simulated clusters'.  Every leg runs under a snapshot sink so all
    three do identical work, and the figure row records whether their
    snapshots were byte-identical.  ``--phases`` additionally
    decomposes each run's wall clock into executor phases and appends
    the structured telemetry log; ``--gate`` turns a sub-1.0 speedup or
    a snapshot mismatch into a non-zero exit (the CI parallel-harness
    job runs this).
    """
    import contextlib
    import os
    import shutil
    import tempfile

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness bench",
        description="Self-benchmark the harness: serial vs parallel vs"
        " warm-cache wall-clock per figure.",
    )
    parser.add_argument("figures", nargs="*", default=None,
                        help=f"figures to time (default {' '.join(BENCH_FIGURES)})")
    parser.add_argument("--jobs", type=int,
                        default=min(4, os.cpu_count() or 1),
                        help="worker processes for the parallel runs")
    parser.add_argument("--full", action="store_true",
                        help="benchmark at the full dataset profile"
                        " (default: --quick profiles)")
    parser.add_argument("--out", default="BENCH_harness.json",
                        help="output path (default BENCH_harness.json)")
    parser.add_argument("--phases", action="store_true",
                        help="record the wall-clock phase decomposition"
                        " of every run (cache-lookup, pool-startup,"
                        " dispatch, row-assemble, cache-store,"
                        " result-merge, other)")
    parser.add_argument("--telemetry-log", default="BENCH_telemetry.jsonl",
                        help="JSON-lines telemetry log written under"
                        " --phases (default BENCH_telemetry.jsonl)")
    parser.add_argument("--gate", action="store_true",
                        help="exit non-zero if any figure's parallel"
                        " speedup falls below 1.0 or its serial/"
                        "parallel/warm snapshots are not byte-identical")
    args = parser.parse_args(argv)

    names = args.figures or list(BENCH_FIGURES)
    for name in names:
        if name not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {name!r}; use --list to see choices"
            )
    quick = not args.full
    log_path = args.telemetry_log if args.phases else None
    if log_path:
        # The recorder appends (one recording per run); start clean.
        with open(log_path, "w"):
            pass
    from repro.harness import parallel as parallel_mod

    results = {}
    gate_failures = []
    with open(os.devnull, "w") as devnull:
        for name in names:
            run = EXPERIMENTS[name]
            cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
            try:
                with contextlib.redirect_stdout(devnull):
                    with configured(jobs=1, cache=None):
                        serial_s, serial_phases, serial_canon = _timed_run(
                            run, quick, f"{name}/serial",
                            phases=args.phases, log_path=log_path,
                        )

                    cold = TrialCache(cache_dir)
                    parallel_mod.last_chunk_size = None
                    with configured(jobs=args.jobs, cache=cold):
                        parallel_s, parallel_phases, cold_canon = _timed_run(
                            run, quick, f"{name}/parallel",
                            phases=args.phases, log_path=log_path,
                        )
                    chunk_size = parallel_mod.last_chunk_size

                    warm = TrialCache(cache_dir)
                    with configured(jobs=args.jobs, cache=warm):
                        warm_s, warm_phases, warm_canon = _timed_run(
                            run, quick, f"{name}/warm",
                            phases=args.phases, log_path=log_path,
                        )
            finally:
                shutil.rmtree(cache_dir, ignore_errors=True)
            identical = serial_canon == cold_canon == warm_canon
            results[name] = {
                "serial_s": round(serial_s, 3),
                "parallel_s": round(parallel_s, 3),
                "warm_s": round(warm_s, 3),
                "jobs": args.jobs,
                "cold_cache": cold.stats(),
                "warm_cache": warm.stats(),
                "op_cache": {
                    "cold": cold.op_stats(),
                    "warm": warm.op_stats(),
                },
                "chunk_size": chunk_size,
                "snapshots_identical": identical,
                "speedup": round(serial_s / parallel_s, 2)
                if parallel_s else None,
                "warm_over_cold": round(warm_s / parallel_s, 3)
                if parallel_s else None,
            }
            if args.phases:
                results[name]["phases"] = {
                    "serial": serial_phases,
                    "parallel": parallel_phases,
                    "warm": warm_phases,
                }
            row = results[name]
            print(f"{name}: serial {row['serial_s']:.2f}s,"
                  f" parallel(x{args.jobs}) {row['parallel_s']:.2f}s"
                  f" (speedup {row['speedup']}),"
                  f" warm cache {row['warm_s']:.2f}s"
                  f" ({row['warm_cache']['hits']} hit(s))")
            if args.phases:
                decomposition = parallel_phases["phases"]
                parts = ", ".join(
                    f"{phase} {data['self_s']:.2f}s"
                    for phase, data in sorted(
                        decomposition.items(),
                        key=lambda item: -item[1]["self_s"],
                    )
                )
                print(f"  parallel phases ({parallel_phases['coverage']:.0%}"
                      f" of wall): {parts}")
            if not identical:
                gate_failures.append(
                    f"{name}: serial/parallel/warm snapshots differ"
                )
            if row["speedup"] is not None and row["speedup"] < 1.0:
                gate_failures.append(
                    f"{name}: parallel speedup {row['speedup']} < 1.0"
                )
    document = {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "jobs": args.jobs,
        "figures": results,
    }
    with open(args.out, "w") as fh:
        json.dump(document, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if log_path:
        print(f"wrote telemetry log to {log_path}")
    if args.gate and gate_failures:
        for failure in gate_failures:
            print(f"bench gate: {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv=None):
    """CLI entry point."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "optimize":
        return _optimize_main(argv[1:])
    if argv and argv[0] == "ledger":
        return _ledger_main(argv[1:])
    if argv and argv[0] == "compare":
        return _compare_main(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate tables/figures from the paper's evaluation.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help="experiment ids (see --list), or 'all'",
    )
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--quick", action="store_true",
                        help="miniature datasets (seconds instead of minutes)")
    parser.add_argument("--optimize", action="store_true",
                        help="run plans through the rewrite-rule optimizer"
                        " before lowering (figures with end-to-end plans:"
                        " fig10c, fig10d; results stay byte-identical and"
                        " cache entries are separately keyed)")
    parser.add_argument("--route", choices=("auto",), default=None,
                        help="'auto' resolves each end-to-end cell's engine"
                        " through the cost-based router instead of the"
                        " figure's fixed engine list")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for independent trials"
                        " (results are byte-identical to --jobs 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the content-addressed trial cache")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    for name in names:
        if name not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {name!r}; use --list to see choices"
            )
    import inspect

    cache = None if args.no_cache else TrialCache()
    with configured(jobs=args.jobs, cache=cache):
        for name in names:
            fn = EXPERIMENTS[name]
            accepted = inspect.signature(fn).parameters
            kwargs = {}
            if args.optimize and "optimize" in accepted:
                kwargs["optimize"] = True
            if args.route and "route" in accepted:
                kwargs["route"] = args.route
            if (args.optimize or args.route) and not kwargs and name != "opt":
                print(f"note: {name} has no optimizer/router variant;"
                      " running unchanged", file=sys.stderr)
            fn(args.quick, **kwargs)
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
