"""Benchmark harness: one experiment per table/figure of the paper.

- :mod:`repro.harness.runner` -- engine/cluster factories and dataset
  profiles shared by all experiments.
- :mod:`repro.harness.experiments` -- one function per paper element
  (Table 1, Figures 10-15, Sections 5.3.1/5.3.3, the [34] ablation).
- :mod:`repro.harness.report` -- paper-style table printers.
- :mod:`repro.harness.loc` -- the lines-of-code accounting for Table 1.
"""

from repro.harness.runner import (
    ASTRO_BENCH,
    NEURO_BENCH,
    make_cluster,
    make_engine,
)

__all__ = ["ASTRO_BENCH", "NEURO_BENCH", "make_cluster", "make_engine"]
