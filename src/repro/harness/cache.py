"""Content-addressed trial cache for the experiment harness.

Every figure is a grid of independent *trials* (one engine on one data
size on one cluster size).  A trial is pure: its rows and ledger
snapshots are a deterministic function of (a) the trial function and
its arguments, (b) the engine kind, (c) the cost-model constants that
engine consumes, (d) any fault plan, and (e) the simulator/harness
code itself.  The cache keys on exactly those inputs, so

* re-running a figure or a ledger compare replays cached trials
  instantly, and
* recalibrating a cost constant invalidates precisely the trials whose
  engine reads that constant -- a ``spark_task_overhead`` change does
  not evict Dask or SciDB trials, while a shared constant such as
  ``network_bandwidth`` evicts everything.

The code-version salt is a hash of the ``repro`` source tree: any
source edit (new scheduling order, new blame category, ...) cold-starts
the cache rather than serving stale simulations.
"""

import dataclasses
import hashlib
import json
import os
import tempfile
import time

from repro.cluster.costs import CostModel
from repro.obs import telemetry

#: Bump when the cached payload layout changes incompatibly.
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".harness-cache"

#: Field-name prefix -> the one engine kind that reads such constants.
_ENGINE_PREFIXES = {
    "spark_": "spark",
    "myria_": "myria",
    "dask_": "dask",
    "scidb_": "scidb",
    "tf_": "tensorflow",
}

#: Unprefixed constants consumed by a strict subset of the engines
#: (verified against the cost-model method call sites).  Anything not
#: listed here or matched by a prefix is treated as shared by every
#: engine -- over-invalidation is safe, under-invalidation is not.
_CONSTANT_ENGINES = {
    "python_boundary_bandwidth": ("spark",),
    "tensor_convert_bandwidth": ("tensorflow",),
    "csv_encode_bandwidth": ("scidb",),
    "csv_decode_bandwidth": ("scidb",),
    "pickle_bandwidth": ("spark", "myria", "dask"),
    "unpickle_bandwidth": ("spark", "myria", "dask"),
}


def constant_engines(name):
    """Engine kinds whose simulations depend on cost constant ``name``.

    Returns ``None`` when the constant is shared by every engine.
    """
    for prefix, engine in _ENGINE_PREFIXES.items():
        if name.startswith(prefix):
            return (engine,)
    return _CONSTANT_ENGINES.get(name)


def relevant_constants(cost_model, engine=None):
    """The cost constants a trial on ``engine`` actually depends on.

    With ``engine=None`` (a trial that mixes engines) every constant is
    relevant.
    """
    constants = dataclasses.asdict(cost_model)
    if engine is None:
        return constants
    out = {}
    for name, value in constants.items():
        engines = constant_engines(name)
        if engines is None or engine in engines:
            out[name] = value
    return out


_code_hash_cache = {}


def code_tree_hash(root=None):
    """Hash of every ``repro`` source file; the cache-version salt.

    Any edit to the simulator, engines, pipelines, or harness changes
    this digest and therefore every cache key: the cache can never
    serve a simulation produced by different code.
    """
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(root)
    cached = _code_hash_cache.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    paths = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__"
        )
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                paths.append(os.path.join(dirpath, filename))
    for path in paths:
        digest.update(os.path.relpath(path, root).encode())
        with open(path, "rb") as fh:
            digest.update(fh.read())
    result = digest.hexdigest()
    _code_hash_cache[root] = result
    return result


def cache_key(fn, kwargs, engine=None, cost_model=None, faults=None,
              salt=None):
    """Content address of one trial.

    ``fn`` is the registered trial-function name, ``kwargs`` its
    JSON-safe arguments, ``engine`` the engine kind (scopes which cost
    constants key the trial), ``faults`` a JSON-safe description of any
    fault plan, and ``salt`` overrides the code-tree hash (tests).
    """
    if cost_model is None:
        cost_model = CostModel()
    document = {
        "schema": CACHE_SCHEMA_VERSION,
        "salt": salt if salt is not None else code_tree_hash(),
        "fn": fn,
        "kwargs": kwargs,
        "engine": engine,
        "faults": faults,
        "constants": relevant_constants(cost_model, engine=engine),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class TrialCache:
    """Directory of cached trial payloads, one JSON file per key."""

    def __init__(self, root=None):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = root
        self.hits = 0
        self.misses = 0

    def _path(self, key):
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key):
        """Cached payload for ``key``, or ``None`` on a miss."""
        rec = telemetry.recorder()
        start = time.perf_counter()
        try:
            with open(self._path(key)) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            rec.count("cache.misses")
            rec.observe("cache.get_s", time.perf_counter() - start)
            return None
        self.hits += 1
        rec.count("cache.hits")
        rec.observe("cache.get_s", time.perf_counter() - start)
        return payload

    def put(self, key, payload):
        """Store ``payload`` atomically (rename over a temp file)."""
        rec = telemetry.recorder()
        start = time.perf_counter()
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                encoded = json.dumps(payload)
                fh.write(encoded)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        rec.count("cache.stores")
        rec.observe("cache.payload_bytes", len(encoded))
        rec.observe("cache.put_s", time.perf_counter() - start)

    def stats(self):
        """``{"hits", "misses"}`` counters for this cache handle."""
        return {"hits": self.hits, "misses": self.misses}
