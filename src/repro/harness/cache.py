"""Content-addressed trial cache for the experiment harness.

Every figure is a grid of independent *trials* (one engine on one data
size on one cluster size).  A trial is pure: its rows and ledger
snapshots are a deterministic function of (a) the trial function and
its arguments, (b) the engine kind, (c) the cost-model constants that
engine consumes, (d) any fault plan, and (e) the simulator/harness
code itself.  The cache keys on exactly those inputs, so

* re-running a figure or a ledger compare replays cached trials
  instantly, and
* recalibrating a cost constant invalidates precisely the trials whose
  engine reads that constant -- a ``spark_task_overhead`` change does
  not evict Dask or SciDB trials, while a shared constant such as
  ``network_bandwidth`` evicts everything.

The code-version salt is a hash of the ``repro`` source tree: any
source edit (new scheduling order, new blame category, ...) cold-starts
the cache rather than serving stale simulations.
"""

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
import zlib

from repro.cluster.costs import CostModel
from repro.obs import telemetry

#: Bump when the cached payload layout changes incompatibly.
#: v2: compact zlib-compressed JSON payloads (was pretty JSON).
CACHE_SCHEMA_VERSION = 2

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".harness-cache"

#: Field-name prefix -> the one engine kind that reads such constants.
_ENGINE_PREFIXES = {
    "spark_": "spark",
    "myria_": "myria",
    "dask_": "dask",
    "scidb_": "scidb",
    "tf_": "tensorflow",
}

#: Unprefixed constants consumed by a strict subset of the engines
#: (verified against the cost-model method call sites).  Anything not
#: listed here or matched by a prefix is treated as shared by every
#: engine -- over-invalidation is safe, under-invalidation is not.
_CONSTANT_ENGINES = {
    "python_boundary_bandwidth": ("spark",),
    "tensor_convert_bandwidth": ("tensorflow",),
    "csv_encode_bandwidth": ("scidb",),
    "csv_decode_bandwidth": ("scidb",),
    "pickle_bandwidth": ("spark", "myria", "dask"),
    "unpickle_bandwidth": ("spark", "myria", "dask"),
}


def constant_engines(name):
    """Engine kinds whose simulations depend on cost constant ``name``.

    Returns ``None`` when the constant is shared by every engine.
    """
    for prefix, engine in _ENGINE_PREFIXES.items():
        if name.startswith(prefix):
            return (engine,)
    return _CONSTANT_ENGINES.get(name)


def relevant_constants(cost_model, engine=None):
    """The cost constants a trial on ``engine`` actually depends on.

    With ``engine=None`` (a trial that mixes engines) every constant is
    relevant.
    """
    constants = dataclasses.asdict(cost_model)
    if engine is None:
        return constants
    out = {}
    for name, value in constants.items():
        engines = constant_engines(name)
        if engines is None or engine in engines:
            out[name] = value
    return out


_code_hash_cache = {}


def code_tree_hash(root=None):
    """Hash of every ``repro`` source file; the cache-version salt.

    Any edit to the simulator, engines, pipelines, or harness changes
    this digest and therefore every cache key: the cache can never
    serve a simulation produced by different code.
    """
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(root)
    cached = _code_hash_cache.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    paths = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__"
        )
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                paths.append(os.path.join(dirpath, filename))
    for path in paths:
        digest.update(os.path.relpath(path, root).encode())
        with open(path, "rb") as fh:
            digest.update(fh.read())
    result = digest.hexdigest()
    _code_hash_cache[root] = result
    return result


def cache_key(fn, kwargs, engine=None, cost_model=None, faults=None,
              salt=None):
    """Content address of one trial.

    ``fn`` is the registered trial-function name, ``kwargs`` its
    JSON-safe arguments, ``engine`` the engine kind (scopes which cost
    constants key the trial), ``faults`` a JSON-safe description of any
    fault plan, and ``salt`` overrides the code-tree hash (tests).
    """
    if cost_model is None:
        cost_model = CostModel()
    document = {
        "schema": CACHE_SCHEMA_VERSION,
        "salt": salt if salt is not None else code_tree_hash(),
        "fn": fn,
        "kwargs": kwargs,
        "engine": engine,
        "faults": faults,
        "constants": relevant_constants(cost_model, engine=engine),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def encode_payload(payload):
    """Compact wire/disk form of a trial payload.

    Canonical (sorted-key, no-whitespace) JSON, zlib-compressed at
    level 1: cheap to produce in workers, byte-deterministic for a
    given payload, and typically an order of magnitude smaller than the
    old uncompressed JSON through the pool pipe.
    """
    encoded = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return zlib.compress(encoded, 1)


def decode_payload(blob):
    """Inverse of :func:`encode_payload`; raises ``ValueError``-family
    errors (``zlib.error`` subclasses OSError-neither — callers catch
    broadly) on corrupt input."""
    return json.loads(zlib.decompress(blob))


class TrialCache:
    """Directory of cached payloads, content-addressed in two tiers.

    The *trial* tier stores one compressed-JSON payload (rows +
    snapshots) per trial key.  The *op* tier, under ``<root>/op/``,
    stores pickled materialize-window entry streams keyed by logical-op
    content fingerprints (see ``repro.harness.memo``), so trials that
    share a plan prefix replay the shared sub-DAG instead of
    recomputing it.

    Corrupt or truncated files in either tier count as misses: the
    offending file is evicted and the result recomputed.
    """

    def __init__(self, root=None):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = root
        self.hits = 0
        self.misses = 0
        self.op_hits = 0
        self.op_misses = 0
        self.op_stores = 0

    def _path(self, key):
        return os.path.join(self.root, key[:2], f"{key}.jz")

    def _op_path(self, key):
        return os.path.join(self.root, "op", key[:2], f"{key}.pkz")

    def _evict(self, path):
        """Drop an unreadable cache file so the recomputed result can
        take its place (a second reader racing us is fine: unlink
        errors are ignored and ``put`` replaces atomically)."""
        try:
            os.unlink(path)
        except OSError:
            pass

    def get(self, key):
        """Cached payload for ``key``, or ``None`` on a miss."""
        rec = telemetry.recorder()
        start = time.perf_counter()
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            self.misses += 1
            rec.count("cache.misses")
            rec.observe("cache.get_s", time.perf_counter() - start)
            return None
        try:
            payload = decode_payload(blob)
        except Exception:  # noqa: BLE001 - any corruption is a miss
            self._evict(path)
            self.misses += 1
            rec.count("cache.misses")
            rec.count("cache.evictions")
            rec.observe("cache.get_s", time.perf_counter() - start)
            return None
        self.hits += 1
        rec.count("cache.hits")
        rec.observe("cache.get_s", time.perf_counter() - start)
        return payload

    def put(self, key, payload, encoded=None):
        """Store ``payload`` atomically (rename over a temp file).

        ``encoded`` short-circuits serialization when the caller
        already holds the :func:`encode_payload` bytes (pool workers
        encode payloads for transport; the parent stores them as-is).
        """
        rec = telemetry.recorder()
        start = time.perf_counter()
        if encoded is None:
            encoded = encode_payload(payload)
        path = self._path(key)
        self._write_atomic(path, encoded)
        rec.count("cache.stores")
        rec.observe("cache.payload_bytes", len(encoded))
        rec.observe("cache.put_s", time.perf_counter() - start)

    def get_op(self, key):
        """Recorded window entries for op ``key``, or ``None``."""
        rec = telemetry.recorder()
        path = self._op_path(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            self.op_misses += 1
            rec.count("cache.op_misses")
            return None
        try:
            entries = pickle.loads(zlib.decompress(blob))
        except Exception:  # noqa: BLE001 - any corruption is a miss
            self._evict(path)
            self.op_misses += 1
            rec.count("cache.op_misses")
            rec.count("cache.evictions")
            return None
        self.op_hits += 1
        rec.count("cache.op_hits")
        return entries

    def put_op(self, key, entries):
        """Store one recorded window's entries atomically."""
        rec = telemetry.recorder()
        blob = zlib.compress(
            pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL), 1
        )
        self._write_atomic(self._op_path(key), blob)
        self.op_stores += 1
        rec.count("cache.op_stores")
        rec.observe("cache.op_payload_bytes", len(blob))

    def _write_atomic(self, path, blob):
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def stats(self):
        """``{"hits", "misses"}`` counters for this cache handle."""
        return {"hits": self.hits, "misses": self.misses}

    def op_stats(self):
        """Op-tier counters for this cache handle."""
        return {
            "hits": self.op_hits,
            "misses": self.op_misses,
            "stores": self.op_stores,
        }
