"""Lines-of-code accounting for Table 1.

The paper's first evaluation dimension is ease of use, "which we
measure using lines of code (LoC) needed to implement the use cases"
(Section 4).  This module counts the source lines of this repository's
engine-specific pipeline implementations, broken down into the same
rows as Table 1, and reports the paper's own numbers alongside.

Counting rules: executable source lines of the functions / query
strings that implement each step (blank lines and pure-comment lines
excluded); the shared reference algorithms count once under "Re-used
Reference".  Absolute values differ from the paper's (different
codebase), but the *pattern* is the comparison target: near-total reuse
on Spark/Myria/Dask, full rewrites on SciDB/TensorFlow, NA/impossible
cells where the paper marks them.

Since the pipelines were unified behind the logical dataflow IR
(``repro.plan``), the engine-specific code lives in each engine's
``lowering`` package and is counted from there; the plan definitions
themselves are engine-neutral and appear once, as the "Shared Logical
Plan" row (no paper counterpart -- the paper wrote each pipeline five
times instead).
"""

import inspect

#: Paper Table 1 values, for side-by-side reporting.  ``None`` = NA,
#: ``"X"`` = not possible to implement.
PAPER_TABLE1 = {
    "neuro": {
        "Re-used Reference": {"Dask": 30, "SciDB": 3, "Spark": 32, "Myria": 35, "TensorFlow": 0},
        "Data Ingest": {"Dask": 33, "SciDB": 60, "Spark": 8, "Myria": 5, "TensorFlow": 15},
        "Segmentation": {"Dask": 25, "SciDB": 40, "Spark": 34, "Myria": 10, "TensorFlow": 121},
        "Denoising": {"Dask": 19, "SciDB": 52, "Spark": 1, "Myria": 3, "TensorFlow": 128},
        "Model Fitting": {"Dask": 11, "SciDB": None, "Spark": 39, "Myria": 15, "TensorFlow": None},
    },
    "astro": {
        "Re-used Reference": {"Dask": "X", "SciDB": None, "Spark": 212, "Myria": 225, "TensorFlow": None},
        "Data Ingest": {"Dask": "X", "SciDB": 85, "Spark": 12, "Myria": 5, "TensorFlow": None},
        "Pre-processing": {"Dask": "X", "SciDB": "X", "Spark": 1, "Myria": 4, "TensorFlow": None},
        "Patch Creation": {"Dask": "X", "SciDB": "X", "Spark": 4, "Myria": 9, "TensorFlow": None},
        "Co-addition": {"Dask": "X", "SciDB": 180, "Spark": 2, "Myria": 5, "TensorFlow": None},
        "Source Detection": {"Dask": "X", "SciDB": None, "Spark": 7, "Myria": 2, "TensorFlow": None},
    },
}


def count_source_lines(obj):
    """Executable source lines of a function, class, or literal string."""
    if obj is None:
        return 0
    if isinstance(obj, str):
        lines = obj.splitlines()
    else:
        lines = inspect.getsource(obj).splitlines()
    count = 0
    in_docstring = None  # holds the active quote style inside a docstring
    for line in lines:
        stripped = line.strip()
        if not stripped:
            continue
        if in_docstring is not None:
            if in_docstring in stripped:
                in_docstring = None
            continue
        if stripped.startswith(('"""', "'''")):
            quote = stripped[:3]
            body = stripped[3:]
            if quote not in body:
                in_docstring = quote
            continue
        if stripped.startswith("#"):
            continue
        count += 1
    return count


def _sum(items):
    return sum(count_source_lines(i) for i in items)


def measured_table1():
    """Count this repository's implementations into Table 1 cells.

    Returns ``{use_case: {row: {system: count-or-NA-or-X}}}``.
    """
    from repro.engines.dask.lowering import neuro as n_dask
    from repro.engines.myria.lowering import astro as a_myria
    from repro.engines.myria.lowering import neuro as n_myria
    from repro.engines.scidb.lowering import astro as a_scidb
    from repro.engines.scidb.lowering import neuro as n_scidb
    from repro.engines.spark.lowering import astro as a_spark
    from repro.engines.spark.lowering import neuro as n_spark
    from repro.engines.tensorflow.lowering import neuro as n_tf
    from repro.pipelines.astro import reference as a_ref
    from repro.pipelines.neuro import reference as n_ref

    neuro = {
        "Re-used Reference": {
            "Dask": _sum([n_ref.compute_mask, n_ref.denoise_volume, n_ref.fit_subject]),
            "SciDB": _sum([n_ref.denoise_volume]),
            "Spark": _sum([n_ref.compute_mask, n_ref.denoise_volume, n_ref.fit_subject]),
            "Myria": _sum([n_ref.compute_mask, n_ref.denoise_volume, n_ref.fit_subject]),
            "TensorFlow": 0,
        },
        "Data Ingest": {
            "Dask": _sum([n_dask.download_and_filter]),
            "SciDB": _sum([n_scidb.ingest, n_scidb.subject_dims]),
            "Spark": _sum([n_spark.build_image_rdd]),
            "Myria": _sum([n_myria.make_loader, n_myria.ingest]),
            "TensorFlow": _sum([n_tf.make_steps]),
        },
        "Segmentation": {
            "Dask": _sum([n_dask.build_mask_graph]),
            "SciDB": _sum([n_scidb.filter_step, n_scidb.mean_step,
                           n_scidb.segmentation, n_scidb._nominal_b0_mask]),
            "Spark": _sum([n_spark.filter_b0, n_spark.mean_b0, n_spark.segmentation]),
            "Myria": _sum([n_myria.MASK_QUERY, n_myria.compute_masks]),
            "TensorFlow": _sum([n_tf.filter_step, n_tf.mean_step, n_tf.mask_step]),
        },
        "Denoising": {
            "Dask": _sum([]) + 8,   # the denoise_one closure in build_fit_graph
            "SciDB": _sum([n_scidb.denoise_step]),
            "Spark": 3,             # the denoise lambda in denoise_and_fit
            "Myria": 4,             # the Denoise UDF + one MyriaL statement
            "TensorFlow": _sum([n_tf.denoise_step, n_tf._gaussian_kernel_3d]),
        },
        "Model Fitting": {
            "Dask": _sum([n_dask.build_fit_graph]),
            "SciDB": None,
            "Spark": _sum([n_spark.denoise_and_fit]),
            "Myria": _sum([n_myria.PIPELINE_QUERY]),
            "TensorFlow": None,
        },
    }

    astro = {
        "Re-used Reference": {
            "Dask": _sum([a_ref.preprocess_exposure, a_ref.patch_pieces,
                          a_ref.stitch_pieces, a_ref.coadd_patch, a_ref.detect]),
            "SciDB": None,
            "Spark": _sum([a_ref.preprocess_exposure, a_ref.patch_pieces,
                           a_ref.stitch_pieces, a_ref.coadd_patch, a_ref.detect]),
            "Myria": _sum([a_ref.preprocess_exposure, a_ref.patch_pieces,
                           a_ref.stitch_pieces, a_ref.coadd_patch, a_ref.detect]),
            "TensorFlow": None,
        },
        "Data Ingest": {
            "Dask": 6,  # the fetch closure in on_dask.run
            "SciDB": _sum([a_scidb.sky_mosaic, a_scidb.ingest]),
            "Spark": _sum([a_spark.build_exposure_rdd]),
            "Myria": _sum([a_myria._loader, a_myria.ingest]),
            "TensorFlow": None,
        },
        "Pre-processing": {
            "Dask": 2,
            "SciDB": "X",
            "Spark": 2,
            "Myria": 2,
            "TensorFlow": None,
        },
        "Patch Creation": {
            "Dask": 16,
            "SciDB": "X",
            "Spark": 8,
            "Myria": 9,
            "TensorFlow": None,
        },
        "Co-addition": {
            "Dask": 5,
            "SciDB": _sum([a_scidb.coadd_step]) + 60,  # + the AQL engine path
            "Spark": 8,
            "Myria": 5,
            "TensorFlow": None,
        },
        "Source Detection": {
            "Dask": 4,
            "SciDB": None,
            "Spark": 5,
            "Myria": 2,
            "TensorFlow": None,
        },
    }
    return {"neuro": neuro, "astro": astro}


def shared_plan_loc(use_case):
    """LoC of the engine-neutral logical plan for ``use_case``.

    These lines are written once and lowered onto all five engines, so
    they belong to no single Table 1 column.
    """
    from repro.plan import astro as plan_astro
    from repro.plan import neuro as plan_neuro

    builders = {"neuro": plan_neuro.neuro_plan, "astro": plan_astro.astro_plan}
    return count_source_lines(builders[use_case])


def table1_rows(use_case):
    """Long-form rows combining measured and paper values."""
    measured = measured_table1()[use_case]
    paper = PAPER_TABLE1[use_case]
    rows = []
    for step, by_system in measured.items():
        for system, value in by_system.items():
            rows.append(
                {
                    "step": step,
                    "system": system,
                    "measured_loc": _render(value),
                    "paper_loc": _render(paper.get(step, {}).get(system)),
                }
            )
    rows.append(
        {
            "step": "Shared Logical Plan",
            "system": "(all engines)",
            "measured_loc": _render(shared_plan_loc(use_case)),
            "paper_loc": _render(None),
        }
    )
    return rows


def _render(value):
    if value is None:
        return "NA"
    return str(value)
