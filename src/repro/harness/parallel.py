"""Process-pool trial executor with deterministic result merging.

Every figure in the paper is a grid of independent trials (engine x
data size x cluster size x faults).  Each trial builds its clusters
from scratch and the simulator's virtual clock depends only on the
*relative* order of task ids within one cluster, so a trial produces
bit-identical results whether it runs in this process, in a forked
worker, or was replayed from the cache.  :func:`run_grid` exploits
that: it fans a list of :class:`TrialSpec` across a process pool (or
runs them inline at ``jobs=1``, the library default) and merges the
payloads back in submission order, so the rows -- and the ledger
snapshots derived from them -- are byte-identical to a serial run.

The pool is *warm*: created lazily on the first pooled grid and reused
across ``run_grid`` calls and figures for the life of the process (or
until :func:`shutdown_pool`), so only the first pooled grid pays
process startup.  Trials are dispatched in adaptively-sized chunks --
one pool submission carries several specs -- and grids whose estimated
cost is below the dispatch overhead fall back to inline execution.

Workers return compact payloads: canonical JSON compressed with zlib
(see ``repro.harness.cache.encode_payload``), which the parent stores
in the cache verbatim and decodes once for merging.  Snapshots are
only computed when someone will consume them (an active
:func:`collecting_snapshots` sink, an enabled cache, or a worker that
cannot defer the decision), so plain smoke runs pay nothing extra.
"""

import atexit
import multiprocessing
import os
import time
import traceback
from contextlib import contextmanager, nullcontext
from dataclasses import asdict

from repro.cluster.costs import CostModel
from repro.harness import runner
from repro.harness.cache import (
    TrialCache,
    cache_key,
    decode_payload,
    encode_payload,
)
from repro.harness.memo import MaterializeMemo
from repro.obs import telemetry

#: Registered trial functions: name -> callable returning one row dict.
TRIAL_FNS = {}

#: Bumped by every registration; a warm pool forked under an older
#: version is stale (its workers lack the new entries) and is rebuilt.
_registry_version = 0

#: Sentinel distinguishing "not passed" from an explicit ``None``.
_UNSET = object()


def trial(name):
    """Decorator registering a trial function under ``name``.

    The registry is what lets a :class:`TrialSpec` cross a process
    boundary as plain data: workers look the name back up instead of
    pickling the callable.
    """
    def register(fn):
        global _registry_version
        if name in TRIAL_FNS:
            raise ValueError(f"trial {name!r} registered twice")
        TRIAL_FNS[name] = fn
        _registry_version += 1
        return fn
    return register


class TrialSpec:
    """One independent trial: a registered function plus JSON-safe args.

    ``engine`` scopes which cost-model constants key the trial in the
    cache; ``faults`` is an optional JSON-safe description of the fault
    plan the trial constructs (also keyed).
    """

    __slots__ = ("fn", "kwargs", "engine", "faults")

    def __init__(self, fn, kwargs, engine=None, faults=None):
        if fn not in TRIAL_FNS:
            raise KeyError(f"unknown trial function {fn!r}")
        self.fn = fn
        self.kwargs = kwargs
        self.engine = engine
        self.faults = faults

    def key(self, cost_model=None, salt=None):
        """Content address of this trial (see :mod:`repro.harness.cache`)."""
        return cache_key(
            self.fn, self.kwargs, engine=self.engine,
            cost_model=cost_model, faults=self.faults, salt=salt,
        )


class TrialExecutionError(RuntimeError):
    """One or more trials raised inside :func:`run_grid`.

    Carries the worker-side failures (``failures``: list of
    ``(index, spec_fn, error_dict)`` with the original traceback text)
    and the surviving payloads in submission order (``payloads``, with
    ``None`` holes at the failed indices), so callers and tests can
    verify the merge was not corrupted by the failure.
    """

    def __init__(self, failures, payloads):
        self.failures = failures
        self.payloads = payloads
        index, fn, error = failures[0]
        summary = (
            f"{len(failures)} of {len(payloads)} trials failed; first: "
            f"trial #{index} ({fn}) raised {error['type']}: "
            f"{error['message']}\n--- original traceback ---\n"
            f"{error['traceback']}"
        )
        super().__init__(summary)


# ----------------------------------------------------------------------
# Executor configuration (the CLI opts in; the library default -- one
# in-process job, no cache -- leaves test and import behavior unchanged)
# ----------------------------------------------------------------------

_config = {"jobs": 1, "cache": None}

#: Pooled grids whose estimated total cost (from the observed per-trial
#: EMA) is below this fall back to inline execution: dispatching them
#: would cost more than it saves.  Tests may monkeypatch this.
AUTO_SERIAL_THRESHOLD_S = 0.02

#: Target pool submissions per worker process: more gives better load
#: balancing, fewer cuts per-submission overhead.
_CHUNKS_PER_WORKER = 4

#: fn name -> exponential moving average of observed trial seconds.
_trial_cost_ema = {}

#: Chunk size of the most recent pooled dispatch (``None`` until one
#: runs, or after an inline/auto-serial grid).  The self-benchmark
#: publishes this per figure in ``BENCH_harness.json``.
last_chunk_size = None


@contextmanager
def configured(jobs=None, cache=_UNSET):
    """Set the default ``jobs``/``cache`` for :func:`run_grid` inside.

    ``jobs=None`` and ``cache=_UNSET`` leave the current setting;
    ``cache=None`` explicitly disables caching.
    """
    previous = dict(_config)
    if jobs is not None:
        _config["jobs"] = jobs
    if cache is not _UNSET:
        _config["cache"] = cache
    try:
        yield
    finally:
        _config.update(previous)


# ----------------------------------------------------------------------
# Snapshot sinks: how figure-level consumers (the ledger, blame
# printing) receive per-run snapshots without holding cluster objects
# ----------------------------------------------------------------------

_snapshot_sinks = []


class SnapshotSink:
    """Collects run snapshots from every trial executed inside."""

    def __init__(self):
        self.snapshots = []


@contextmanager
def collecting_snapshots():
    """Collect the run snapshot of every cluster each trial builds.

    Sinks nest: an inner figure-level sink (blame printing) and an
    outer ledger sink both receive every snapshot, in trial order.
    """
    sink = SnapshotSink()
    _snapshot_sinks.append(sink)
    try:
        yield sink
    finally:
        _snapshot_sinks.remove(sink)


# ----------------------------------------------------------------------
# Trial execution
# ----------------------------------------------------------------------

def _snapshot_cluster(cluster):
    """One run snapshot labeled by its dominant task group.

    The label deliberately omits any global index -- the parent adds
    the ``NN-`` prefix in merge order, so cached and freshly-computed
    snapshots relabel identically.  A trial that builds several
    clusters for one row (the optimizer's naive-vs-optimized cells)
    may pin an explicit ``cluster.run_label`` instead.
    """
    from repro.obs import run_snapshot
    from repro.obs.breakdown import records_of, summarize_records

    label = getattr(cluster, "run_label", None)
    if label is None:
        groups = summarize_records(records_of(cluster))
        label = groups[0]["group"] if groups else "empty"
    return run_snapshot(cluster, label=label)


def _execute_trial(fn_name, kwargs, cost_constants, want_snapshots,
                   timings=None, cache=None):
    """Run one trial in the current process; returns its payload.

    ``timings``, when given, receives wall-clock seconds for the trial
    body (``worker-exec``) and the snapshot extraction
    (``snapshot-serialize``) -- the worker-side half of the harness
    self-telemetry.  Timing never touches the payload itself.

    ``cache`` (a :class:`TrialCache`) enables sub-trial memoization:
    a :class:`MaterializeMemo` bound to its op tier is installed on
    every cluster the trial builds.
    """
    fn = TRIAL_FNS[fn_name]
    clusters = []
    memo_ctx = nullcontext()
    if cache is not None:
        memo_ctx = runner.materialize_memo(MaterializeMemo(cache))
    start = time.perf_counter()
    with memo_ctx, runner.observe_clusters(clusters.append):
        if cost_constants is None:
            row = fn(**kwargs)
        else:
            with runner.cost_model_override(CostModel(**cost_constants)):
                row = fn(**kwargs)
    exec_s = time.perf_counter() - start
    payload = {"row": row}
    snapshot_s = 0.0
    if want_snapshots:
        start = time.perf_counter()
        payload["snapshots"] = [_snapshot_cluster(c) for c in clusters]
        snapshot_s = time.perf_counter() - start
    if timings is not None:
        timings["worker-exec"] = exec_s
        timings["snapshot-serialize"] = snapshot_s
    return payload


def _worker_init():
    # Observer callbacks close over parent-process state (lists the
    # parent is collecting into); firing the forked copies would waste
    # time and never be seen.  Snapshots carry the observability data
    # back instead.  Likewise drop any recorder the fork inherited:
    # worker-side telemetry returns through the result sidecar.
    del runner._cluster_observers[:]
    telemetry.clear_recorder()


def _run_one(args, cache):
    """Worker-side single trial: compact payload + telemetry sidecar.

    Failures are captured, not raised: the chunk's surviving trials
    still return, and the parent re-raises with the original traceback
    after completing the submission-order merge.
    """
    fn_name, kwargs, cost_constants = args
    # Under the spawn start method the registry is empty until the
    # experiment definitions are imported.
    if fn_name not in TRIAL_FNS:
        import repro.harness.experiments  # noqa: F401
    timings = {}
    profile_dir = telemetry.profile_dir()
    profiler = None
    if profile_dir:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        payload = _execute_trial(fn_name, kwargs, cost_constants, True,
                                 timings=timings, cache=cache)
        start = time.perf_counter()
        blob = encode_payload(payload)
        timings["snapshot-serialize"] = (
            timings.get("snapshot-serialize", 0.0)
            + time.perf_counter() - start
        )
        result = {"payload_z": blob, "telemetry": timings}
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        result = {
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
            "telemetry": timings,
        }
    finally:
        if profiler is not None:
            profiler.disable()
            os.makedirs(profile_dir, exist_ok=True)
            profiler.dump_stats(os.path.join(
                profile_dir, f"trial-{fn_name}-pid{os.getpid()}"
                f"-{time.monotonic_ns()}.prof"
            ))
    return result


def _pool_entry(chunk):
    """Worker-side entry: one chunk of trials -> list of results.

    ``chunk`` is ``(cache_root, [(fn, kwargs, cost_constants), ...])``.
    Each result carries the op-tier cache counters the chunk's memo
    accumulated, which the parent folds back into its own handle.
    """
    cache_root, items = chunk
    cache = TrialCache(cache_root) if cache_root is not None else None
    results = []
    for args in items:
        before = cache.op_stats() if cache is not None else None
        result = _run_one(args, cache)
        if cache is not None:
            after = cache.op_stats()
            result["op_cache"] = {
                name: after[name] - before[name] for name in after
            }
        results.append(result)
    return results


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


# ----------------------------------------------------------------------
# The warm pool: created once, reused across run_grid calls and figures
# ----------------------------------------------------------------------

_pool_state = {
    "pool": None,
    "procs": 0,
    "registry_version": -1,
    "profile_dir": None,
}


def shutdown_pool():
    """Terminate the warm pool (process exit, or tests needing a cold
    start).  The next pooled grid recreates it."""
    pool = _pool_state["pool"]
    if pool is not None:
        pool.terminate()
        pool.join()
    _pool_state.update(
        pool=None, procs=0, registry_version=-1, profile_dir=None
    )


atexit.register(shutdown_pool)


def _ensure_pool(n_procs):
    """The warm pool, (re)created when too small or stale.

    Staleness: trial registrations after the fork (workers would lack
    them) or a changed ``REPRO_PROFILE_DIR`` (forked workers captured
    the old environment).
    """
    profile_dir = telemetry.profile_dir()
    state = _pool_state
    if (
        state["pool"] is None
        or state["procs"] < n_procs
        or state["registry_version"] != _registry_version
        or state["profile_dir"] != profile_dir
    ):
        shutdown_pool()
        ctx = _pool_context()
        with telemetry.telemetry_phase("pool-startup", processes=n_procs):
            state["pool"] = ctx.Pool(
                processes=n_procs, initializer=_worker_init
            )
        state["procs"] = n_procs
        state["registry_version"] = _registry_version
        state["profile_dir"] = profile_dir
    return state["pool"]


def _chunk_size(n_pending, n_procs):
    """Adaptive dispatch granularity: enough submissions per worker to
    balance load, but no more than needed (each costs a round trip)."""
    target = n_procs * _CHUNKS_PER_WORKER
    return max(1, -(-n_pending // target))


def _note_trial_cost(fn_name, seconds):
    previous = _trial_cost_ema.get(fn_name)
    if previous is None:
        _trial_cost_ema[fn_name] = seconds
    else:
        _trial_cost_ema[fn_name] = 0.5 * previous + 0.5 * seconds


def _estimated_cost(specs, pending):
    """Estimated total seconds for ``pending``, or ``None`` when any
    trial has never been observed (assume expensive)."""
    total = 0.0
    for i in pending:
        ema = _trial_cost_ema.get(specs[i].fn)
        if ema is None:
            return None
        total += ema
    return total


def run_grid(specs, jobs=None, cache=_UNSET, cost_model=None):
    """Execute a list of :class:`TrialSpec`; returns payloads in order.

    Payloads are ``{"row": <row dict>[, "snapshots": [...]]}``.  Rows
    and snapshots are identical whether trials ran inline, across the
    warm pool in chunks, were replayed from the trial cache, or were
    recomputed through op-level memo replay; active
    :func:`collecting_snapshots` sinks receive every snapshot in
    submission order.

    If any trial raises, the surviving trials are still merged (and
    cached) in submission order, then :class:`TrialExecutionError` is
    raised carrying the original traceback(s).
    """
    global last_chunk_size
    last_chunk_size = None
    specs = list(specs)
    if jobs is None:
        jobs = _config["jobs"]
    if cache is _UNSET:
        cache = _config["cache"]
    want_snapshots = bool(_snapshot_sinks) or cache is not None

    rec = telemetry.recorder()
    cost_constants = None if cost_model is None else asdict(cost_model)
    payloads = [None] * len(specs)
    encoded = [None] * len(specs)
    keys = [None] * len(specs)
    failures = []
    pending = []
    with telemetry.telemetry_phase("cache-lookup", trials=len(specs)):
        for index, spec in enumerate(specs):
            if cache is not None:
                keys[index] = spec.key(cost_model=cost_model)
                hit = cache.get(keys[index])
                if hit is not None:
                    payloads[index] = hit
                    continue
            pending.append(index)

    use_pool = jobs > 1 and len(pending) > 1
    if use_pool:
        estimate = _estimated_cost(specs, pending)
        if estimate is not None and estimate < AUTO_SERIAL_THRESHOLD_S:
            use_pool = False
            rec.event(
                "auto-serial", trials=len(pending),
                estimate_s=round(estimate, 6),
            )

    if pending and use_pool:
        n_procs = min(jobs, len(pending))
        pool = _ensure_pool(n_procs)
        cache_root = cache.root if cache is not None else None
        size = _chunk_size(len(pending), n_procs)
        last_chunk_size = size
        rec.gauge("pool.chunk_size", size)
        work = [
            (
                cache_root,
                [
                    (specs[i].fn, specs[i].kwargs, cost_constants)
                    for i in pending[lo:lo + size]
                ],
            )
            for lo in range(0, len(pending), size)
        ]
        start = time.perf_counter()
        with telemetry.telemetry_phase(
            "dispatch", trials=len(pending), chunks=len(work),
        ):
            chunk_results = pool.map(_pool_entry, work)
        map_wall = time.perf_counter() - start
        busy = 0.0
        with telemetry.telemetry_phase("row-assemble", trials=len(pending)):
            flat = [r for chunk in chunk_results for r in chunk]
            for i, wrapped in zip(pending, flat):
                worker = wrapped.get("telemetry") or {}
                busy += sum(worker.values())
                for name, seconds in sorted(worker.items()):
                    rec.observe(f"worker.{name}_s", seconds)
                if "worker-exec" in worker:
                    _note_trial_cost(specs[i].fn, worker["worker-exec"])
                op_cache = wrapped.get("op_cache")
                if op_cache is not None and cache is not None:
                    cache.op_hits += op_cache["hits"]
                    cache.op_misses += op_cache["misses"]
                    cache.op_stores += op_cache["stores"]
                if "error" in wrapped:
                    failures.append((i, specs[i].fn, wrapped["error"]))
                    continue
                encoded[i] = wrapped["payload_z"]
                payloads[i] = decode_payload(encoded[i])
                if not want_snapshots:
                    # Workers cannot defer the decision; keep the
                    # payload shape identical to an inline run.
                    payloads[i].pop("snapshots", None)
        utilization = busy / max(n_procs * map_wall, 1e-9)
        rec.gauge("pool.utilization", utilization)
        rec.event(
            "pool", processes=n_procs, chunk_size=size,
            busy_s=round(busy, 6), map_wall_s=round(map_wall, 6),
            utilization=round(utilization, 6),
        )
    elif pending:
        timings = {}
        with telemetry.telemetry_phase("dispatch", trials=len(pending)):
            for i in pending:
                try:
                    payloads[i] = _execute_trial(
                        specs[i].fn, specs[i].kwargs, cost_constants,
                        want_snapshots, timings=timings, cache=cache,
                    )
                except Exception as exc:  # noqa: BLE001 - merged below
                    failures.append((i, specs[i].fn, {
                        "type": type(exc).__name__,
                        "message": str(exc),
                        "traceback": traceback.format_exc(),
                    }))
                if "worker-exec" in timings:
                    _note_trial_cost(specs[i].fn, timings["worker-exec"])
                if rec.active:
                    for name, seconds in sorted(timings.items()):
                        rec.observe(f"worker.{name}_s", seconds)
                timings.clear()

    if pending and cache is not None:
        with telemetry.telemetry_phase("cache-store", trials=len(pending)):
            for i in pending:
                if payloads[i] is None:
                    continue
                cache.put(keys[i], payloads[i], encoded=encoded[i])

    with telemetry.telemetry_phase("result-merge", trials=len(specs)):
        if _snapshot_sinks:
            for payload in payloads:
                if payload is None:
                    continue
                for snapshot in payload.get("snapshots", ()):
                    for sink in _snapshot_sinks:
                        sink.snapshots.append(snapshot)

    if failures:
        raise TrialExecutionError(failures, payloads)
    return payloads


def grid_rows(specs, jobs=None, cache=_UNSET, cost_model=None):
    """The common case: run a grid, return just the row dicts."""
    return [
        payload["row"]
        for payload in run_grid(
            specs, jobs=jobs, cache=cache, cost_model=cost_model
        )
    ]
