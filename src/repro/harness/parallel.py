"""Process-pool trial executor with deterministic result merging.

Every figure in the paper is a grid of independent trials (engine x
data size x cluster size x faults).  Each trial builds its clusters
from scratch and the simulator's virtual clock depends only on the
*relative* order of task ids within one cluster, so a trial produces
bit-identical results whether it runs in this process, in a forked
worker, or was replayed from the cache.  :func:`run_grid` exploits
that: it fans a list of :class:`TrialSpec` across a process pool (or
runs them inline at ``jobs=1``, the library default) and merges the
payloads back in submission order, so the rows -- and the ledger
snapshots derived from them -- are byte-identical to a serial run.

Workers return plain JSON-safe payloads (``{"row", "snapshots"}``);
cluster objects never cross the process boundary.  Snapshots are only
computed when someone will consume them (an active
:func:`collecting_snapshots` sink, an enabled cache, or a worker that
cannot defer the decision), so plain smoke runs pay nothing extra.
"""

import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import asdict

from repro.cluster.costs import CostModel
from repro.harness import runner
from repro.harness.cache import cache_key
from repro.obs import telemetry

#: Registered trial functions: name -> callable returning one row dict.
TRIAL_FNS = {}

#: Sentinel distinguishing "not passed" from an explicit ``None``.
_UNSET = object()


def trial(name):
    """Decorator registering a trial function under ``name``.

    The registry is what lets a :class:`TrialSpec` cross a process
    boundary as plain data: workers look the name back up instead of
    pickling the callable.
    """
    def register(fn):
        if name in TRIAL_FNS:
            raise ValueError(f"trial {name!r} registered twice")
        TRIAL_FNS[name] = fn
        return fn
    return register


class TrialSpec:
    """One independent trial: a registered function plus JSON-safe args.

    ``engine`` scopes which cost-model constants key the trial in the
    cache; ``faults`` is an optional JSON-safe description of the fault
    plan the trial constructs (also keyed).
    """

    __slots__ = ("fn", "kwargs", "engine", "faults")

    def __init__(self, fn, kwargs, engine=None, faults=None):
        if fn not in TRIAL_FNS:
            raise KeyError(f"unknown trial function {fn!r}")
        self.fn = fn
        self.kwargs = kwargs
        self.engine = engine
        self.faults = faults

    def key(self, cost_model=None, salt=None):
        """Content address of this trial (see :mod:`repro.harness.cache`)."""
        return cache_key(
            self.fn, self.kwargs, engine=self.engine,
            cost_model=cost_model, faults=self.faults, salt=salt,
        )


# ----------------------------------------------------------------------
# Executor configuration (the CLI opts in; the library default -- one
# in-process job, no cache -- leaves test and import behavior unchanged)
# ----------------------------------------------------------------------

_config = {"jobs": 1, "cache": None}


@contextmanager
def configured(jobs=None, cache=_UNSET):
    """Set the default ``jobs``/``cache`` for :func:`run_grid` inside.

    ``jobs=None`` and ``cache=_UNSET`` leave the current setting;
    ``cache=None`` explicitly disables caching.
    """
    previous = dict(_config)
    if jobs is not None:
        _config["jobs"] = jobs
    if cache is not _UNSET:
        _config["cache"] = cache
    try:
        yield
    finally:
        _config.update(previous)


# ----------------------------------------------------------------------
# Snapshot sinks: how figure-level consumers (the ledger, blame
# printing) receive per-run snapshots without holding cluster objects
# ----------------------------------------------------------------------

_snapshot_sinks = []


class SnapshotSink:
    """Collects run snapshots from every trial executed inside."""

    def __init__(self):
        self.snapshots = []


@contextmanager
def collecting_snapshots():
    """Collect the run snapshot of every cluster each trial builds.

    Sinks nest: an inner figure-level sink (blame printing) and an
    outer ledger sink both receive every snapshot, in trial order.
    """
    sink = SnapshotSink()
    _snapshot_sinks.append(sink)
    try:
        yield sink
    finally:
        _snapshot_sinks.remove(sink)


# ----------------------------------------------------------------------
# Trial execution
# ----------------------------------------------------------------------

def _snapshot_cluster(cluster):
    """One run snapshot labeled by its dominant task group.

    The label deliberately omits any global index -- the parent adds
    the ``NN-`` prefix in merge order, so cached and freshly-computed
    snapshots relabel identically.
    """
    from repro.obs import run_snapshot
    from repro.obs.breakdown import records_of, summarize_records

    groups = summarize_records(records_of(cluster))
    top_group = groups[0]["group"] if groups else "empty"
    return run_snapshot(cluster, label=top_group)


def _execute_trial(fn_name, kwargs, cost_constants, want_snapshots,
                   timings=None):
    """Run one trial in the current process; returns its payload.

    ``timings``, when given, receives wall-clock seconds for the trial
    body (``worker-exec``) and the snapshot extraction
    (``snapshot-serialize``) -- the worker-side half of the harness
    self-telemetry.  Timing never touches the payload itself.
    """
    fn = TRIAL_FNS[fn_name]
    clusters = []
    start = time.perf_counter()
    with runner.observe_clusters(clusters.append):
        if cost_constants is None:
            row = fn(**kwargs)
        else:
            with runner.cost_model_override(CostModel(**cost_constants)):
                row = fn(**kwargs)
    exec_s = time.perf_counter() - start
    payload = {"row": row}
    snapshot_s = 0.0
    if want_snapshots:
        start = time.perf_counter()
        payload["snapshots"] = [_snapshot_cluster(c) for c in clusters]
        snapshot_s = time.perf_counter() - start
    if timings is not None:
        timings["worker-exec"] = exec_s
        timings["snapshot-serialize"] = snapshot_s
    return payload


def _worker_init():
    # Observer callbacks close over parent-process state (lists the
    # parent is collecting into); firing the forked copies would waste
    # time and never be seen.  Snapshots carry the observability data
    # back instead.
    del runner._cluster_observers[:]


def _pool_entry(args):
    """Worker-side entry: returns ``{"payload", "telemetry"}``.

    The telemetry sidecar is stripped by the parent before payloads are
    cached or merged, preserving the serial/pooled/cache byte-identity
    invariant.  Setting ``REPRO_PROFILE_DIR`` additionally dumps a
    cProfile of each trial into that directory.
    """
    fn_name, kwargs, cost_constants = args
    # Under the spawn start method the registry is empty until the
    # experiment definitions are imported.
    if fn_name not in TRIAL_FNS:
        import repro.harness.experiments  # noqa: F401
    timings = {}
    profile_dir = telemetry.profile_dir()
    profiler = None
    if profile_dir:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        payload = _execute_trial(fn_name, kwargs, cost_constants, True,
                                 timings=timings)
    finally:
        if profiler is not None:
            profiler.disable()
            os.makedirs(profile_dir, exist_ok=True)
            profiler.dump_stats(os.path.join(
                profile_dir, f"trial-{fn_name}-pid{os.getpid()}"
                f"-{time.monotonic_ns()}.prof"
            ))
    return {"payload": payload, "telemetry": timings}


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_grid(specs, jobs=None, cache=_UNSET, cost_model=None):
    """Execute a list of :class:`TrialSpec`; returns payloads in order.

    Payloads are ``{"row": <row dict>[, "snapshots": [...]]}``.  Rows
    and snapshots are identical whether trials ran inline, across a
    process pool, or were replayed from the cache; active
    :func:`collecting_snapshots` sinks receive every snapshot in
    submission order.
    """
    specs = list(specs)
    if jobs is None:
        jobs = _config["jobs"]
    if cache is _UNSET:
        cache = _config["cache"]
    want_snapshots = bool(_snapshot_sinks) or cache is not None

    rec = telemetry.recorder()
    cost_constants = None if cost_model is None else asdict(cost_model)
    payloads = [None] * len(specs)
    keys = [None] * len(specs)
    pending = []
    with telemetry.telemetry_phase("cache-lookup", trials=len(specs)):
        for index, spec in enumerate(specs):
            if cache is not None:
                keys[index] = spec.key(cost_model=cost_model)
                hit = cache.get(keys[index])
                if hit is not None:
                    payloads[index] = hit
                    continue
            pending.append(index)

    if pending:
        if jobs > 1 and len(pending) > 1:
            ctx = _pool_context()
            work = [
                (specs[i].fn, specs[i].kwargs, cost_constants)
                for i in pending
            ]
            n_procs = min(jobs, len(pending))
            with telemetry.telemetry_phase("pool-startup", processes=n_procs):
                pool = ctx.Pool(processes=n_procs, initializer=_worker_init)
            try:
                start = time.perf_counter()
                with telemetry.telemetry_phase("dispatch", trials=len(work)):
                    results = pool.map(_pool_entry, work)
                map_wall = time.perf_counter() - start
            finally:
                pool.terminate()
                pool.join()
            busy = 0.0
            for i, wrapped in zip(pending, results):
                payloads[i] = wrapped["payload"]
                worker = wrapped.get("telemetry") or {}
                busy += sum(worker.values())
                for name, seconds in sorted(worker.items()):
                    rec.observe(f"worker.{name}_s", seconds)
            utilization = busy / max(n_procs * map_wall, 1e-9)
            rec.gauge("pool.utilization", utilization)
            rec.event(
                "pool", processes=n_procs, busy_s=round(busy, 6),
                map_wall_s=round(map_wall, 6),
                utilization=round(utilization, 6),
            )
        else:
            timings = {} if rec.active else None
            with telemetry.telemetry_phase("dispatch", trials=len(pending)):
                for i in pending:
                    payloads[i] = _execute_trial(
                        specs[i].fn, specs[i].kwargs, cost_constants,
                        want_snapshots, timings=timings,
                    )
                    if timings is not None:
                        for name, seconds in sorted(timings.items()):
                            rec.observe(f"worker.{name}_s", seconds)
        if cache is not None:
            with telemetry.telemetry_phase("cache-store", trials=len(pending)):
                for i in pending:
                    cache.put(keys[i], payloads[i])

    with telemetry.telemetry_phase("result-merge", trials=len(specs)):
        if _snapshot_sinks:
            for payload in payloads:
                for snapshot in payload.get("snapshots", ()):
                    for sink in _snapshot_sinks:
                        sink.snapshots.append(snapshot)
    return payloads


def grid_rows(specs, jobs=None, cache=_UNSET, cost_model=None):
    """The common case: run a grid, return just the row dicts."""
    return [
        payload["row"]
        for payload in run_grid(
            specs, jobs=jobs, cache=cache, cost_model=cost_model
        )
    ]
