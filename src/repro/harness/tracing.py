"""Execution-trace analysis for simulated runs.

Every :class:`~repro.cluster.cluster.SimulatedCluster` records a
``task_trace`` of ``(name, node, start, end)`` tuples.  These helpers
turn that trace into the per-phase breakdowns used when calibrating the
cost model (and useful to anyone asking "where did the time go?").
"""

from collections import defaultdict


def _default_grouper(name):
    """Group task names by their engine/stage prefix.

    ``spark-stage3-part7`` -> ``spark-stage3``; ``dask-denoise_one-42``
    -> ``dask-denoise_one``; anything without digits groups as itself.
    """
    parts = name.split("-")
    while parts and parts[-1].isdigit():
        parts.pop()
    head = "-".join(parts) if parts else name
    return head.rstrip("0123456789")


def summarize_trace(cluster, grouper=None):
    """Aggregate the cluster's task trace into per-group totals.

    Returns rows sorted by descending busy time:
    ``{"group", "busy_s", "tasks", "first_start", "last_end"}``.
    """
    grouper = grouper or _default_grouper
    busy = defaultdict(float)
    count = defaultdict(int)
    first = {}
    last = {}
    for name, _node, start, end in cluster.task_trace:
        group = grouper(name)
        busy[group] += end - start
        count[group] += 1
        first[group] = min(first.get(group, start), start)
        last[group] = max(last.get(group, end), end)
    rows = [
        {
            "group": group,
            "busy_s": busy[group],
            "tasks": count[group],
            "first_start": first[group],
            "last_end": last[group],
        }
        for group in busy
    ]
    rows.sort(key=lambda r: -r["busy_s"])
    return rows


def critical_share(cluster, top=5, grouper=None):
    """The ``top`` groups and their share of total busy time."""
    rows = summarize_trace(cluster, grouper=grouper)
    total = sum(r["busy_s"] for r in rows) or 1.0
    return [
        {"group": r["group"], "share": r["busy_s"] / total}
        for r in rows[:top]
    ]


def node_utilization(cluster):
    """Per-node busy fraction of the elapsed simulated time."""
    if cluster.now == 0:
        return []
    busy = defaultdict(float)
    for _name, node, start, end in cluster.task_trace:
        busy[node] += end - start
    return [
        {
            "node": name,
            "utilization": busy.get(name, 0.0)
            / (cluster.now * cluster.spec.slots_per_node),
        }
        for name in cluster.node_order
    ]
