"""Execution-trace analysis for simulated runs.

.. deprecated::
    This module is a thin compatibility shim over the span store in
    :mod:`repro.obs`.  New code should use
    :func:`repro.obs.summarize_records` / :func:`repro.obs.records_of`
    (span-aware grouping) and :func:`repro.obs.format_breakdown` for
    the full "where did the time go" report.

The public API is unchanged: clusters still record a ``task_trace`` of
``(name, node, start, end)`` tuples, and these helpers aggregate it
into the per-phase breakdowns used when calibrating the cost model.
Tasks executed inside an engine span are now attributed to that span's
name instead of the old name-prefix heuristic; span-less traces group
exactly as before.
"""

import warnings

from repro.obs.breakdown import (
    default_grouper as _default_grouper,  # noqa: F401 - legacy import path
    node_utilization_rows,
    records_of,
    summarize_records,
)

warnings.warn(
    "repro.harness.tracing is deprecated; use repro.obs"
    " (summarize_records/records_of/format_breakdown) instead",
    DeprecationWarning,
    stacklevel=2,
)


def summarize_trace(cluster, grouper=None):
    """Aggregate the cluster's task trace into per-group totals.

    Returns rows sorted by descending busy time:
    ``{"group", "busy_s", "tasks", "first_start", "last_end", ...}``.

    .. deprecated:: use :func:`repro.obs.summarize_records` directly.
    """
    return summarize_records(records_of(cluster), grouper=grouper)


def critical_share(cluster, top=5, grouper=None):
    """The ``top`` groups and their share of total busy time.

    .. deprecated:: use :func:`repro.obs.summarize_records` directly.
    """
    rows = summarize_trace(cluster, grouper=grouper)
    total = sum(r["busy_s"] for r in rows) or 1.0
    return [
        {"group": r["group"], "share": r["busy_s"] / total}
        for r in rows[:top]
    ]


def node_utilization(cluster):
    """Per-node busy fraction of the elapsed simulated time.

    .. deprecated:: use :func:`repro.obs.node_utilization_rows`.
    """
    return node_utilization_rows(cluster)
