"""One experiment per table/figure of the paper's evaluation.

Every function returns a list of row dicts (one per plotted point /
table cell) with a ``simulated_s`` field holding seconds on the virtual
cluster clock.  See DESIGN.md section 5 for the experiment index and
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

import numpy as np

from repro.cluster.errors import OutOfMemoryError
from repro.data.catalog import (
    NEURO_VOLUME_SHAPE,
    astro_size_table,
    neuro_size_table,
)
from repro.engines.base import udf
from repro.engines.dask.lowering import neuro as neuro_dask
from repro.engines.myria.lowering import astro as astro_myria
from repro.engines.myria.lowering import neuro as neuro_myria
from repro.engines.scidb.lowering import astro as astro_scidb
from repro.engines.scidb.lowering import neuro as neuro_scidb
from repro.engines.spark.lowering import astro as astro_spark
from repro.engines.spark.lowering import neuro as neuro_spark
from repro.engines.tensorflow.lowering import neuro as neuro_tf
from repro.harness.parallel import TrialSpec, grid_rows, trial
from repro.harness.runner import (
    ASTRO_BENCH,
    DEFAULT_NODES,
    NEURO_BENCH,
    Stopwatch,
    astro_visits,
    fresh_engine,
    neuro_subjects,
)
from repro.pipelines.astro import reference as astro_ref
from repro.pipelines.astro.staging import stage_visits
from repro.pipelines.neuro.staging import gradient_tables, stage_subjects
from repro.plan import astro_plan, lower, neuro_plan

NEURO_SIZES = (1, 2, 4, 8, 12, 25)
ASTRO_SIZES = (2, 4, 8, 12, 24)
CLUSTER_SIZES = (16, 32, 48, 64)


# ----------------------------------------------------------------------
# Table 1 and Figures 10a / 10b: LoC accounting and data-size tables
# (registered as trials so they run under the parallel executor and
# content-addressed cache like every other experiment; they build no
# clusters, so their payloads carry no snapshots)
# ----------------------------------------------------------------------

@trial("table1")
def _trial_table1(use_case):
    from repro.harness.loc import table1_rows

    return {"rows": table1_rows(use_case)}


def table1(use_cases=("neuro", "astro")):
    """Table 1 LoC rows, keyed by use case."""
    payloads = grid_rows(
        TrialSpec("table1", {"use_case": use_case})
        for use_case in use_cases
    )
    return {uc: p["rows"] for uc, p in zip(use_cases, payloads)}


@trial("fig10a")
def _trial_fig10a_sizes():
    return {"rows": neuro_size_table()}


@trial("fig10b")
def _trial_fig10b_sizes():
    return {"rows": astro_size_table()}


def fig10a_sizes():
    """Fig10a sizes."""
    return grid_rows([TrialSpec("fig10a", {})])[0]["rows"]


def fig10b_sizes():
    """Fig10b sizes."""
    return grid_rows([TrialSpec("fig10b", {})])[0]["rows"]


# ----------------------------------------------------------------------
# End-to-end runners (shared by Figures 10c-10h, 13, 14, §5.3.3)
# ----------------------------------------------------------------------

def _routed(kind, plan_fn, profile_fn, data, n_nodes):
    """Resolve ``kind == "auto"`` through the cost-based router."""
    if kind != "auto":
        return kind
    from repro.plan import choose_engine

    return choose_engine(
        plan_fn(), profile_fn(data), n_nodes=n_nodes
    ).engine


def _neuro_end_to_end(kind, subjects, n_nodes=DEFAULT_NODES, optimize=False,
                      run_label=None, **tuning):
    """One end-to-end neuro trial; returns ``(seconds, results, opt)``.

    ``optimize`` routes the plan through :func:`repro.plan.optimize_for`
    under the engine's calibrated cost guard before lowering (``opt`` is
    the :class:`~repro.plan.opt.OptimizationResult`, or ``None`` on the
    naive path).  ``kind == "auto"`` resolves through the router first.
    """
    from repro.plan.route import neuro_profile

    kind = _routed(kind, neuro_plan, neuro_profile, subjects, n_nodes)
    cluster, engine = fresh_engine(
        kind, n_nodes=n_nodes, workers_per_node=tuning.pop("workers_per_node", None)
    )
    if run_label:
        cluster.run_label = run_label
    stage_subjects(cluster.object_store, subjects)
    watch = Stopwatch(cluster)
    if kind == "spark":
        tuning.setdefault("input_partitions", cluster.spec.total_slots)
        tuning.setdefault("cache_input", True)
    elif kind == "myria":
        tuning.setdefault("source", "s3")
    elif kind != "dask":
        raise ValueError(f"no end-to-end neuroscience runner for {kind!r}")
    plan_kwargs = {k: tuning.pop(k) for k in ("n_blocks", "bucket")
                   if k in tuning}
    plan = neuro_plan(**plan_kwargs)
    opt = None
    if optimize:
        from repro.plan import optimize_for

        opt = optimize_for(plan, kind, profile=neuro_profile(subjects))
        plan = opt.plan
    results = lower(plan, kind, engine).run(subjects, **tuning)
    return watch.lap(), results, opt


def run_neuro_end_to_end(kind, subjects, n_nodes=DEFAULT_NODES, **tuning):
    """One tuned end-to-end neuroscience trial; returns simulated secs.

    Starts "with data stored in Amazon S3", executes all steps, and
    materializes output in worker memory (Section 5.1).  Staging time
    is excluded (data was staged ahead of the experiment).
    """
    return _neuro_end_to_end(kind, subjects, n_nodes=n_nodes, **tuning)[0]


def _astro_end_to_end(kind, visits, n_nodes=DEFAULT_NODES, optimize=False,
                      run_label=None, **tuning):
    """One end-to-end astro trial; returns ``(seconds, results, opt)``."""
    from repro.plan.route import astro_profile

    kind = _routed(kind, astro_plan, astro_profile, visits, n_nodes)
    cluster, engine = fresh_engine(
        kind, n_nodes=n_nodes, workers_per_node=tuning.pop("workers_per_node", None)
    )
    if run_label:
        cluster.run_label = run_label
    stage_visits(cluster.object_store, visits)
    watch = Stopwatch(cluster)
    if kind == "spark":
        tuning.setdefault("input_partitions", cluster.spec.total_slots)
    elif kind == "myria":
        tuning.setdefault("source", "s3")
    elif kind != "dask":
        raise ValueError(f"no end-to-end astronomy runner for {kind!r}")
    plan_kwargs = {k: tuning.pop(k) for k in ("bucket",) if k in tuning}
    plan = astro_plan(**plan_kwargs)
    opt = None
    if optimize:
        from repro.plan import optimize_for

        opt = optimize_for(plan, kind, profile=astro_profile(visits))
        plan = opt.plan
    results = lower(plan, kind, engine).run(visits, **tuning)
    return watch.lap(), results, opt


def run_astro_end_to_end(kind, visits, n_nodes=DEFAULT_NODES, **tuning):
    """One tuned end-to-end astronomy trial; returns simulated seconds."""
    return _astro_end_to_end(kind, visits, n_nodes=n_nodes, **tuning)[0]


# ----------------------------------------------------------------------
# Optimizer: naive-vs-optimized comparison cells and routing table
# ----------------------------------------------------------------------

def _feed_digest(digest, value):
    """Feed one result structure into a hash, arrays by content."""
    array = getattr(value, "array", None)
    if array is not None:  # SizedArray
        _feed_digest(digest, array)
        digest.update(repr(tuple(value.nominal_shape)).encode())
        return
    if isinstance(value, np.ndarray):
        digest.update(str(value.dtype).encode())
        digest.update(str(value.shape).encode())
        digest.update(value.tobytes())
        return
    if isinstance(value, dict):
        for key in sorted(value, key=repr):
            digest.update(repr(key).encode())
            _feed_digest(digest, value[key])
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            _feed_digest(digest, item)
        return
    if isinstance(value, bytes):
        digest.update(value)
        return
    digest.update(repr(value).encode())


def result_digest(value):
    """Stable content digest of a pipeline's materialized results."""
    import hashlib

    digest = hashlib.sha256()
    _feed_digest(digest, value)
    return digest.hexdigest()[:16]


def optimize_token(pipeline, kind, count, profile, n_nodes=DEFAULT_NODES):
    """Fingerprint of the optimization a cell would run under.

    This is the value carried in the trial params when ``optimize`` is
    requested, so optimized runs are content-addressed by the exact
    optimizer outcome (rule catalog, guard constants, plan shape) in
    the trial cache — never colliding with naive entries or with stale
    optimizer builds.  Truthy, so trial bodies treat it as the
    ``optimize`` flag itself.
    """
    from repro.plan import optimize_for
    from repro.plan.route import astro_profile, neuro_profile

    if pipeline == "neuro":
        data = neuro_subjects(count, **profile)
        return optimize_for(
            neuro_plan(), kind, profile=neuro_profile(data)
        ).fingerprint()
    data = astro_visits(count, **profile)
    return optimize_for(
        astro_plan(), kind, profile=astro_profile(data)
    ).fingerprint()


@trial("optcell")
def _trial_optcell(pipeline, kind, count, n_nodes, profile):
    """Run one (pipeline, engine) cell naive then optimized.

    Both runs execute on fresh clusters over the same staged dataset;
    the row records both makespans, whether the materialized results
    are byte-identical, and the optimizer's firing trace.  This is the
    cell the `harness optimize --check` / `ledger --optimize` gates
    assert over: ``optimized_s <= naive_s`` and ``identical``.
    """
    run = _neuro_end_to_end if pipeline == "neuro" else _astro_end_to_end
    data = (neuro_subjects(count, **profile) if pipeline == "neuro"
            else astro_visits(count, **profile))
    naive_s, naive_out, _ = run(
        kind, data, n_nodes=n_nodes, run_label=f"{pipeline}-{kind}-naive"
    )
    opt_s, opt_out, opt = run(
        kind, data, n_nodes=n_nodes, optimize=True,
        run_label=f"{pipeline}-{kind}-optimized",
    )
    return {
        "pipeline": pipeline,
        "engine": kind,
        "naive_s": round(naive_s, 3),
        "optimized_s": round(opt_s, 3),
        "saved_s": round(naive_s - opt_s, 3),
        "identical": result_digest(naive_out) == result_digest(opt_out),
        "digest": result_digest(naive_out),
        "rules": "; ".join(f.detail for f in opt.firings) or "(no rewrites)",
        "fingerprint": opt.fingerprint(),
    }


def opt_comparison(n_subjects=2, n_visits=2, n_nodes=DEFAULT_NODES,
                   neuro_profile=None, astro_profile=None,
                   engines=("dask", "myria", "spark")):
    """Naive-vs-optimized cells for every (pipeline, engine) pair."""
    neuro_profile = neuro_profile or NEURO_BENCH
    astro_profile = astro_profile or ASTRO_BENCH
    specs = [
        TrialSpec(
            "optcell",
            {"pipeline": "neuro", "kind": kind, "count": n_subjects,
             "n_nodes": n_nodes, "profile": dict(neuro_profile)},
            engine=kind,
        )
        for kind in engines
    ] + [
        TrialSpec(
            "optcell",
            {"pipeline": "astro", "kind": kind, "count": n_visits,
             "n_nodes": n_nodes, "profile": dict(astro_profile)},
            engine=kind,
        )
        for kind in engines
    ]
    return grid_rows(specs)


def routing_table(n_subjects=2, n_visits=2, n_nodes=DEFAULT_NODES,
                  neuro_profile=None, astro_profile=None):
    """Router decisions for both pipelines at the given workload sizes."""
    from repro.plan import choose_engine
    from repro.plan import route as R

    neuro_profile = neuro_profile or NEURO_BENCH
    astro_profile = astro_profile or ASTRO_BENCH
    subjects = neuro_subjects(n_subjects, **neuro_profile)
    visits = astro_visits(n_visits, **astro_profile)
    rows = []
    for pipeline, plan, prof in (
        ("neuro", neuro_plan(), R.neuro_profile(subjects)),
        ("astro", astro_plan(), R.astro_profile(visits)),
    ):
        decision = choose_engine(plan, prof, n_nodes=n_nodes)
        for row in decision.as_rows():
            rows.append(dict({"pipeline": pipeline}, **row))
    return rows


# ----------------------------------------------------------------------
# Figures 10c-10f: end-to-end vs data size (+ normalized views)
# ----------------------------------------------------------------------

@trial("fig10c")
def _trial_fig10c(kind, count, n_nodes, profile, optimize=None):
    subjects = neuro_subjects(count, **profile)
    seconds, _results, _opt = _neuro_end_to_end(
        kind, subjects, n_nodes=n_nodes, optimize=bool(optimize)
    )
    row = {"engine": kind, "subjects": count, "simulated_s": seconds}
    if optimize:
        row["optimized"] = True
    return row


def fig10c_neuro_end_to_end(subject_counts=NEURO_SIZES,
                            engines=("dask", "myria", "spark"),
                            n_nodes=DEFAULT_NODES, profile=None,
                            optimize=False):
    """Fig10c neuro end to end.

    With ``optimize`` every trial's plan passes through the optimizer
    first; the trial params then carry the optimization fingerprint, so
    optimized cells are separately keyed in the trial cache and the
    naive entries (and their snapshots) stay byte-identical.
    ``engines=("auto",)`` resolves each cell through the router.
    """
    profile = profile or NEURO_BENCH
    return grid_rows(
        TrialSpec(
            "fig10c",
            dict(
                {"kind": kind, "count": count, "n_nodes": n_nodes,
                 "profile": dict(profile)},
                **({"optimize": optimize_token(
                    "neuro", kind, count, profile, n_nodes=n_nodes)}
                   if optimize and kind != "auto"
                   else {"optimize": True} if optimize else {}),
            ),
            engine=kind,
        )
        for count in subject_counts
        for kind in engines
    )


def fig10d_astro_end_to_end(visit_counts=ASTRO_SIZES,
                            engines=("myria", "spark"),
                            n_nodes=DEFAULT_NODES, profile=None,
                            optimize=False):
    """Dask is excluded to match the paper ("the implementation freezes
    once deployed on a cluster ... we do not report performance
    numbers", Section 4.4); pass engines=(..., "dask") to include our
    working implementation anyway.  ``optimize`` and ``engines=
    ("auto",)`` behave as in :func:`fig10c_neuro_end_to_end`."""
    profile = profile or ASTRO_BENCH
    return grid_rows(
        TrialSpec(
            "fig10d",
            dict(
                {"kind": kind, "count": count, "n_nodes": n_nodes,
                 "profile": dict(profile)},
                **({"optimize": optimize_token(
                    "astro", kind, count, profile, n_nodes=n_nodes)}
                   if optimize and kind != "auto"
                   else {"optimize": True} if optimize else {}),
            ),
            engine=kind,
        )
        for count in visit_counts
        for kind in engines
    )


@trial("fig10d")
def _trial_fig10d(kind, count, n_nodes, profile, optimize=None):
    visits = astro_visits(count, **profile)
    seconds, _results, _opt = _astro_end_to_end(
        kind, visits, n_nodes=n_nodes, optimize=bool(optimize)
    )
    row = {"engine": kind, "visits": count, "simulated_s": seconds}
    if optimize:
        row["optimized"] = True
    return row


def normalized_per_unit(rows, unit_key):
    """Figures 10e/10f: runtime per unit, normalized to the smallest
    size (the paper's "ratios of each pipeline runtime to that obtained
    for one subject")."""
    engines = sorted({r["engine"] for r in rows})
    out = []
    for engine in engines:
        engine_rows = sorted(
            (r for r in rows if r["engine"] == engine), key=lambda r: r[unit_key]
        )
        base = engine_rows[0]
        base_per_unit = base["simulated_s"] / base[unit_key]
        for row in engine_rows:
            per_unit = row["simulated_s"] / row[unit_key]
            out.append(
                {
                    "engine": engine,
                    unit_key: row[unit_key],
                    "normalized": per_unit / base_per_unit,
                }
            )
    return out


def fig10e_neuro_normalized(rows=None, **kwargs):
    """Fig10e neuro normalized."""
    rows = rows if rows is not None else fig10c_neuro_end_to_end(**kwargs)
    return normalized_per_unit(rows, "subjects")


def fig10f_astro_normalized(rows=None, **kwargs):
    """Fig10f astro normalized."""
    rows = rows if rows is not None else fig10d_astro_end_to_end(**kwargs)
    return normalized_per_unit(rows, "visits")


# ----------------------------------------------------------------------
# Figures 10g/10h: end-to-end vs cluster size
# ----------------------------------------------------------------------

@trial("fig10g")
def _trial_fig10g(kind, n_nodes, n_subjects, profile):
    subjects = neuro_subjects(n_subjects, **profile)
    return {
        "engine": kind,
        "nodes": n_nodes,
        "simulated_s": run_neuro_end_to_end(kind, subjects, n_nodes=n_nodes),
    }


def fig10g_neuro_speedup(node_counts=CLUSTER_SIZES, n_subjects=25,
                         engines=("dask", "myria", "spark"), profile=None):
    """Fig10g neuro speedup."""
    profile = profile or NEURO_BENCH
    return grid_rows(
        TrialSpec(
            "fig10g",
            {"kind": kind, "n_nodes": n_nodes, "n_subjects": n_subjects,
             "profile": dict(profile)},
            engine=kind,
        )
        for n_nodes in node_counts
        for kind in engines
    )


@trial("fig10h")
def _trial_fig10h(kind, n_nodes, n_visits, profile):
    visits = astro_visits(n_visits, **profile)
    return {
        "engine": kind,
        "nodes": n_nodes,
        "simulated_s": run_astro_end_to_end(kind, visits, n_nodes=n_nodes),
    }


def fig10h_astro_speedup(node_counts=CLUSTER_SIZES, n_visits=24,
                         engines=("myria", "spark"), profile=None):
    """Fig10h astro speedup."""
    profile = profile or ASTRO_BENCH
    return grid_rows(
        TrialSpec(
            "fig10h",
            {"kind": kind, "n_nodes": n_nodes, "n_visits": n_visits,
             "profile": dict(profile)},
            engine=kind,
        )
        for n_nodes in node_counts
        for kind in engines
    )


# ----------------------------------------------------------------------
# Figure 11: data ingest (neuroscience)
# ----------------------------------------------------------------------

def _charge_nifti_to_numpy_staging(cluster, subjects):
    """Conversion of NIfTI files to pickled-NumPy S3 objects, run in
    parallel across the cluster; "the conversion time is included in
    the data ingest time" (Section 5.2.1)."""
    from repro.cluster.task import Task

    cm = cluster.cost_model
    total = sum(s.nominal_bytes for s in subjects)
    share = total / cluster.spec.n_nodes
    tasks = [
        Task(
            f"nifti-convert-{node}",
            duration=share / cm.nifti_parse_bandwidth
            + cm.pickle_time(share)
            + share / cm.s3_bandwidth_per_node,
            node=node,
        )
        for node in cluster.node_order
    ]
    cluster.run(tasks)


@trial("fig11")
def _trial_fig11(system, count, profile):
    subjects = neuro_subjects(count, **profile)
    return {
        "system": system,
        "subjects": count,
        "simulated_s": _ingest_once(system, subjects),
    }


def fig11_ingest(subject_counts=NEURO_SIZES, profile=None,
                 systems=("spark", "myria", "dask", "tensorflow",
                          "scidb-1", "scidb-2")):
    """Fig11 ingest."""
    profile = profile or NEURO_BENCH
    return grid_rows(
        TrialSpec(
            "fig11",
            {"system": system, "count": count, "profile": dict(profile)},
            engine="scidb" if system.startswith("scidb") else system,
        )
        for count in subject_counts
        for system in systems
    )


def _ingest_once(system, subjects):
    kind = "scidb" if system.startswith("scidb") else system
    cluster, engine = fresh_engine(kind)
    engine.ensure_started()  # ingest measured on a warm deployment
    watch = Stopwatch(cluster)

    if system in ("spark", "myria"):
        _charge_nifti_to_numpy_staging(cluster, subjects)
        stage_subjects(cluster.object_store, subjects)
        if system == "spark":
            rdd = neuro_spark.build_image_rdd(
                engine, partitions=cluster.spec.total_slots, cache=True
            )
            rdd.persist_to_workers()
        else:
            neuro_myria.ingest(engine, subjects)
        return watch.lap()

    if system == "dask":
        # Dask loads NIfTI directly into worker memory with manual
        # placement (Section 5.2.1); the paper fit at most 3 subjects
        # per node, so subjects round-robin across nodes.
        stage_subjects(cluster.object_store, subjects)
        nodes = cluster.node_order
        delayed = [
            vol
            for i, subject in enumerate(subjects)
            for vol in neuro_dask.download_and_filter(
                engine, subject, workers=nodes[i % len(nodes)]
            )
        ]
        engine.compute(delayed)
        return watch.lap()

    if system == "tensorflow":
        # All ingest goes through the master, then partitions are sent
        # to each node in a pipelined fashion (Section 5.2.1).
        cm = cluster.cost_model
        total = sum(s.nominal_bytes for s in subjects)
        engine.ensure_started()
        cluster.charge_master(
            cm.s3_read_time(total, n_objects=len(subjects))
            + total / cm.nifti_parse_bandwidth
            + cm.tensor_convert_time(total),
            label="TF master ingest",
        )
        # Pipelined scatter: the master sends node-shares sequentially,
        # overlapping with the next read; charge the serial send.
        share = total / cluster.spec.n_nodes
        for node in cluster.node_order:
            cluster.charge_master(
                cluster.network.transfer_time(share, cluster.master, node),
                label="TF scatter",
            )
        return watch.lap()

    if system in ("scidb-1", "scidb-2"):
        method = "from_array" if system == "scidb-1" else "aio"
        for subject in subjects:
            neuro_scidb.ingest(engine, subject, method=method)
        return watch.lap()

    raise ValueError(f"unknown ingest system {system!r}")


# ----------------------------------------------------------------------
# Figure 12: individual steps (16 nodes, largest dataset)
# ----------------------------------------------------------------------

@trial("fig12a")
def _trial_fig12a(system, n_subjects, profile):
    subjects = neuro_subjects(n_subjects, **profile)
    return {"system": system, "simulated_s": _filter_once(system, subjects)}


def fig12a_filter(n_subjects=25, profile=None,
                  systems=("dask", "myria", "spark", "scidb", "tensorflow")):
    """Step: select the b0 subset of image volumes."""
    profile = profile or NEURO_BENCH
    return grid_rows(
        TrialSpec(
            "fig12a",
            {"system": system, "n_subjects": n_subjects,
             "profile": dict(profile)},
            engine=system,
        )
        for system in systems
    )


def _filter_once(system, subjects):
    cluster, engine = fresh_engine(system)
    gtabs = gradient_tables(subjects)
    stage_subjects(cluster.object_store, subjects)

    if system == "spark":
        base = neuro_spark.build_image_rdd(
            engine, partitions=cluster.spec.total_slots, cache=True
        )
        base.persist_to_workers()  # data in memory, untimed
        watch = Stopwatch(cluster)
        neuro_spark.filter_b0(engine, base, gtabs).persist_to_workers()
        return watch.lap()

    if system == "myria":
        neuro_myria.ingest(engine, subjects)
        watch = Stopwatch(cluster)
        from repro.engines.myria.connection import MyriaQuery
        from repro.plan.fragments import neuro_filter_fragment

        # Emit the step's MyriaL from its plan fragment (identical text
        # to FILTER_QUERY — the emitter only consults ops the fragment
        # keeps).
        MyriaQuery.submit(
            engine, neuro_myria.filter_query(neuro_filter_fragment())
        )
        return watch.lap()

    if system == "dask":
        import numpy as np

        nodes = cluster.node_order
        downloads = {
            s.subject_id: neuro_dask.download_and_filter(
                engine, s, workers=nodes[i % len(nodes)]
            )
            for i, s in enumerate(subjects)
        }
        engine.compute([v for vols in downloads.values() for v in vols])
        watch = Stopwatch(cluster)

        def select(*volumes):
            return list(volumes)

        def select_cost(*volumes):
            total = sum(v.nominal_bytes for v in volumes)
            return total * engine.cost_model.memcpy_per_byte

        filtered = []
        for s in subjects:
            b0 = [
                downloads[s.subject_id][i]
                for i in np.nonzero(s.gtab.b0s_mask)[0]
            ]
            filtered.append(engine.delayed(select, cost=select_cost)(*b0))
        engine.compute(filtered)
        return watch.lap()

    if system == "scidb":
        array = neuro_scidb.ingest_cohort(engine, subjects, method="aio")
        watch = Stopwatch(cluster)
        neuro_scidb.filter_step_cohort(engine, array, subjects)
        return watch.lap()

    if system == "tensorflow":
        watch = Stopwatch(cluster)
        for subject in subjects:
            neuro_tf.filter_step(engine, subject)
        return watch.lap()

    raise ValueError(f"unknown system {system!r}")


@trial("fig12b")
def _trial_fig12b(system, n_subjects, profile):
    subjects = neuro_subjects(n_subjects, **profile)
    return {"system": system, "simulated_s": _mean_once(system, subjects)}


def fig12b_mean(n_subjects=25, profile=None,
                systems=("dask", "myria", "spark", "scidb", "tensorflow")):
    """Step: per-subject mean of the b0 volumes."""
    profile = profile or NEURO_BENCH
    return grid_rows(
        TrialSpec(
            "fig12b",
            {"system": system, "n_subjects": n_subjects,
             "profile": dict(profile)},
            engine=system,
        )
        for system in systems
    )


def _mean_once(system, subjects):
    cluster, engine = fresh_engine(system)
    gtabs = gradient_tables(subjects)
    stage_subjects(cluster.object_store, subjects)

    if system == "spark":
        base = neuro_spark.build_image_rdd(
            engine, partitions=cluster.spec.total_slots, cache=True
        )
        b0 = neuro_spark.filter_b0(engine, base, gtabs).cache()
        b0.persist_to_workers()  # untimed: input of the mean step
        watch = Stopwatch(cluster)
        neuro_spark.mean_b0(engine, b0).persist_to_workers()
        return watch.lap()

    if system == "myria":
        neuro_myria.ingest(engine, subjects)
        neuro_myria.register_udfs(engine, subjects)
        watch = Stopwatch(cluster)
        from repro.engines.myria.connection import MyriaQuery
        from repro.plan.fragments import neuro_mean_fragment

        MyriaQuery.submit(
            engine, neuro_myria.mean_query(neuro_mean_fragment())
        )
        return watch.lap()

    if system == "dask":
        nodes = cluster.node_order
        downloads = {
            s.subject_id: neuro_dask.download_and_filter(
                engine, s, workers=nodes[i % len(nodes)]
            )
            for i, s in enumerate(subjects)
        }
        engine.compute([v for vols in downloads.values() for v in vols])
        watch = Stopwatch(cluster)
        means = [
            neuro_dask.build_mask_graph(engine, s, downloads[s.subject_id])
            for s in subjects
        ]
        engine.compute(means)
        return watch.lap()

    if system == "scidb":
        array = neuro_scidb.ingest_cohort(engine, subjects, method="aio")
        filtered = neuro_scidb.filter_step_cohort(engine, array, subjects)
        watch = Stopwatch(cluster)
        neuro_scidb.mean_step_cohort(engine, filtered)
        return watch.lap()

    if system == "tensorflow":
        filtered = [neuro_tf.filter_step(engine, s) for s in subjects]
        watch = Stopwatch(cluster)
        for f in filtered:
            neuro_tf.mean_step(engine, f)
        return watch.lap()

    raise ValueError(f"unknown system {system!r}")


@trial("fig12c")
def _trial_fig12c(system, n_subjects, profile):
    subjects = neuro_subjects(n_subjects, **profile)
    return {"system": system, "simulated_s": _denoise_once(system, subjects)}


def fig12c_denoise(n_subjects=25, profile=None,
                   systems=("dask", "myria", "spark", "scidb", "tensorflow")):
    """Step 2-N: denoising (SciDB via stream(), TF via convolutions)."""
    profile = profile or NEURO_BENCH
    return grid_rows(
        TrialSpec(
            "fig12c",
            {"system": system, "n_subjects": n_subjects,
             "profile": dict(profile)},
            engine=system,
        )
        for system in systems
    )


def _denoise_once(system, subjects):
    from repro.pipelines.neuro.reference import compute_mask

    cluster, engine = fresh_engine(system)
    gtabs = gradient_tables(subjects)
    stage_subjects(cluster.object_store, subjects)
    masks = {s.subject_id: compute_mask(s) for s in subjects}

    if system == "spark":
        from repro.algorithms.nlmeans import nlmeans_3d
        from repro.pipelines import common
        from repro.pipelines.neuro.reference import DENOISE_SIGMA

        base = neuro_spark.build_image_rdd(
            engine, partitions=cluster.spec.total_slots, cache=True
        )
        base.persist_to_workers()
        fraction = float(np.mean([m.mean() for m in masks.values()]))
        masks_b = engine.broadcast(
            masks, nominal_bytes=sum(m.size for m in masks.values())
        )
        watch = Stopwatch(cluster)

        def denoise(volume):
            mask = masks_b.value[volume.meta["subject_id"]]
            return volume.with_array(
                nlmeans_3d(volume.array, sigma=DENOISE_SIGMA, mask=mask)
            )

        base.map(
            udf(denoise, cost=common.denoise_cost(cluster.cost_model, fraction))
        ).persist_to_workers()
        return watch.lap()

    if system == "myria":
        neuro_myria.ingest(engine, subjects)
        fraction = float(np.mean([m.mean() for m in masks.values()]))
        neuro_myria.register_udfs(engine, subjects, mask_fraction=fraction)
        neuro_myria._MASK_CACHE.clear()
        neuro_myria._MASK_CACHE.update(masks)
        from repro.engines.myria import Relation
        from repro.formats.sizing import SizedArray

        mask_rows = [
            (
                sid,
                SizedArray(
                    mask,
                    nominal_shape=NEURO_VOLUME_SHAPE,
                    meta={"subject_id": sid},
                ),
            )
            for sid, mask in masks.items()
        ]
        engine.ingest_relation(
            Relation.from_rows("Mask", ("subjId", "mask"), mask_rows), "subjId"
        )
        watch = Stopwatch(cluster)
        from repro.engines.myria.connection import MyriaQuery

        MyriaQuery.submit(
            engine,
            """
T1 = SCAN(Images);
T2 = SCAN(Mask);
Joined = [SELECT T1.subjId, T1.imgId, T1.img, T2.mask
          FROM T1, BROADCAST(T2) WHERE T1.subjId = T2.subjId];
Denoised = [FROM Joined EMIT PYUDF(Denoise, Joined.img, Joined.mask) AS img,
            Joined.subjId, Joined.imgId];
""",
        )
        return watch.lap()

    if system == "dask":
        nodes = cluster.node_order
        downloads = {
            s.subject_id: neuro_dask.download_and_filter(
                engine, s, workers=nodes[i % len(nodes)]
            )
            for i, s in enumerate(subjects)
        }
        mask_delayed = {
            s.subject_id: neuro_dask.build_mask_graph(
                engine, s, downloads[s.subject_id]
            )
            for s in subjects
        }
        engine.compute(
            [v for vols in downloads.values() for v in vols]
            + list(mask_delayed.values())
        )
        watch = Stopwatch(cluster)
        from repro.algorithms.nlmeans import nlmeans_3d
        from repro.pipelines import common
        from repro.pipelines.neuro.reference import DENOISE_SIGMA

        cm = cluster.cost_model

        def denoise_one(volume, mask):
            return volume.with_array(
                nlmeans_3d(volume.array, sigma=DENOISE_SIGMA, mask=mask)
            )

        def denoise_cost(volume, mask):
            fraction = common.masked_fraction(mask)
            return volume.nominal_elements * fraction * cm.nlmeans_per_voxel

        denoised = [
            engine.delayed(denoise_one, cost=denoise_cost)(
                vol, mask_delayed[s.subject_id]
            )
            for s in subjects
            for vol in downloads[s.subject_id]
        ]
        engine.compute(denoised)
        return watch.lap()

    if system == "scidb":
        array = neuro_scidb.ingest_cohort(engine, subjects, method="aio")
        masks_by_index = {
            i: masks[s.subject_id] for i, s in enumerate(subjects)
        }
        watch = Stopwatch(cluster)
        neuro_scidb.denoise_step_cohort(engine, array, masks_by_index)
        return watch.lap()

    if system == "tensorflow":
        watch = Stopwatch(cluster)
        for s in subjects:
            neuro_tf.denoise_step(engine, s)
        return watch.lap()

    raise ValueError(f"unknown system {system!r}")


@trial("fig12d")
def _trial_fig12d(system, n_visits, profile):
    visits = astro_visits(n_visits, **profile)
    return {"system": system, "simulated_s": _coadd_once(system, visits)}


def fig12d_coadd(n_visits=24, profile=None,
                 systems=("myria", "spark", "scidb")):
    """Step 3-A: co-addition (SciDB in stock iterative AQL)."""
    profile = profile or ASTRO_BENCH
    return grid_rows(
        TrialSpec(
            "fig12d",
            {"system": system, "n_visits": n_visits,
             "profile": dict(profile)},
            engine=system,
        )
        for system in systems
    )


def _coadd_once(system, visits, incremental=False, chunk=None):
    from repro.pipelines import common

    cluster, engine = fresh_engine(system)
    stage_visits(cluster.object_store, visits)
    exposures = [e for v in visits for e in v.exposures]
    grid = astro_ref.default_patch_grid(exposures[0].shape)
    pixel_scale = astro_ref.nominal_pixel_scale(
        exposures[0].shape, exposures[0].bundle
    )

    if system == "spark":
        base = astro_spark.build_exposure_rdd(
            engine, partitions=cluster.spec.total_slots, cache=True
        )
        calibrated = base.map(
            udf(astro_ref.preprocess_exposure,
                cost=common.preprocess_cost(cluster.cost_model))
        )

        def to_pieces(exposure):
            return astro_ref.patch_pieces(exposure, grid, pixel_scale)

        def stitch(kv):
            return kv[0], astro_ref.stitch_pieces(kv[1])

        patch_exp = (
            calibrated.flatMap(
                udf(to_pieces, cost=common.patch_map_cost(cluster.cost_model))
            )
            .groupByKey(numPartitions=cluster.spec.total_slots)
            .map(udf(stitch))
            .cache()
        )
        patch_exp.persist_to_workers()  # input of the step, untimed
        watch = Stopwatch(cluster)

        def rekey(kv):
            (patch_id, visit_id), stitched = kv
            return patch_id, (visit_id, stitched)

        def coadd(kv):
            ordered = [s for _v, s in sorted(kv[1], key=lambda e: e[0])]
            return kv[0], astro_ref.coadd_patch(ordered)

        def coadd_cost(kv):
            return common.coadd_cost(
                cluster.cost_model, astro_ref.COADD_ITERATIONS
            )([s for _v, s in kv[1]])

        (
            patch_exp.map(udf(rekey))
            .groupByKey(numPartitions=cluster.spec.total_slots)
            .map(udf(coadd, cost=coadd_cost))
            .persist_to_workers()
        )
        return watch.lap()

    if system == "myria":
        astro_myria.ingest(engine, visits)
        astro_myria.register_udfs(engine, grid, pixel_scale)
        from repro.engines.myria.connection import MyriaQuery

        MyriaQuery.submit(
            engine,
            """
E = SCAN(Exposures);
Calib = [FROM E EMIT PYUDF(Preproc, E.img) AS img, E.visit, E.expId];
Pieces = [FROM Calib EMIT
          UNNEST(PYUDF(PatchMap, Calib.img)) AS (patchY, patchX, visitId, piece)];
PatchExp = [FROM Pieces EMIT Pieces.patchY, Pieces.patchX, Pieces.visitId,
            UDA(Stitch, Pieces.piece) AS img];
STORE(PatchExp, PatchExposures);
""",
        )
        watch = Stopwatch(cluster)
        MyriaQuery.submit(
            engine,
            """
P = SCAN(PatchExposures);
Coadds = [FROM P EMIT P.patchY, P.patchX, UDA(CoaddAgg, P.img, P.visitId) AS coadd];
""",
        )
        return watch.lap()

    if system == "scidb":
        array = astro_scidb.ingest(
            engine, visits, chunk=chunk or astro_scidb.DEFAULT_CHUNK
        )
        watch = Stopwatch(cluster)
        astro_scidb.coadd_step(engine, array, incremental=incremental)
        return watch.lap()

    raise ValueError(f"unknown system {system!r}")


# ----------------------------------------------------------------------
# Figure 13: Myria workers per node
# ----------------------------------------------------------------------

@trial("fig13")
def _trial_fig13(workers, n_subjects, n_nodes, profile):
    subjects = neuro_subjects(n_subjects, **profile)
    return {
        "workers_per_node": workers,
        "simulated_s": run_neuro_end_to_end(
            "myria", subjects, n_nodes=n_nodes, workers_per_node=workers
        ),
    }


def fig13_myria_workers(worker_counts=(1, 2, 4, 8), n_subjects=25,
                        n_nodes=DEFAULT_NODES, profile=None):
    """Fig13 myria workers."""
    profile = profile or NEURO_BENCH
    return grid_rows(
        TrialSpec(
            "fig13",
            {"workers": workers, "n_subjects": n_subjects,
             "n_nodes": n_nodes, "profile": dict(profile)},
            engine="myria",
        )
        for workers in worker_counts
    )


# ----------------------------------------------------------------------
# Figure 14: Spark input partitions (single subject)
# ----------------------------------------------------------------------

@trial("fig14")
def _trial_fig14(partitions, n_nodes, profile):
    subjects = neuro_subjects(1, **profile)
    return {
        "partitions": partitions,
        "simulated_s": run_neuro_end_to_end(
            "spark", subjects, n_nodes=n_nodes,
            input_partitions=partitions,
            group_partitions=max(partitions, 1),
        ),
    }


def fig14_spark_partitions(
    partition_counts=(1, 2, 4, 8, 16, 32, 64, 97, 128, 192, 256),
    n_nodes=DEFAULT_NODES, profile=None,
):
    """Fig14 spark partitions."""
    profile = profile or {"scale": NEURO_BENCH["scale"], "n_volumes": 288}
    return grid_rows(
        TrialSpec(
            "fig14",
            {"partitions": partitions, "n_nodes": n_nodes,
             "profile": dict(profile)},
            engine="spark",
        )
        for partitions in partition_counts
    )


# ----------------------------------------------------------------------
# Figure 15: Myria memory management (astronomy)
# ----------------------------------------------------------------------

@trial("fig15")
def _trial_fig15(count, mode, n_nodes, chunks, profile):
    visits = astro_visits(count, **profile)
    cluster, engine = fresh_engine("myria", n_nodes=n_nodes)
    stage_visits(cluster.object_store, visits)
    watch = Stopwatch(cluster)
    try:
        astro_myria.run(
            engine, visits, mode=mode,
            chunks=chunks if mode == "multiquery" else 1,
            source="s3",
        )
        result = watch.lap()
    except OutOfMemoryError:
        result = "OOM"
    return {"visits": count, "mode": mode, "simulated_s": result}


def fig15_myria_memory(visit_counts=(2, 4, 8, 12, 24),
                       modes=("pipelined", "materialized", "multiquery"),
                       n_nodes=DEFAULT_NODES, chunks=2, profile=None):
    """Pipelined vs materialized vs multi-query execution; cells where
    a mode runs out of memory report ``"OOM"`` (the paper's missing
    bars)."""
    profile = profile or ASTRO_BENCH
    return grid_rows(
        TrialSpec(
            "fig15",
            {"count": count, "mode": mode, "n_nodes": n_nodes,
             "chunks": chunks, "profile": dict(profile)},
            engine="myria",
        )
        for count in visit_counts
        for mode in modes
    )


# ----------------------------------------------------------------------
# Section 5.3.1: SciDB chunk-size tuning (co-addition)
# ----------------------------------------------------------------------

@trial("s531")
def _trial_s531(chunk, n_visits, profile):
    visits = astro_visits(n_visits, **profile)
    return {
        "chunk": chunk,
        "simulated_s": _coadd_once("scidb", visits, chunk=chunk),
    }


def s531_scidb_chunks(chunk_sizes=(500, 1000, 1500, 2000), n_visits=24,
                      profile=None):
    """S531 scidb chunks."""
    profile = profile or ASTRO_BENCH
    return grid_rows(
        TrialSpec(
            "s531",
            {"chunk": chunk, "n_visits": n_visits, "profile": dict(profile)},
            engine="scidb",
        )
        for chunk in chunk_sizes
    )


# ----------------------------------------------------------------------
# Section 5.3.3: Spark input caching
# ----------------------------------------------------------------------

@trial("s533")
def _trial_s533(count, cached, n_nodes, profile):
    subjects = neuro_subjects(count, **profile)
    return {
        "subjects": count,
        "cached": cached,
        "simulated_s": run_neuro_end_to_end(
            "spark", subjects, n_nodes=n_nodes, cache_input=cached
        ),
    }


def s533_spark_caching(subject_counts=(1, 4, 12, 25), n_nodes=DEFAULT_NODES,
                       profile=None):
    """S533 spark caching."""
    profile = profile or NEURO_BENCH
    return grid_rows(
        TrialSpec(
            "s533",
            {"count": count, "cached": cached, "n_nodes": n_nodes,
             "profile": dict(profile)},
            engine="spark",
        )
        for count in subject_counts
        for cached in (False, True)
    )


# ----------------------------------------------------------------------
# Ablation: SciDB incremental iterative processing ([34], Section 5.2.4)
# ----------------------------------------------------------------------

@trial("ablation_scidb")
def _trial_ablation_scidb(incremental, n_visits, profile):
    visits = astro_visits(n_visits, **profile)
    return {
        "variant": "incremental [34]" if incremental else "stock AQL",
        "simulated_s": _coadd_once("scidb", visits, incremental=incremental),
    }


def ablation_scidb_incremental(n_visits=24, profile=None):
    """Ablation scidb incremental."""
    profile = profile or ASTRO_BENCH
    rows = grid_rows(
        TrialSpec(
            "ablation_scidb",
            {"incremental": incremental, "n_visits": n_visits,
             "profile": dict(profile)},
            engine="scidb",
        )
        for incremental in (False, True)
    )
    stock, incremental = (r["simulated_s"] for r in rows)
    return rows + [
        {"variant": "speedup", "simulated_s": stock / incremental},
    ]


# ----------------------------------------------------------------------
# F16: recovery overhead under a mid-run node kill (fault injection)
# ----------------------------------------------------------------------

#: Fault-schedule seed for F16 (fixed so the checked-in ledger baseline
#: reproduces byte-for-byte).
F16_SEED = 16

#: The killed node reboots and rejoins this many simulated seconds
#: after the crash (an EC2 instance reboot).  This is the term that
#: separates the recovery classes: lineage recompute proceeds on the
#: survivors immediately, while Myria/SciDB hold hash-partitioned
#: state on every worker and must wait the reboot out before redoing
#: work.
F16_RESTART_AFTER_S = 18.0

F16_ENGINES = ("spark", "dask", "myria", "scidb", "tensorflow")

#: Section 2's qualitative recovery claims, one label per engine.
F16_RECOVERY = {
    "spark": "lineage recompute",
    "dask": "reschedule futures",
    "myria": "query restart",
    "scidb": "rerun from ingested array",
    "tensorflow": "rerun from scratch",
}


@trial("f16")
def _trial_f16(kind, n_subjects, n_nodes, profile, restart_after_s, seed):
    subjects = neuro_subjects(n_subjects, **profile)
    base = _f16_baseline(kind, subjects, n_nodes)
    baseline_s = base["end"] - base["start"]
    crash_at = base["ingest_end"] + 0.5 * (base["end"] - base["ingest_end"])
    faulty = _f16_faulty(
        kind, subjects, n_nodes, crash_at, restart_after_s, seed
    )
    faulty_s = faulty["end"] - faulty["start"]
    return {
        "engine": kind,
        "recovery": F16_RECOVERY[kind],
        "baseline_s": baseline_s,
        "faulty_s": faulty_s,
        "overhead_s": faulty_s - baseline_s,
        "overhead_pct": 100.0 * (faulty_s - baseline_s) / baseline_s,
    }


def f16_recovery(engines=F16_ENGINES, n_subjects=2, n_nodes=DEFAULT_NODES,
                 profile=None, restart_after_s=F16_RESTART_AFTER_S,
                 seed=F16_SEED):
    """Kill 1 of ``n_nodes`` at 50% progress of the neuro pipeline.

    For every engine: run the pipeline fault-free to locate the halfway
    point of its compute phase (past ingest), then rerun with a seeded
    :class:`~repro.cluster.faults.FaultPlan` that crashes the last
    node at that instant and reboots it ``restart_after_s`` later.
    Spark recomputes from lineage, Dask reschedules lost futures, Myria
    restarts the query; SciDB and TensorFlow have no recovery path, so
    the harness plays the operator -- wait out the reboot, rerun.
    Returns one row per engine with the recovery overhead.
    """
    profile = profile or NEURO_BENCH
    return grid_rows(
        TrialSpec(
            "f16",
            {"kind": kind, "n_subjects": n_subjects, "n_nodes": n_nodes,
             "profile": dict(profile), "restart_after_s": restart_after_s,
             "seed": seed},
            engine=kind,
            faults={"crash": "last-node@50%-progress",
                    "restart_after_s": restart_after_s, "seed": seed},
        )
        for kind in engines
    )


def _f16_baseline(kind, subjects, n_nodes):
    """Fault-free reference run; returns absolute phase timestamps."""
    cluster, engine = fresh_engine(kind, n_nodes=n_nodes)
    stage_subjects(cluster.object_store, subjects)
    start = cluster.now
    ingest_end = _f16_pipeline(kind, cluster, engine, subjects)
    return {"start": start, "ingest_end": ingest_end, "end": cluster.now}


def _f16_faulty(kind, subjects, n_nodes, crash_at, restart_after_s, seed):
    """The same pipeline with the last node crashing at ``crash_at``."""
    from repro.cluster.errors import NodeCrashedError
    from repro.cluster.faults import FaultPlan

    cluster, engine = fresh_engine(kind, n_nodes=n_nodes)
    stage_subjects(cluster.object_store, subjects)
    victim = cluster.node_order[-1]  # never the master/coordinator
    cluster.install_faults(
        FaultPlan(seed=seed).crash_node(
            victim, at_time=crash_at, restart_after=restart_after_s
        )
    )
    start = cluster.now
    if kind in ("spark", "dask", "myria"):
        # Recovery is the engine's job (executor recompute or the Myria
        # coordinator's restart loop).
        _f16_pipeline(kind, cluster, engine, subjects)
        return {"start": start, "end": cluster.now, "victim": victim}

    if kind == "scidb":
        array = neuro_scidb.ingest_cohort(engine, subjects, method="aio")
        try:
            _f16_scidb_compute(engine, array, subjects)
        except NodeCrashedError as exc:
            _f16_wait_for_reboot(cluster, kind, exc)
            _f16_scidb_compute(engine, array, subjects)
    elif kind == "tensorflow":
        try:
            _f16_tf_compute(engine, subjects)
        except NodeCrashedError as exc:
            _f16_wait_for_reboot(cluster, kind, exc)
            _f16_tf_compute(engine, subjects)
    else:
        raise ValueError(f"no F16 runner for {kind!r}")
    return {"start": start, "end": cluster.now, "victim": victim}


def _f16_wait_for_reboot(cluster, kind, exc):
    """No engine-level recovery: wait for the node, then rerun."""
    from repro.obs.events import QueryRestarted

    if exc.recover_at is None:
        raise exc
    if exc.recover_at > cluster.now:
        cluster.charge_master(
            exc.recover_at - cluster.now,
            label="wait for node reboot",
            category="recovery-wait",
        )
    if cluster.obs.events:
        cluster.obs.events.emit(
            QueryRestarted(
                cluster.now, kind, 1, f"node {exc.node} crashed"
            )
        )


def _f16_pipeline(kind, cluster, engine, subjects):
    """Run the neuro pipeline; returns the clock time ingest finished."""
    if kind == "spark":
        gtabs = gradient_tables(subjects)
        rdd = neuro_spark.build_image_rdd(
            engine, partitions=cluster.spec.total_slots, cache=True
        )
        rdd.persist_to_workers()
        ingest_end = cluster.now
        masks = neuro_spark.segmentation(engine, rdd, gtabs)
        neuro_spark.denoise_and_fit(engine, rdd, gtabs, masks)
        return ingest_end
    if kind == "dask":
        nodes = cluster.node_order
        data = {}
        for index, subject in enumerate(subjects):
            data[subject.subject_id] = neuro_dask.download_and_filter(
                engine, subject, workers=nodes[index % len(nodes)]
            )
        engine.compute([v for vols in data.values() for v in vols])
        ingest_end = cluster.now
        masks = {
            s.subject_id: neuro_dask.build_mask_graph(
                engine, s, data[s.subject_id]
            )
            for s in subjects
        }
        fa = [
            neuro_dask.build_fit_graph(
                engine, s, data[s.subject_id], masks[s.subject_id]
            )
            for s in subjects
        ]
        engine.compute(list(masks.values()) + fa)
        return ingest_end
    if kind == "myria":
        neuro_myria.ingest(engine, subjects)
        ingest_end = cluster.now
        neuro_myria.run(engine, subjects, source="ingested")
        return ingest_end
    if kind == "scidb":
        array = neuro_scidb.ingest_cohort(engine, subjects, method="aio")
        ingest_end = cluster.now
        _f16_scidb_compute(engine, array, subjects)
        return ingest_end
    if kind == "tensorflow":
        ingest_end = cluster.now  # every TF run re-ingests via the master
        _f16_tf_compute(engine, subjects)
        return ingest_end
    raise ValueError(f"no F16 runner for {kind!r}")


def _f16_scidb_compute(engine, array, subjects):
    from repro.pipelines.neuro.reference import compute_mask

    masks = {i: compute_mask(s) for i, s in enumerate(subjects)}
    filtered = neuro_scidb.filter_step_cohort(engine, array, subjects)
    neuro_scidb.mean_step_cohort(engine, filtered)
    neuro_scidb.denoise_step_cohort(engine, array, masks)


def _f16_tf_compute(engine, subjects):
    for subject in subjects:
        filtered = neuro_tf.filter_step(engine, subject)
        mean = neuro_tf.mean_step(engine, filtered)
        neuro_tf.mask_step(engine, mean)
        neuro_tf.denoise_step(engine, subject)


# ----------------------------------------------------------------------
# Future-work ablations (Section 6)
# ----------------------------------------------------------------------

@trial("ablation_tf")
def _trial_ablation_tf(free_conversions, n_subjects, profile):
    from repro.cluster.costs import CostModel

    subjects = neuro_subjects(n_subjects, **profile)
    cost_model = CostModel()
    if free_conversions:
        cost_model = cost_model.with_overrides(tensor_convert_bandwidth=1e18)
    cluster, engine = fresh_engine("tensorflow", cost_model=cost_model)
    filtered = [neuro_tf.filter_step(engine, s) for s in subjects]
    watch = Stopwatch(cluster)
    for f in filtered:
        neuro_tf.mean_step(engine, f)
    return {
        "variant": "free conversions" if free_conversions
                   else "stock TensorFlow",
        "simulated_s": watch.lap(),
    }


def ablation_tf_format_conversion(n_subjects=4, profile=None):
    """Section 6, "Data Formats": "An interesting area of future work is
    to optimize away these format conversions."  Re-runs the TensorFlow
    mean step with tensor conversion made free, quantifying how much of
    TF's Figure 12b deficit the conversions explain.
    """
    profile = profile or NEURO_BENCH
    rows = grid_rows(
        TrialSpec(
            "ablation_tf",
            {"free_conversions": free, "n_subjects": n_subjects,
             "profile": dict(profile)},
            engine="tensorflow",
        )
        for free in (False, True)
    )
    stock, no_conversion = (r["simulated_s"] for r in rows)
    return rows + [
        {"variant": "conversion share",
         "simulated_s": 1 - no_conversion / stock},
    ]


@trial("ablation_tuning")
def _trial_ablation_tuning(tuned, n_nodes, profile):
    subjects = neuro_subjects(1, **profile)
    if tuned:
        simulated = run_neuro_end_to_end("spark", subjects, n_nodes=n_nodes)
    else:
        simulated = run_neuro_end_to_end(
            "spark", subjects, n_nodes=n_nodes,
            input_partitions=None,  # the HDFS-block default
            group_partitions=None,
        )
    return {
        "variant": "tuned partitions" if tuned else "default partitions",
        "simulated_s": simulated,
    }


def ablation_spark_self_tuning(profile=None, n_nodes=DEFAULT_NODES):
    """Section 6, "System Tuning": "none of them performed best with the
    default settings."  Compares Spark's default (HDFS-block-like)
    partitioning against the tuned slot count for one subject -- the
    under-utilization the paper observed when "Spark creates only 4
    partitions" (Section 5.3.1).
    """
    profile = profile or {"scale": NEURO_BENCH["scale"], "n_volumes": 288}
    rows = grid_rows(
        TrialSpec(
            "ablation_tuning",
            {"tuned": tuned, "n_nodes": n_nodes, "profile": dict(profile)},
            engine="spark",
        )
        for tuned in (False, True)
    )
    default, tuned = (r["simulated_s"] for r in rows)
    return rows + [
        {"variant": "speedup", "simulated_s": default / tuned},
    ]
