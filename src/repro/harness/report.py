"""Paper-style table printers for experiment results.

Experiments return row dicts; these helpers render them as the grids
the paper's figures/tables show, for human inspection and for
EXPERIMENTS.md.
"""


def format_value(value):
    """Format value."""
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def print_table(rows, columns=None, title=None, out=print):
    """Render rows as a fixed-width text table."""
    if not rows:
        out("(no rows)")
        return
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(format_value(r.get(c, ""))) for r in rows))
        for c in columns
    }
    if title:
        out(f"== {title} ==")
    header = "  ".join(str(c).rjust(widths[c]) for c in columns)
    out(header)
    out("-" * len(header))
    for row in rows:
        out("  ".join(format_value(row.get(c, "")).rjust(widths[c]) for c in columns))


def print_breakdown(cluster, metrics=None, out=print):
    """Render the observability "where did the time go" report.

    ``metrics`` is an optional
    :class:`~repro.obs.metrics.ClusterMetrics` that was attached before
    the run; it adds straggler-spread statistics to the report.
    """
    from repro.obs.breakdown import format_breakdown

    out(format_breakdown(cluster, metrics=metrics))


def figure_blame(clusters, top=None):
    """Aggregate critical-path blame across every cluster a figure built.

    Returns rows ``{"category", "kind", "seconds", "share"}`` sorted
    largest-first; shares are of the summed makespan, so over the full
    (untruncated) list they total 1.0.
    """
    from collections import defaultdict

    from repro.obs import compute_critical_path

    totals = defaultdict(float)
    makespan = 0.0
    for cluster in clusters:
        path = compute_critical_path(cluster)
        makespan += path.makespan
        for row in path.blame():
            totals[(row["category"], row["kind"])] += row["seconds"]
    rows = [
        {
            "category": category,
            "kind": kind,
            "seconds": seconds,
            "share": seconds / makespan if makespan else 0.0,
        }
        for (category, kind), seconds in totals.items()
    ]
    rows.sort(key=lambda r: (-r["seconds"], r["category"], r["kind"]))
    return rows[:top] if top else rows


def snapshot_blame(snapshots, top=None):
    """:func:`figure_blame` over ledger run snapshots instead of live
    clusters -- how parallel or cache-replayed figures report blame
    (the cluster objects ran in another process, or never ran at all).
    """
    from collections import defaultdict

    totals = defaultdict(float)
    makespan = 0.0
    for snapshot in snapshots:
        makespan += snapshot["makespan_s"]
        for row in snapshot["critical_path"]["blame"]:
            totals[(row["category"], row["kind"])] += row["seconds"]
    rows = [
        {
            "category": category,
            "kind": kind,
            "seconds": seconds,
            "share": seconds / makespan if makespan else 0.0,
        }
        for (category, kind), seconds in totals.items()
    ]
    rows.sort(key=lambda r: (-r["seconds"], r["category"], r["kind"]))
    return rows[:top] if top else rows


def _print_blame_rows(rows, title, out):
    display = [
        {
            "category": r["category"],
            "kind": r["kind"],
            "seconds": r["seconds"],
            "share": f"{r['share']:.1%}",
        }
        for r in rows
    ]
    print_table(display, title=title, out=out)


def print_figure_blame(clusters, title="blame (critical path)", top=8,
                       out=print):
    """Annotate a figure with where its simulated time actually went."""
    _print_blame_rows(figure_blame(clusters, top=top), title, out)


def print_snapshot_blame(snapshots, title="blame (critical path)", top=8,
                         out=print):
    """Blame table computed from collected run snapshots."""
    _print_blame_rows(snapshot_blame(snapshots, top=top), title, out)


def pivot(rows, index, column, value="simulated_s"):
    """Pivot long-form rows into a grid: one row per ``index`` value,
    one column per ``column`` value."""
    index_values = sorted({r[index] for r in rows})
    column_values = sorted({r[column] for r in rows}, key=str)
    grid = []
    for iv in index_values:
        row = {index: iv}
        for cv in column_values:
            matches = [
                r for r in rows if r[index] == iv and r[column] == cv
            ]
            if matches:
                row[str(cv)] = matches[0].get(value)
        grid.append(row)
    return grid


def print_series(rows, index, column, value="simulated_s", title=None, out=print):
    """Print a pivoted grid (the shape of the paper's line charts)."""
    grid = pivot(rows, index, column, value=value)
    columns = [index] + sorted({str(r[column]) for r in rows})
    print_table(grid, columns=columns, title=title, out=out)


def speedup_table(rows, base_nodes=16):
    """Figures 10g/10h companion: speedup relative to the smallest
    cluster, per engine."""
    engines = sorted({r["engine"] for r in rows})
    out = []
    for engine in engines:
        engine_rows = sorted(
            (r for r in rows if r["engine"] == engine), key=lambda r: r["nodes"]
        )
        base = next(r for r in engine_rows if r["nodes"] == base_nodes)
        for row in engine_rows:
            out.append(
                {
                    "engine": engine,
                    "nodes": row["nodes"],
                    "speedup": base["simulated_s"] / row["simulated_s"],
                    "ideal": row["nodes"] / base_nodes,
                }
            )
    return out
