"""Op-level record/replay of materialized sub-DAGs.

:class:`MaterializeMemo` is the harness half of the sub-trial
memoization protocol (the lowering half is
``repro.plan.memo.materialize_scope``).  A *window* covers the
execution of one ``materialize`` op's upstream sub-DAG.  While a window
is open, the cluster executor consults it for every task flagged
``memoizable``:

* **record** mode captures, per executed task and in execution order,
  the tuple the live run produced — the task's result value, its
  modeled duration, its (possibly fn-assigned) ``output_bytes``, and
  the deltas the fn/cost closures applied to the network counters and
  the executing node's disk counters.
* **replay** mode substitutes the recorded tuple, skipping the real
  numpy computation and the cost-closure evaluation entirely.

Everything else — scheduling, the virtual clock, memory admission,
transfers, spill charges, spans, task records, and all engine-side
driver state — runs live in both modes, so a replayed run is
byte-identical to a recorded one by construction: the replayed values
and durations are exactly what the deterministic live computation would
have produced for the same content-addressed inputs.

Windows are all-or-nothing: a recorded window is only stored if every
entry serialized cleanly, and a replayed window that diverges from the
live task stream (unexpected task name, exhausted entries) goes *dead*
— remaining tasks run live, which is always correct because recorded
deltas equal live deltas.
"""

import hashlib
import json
import pickle

from repro.harness.cache import code_tree_hash, relevant_constants

#: Bump when the window entry layout or key composition changes.
OP_MEMO_SCHEMA_VERSION = 1

#: Marker distinguishing "fn returned None" from "fn-less task".
_NO_VALUE = b""


def _counters(node, network):
    """Snapshot of every counter a memoizable task may mutate."""
    return (
        network.bytes_node_to_node,
        network.bytes_from_s3,
        network.bytes_broadcast,
        network.transfer_count,
        node.disk.bytes_read,
        node.disk.bytes_written,
    )


class RecordWindow:
    """Captures one window's task stream for later replay."""

    mode = "record"

    __slots__ = ("key", "entries", "ok")

    def __init__(self, key):
        self.key = key
        self.entries = []
        self.ok = True

    def replay(self, task, node, network):
        return None

    def snapshot(self, node, network):
        if not self.ok:
            return None
        return _counters(node, network)

    def record(self, task, value, duration, node, network, before):
        """Append one executed task's outcome; a value that cannot be
        pickled abandons the whole window (all-or-nothing)."""
        if not self.ok or before is None:
            return
        if value is None:
            blob = _NO_VALUE
        else:
            try:
                blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:  # noqa: BLE001 - any unpicklable value
                self.abort()
                return
        after = _counters(node, network)
        deltas = tuple(a - b for a, b in zip(after, before))
        self.entries.append(
            (task.name, blob, float(duration), int(task.output_bytes), deltas)
        )

    def abort(self):
        self.ok = False
        del self.entries[:]


class ReplayWindow:
    """Feeds a recorded task stream back into the executor."""

    mode = "replay"

    __slots__ = ("key", "entries", "_next", "dead")

    def __init__(self, key, entries):
        self.key = key
        self.entries = entries
        self._next = 0
        self.dead = False

    def replay(self, task, node, network):
        """The recorded ``(value, duration)`` for ``task``, applying its
        recorded ``output_bytes`` and counter deltas; ``None`` (run
        live) once the stream diverges or is exhausted."""
        if self.dead:
            return None
        if self._next >= len(self.entries):
            self.dead = True
            return None
        name, blob, duration, output_bytes, deltas = self.entries[self._next]
        if name != task.name:
            self.dead = True
            return None
        self._next += 1
        value = None if blob == _NO_VALUE else pickle.loads(blob)
        task.output_bytes = output_bytes
        network.bytes_node_to_node += deltas[0]
        network.bytes_from_s3 += deltas[1]
        network.bytes_broadcast += deltas[2]
        network.transfer_count += deltas[3]
        node.disk.bytes_read += deltas[4]
        node.disk.bytes_written += deltas[5]
        return value, duration

    def snapshot(self, node, network):
        return None

    def record(self, task, value, duration, node, network, before):
        pass

    def abort(self):
        self.dead = True


class MaterializeMemo:
    """Binds materialize windows to the op tier of a ``TrialCache``."""

    def __init__(self, cache):
        self.cache = cache

    def window_key(self, descriptor, cost_model):
        """Content address of one window: the lowering's descriptor
        (op fingerprint, engine, cluster shape, data identity) composed
        with the engine-relevant cost constants and the code salt."""
        doc = {
            "schema": OP_MEMO_SCHEMA_VERSION,
            "salt": code_tree_hash(),
            "constants": relevant_constants(cost_model, descriptor["engine"]),
            "descriptor": descriptor,
        }
        encoded = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def open_window(self, descriptor, cost_model):
        key = self.window_key(descriptor, cost_model)
        entries = self.cache.get_op(key)
        if entries is not None:
            return ReplayWindow(key, entries)
        return RecordWindow(key)

    def close_window(self, window):
        if window.mode == "record" and window.ok and window.entries:
            self.cache.put_op(window.key, window.entries)
