"""Shared scaffolding for experiments.

Every trial gets a *fresh* simulated cluster (engines are separate
deployments in the paper too), shaped for the engine under test:
Myria/SciDB run multiple single-slot workers/instances per node while
Spark/Dask/TensorFlow multiplex cores within one worker.
"""

from contextlib import contextmanager

from repro.cluster import ClusterSpec, SimulatedCluster
from repro.data import generate_subject, generate_visit
from repro.engines.dask import DaskClient
from repro.engines.myria import MyriaConnection
from repro.engines.scidb import SciDBConnection
from repro.engines.spark import SparkContext
from repro.engines.tensorflow import Session as TfSession

#: Benchmark dataset profiles: real scales small enough that a full
#: sweep finishes in minutes of wall-clock, nominal sizes at paper
#: scale.  Tests use even smaller profiles.
NEURO_BENCH = {"scale": 18, "n_volumes": 72}
ASTRO_BENCH = {"scale": 50, "n_sensors": 20}

#: The paper's default cluster size for all single-size experiments.
DEFAULT_NODES = 16

ENGINE_KINDS = ("spark", "myria", "dask", "scidb", "tensorflow")

#: Callbacks invoked with every cluster built by :func:`make_cluster`
#: while an :func:`observe_clusters` context is active.
_cluster_observers = []

#: Stack of cost models installed by :func:`cost_model_override`.
_cost_model_overrides = []

#: Stack of sub-trial memo objects installed by :func:`materialize_memo`.
_materialize_memos = []


@contextmanager
def materialize_memo(memo):
    """Attach ``memo`` to every cluster built inside the context.

    The trial executor installs a :class:`repro.harness.memo.\
    MaterializeMemo` around each cached trial; lowering backends then
    open record/replay windows on the cluster through
    ``repro.plan.memo.materialize_scope``.
    """
    _materialize_memos.append(memo)
    try:
        yield
    finally:
        _materialize_memos.pop()


@contextmanager
def cost_model_override(cost_model):
    """Make every cluster built inside use ``cost_model``.

    Experiment helpers construct their clusters internally with the
    default model; this hook lets the trial executor (and calibration
    tests) re-run a trial grid under a recalibrated model without
    threading a parameter through every helper.
    """
    _cost_model_overrides.append(cost_model)
    try:
        yield
    finally:
        _cost_model_overrides.pop()


@contextmanager
def observe_clusters(callback):
    """Call ``callback(cluster)`` for every cluster built inside.

    Experiment helpers construct their clusters internally; this hook
    lets observability consumers (the ``trace`` CLI, tests) subscribe
    to those clusters' event buses before any task runs::

        with observe_clusters(lambda c: ClusterMetrics.attach(c)):
            run_neuro_end_to_end("spark", subjects)
    """
    _cluster_observers.append(callback)
    try:
        yield
    finally:
        _cluster_observers.remove(callback)


def make_cluster(n_nodes, kind, workers_per_node=None, cost_model=None):
    """A fresh cluster shaped for one engine kind."""
    if kind in ("myria", "scidb"):
        w = workers_per_node or 4
        spec = ClusterSpec(n_nodes=n_nodes, workers_per_node=w, slots_per_worker=1)
    else:
        spec = ClusterSpec(n_nodes=n_nodes)
    if cost_model is None and _cost_model_overrides:
        cost_model = _cost_model_overrides[-1]
    if cost_model is None:
        cluster = SimulatedCluster(spec)
    else:
        cluster = SimulatedCluster(spec, cost_model=cost_model)
    if _materialize_memos:
        cluster.materialize_memo = _materialize_memos[-1]
    for callback in list(_cluster_observers):
        callback(cluster)
    return cluster


def make_engine(kind, cluster, workers_per_node=None):
    """Instantiate one engine on a cluster built by :func:`make_cluster`."""
    if kind == "spark":
        return SparkContext(cluster)
    if kind == "myria":
        return MyriaConnection(cluster, workers_per_node=workers_per_node or 4)
    if kind == "dask":
        return DaskClient(cluster)
    if kind == "scidb":
        return SciDBConnection(cluster, instances_per_node=workers_per_node or 4)
    if kind == "tensorflow":
        return TfSession(cluster)
    raise ValueError(f"unknown engine kind {kind!r}; expected one of {ENGINE_KINDS}")


def fresh_engine(kind, n_nodes=DEFAULT_NODES, workers_per_node=None,
                 cost_model=None):
    """Cluster + engine in one call; returns ``(cluster, engine)``."""
    cluster = make_cluster(
        n_nodes, kind, workers_per_node=workers_per_node, cost_model=cost_model
    )
    return cluster, make_engine(kind, cluster, workers_per_node=workers_per_node)


def neuro_subjects(n_subjects, scale=None, n_volumes=None):
    """Deterministic synthetic subjects for one trial."""
    scale = scale or NEURO_BENCH["scale"]
    n_volumes = n_volumes or NEURO_BENCH["n_volumes"]
    return [
        generate_subject(f"subj{i:03d}", scale=scale, n_volumes=n_volumes)
        for i in range(n_subjects)
    ]


def astro_visits(n_visits, scale=None, n_sensors=None):
    """Deterministic synthetic visits for one trial."""
    scale = scale or ASTRO_BENCH["scale"]
    n_sensors = n_sensors or ASTRO_BENCH["n_sensors"]
    return [
        generate_visit(v, scale=scale, n_sensors=n_sensors) for v in range(n_visits)
    ]


class Stopwatch:
    """Reads simulated-time deltas off a cluster clock."""

    def __init__(self, cluster):
        self.cluster = cluster
        self._mark = cluster.now

    def lap(self):
        """Simulated seconds since the previous lap."""
        now = self.cluster.now
        elapsed = now - self._mark
        self._mark = now
        return elapsed
