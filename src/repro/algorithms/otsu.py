"""Otsu segmentation (Step 1-N of the neuroscience pipeline).

"Finally, we apply the Otsu segmentation algorithm [27] to the mean
volume to create a mask volume per subject." (Section 3.1.2.)  The
``median_otsu`` wrapper mirrors the Dipy helper the reference
implementation calls (Figure 8, line 11): median-filter passes smooth
the mean volume before thresholding.
"""

import numpy as np

from repro.algorithms.stencil import median_filter_3d


def otsu_threshold(values, nbins=256):
    """Otsu's method: the threshold maximizing inter-class variance.

    Returns a threshold ``t`` such that ``values > t`` is the foreground
    class.  Raises ``ValueError`` for empty or constant input, where no
    threshold separates two classes.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    values = values[np.isfinite(values)]
    if values.size == 0:
        raise ValueError("cannot threshold an empty value set")
    lo, hi = values.min(), values.max()
    if lo == hi:
        raise ValueError("cannot threshold a constant volume")
    if (hi - lo) / nbins == 0.0:
        # The span is too small for float arithmetic to subdivide into
        # bins (subnormal range): every value is numerically identical
        # at histogram precision, so any threshold inside the span
        # separates the classes equally well.  Return the midpoint.
        return float(lo + (hi - lo) / 2.0)

    # Bin the offsets from ``lo`` rather than the raw values: histogram
    # edges then depend only on the data's span, so adding a constant to
    # every intensity shifts the threshold by exactly that constant
    # (bin-edge placement would otherwise drift with the absolute
    # magnitude and break shift equivariance).
    hist, edges = np.histogram(values - lo, bins=nbins, range=(0.0, hi - lo))
    hist = hist.astype(np.float64)
    centers = lo + (edges[:-1] + edges[1:]) / 2.0

    weight_fg = np.cumsum(hist)                    # class 0: <= threshold
    weight_bg = np.cumsum(hist[::-1])[::-1]        # class 1: > threshold
    cum_mean = np.cumsum(hist * centers)
    total_mean = cum_mean[-1]

    # Means of the two classes for every candidate split point.
    with np.errstate(divide="ignore", invalid="ignore"):
        mean_fg = cum_mean / weight_fg
        mean_bg = (total_mean - cum_mean) / np.maximum(weight_bg - hist, 1e-300)
    mean_bg = np.where(weight_bg - hist > 0, mean_bg, 0.0)
    mean_fg = np.where(weight_fg > 0, mean_fg, 0.0)

    # Inter-class variance at each split (exclude the degenerate last bin).
    variance = weight_fg[:-1] * (weight_bg - hist)[:-1] * (
        mean_fg[:-1] - mean_bg[:-1]
    ) ** 2
    best = int(np.argmax(variance))
    return float(centers[best])


def median_otsu(volume, median_radius=2, numpass=1):
    """Smooth with a 3-d median filter, then Otsu-threshold.

    Returns ``(masked_volume, mask)`` like Dipy's ``median_otsu``: the
    boolean brain mask and the mean volume with background zeroed.
    """
    volume = np.asarray(volume, dtype=np.float64)
    if volume.ndim != 3:
        raise ValueError(f"median_otsu expects a 3-d volume, got {volume.shape}")
    smoothed = volume
    for _pass in range(numpass):
        smoothed = median_filter_3d(smoothed, radius=median_radius)
    threshold = otsu_threshold(smoothed)
    mask = smoothed > threshold
    return volume * mask, mask
