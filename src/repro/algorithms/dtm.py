"""Diffusion tensor model fitting (Step 3-N of the neuroscience pipeline).

"We use the diffusion tensor model (DTM) ..., which summarizes the
directional diffusion profile within a voxel as a 3D Gaussian
distribution [3].  Fitting the DTM is done per voxel ... Given the 288
values in a voxel, fitting the model requires estimating a 3x3
variance/covariance matrix (a rank 2 tensor).  The model parameters are
summarized as a scalar for each voxel called Fractional Anisotropy (FA)."
(Section 3.1.2.)

The fit follows the standard log-linear weighted-least-squares scheme of
Basser et al.: an ordinary least-squares pass on log-signals, then one
reweighted pass using the predicted signals as weights.
"""

import numpy as np

#: b-values at or below this are treated as non-diffusion-weighted (b0).
B0_THRESHOLD = 50.0

#: Floor applied to signals before taking logarithms.
MIN_SIGNAL = 1e-6


class GradientTable:
    """Acquisition metadata: b-values and unit gradient directions.

    ``b0s_mask`` selects the volumes "in which no diffusion weighting
    was applied ... used for calibration" (Section 3.1.1) -- the same
    attribute name SciDB-py code in Figure 5 uses (``gtab.b0s_mask``).
    """

    def __init__(self, bvals, bvecs):
        bvals = np.asarray(bvals, dtype=np.float64)
        bvecs = np.asarray(bvecs, dtype=np.float64)
        if bvals.ndim != 1:
            raise ValueError(f"bvals must be 1-d, got shape {bvals.shape}")
        if bvecs.shape != (bvals.size, 3):
            raise ValueError(
                f"bvecs must be ({bvals.size}, 3), got {bvecs.shape}"
            )
        if np.any(bvals < 0):
            raise ValueError("b-values cannot be negative")
        norms = np.linalg.norm(bvecs, axis=1)
        weighted = bvals > B0_THRESHOLD
        bad = weighted & (np.abs(norms - 1.0) > 1e-3)
        if np.any(bad):
            raise ValueError(
                f"{int(bad.sum())} diffusion-weighted bvecs are not unit length"
            )
        self.bvals = bvals
        self.bvecs = bvecs

    @property
    def b0s_mask(self):
        """Boolean mask of the non-diffusion-weighted volumes."""
        return self.bvals <= B0_THRESHOLD

    def __len__(self):
        return self.bvals.size

    def __repr__(self):
        return (
            f"GradientTable(n={len(self)},"
            f" n_b0={int(self.b0s_mask.sum())})"
        )


def design_matrix(gtab):
    """The (n, 7) log-linear DTM design matrix.

    Columns: ``[Dxx, Dyy, Dzz, Dxy, Dxz, Dyz, log(S0)]`` coefficients,
    i.e. ``log S_i = -b_i (g g^T : D) + log S0``.
    """
    b = gtab.bvals
    g = gtab.bvecs
    design = np.empty((len(gtab), 7), dtype=np.float64)
    design[:, 0] = -b * g[:, 0] * g[:, 0]
    design[:, 1] = -b * g[:, 1] * g[:, 1]
    design[:, 2] = -b * g[:, 2] * g[:, 2]
    design[:, 3] = -2.0 * b * g[:, 0] * g[:, 1]
    design[:, 4] = -2.0 * b * g[:, 0] * g[:, 2]
    design[:, 5] = -2.0 * b * g[:, 1] * g[:, 2]
    design[:, 6] = 1.0
    return design


def fit_dtm(data, gtab, mask=None):
    """Fit the diffusion tensor per voxel; returns eigenvalues.

    Parameters
    ----------
    data:
        4-d array ``(x, y, z, n_volumes)`` of signals.
    gtab:
        :class:`GradientTable` describing the ``n_volumes`` axis.
    mask:
        Optional 3-d boolean mask; voxels outside get zero eigenvalues.

    Returns
    -------
    evals:
        ``(x, y, z, 3)`` array of tensor eigenvalues, descending.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 4:
        raise ValueError(f"data must be 4-d, got shape {data.shape}")
    if data.shape[-1] != len(gtab):
        raise ValueError(
            f"data has {data.shape[-1]} volumes but gradient table has {len(gtab)}"
        )
    spatial = data.shape[:3]
    if mask is None:
        mask = np.ones(spatial, dtype=bool)
    else:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != spatial:
            raise ValueError(
                f"mask shape {mask.shape} does not match data {spatial}"
            )

    signals = data[mask]                       # (v, n)
    evals = np.zeros(spatial + (3,), dtype=np.float64)
    if signals.size == 0:
        return evals

    tensors = _wls_tensors(signals, gtab)      # (v, 6)
    evals[mask] = tensor_eigenvalues(tensors)
    return evals


def _wls_tensors(signals, gtab):
    """Batched WLS fit: returns (v, 6) tensor elements."""
    design = design_matrix(gtab)               # (n, 7)
    log_s = np.log(np.maximum(signals, MIN_SIGNAL))  # (v, n)

    # OLS initialization.
    pinv = np.linalg.pinv(design)              # (7, n)
    beta = log_s @ pinv.T                      # (v, 7)

    # One reweighted pass: weights are the squared predicted signals.
    predicted = np.exp(beta @ design.T)        # (v, n)
    w2 = predicted ** 2
    # Solve (X^T W X) beta = X^T W y per voxel, batched.
    xtwx = np.einsum("vn,ni,nj->vij", w2, design, design)
    xtwy = np.einsum("vn,ni,vn->vi", w2, design, log_s)
    try:
        beta = np.linalg.solve(xtwx, xtwy[..., None])[..., 0]
    except np.linalg.LinAlgError:
        # Singular weighting (e.g. all-zero voxels): keep the OLS fit.
        pass
    return beta[:, :6]


def tensor_eigenvalues(tensor_elements):
    """Eigenvalues (descending) of symmetric tensors given as
    ``[Dxx, Dyy, Dzz, Dxy, Dxz, Dyz]`` rows."""
    elements = np.atleast_2d(np.asarray(tensor_elements, dtype=np.float64))
    v = elements.shape[0]
    matrices = np.empty((v, 3, 3), dtype=np.float64)
    matrices[:, 0, 0] = elements[:, 0]
    matrices[:, 1, 1] = elements[:, 1]
    matrices[:, 2, 2] = elements[:, 2]
    matrices[:, 0, 1] = matrices[:, 1, 0] = elements[:, 3]
    matrices[:, 0, 2] = matrices[:, 2, 0] = elements[:, 4]
    matrices[:, 1, 2] = matrices[:, 2, 1] = elements[:, 5]
    evals = np.linalg.eigvalsh(matrices)       # ascending
    return evals[:, ::-1]


def fractional_anisotropy(evals):
    """FA, "a scalar for each voxel ... that quantifies diffusivity
    differences across different directions" (Section 3.1.2).

    Accepts ``(..., 3)`` eigenvalue arrays; returns ``(...)`` FA in
    [0, 1], zero where all eigenvalues vanish.
    """
    evals = np.asarray(evals, dtype=np.float64)
    if evals.shape[-1] != 3:
        raise ValueError(f"expected trailing axis of 3 eigenvalues, got {evals.shape}")
    l1, l2, l3 = evals[..., 0], evals[..., 1], evals[..., 2]
    denom = l1 * l1 + l2 * l2 + l3 * l3
    numer = (l1 - l2) ** 2 + (l2 - l3) ** 2 + (l1 - l3) ** 2
    fa = np.zeros(evals.shape[:-1], dtype=np.float64)
    nz = denom > 0
    fa[nz] = np.sqrt(0.5 * numer[nz] / denom[nz])
    return np.clip(fa, 0.0, 1.0)
