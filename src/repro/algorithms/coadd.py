"""Sigma-clipped co-addition (Step 3-A, astronomy).

"Step 3-A groups the exposures associated with the same patch across
different visits and stacks them by summing up the pixel (or flux)
values. ... Before summing up the pixel values, this step performs
iterative outlier removal by computing the mean flux value for each
pixel and setting any pixel that is three standard deviations away from
the mean to null.  Our reference implementation performs two such
cleaning iterations." (Section 3.2.2.)

NaN marks both "no coverage" (patch pixels outside an exposure's
footprint) and "nulled outlier".
"""

import numpy as np


def sigma_clip_stack(stack, n_sigma=3.0, n_iter=2):
    """Null per-pixel outliers across the visit axis.

    ``stack`` has shape ``(n_visits, h, w)``; returns a copy with
    outliers (more than ``n_sigma`` standard deviations from the
    per-pixel mean) replaced by NaN, after ``n_iter`` cleaning passes.
    """
    stack = np.array(stack, dtype=np.float64)
    if stack.ndim != 3:
        raise ValueError(f"stack must be (visits, h, w), got {stack.shape}")
    if n_sigma <= 0:
        raise ValueError(f"n_sigma must be positive, got {n_sigma}")
    import warnings

    for _iteration in range(n_iter):
        with np.errstate(invalid="ignore"), warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            mean = np.nanmean(stack, axis=0)
            std = np.nanstd(stack, axis=0)
            deviation = np.abs(stack - mean)
            outliers = deviation > n_sigma * std
        outliers &= std > 0
        if not outliers.any():
            break
        stack[outliers] = np.nan
    return stack


def coadd_stack(stack, n_sigma=3.0, n_iter=2):
    """Full co-addition: clip outliers, then sum surviving pixels.

    Pixels with no surviving contribution co-add to zero.  Also returns
    the per-pixel contribution count, useful for weighting and tests.
    """
    clipped = sigma_clip_stack(stack, n_sigma=n_sigma, n_iter=n_iter)
    counts = np.sum(~np.isnan(clipped), axis=0)
    coadd = np.nansum(clipped, axis=0)
    return coadd, counts
