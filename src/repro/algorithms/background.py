"""Background estimation and subtraction (Step 1-A, astronomy).

"We pre-process each input exposure with background estimation and
subtraction ..." (Section 3.2.2).  The estimator is the standard
mesh-based approach used by astronomy pipelines: sigma-clipped medians
on a coarse grid of boxes, bilinearly interpolated back to full
resolution.
"""

import numpy as np


def _sigma_clipped_median(values, n_sigma=3.0, n_iter=3):
    """Median after iteratively rejecting outliers beyond n_sigma."""
    values = np.asarray(values, dtype=np.float64).ravel()
    values = values[np.isfinite(values)]
    if values.size == 0:
        return 0.0
    for _iteration in range(n_iter):
        median = np.median(values)
        std = values.std()
        if std == 0:
            break
        keep = np.abs(values - median) <= n_sigma * std
        if keep.all():
            break
        values = values[keep]
        if values.size == 0:
            return float(median)
    return float(np.median(values))


def estimate_background(image, box_size=64, n_sigma=3.0):
    """Estimate a smooth background surface for a 2-d image.

    The image is tiled into ``box_size`` squares; each box contributes a
    sigma-clipped median; box values are bilinearly interpolated to full
    resolution.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-d image, got shape {image.shape}")
    if box_size <= 0:
        raise ValueError(f"box_size must be positive, got {box_size}")
    ny, nx = image.shape
    grid_y = max(1, int(np.ceil(ny / box_size)))
    grid_x = max(1, int(np.ceil(nx / box_size)))

    mesh = np.zeros((grid_y, grid_x), dtype=np.float64)
    centers_y = np.zeros(grid_y)
    centers_x = np.zeros(grid_x)
    for gy in range(grid_y):
        y0, y1 = gy * box_size, min((gy + 1) * box_size, ny)
        centers_y[gy] = (y0 + y1 - 1) / 2.0
        for gx in range(grid_x):
            x0, x1 = gx * box_size, min((gx + 1) * box_size, nx)
            if gy == 0:
                centers_x[gx] = (x0 + x1 - 1) / 2.0
            mesh[gy, gx] = _sigma_clipped_median(
                image[y0:y1, x0:x1], n_sigma=n_sigma
            )

    return _bilinear_upsample(mesh, centers_y, centers_x, ny, nx)


def _bilinear_upsample(mesh, centers_y, centers_x, ny, nx):
    """Interpolate grid values at box centers onto the full pixel grid."""
    ys = np.arange(ny, dtype=np.float64)
    xs = np.arange(nx, dtype=np.float64)
    gy = np.interp(ys, centers_y, np.arange(len(centers_y), dtype=np.float64))
    gx = np.interp(xs, centers_x, np.arange(len(centers_x), dtype=np.float64))
    y0 = np.clip(np.floor(gy).astype(int), 0, mesh.shape[0] - 1)
    x0 = np.clip(np.floor(gx).astype(int), 0, mesh.shape[1] - 1)
    y1 = np.minimum(y0 + 1, mesh.shape[0] - 1)
    x1 = np.minimum(x0 + 1, mesh.shape[1] - 1)
    wy = (gy - y0)[:, None]
    wx = (gx - x0)[None, :]
    top = mesh[np.ix_(y0, x0)] * (1 - wx) + mesh[np.ix_(y0, x1)] * wx
    bottom = mesh[np.ix_(y1, x0)] * (1 - wx) + mesh[np.ix_(y1, x1)] * wx
    return top * (1 - wy) + bottom * wy


def subtract_background(image, box_size=64, n_sigma=3.0):
    """Return ``(image - background, background)``."""
    background = estimate_background(image, box_size=box_size, n_sigma=n_sigma)
    return image - background, background
