"""Sky patch geometry (Step 2-A, astronomy).

"The analysis partitions the sky into rectangular regions called
patches.  Step 2-A maps each calibrated exposure to the patches that it
overlaps.  Each exposure can be part of 1 to 6 patches, leading to a
logical flatmap operation ..." (Section 3.2.2).

The sky is modeled as a global integer pixel grid (a flat WCS, adequate
for the small dithers between visits of the same field).  Exposures and
patches are axis-aligned boxes on that grid.
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SkyBox:
    """Half-open axis-aligned box on the global sky pixel grid."""

    y0: int
    x0: int
    height: int
    width: int

    def __post_init__(self):
        if self.height <= 0 or self.width <= 0:
            raise ValueError(
                f"box must have positive extent, got {self.height}x{self.width}"
            )

    @property
    def y1(self):
        """Exclusive lower row bound (y0 + height)."""
        return self.y0 + self.height

    @property
    def x1(self):
        """Exclusive right column bound (x0 + width)."""
        return self.x0 + self.width

    def intersect(self, other):
        """Intersection box, or ``None`` when disjoint."""
        y0 = max(self.y0, other.y0)
        x0 = max(self.x0, other.x0)
        y1 = min(self.y1, other.y1)
        x1 = min(self.x1, other.x1)
        if y1 <= y0 or x1 <= x0:
            return None
        return SkyBox(y0, x0, y1 - y0, x1 - x0)

    def area(self):
        """Box area in pixels."""
        return self.height * self.width

    def contains(self, y, x):
        """Whether the point lies inside the box."""
        return self.y0 <= y < self.y1 and self.x0 <= x < self.x1


class PatchGrid:
    """A fixed tiling of the sky into rectangular patches.

    Patch ``(py, px)`` covers rows ``[py * patch_height, ...)`` and
    columns ``[px * patch_width, ...)``.
    """

    def __init__(self, patch_height, patch_width):
        if patch_height <= 0 or patch_width <= 0:
            raise ValueError("patch dimensions must be positive")
        self.patch_height = int(patch_height)
        self.patch_width = int(patch_width)

    def patch_box(self, patch_id):
        """Sky box covered by the given patch id."""
        py, px = patch_id
        return SkyBox(
            py * self.patch_height,
            px * self.patch_width,
            self.patch_height,
            self.patch_width,
        )

    def overlapping_patches(self, box):
        """Patch ids intersecting ``box`` (the Step 2-A flatmap fan-out)."""
        py0 = box.y0 // self.patch_height
        py1 = (box.y1 - 1) // self.patch_height
        px0 = box.x0 // self.patch_width
        px1 = (box.x1 - 1) // self.patch_width
        return [
            (py, px)
            for py in range(py0, py1 + 1)
            for px in range(px0, px1 + 1)
        ]

    def extract_overlap(self, pixels, exposure_box, patch_id):
        """Pixels of one exposure that fall inside one patch.

        Returns a patch-sized array filled with NaN outside the overlap
        region -- the "new exposure object for each patch" of Step 2-A.
        ``pixels`` may be 2-d or have leading planes (e.g. flux /
        variance stacks of shape ``(planes, h, w)``).
        """
        pixels = np.asarray(pixels, dtype=np.float64)
        spatial = pixels.shape[-2:]
        if spatial != (exposure_box.height, exposure_box.width):
            raise ValueError(
                f"pixel array {spatial} does not match exposure box"
                f" {(exposure_box.height, exposure_box.width)}"
            )
        patch_box = self.patch_box(patch_id)
        overlap = exposure_box.intersect(patch_box)
        if overlap is None:
            raise ValueError(
                f"exposure {exposure_box} does not overlap patch {patch_id}"
            )
        out_shape = pixels.shape[:-2] + (patch_box.height, patch_box.width)
        out = np.full(out_shape, np.nan, dtype=np.float64)
        src = (
            ...,
            slice(overlap.y0 - exposure_box.y0, overlap.y1 - exposure_box.y0),
            slice(overlap.x0 - exposure_box.x0, overlap.x1 - exposure_box.x0),
        )
        dst = (
            ...,
            slice(overlap.y0 - patch_box.y0, overlap.y1 - patch_box.y0),
            slice(overlap.x0 - patch_box.x0, overlap.x1 - patch_box.x0),
        )
        out[dst] = pixels[src]
        return out
