"""Stencil (multidimensional sliding-window) primitives.

The paper highlights stencil operations as one of the core data
processing patterns of image analytics (Section 1: "Data processing
involves ... stencil (a.k.a. multidimensional window) operations").
These helpers back the median-Otsu mask, non-local means, background
estimation and cosmic-ray repair.
"""

import numpy as np


def _pad_reflect(volume, radius):
    """Reflect-pad every axis by ``radius`` (edge-safe windows)."""
    pad = [(radius, radius)] * volume.ndim
    return np.pad(volume, pad, mode="reflect")


def sliding_windows(volume, radius):
    """View of all cubic windows of half-width ``radius``.

    Returns an array of shape ``volume.shape + (w, w, ...)`` with
    ``w = 2 * radius + 1``, built on a reflect-padded copy so border
    voxels get full windows.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    padded = _pad_reflect(np.asarray(volume), radius)
    width = 2 * radius + 1
    window_shape = (width,) * volume.ndim
    return np.lib.stride_tricks.sliding_window_view(padded, window_shape)


def median_filter_3d(volume, radius=1):
    """Median filter over cubic windows of half-width ``radius``."""
    volume = np.asarray(volume)
    if volume.ndim != 3:
        raise ValueError(f"expected a 3-d volume, got shape {volume.shape}")
    if radius == 0:
        return volume.copy()
    windows = sliding_windows(volume, radius)
    flat = windows.reshape(volume.shape + (-1,))
    return np.median(flat, axis=-1).astype(volume.dtype, copy=False)


def median_filter_2d(image, radius=1):
    """Median filter over square windows of half-width ``radius``."""
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-d image, got shape {image.shape}")
    if radius == 0:
        return image.copy()
    windows = sliding_windows(image, radius)
    flat = windows.reshape(image.shape + (-1,))
    return np.median(flat, axis=-1).astype(image.dtype, copy=False)


def uniform_filter_2d(image, radius=1):
    """Box (mean) filter over square windows of half-width ``radius``."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-d image, got shape {image.shape}")
    if radius == 0:
        return image.copy()
    windows = sliding_windows(image, radius)
    flat = windows.reshape(image.shape + (-1,))
    return flat.mean(axis=-1)


def convolve3d(volume, kernel):
    """Direct 3-d convolution with reflect padding (odd-sized kernels).

    This is the operation the paper notes is missing from SciDB
    ("lacks critical functions including high-dimensional convolutions",
    Section 4.1) and that the TensorFlow implementation rewrites the
    denoising step with (Section 4.5).
    """
    volume = np.asarray(volume, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    if volume.ndim != 3 or kernel.ndim != 3:
        raise ValueError("convolve3d expects 3-d volume and kernel")
    if any(k % 2 == 0 for k in kernel.shape):
        raise ValueError(f"kernel dimensions must be odd, got {kernel.shape}")
    radii = tuple(k // 2 for k in kernel.shape)
    padded = np.pad(
        volume, [(r, r) for r in radii], mode="reflect"
    )
    windows = np.lib.stride_tricks.sliding_window_view(padded, kernel.shape)
    # Convolution flips the kernel; correlation would not.
    flipped = kernel[::-1, ::-1, ::-1]
    return np.einsum("xyzijk,ijk->xyz", windows, flipped)


def local_mean_and_std(image, radius):
    """Windowed mean and standard deviation for a 2-d image."""
    image = np.asarray(image, dtype=np.float64)
    mean = uniform_filter_2d(image, radius)
    mean_sq = uniform_filter_2d(image * image, radius)
    var = np.maximum(mean_sq - mean * mean, 0.0)
    return mean, np.sqrt(var)
