"""Reference scientific algorithms used by both pipelines.

These play the role of the paper's "reference implementation written in
Python" (Dipy for neuroscience, the LSST stack for astronomy): plain
NumPy functions that the engines invoke as user-defined code.  Every
algorithm is implemented from scratch here; no external scientific
packages are required.
"""

from repro.algorithms.background import estimate_background, subtract_background
from repro.algorithms.coadd import coadd_stack, sigma_clip_stack
from repro.algorithms.cosmicray import detect_cosmic_rays, repair_cosmic_rays
from repro.algorithms.dtm import (
    GradientTable,
    design_matrix,
    fit_dtm,
    fractional_anisotropy,
    tensor_eigenvalues,
)
from repro.algorithms.nlmeans import nlmeans_3d
from repro.algorithms.otsu import median_otsu, otsu_threshold
from repro.algorithms.patches import PatchGrid, SkyBox
from repro.algorithms.sources import Source, detect_sources, label_regions
from repro.algorithms.stencil import (
    convolve3d,
    median_filter_3d,
    uniform_filter_2d,
)

__all__ = [
    "GradientTable",
    "PatchGrid",
    "SkyBox",
    "Source",
    "coadd_stack",
    "convolve3d",
    "design_matrix",
    "detect_cosmic_rays",
    "detect_sources",
    "estimate_background",
    "fit_dtm",
    "fractional_anisotropy",
    "label_regions",
    "median_filter_3d",
    "median_otsu",
    "nlmeans_3d",
    "otsu_threshold",
    "repair_cosmic_rays",
    "sigma_clip_stack",
    "subtract_background",
    "tensor_eigenvalues",
    "uniform_filter_2d",
]
