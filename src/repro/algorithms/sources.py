"""Source detection (Step 4-A, astronomy).

"Finally, Step 4-A detects sources visible in each Coadd ... by
estimating the background and detecting all pixel clusters with flux
values above a given threshold." (Section 3.2.2.)

Connected-component labeling is implemented from scratch (two-pass
union-find with 8-connectivity).
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Source:
    """One detected pixel cluster."""

    label: int
    centroid_y: float
    centroid_x: float
    flux: float
    peak: float
    n_pixels: int


class _UnionFind:
    """Disjoint sets over dense integer labels."""

    def __init__(self):
        self.parent = [0]

    def make(self):
        """Create a new singleton set; returns its label."""
        label = len(self.parent)
        self.parent.append(label)
        return label

    def find(self, label):
        """Root label of the set containing ``label``."""
        root = label
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[label] != root:  # path compression
            self.parent[label], label = root, self.parent[label]
        return root

    def union(self, a, b):
        """Merge the two sets (smaller root wins)."""
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def label_regions(mask, connectivity=8):
    """Label connected True regions; returns ``(labels, n_regions)``.

    ``labels`` is an int array where background pixels are 0 and each
    connected region gets a dense id starting at 1.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError(f"expected a 2-d mask, got shape {mask.shape}")
    if connectivity not in (4, 8):
        raise ValueError(f"connectivity must be 4 or 8, got {connectivity}")

    ny, nx = mask.shape
    labels = np.zeros((ny, nx), dtype=np.int64)
    uf = _UnionFind()

    # Pass 1: provisional labels, merging via earlier neighbors.
    for y in range(ny):
        row_mask = mask[y]
        for x in np.nonzero(row_mask)[0]:
            neighbors = []
            if x > 0 and labels[y, x - 1]:
                neighbors.append(labels[y, x - 1])
            if y > 0:
                if labels[y - 1, x]:
                    neighbors.append(labels[y - 1, x])
                if connectivity == 8:
                    if x > 0 and labels[y - 1, x - 1]:
                        neighbors.append(labels[y - 1, x - 1])
                    if x + 1 < nx and labels[y - 1, x + 1]:
                        neighbors.append(labels[y - 1, x + 1])
            if not neighbors:
                labels[y, x] = uf.make()
            else:
                smallest = min(uf.find(n) for n in neighbors)
                labels[y, x] = smallest
                for n in neighbors:
                    uf.union(smallest, n)

    # Pass 2: resolve to dense final labels.
    remap = {}
    next_label = 1
    flat = labels.ravel()
    roots = np.array([uf.find(v) if v else 0 for v in flat], dtype=np.int64)
    for root in roots:
        if root and root not in remap:
            remap[root] = next_label
            next_label += 1
    final = np.array([remap[r] if r else 0 for r in roots], dtype=np.int64)
    return final.reshape(ny, nx), next_label - 1


def detect_sources(image, n_sigma=5.0, npix_min=3, connectivity=8):
    """Detect sources above a background-relative threshold.

    Background statistics use a sigma-clipped global estimate; the
    detection threshold is ``median + n_sigma * std``.  Returns a list
    of :class:`Source`, brightest (by flux) first.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-d image, got shape {image.shape}")

    values = image[np.isfinite(image)]
    if values.size == 0:
        return []
    clipped = values
    for _iteration in range(3):
        median = np.median(clipped)
        std = clipped.std()
        if std == 0:
            break
        keep = np.abs(clipped - median) <= 3.0 * std
        if keep.all():
            break
        clipped = clipped[keep]
    median = np.median(clipped)
    std = clipped.std()
    threshold = median + n_sigma * std

    mask = np.nan_to_num(image, nan=-np.inf) > threshold
    labels, n_regions = label_regions(mask, connectivity=connectivity)
    sources = []
    for label in range(1, n_regions + 1):
        ys, xs = np.nonzero(labels == label)
        if ys.size < npix_min:
            continue
        fluxes = image[ys, xs] - median
        total = float(fluxes.sum())
        weight = np.maximum(fluxes, 1e-12)
        sources.append(
            Source(
                label=label,
                centroid_y=float(np.average(ys, weights=weight)),
                centroid_x=float(np.average(xs, weights=weight)),
                flux=total,
                peak=float(image[ys, xs].max()),
                n_pixels=int(ys.size),
            )
        )
    sources.sort(key=lambda s: -s.flux)
    return sources
