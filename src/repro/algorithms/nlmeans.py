"""Non-local means denoising (Step 2-N of the neuroscience pipeline).

"Denoising operates on a 3D sliding window of voxels using the
non-local means algorithm [7], where we use the mask from Step 1-N to
denoise only parts of the image volume containing the brain."
(Section 3.1.2.)

The implementation follows Coupe et al.'s blockwise scheme in its
simplest per-voxel form: for every masked voxel, candidate patches
within a search window are weighted by Gaussian-kernelized patch
distance and averaged.  It is vectorized over search offsets so that the
scaled-down test volumes denoise in milliseconds.
"""

import numpy as np


def nlmeans_3d(volume, sigma, mask=None, patch_radius=1, block_radius=2):
    """Denoise a 3-d volume with non-local means.

    Parameters
    ----------
    volume:
        3-d array of intensities.
    sigma:
        Noise standard deviation; controls the smoothing strength
        ``h = sqrt(2) * sigma`` per the classic formulation.
    mask:
        Optional boolean array; voxels outside the mask are passed
        through unchanged (and are still usable as patch content).
        This is exactly the masked evaluation TensorFlow could not
        express (Section 4.5: "without filtering with the mask as
        TensorFlow does not support element-wise data assignment").
    patch_radius:
        Half-width of the similarity patch.
    block_radius:
        Half-width of the search window around each voxel.
    """
    volume = np.asarray(volume, dtype=np.float64)
    if volume.ndim != 3:
        raise ValueError(f"nlmeans_3d expects a 3-d volume, got {volume.shape}")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != volume.shape:
            raise ValueError(
                f"mask shape {mask.shape} does not match volume {volume.shape}"
            )

    pr, br = int(patch_radius), int(block_radius)
    pad = pr + br
    padded = np.pad(volume, pad, mode="reflect")

    h2 = 2.0 * (np.sqrt(2.0) * sigma) ** 2
    patch_size = (2 * pr + 1) ** 3

    weights_sum = np.zeros_like(volume)
    values_sum = np.zeros_like(volume)

    shape = volume.shape

    # For each search offset, compute per-voxel patch distances using a
    # box sum over the shifted squared-difference volume (the standard
    # O(offsets) NLM decomposition).
    center = padded[
        pad - pr: pad + pr + shape[0],
        pad - pr: pad + pr + shape[1],
        pad - pr: pad + pr + shape[2],
    ]
    for dz in range(-br, br + 1):
        for dy in range(-br, br + 1):
            for dx in range(-br, br + 1):
                shifted = padded[
                    pad + dz - pr: pad + dz + pr + shape[0],
                    pad + dy - pr: pad + dy + pr + shape[1],
                    pad + dx - pr: pad + dx + pr + shape[2],
                ]
                sq_diff = (shifted - center) ** 2
                dist = _box_sum_3d(sq_diff, 2 * pr + 1)
                weight = np.exp(-dist / (h2 * patch_size))
                neighbor = padded[
                    pad + dz: pad + dz + shape[0],
                    pad + dy: pad + dy + shape[1],
                    pad + dx: pad + dx + shape[2],
                ]
                weights_sum += weight
                values_sum += weight * neighbor

    denoised = values_sum / weights_sum
    if mask is not None:
        denoised = np.where(mask, denoised, volume)
    return denoised


def _box_sum_3d(volume, width):
    """Sum over all cubic windows of edge ``width`` (valid mode).

    Input of shape ``(a, b, c)`` produces output of shape
    ``(a - width + 1, ...)`` via separable cumulative sums.
    """
    out = volume
    for axis in range(3):
        cumsum = np.cumsum(out, axis=axis)
        zero_shape = list(cumsum.shape)
        zero_shape[axis] = 1
        padded = np.concatenate([np.zeros(zero_shape), cumsum], axis=axis)
        upper = np.take(padded, range(width, padded.shape[axis]), axis=axis)
        lower = np.take(padded, range(0, padded.shape[axis] - width), axis=axis)
        out = upper - lower
    return out
