"""Cosmic-ray detection and repair (Step 1-A, astronomy).

"... detection and repair of cosmetic defects and cosmic rays ..."
(Section 3.2.2).  Cosmic rays hit single pixels or short streaks with
fluxes far above their surroundings and, unlike stars, are not smeared
by the point-spread function.  The detector flags pixels that exceed
the local median by many noise standard deviations; repair replaces
them with the local median, mirroring the morphological approach of
LA-Cosmic-style algorithms in simplified form.
"""

import numpy as np

from repro.algorithms.stencil import median_filter_2d


def detect_cosmic_rays(image, variance=None, n_sigma=6.0, radius=2,
                       objlim=3.0):
    """Boolean mask of cosmic-ray pixels.

    ``variance`` is the per-pixel noise variance plane (FITS files in
    the use case carry one); when absent a global robust estimate is
    used.  ``objlim`` is the LA-Cosmic-style fine-structure guard: a
    candidate must be at least ``objlim`` times sharper than the local
    fine structure, which protects PSF-wide star cores from being
    flagged while still catching un-smeared cosmic-ray hits.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-d image, got shape {image.shape}")
    local_median = median_filter_2d(image, radius=radius)
    residual = image - local_median
    if variance is not None:
        variance = np.asarray(variance, dtype=np.float64)
        if variance.shape != image.shape:
            raise ValueError(
                f"variance shape {variance.shape} does not match image {image.shape}"
            )
        noise = np.sqrt(np.maximum(variance, 1e-12))
    else:
        # Robust global noise: 1.4826 * median absolute deviation.
        mad = np.median(np.abs(residual - np.median(residual)))
        noise = np.maximum(1.4826 * mad, 1e-12)
    sharp = residual > n_sigma * noise

    # Fine-structure image: how much smooth (PSF-scale) structure
    # surrounds each pixel.  Stars have large fine structure; isolated
    # cosmic rays do not.
    smooth3 = median_filter_2d(image, radius=1)
    fine = smooth3 - median_filter_2d(smooth3, radius=3)
    with np.errstate(divide="ignore", invalid="ignore"):
        contrast = residual / np.maximum(fine, noise)
    return sharp & (contrast > objlim)


def repair_cosmic_rays(image, cr_mask, radius=2):
    """Replace flagged pixels with the local median of their window."""
    image = np.asarray(image, dtype=np.float64)
    cr_mask = np.asarray(cr_mask, dtype=bool)
    if cr_mask.shape != image.shape:
        raise ValueError(
            f"mask shape {cr_mask.shape} does not match image {image.shape}"
        )
    if not cr_mask.any():
        return image.copy()
    local_median = median_filter_2d(image, radius=radius)
    repaired = image.copy()
    repaired[cr_mask] = local_median[cr_mask]
    return repaired
