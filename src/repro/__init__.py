"""Reproduction of Mehta et al., "Comparative Evaluation of Big-Data
Systems on Scientific Image Analytics Workloads" (VLDB 2017).

The package provides:

- :mod:`repro.cluster` -- a discrete-event simulated cluster substrate
  standing in for the paper's AWS testbed (r3.2xlarge nodes).
- :mod:`repro.formats` -- from-scratch NIfTI-1 and FITS codecs plus the
  auxiliary staging formats (pickled NumPy, CSV/TSV) used by ingest.
- :mod:`repro.data` -- synthetic dataset generators for the neuroscience
  (Human Connectome Project stand-in) and astronomy (HiTS stand-in)
  workloads.
- :mod:`repro.algorithms` -- the scientific reference algorithms (Otsu
  segmentation, non-local means, diffusion tensor fitting, background
  estimation, cosmic-ray repair, patch geometry, sigma-clipped
  co-addition, source detection).
- :mod:`repro.engines` -- five from-scratch mini big-data systems:
  miniSpark, miniMyria, miniSciDB, miniDask, and miniTensorFlow.
- :mod:`repro.pipelines` -- the two end-to-end use cases implemented on
  each engine, mirroring Sections 3 and 4 of the paper.
- :mod:`repro.harness` -- experiment definitions and report printers for
  every table and figure in the paper's evaluation (Section 5).
"""

__version__ = "1.0.0"

__all__ = [
    "algorithms",
    "cluster",
    "data",
    "engines",
    "formats",
    "harness",
    "pipelines",
]
