"""Shared pipeline helpers: cost factories, voxel blocks, staging.

The engines cannot see inside user Python functions, so every UDF that
the pipelines register carries an explicit cost function expressed over
*nominal* data sizes (see :mod:`repro.cluster.costs` for the calibrated
constants).  The helpers here build those costed UDFs consistently so
all engines price identical work identically -- the precondition for
the paper's observation that Dask/Myria/Spark "execute the same Python
code on similarly partitioned data" (Section 5.1).
"""

import numpy as np

from repro.formats.sizing import SizedArray


def masked_fraction(mask):
    """Fraction of voxels inside a boolean mask (>= a small floor so
    costs never vanish)."""
    mask = np.asarray(mask)
    if mask.size == 0:
        return 1.0
    return max(float(mask.mean()), 0.01)


# ----------------------------------------------------------------------
# Neuroscience UDF costs
# ----------------------------------------------------------------------

def denoise_cost(cost_model, mask_fraction):
    """Cost of non-local-means denoising one masked volume."""
    def cost(volume, *rest):
        return volume.nominal_elements * mask_fraction * cost_model.nlmeans_per_voxel
    return cost


def denoise_cost_unmasked(cost_model):
    """TensorFlow variant: no masking, every voxel is processed
    (Section 4.5)."""
    def cost(volume, *rest):
        return volume.nominal_elements * cost_model.nlmeans_per_voxel
    return cost


def mean_volume_cost(cost_model):
    """Mean volume cost."""
    def cost(*volumes):
        total = sum(getattr(v, "nominal_elements", np.asarray(v).size) for v in volumes)
        return total * cost_model.elementwise_per_element
    return cost


def otsu_cost(cost_model):
    """Otsu cost."""
    def cost(volume, *rest):
        elements = getattr(volume, "nominal_elements", np.asarray(volume).size)
        # Median-filter passes plus the histogram threshold.
        return elements * (cost_model.otsu_per_voxel + 27 * cost_model.elementwise_per_element)
    return cost


def repart_cost(cost_model):
    """Flatmap of a volume into voxel blocks: one memory copy."""
    def cost(volume, *rest):
        return volume.nominal_bytes * cost_model.memcpy_per_byte
    return cost


def fit_cost(cost_model, mask_fraction):
    """Cost of fitting the DTM over one voxel block's volume series.

    Priced per voxel-sample: a stacked block of V voxels x S samples
    costs ``V * S * dtm_fit_per_voxel_sample`` (times mask fraction).
    """
    def cost(stacked, *rest):
        if isinstance(stacked, (list, tuple)):
            elements = sum(
                getattr(b, "nominal_elements", np.asarray(b).size) for b in stacked
            )
        else:
            elements = getattr(
                stacked, "nominal_elements", np.asarray(stacked).size
            )
        return elements * mask_fraction * cost_model.dtm_fit_per_voxel_sample
    return cost


# ----------------------------------------------------------------------
# Astronomy UDF costs
# ----------------------------------------------------------------------

def preprocess_cost(cost_model):
    """Preprocess cost."""
    def cost(exposure, *rest):
        return _exposure_pixels(exposure) * cost_model.astro_preprocess_per_pixel
    return cost


def patch_map_cost(cost_model):
    """Patch map cost."""
    def cost(exposure, *rest):
        return _exposure_pixels(exposure) * cost_model.astro_patch_per_pixel
    return cost


def stitch_cost(cost_model):
    """Stitch cost."""
    def cost(pieces, *rest):
        total = sum(p.nominal_elements for p in pieces)
        return total * 8 * cost_model.memcpy_per_byte
    return cost


def coadd_cost(cost_model, n_iter=2):
    """Coadd cost."""
    def cost(patches, *rest):
        total = sum(p.nominal_elements for p in patches)
        return total * (n_iter + 1) * cost_model.coadd_iteration_per_pixel
    return cost


def detect_cost(cost_model):
    """Detect cost."""
    def cost(coadd, *rest):
        return coadd.nominal_elements * cost_model.source_detect_per_pixel
    return cost


def _exposure_pixels(exposure):
    nominal = getattr(exposure, "nominal_elements", None)
    if nominal is not None:
        return nominal
    from repro.data.catalog import ASTRO_SENSOR_SHAPE

    return ASTRO_SENSOR_SHAPE[0] * ASTRO_SENSOR_SHAPE[1]


# ----------------------------------------------------------------------
# Voxel blocks (Step 3-N parallel unit)
# ----------------------------------------------------------------------

def split_volume_blocks(volume, n_blocks):
    """Split a 3-d :class:`SizedArray` volume along z into blocks.

    Returns ``[(block_id, SizedArray), ...]``; nominal shapes divide the
    nominal z extent the same way the real split divides the real one.
    """
    array = volume.array
    nz_real = array.shape[0]
    nz_nominal = volume.nominal_shape[0]
    n_blocks = min(n_blocks, nz_real)
    blocks = []
    bounds_real = np.linspace(0, nz_real, n_blocks + 1).astype(int)
    bounds_nominal = np.linspace(0, nz_nominal, n_blocks + 1).astype(int)
    for b in range(n_blocks):
        real_block = array[bounds_real[b]:bounds_real[b + 1]]
        nominal = (
            int(bounds_nominal[b + 1] - bounds_nominal[b]),
        ) + tuple(volume.nominal_shape[1:])
        blocks.append(
            (b, SizedArray(real_block, nominal_shape=nominal, meta=volume.meta))
        )
    return blocks


def reassemble_blocks(blocks_by_id, nominal_shape=None, meta=None):
    """Concatenate blocks (ordered by id) back into one volume."""
    ordered = [blocks_by_id[k] for k in sorted(blocks_by_id)]
    arrays = [b.array if isinstance(b, SizedArray) else np.asarray(b) for b in ordered]
    out = np.concatenate(arrays, axis=0)
    if nominal_shape is None and isinstance(ordered[0], SizedArray):
        nominal_z = sum(b.nominal_shape[0] for b in ordered)
        nominal_shape = (nominal_z,) + tuple(ordered[0].nominal_shape[1:])
    return SizedArray(out, nominal_shape=nominal_shape, meta=meta or {})
