"""The astronomy (LSST-style) use case on every engine.

Pipeline steps (Section 3.2.2, Figure 3):

1. **Pre-Processing** -- background estimation/subtraction, cosmic-ray
   detection and repair per exposure.
2. **Patch Creation** -- flatmap exposures onto overlapping sky patches,
   group per (patch, visit) into new exposure objects.
3. **Co-addition** -- per patch, iterative 3-sigma outlier removal (two
   cleaning iterations) then sum across visits.
4. **Source Detection** -- threshold + cluster detection on each Coadd.
"""

from repro.pipelines.astro.reference import run_reference

__all__ = ["run_reference"]
