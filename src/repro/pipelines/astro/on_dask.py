"""Thin re-export: the astro pipeline is defined once in
``repro.plan.astro`` and lowered by ``repro.engines.dask.lowering``."""

from repro.engines.dask.lowering.astro import (  # noqa: F401
    DEFAULT_BUCKET,
    LoweredAstro,
    run,
)
