"""The astronomy pipeline on miniSpark (Section 4.2).

Same structure as the neuroscience case: pair RDDs keyed by image
fragment identifiers, reference step functions as lambdas, shuffles at
the two grouping points (patch creation and co-addition).
"""

from repro.engines.base import udf
from repro.pipelines import common
from repro.pipelines.astro import reference as ref
from repro.pipelines.astro.staging import DEFAULT_BUCKET


def build_exposure_rdd(sc, partitions=None, bucket=DEFAULT_BUCKET, cache=False):
    """Build exposure rdd."""
    rdd = sc.s3_objects(bucket, numPartitions=partitions)
    if cache:
        rdd = rdd.cache()
    return rdd


def run(sc, visits, input_partitions=None, group_partitions=None,
        bucket=DEFAULT_BUCKET, grid=None):
    """End-to-end astronomy pipeline; returns ``(coadds, sources)``."""
    cm = sc.cost_model
    exposures = [e for v in visits for e in v.exposures]
    if grid is None:
        grid = ref.default_patch_grid(exposures[0].shape)
    pixel_scale = ref.nominal_pixel_scale(exposures[0].shape, exposures[0].bundle)

    exp_rdd = build_exposure_rdd(sc, partitions=input_partitions, bucket=bucket)

    calibrated = exp_rdd.map(
        udf(ref.preprocess_exposure, cost=common.preprocess_cost(cm))
    )

    def to_pieces(exposure):
        return ref.patch_pieces(exposure, grid, pixel_scale)

    pieces = calibrated.flatMap(udf(to_pieces, cost=common.patch_map_cost(cm)))

    def stitch(kv):
        key, group = kv
        return key, ref.stitch_pieces(group)

    def stitch_cost(kv):
        return common.stitch_cost(cm)(kv[1])

    patch_exposures = (
        pieces.groupByKey(numPartitions=group_partitions or sc.cluster.spec.total_slots)
        .map(udf(stitch, cost=stitch_cost))
    )

    def rekey(kv):
        (patch_id, visit_id), stitched = kv
        return patch_id, (visit_id, stitched)

    def coadd(kv):
        patch_id, entries = kv
        ordered = [s for _v, s in sorted(entries, key=lambda e: e[0])]
        return patch_id, ref.coadd_patch(ordered)

    def coadd_cost(kv):
        return common.coadd_cost(cm, ref.COADD_ITERATIONS)(
            [s for _v, s in kv[1]]
        )

    def detect(kv):
        patch_id, coadd_img = kv
        return patch_id, (coadd_img, ref.detect(coadd_img))

    def detect_cost(kv):
        return common.detect_cost(cm)(kv[1])

    results = (
        patch_exposures.map(udf(rekey))
        .groupByKey(numPartitions=group_partitions or sc.cluster.spec.total_slots)
        .map(udf(coadd, cost=coadd_cost))
        .map(udf(detect, cost=detect_cost))
        .collect()
    )

    coadds = {patch: coadd_img for patch, (coadd_img, _s) in results}
    sources = {patch: srcs for patch, (_c, srcs) in results}
    return coadds, sources
