"""Thin re-export: the astro pipeline is defined once in
``repro.plan.astro`` and lowered by ``repro.engines.spark.lowering``."""

from repro.engines.spark.lowering.astro import (  # noqa: F401
    DEFAULT_BUCKET,
    LoweredAstro,
    build_exposure_rdd,
    run,
)
