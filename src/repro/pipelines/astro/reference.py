"""Single-process reference implementation of the astronomy pipeline.

Stands in for "the LSST stack [22] ... the reference is a single node
implementation" (Section 3.2.2).  The step functions here are reused by
every engine implementation as their user-defined code, so outputs can
be compared exactly.
"""

from dataclasses import replace

import numpy as np

from repro.algorithms.background import subtract_background
from repro.algorithms.coadd import coadd_stack
from repro.algorithms.cosmicray import detect_cosmic_rays, repair_cosmic_rays
from repro.algorithms.patches import PatchGrid
from repro.algorithms.sources import detect_sources
from repro.data.catalog import ASTRO_SENSOR_SHAPE
from repro.formats.sizing import SizedArray

#: Co-addition parameters from Section 3.2.2.
COADD_SIGMA = 3.0
COADD_ITERATIONS = 2
#: Source detection threshold.
DETECT_SIGMA = 5.0
DETECT_MIN_PIXELS = 3


def default_patch_grid(sensor_shape):
    """A patch tiling sized so each exposure overlaps 1 to 6 patches.

    Patches are as tall as a sensor and two-thirds as wide; with the
    per-visit dithers, an exposure spans 1-2 patch rows and 2-3 patch
    columns (Section 3.2.2: "Each exposure can be part of 1 to 6
    patches").
    """
    h, w = sensor_shape
    return PatchGrid(patch_height=h, patch_width=max(1, 2 * w // 3))


def nominal_pixel_scale(sensor_shape, bundle=1):
    """Nominal pixels per real pixel (squared linear scale, times the
    sensor bundle factor when fewer than 60 real sensors stand in for a
    full focal plane)."""
    return (
        ASTRO_SENSOR_SHAPE[0] / sensor_shape[0]
    ) * (ASTRO_SENSOR_SHAPE[1] / sensor_shape[1]) * bundle


def background_box_size(sensor_shape):
    """Scale the 256-pixel nominal background box to the real sensor."""
    return max(8, sensor_shape[0] // 16)


def preprocess_exposure(exposure):
    """Step 1-A: background subtraction + cosmic-ray repair."""
    box = background_box_size(exposure.shape)
    flux, _background = subtract_background(exposure.flux, box_size=box)
    cr_mask = detect_cosmic_rays(flux, variance=exposure.variance)
    flux = repair_cosmic_rays(flux, cr_mask)
    return replace(exposure, flux=flux, mask=exposure.mask | (cr_mask << 1))


def patch_pieces(exposure, grid, pixel_scale):
    """Step 2-A flatmap: one patch-sized piece per overlapped patch.

    Returns ``[((patch_id, visit_id), SizedArray piece), ...]`` where
    pieces are NaN outside the exposure's footprint.  Pieces are stored
    as float32 (as the FITS flux planes are) and their nominal size
    reflects only the overlap region actually carried -- together these
    keep intermediate growth near the paper's observed 2.5x average
    (Section 5.3.2) instead of ballooning with NaN padding.
    """
    side = max(1, int(round(np.sqrt(pixel_scale))))
    pieces = []
    for patch_id in grid.overlapping_patches(exposure.sky_box):
        piece = grid.extract_overlap(
            exposure.flux, exposure.sky_box, patch_id
        ).astype(np.float32)
        overlap = exposure.sky_box.intersect(grid.patch_box(patch_id))
        nominal_shape = (overlap.height * side, overlap.width * side)
        pieces.append(
            (
                (patch_id, exposure.visit_id),
                SizedArray(
                    piece,
                    nominal_shape=nominal_shape,
                    meta={
                        "patch": patch_id,
                        "visit": exposure.visit_id,
                        "side": side,
                    },
                ),
            )
        )
    return pieces


def stitch_pieces(pieces):
    """Step 2-A group: overlay same-(patch, visit) pieces into one
    exposure object (sensors of one visit never overlap, so overlay is
    a NaN-fill).  The stitched object is a full patch-sized float32
    image; its nominal size covers the whole patch."""
    arrays = [p.array for p in pieces]
    out = arrays[0].copy()
    for other in arrays[1:]:
        hole = np.isnan(out)
        out[hole] = other[hole]
    side = pieces[0].meta.get("side", 1)
    nominal_shape = (out.shape[0] * side, out.shape[1] * side)
    return SizedArray(out, nominal_shape=nominal_shape, meta=pieces[0].meta)


def coadd_patch(patch_exposures):
    """Step 3-A: iterative outlier removal then sum across visits.

    Statistics run in float64 (as the reference math does); the stored
    Coadd is float32, like the input flux planes.
    """
    stack = np.stack([p.array.astype(np.float64) for p in patch_exposures])
    coadd, _counts = coadd_stack(
        stack, n_sigma=COADD_SIGMA, n_iter=COADD_ITERATIONS
    )
    return SizedArray(
        coadd.astype(np.float32),
        nominal_shape=patch_exposures[0].nominal_shape,
        meta={"patch": patch_exposures[0].meta.get("patch")},
    )


def detect(coadd):
    """Step 4-A: sources in one Coadd."""
    return detect_sources(
        coadd.array, n_sigma=DETECT_SIGMA, npix_min=DETECT_MIN_PIXELS
    )


def run_reference(visits, grid=None):
    """The full pipeline, single process.

    Returns ``(coadds, sources)``: dicts keyed by patch id.
    """
    exposures = [e for v in visits for e in v.exposures]
    if not exposures:
        raise ValueError("no exposures to process")
    if grid is None:
        grid = default_patch_grid(exposures[0].shape)
    pixel_scale = nominal_pixel_scale(exposures[0].shape, exposures[0].bundle)

    calibrated = [preprocess_exposure(e) for e in exposures]

    by_patch_visit = {}
    for exposure in calibrated:
        for key, piece in patch_pieces(exposure, grid, pixel_scale):
            by_patch_visit.setdefault(key, []).append(piece)
    patch_exposures = {
        key: stitch_pieces(pieces) for key, pieces in by_patch_visit.items()
    }

    by_patch = {}
    for (patch_id, _visit_id), exposure in sorted(
        patch_exposures.items(), key=lambda kv: (kv[0][0], kv[0][1])
    ):
        by_patch.setdefault(patch_id, []).append(exposure)

    coadds = {patch: coadd_patch(stack) for patch, stack in by_patch.items()}
    sources = {patch: detect(coadd) for patch, coadd in coadds.items()}
    return coadds, sources
