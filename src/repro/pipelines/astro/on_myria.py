"""Thin re-export: the astro pipeline is defined once in
``repro.plan.astro`` and lowered by ``repro.engines.myria.lowering``."""

from repro.engines.myria.lowering.astro import (  # noqa: F401
    DEFAULT_BUCKET,
    EXPOSURES_COLUMNS,
    PIPELINE_QUERY,
    LoweredAstro,
    _loader,
    band_query,
    ingest,
    register_s3,
    register_udfs,
    run,
)
