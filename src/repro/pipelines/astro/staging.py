"""S3 staging of astronomy data.

"FITS files staged in s3 as they are" (Section 4.2): each staged object
is one sensor exposure with the paper's nominal 80 MB file size.
"""

DEFAULT_BUCKET = "astro-fits"


def exposure_key(visit_id, sensor_id):
    """Exposure key."""
    return f"visit-{visit_id:03d}/sensor-{sensor_id:02d}"


def stage_visits(object_store, visits, bucket=DEFAULT_BUCKET):
    """Upload every visit's sensor exposures; returns object count.

    Nominal object sizes are bundle-aware so each staged visit totals
    the paper's ~4.8 GB regardless of the real sensor count.
    """
    count = 0
    for visit in visits:
        for exposure in visit.exposures:
            object_store.put(
                bucket,
                exposure_key(visit.visit_id, exposure.sensor_id),
                exposure,
                exposure.nominal_bytes,
            )
            count += 1
    return count
