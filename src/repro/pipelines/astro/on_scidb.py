"""Thin re-export: the astro pipeline is defined once in
``repro.plan.astro`` and lowered by ``repro.engines.scidb.lowering``."""

from repro.engines.scidb.lowering.astro import (  # noqa: F401
    DEFAULT_CHUNK,
    LoweredAstro,
    coadd_step,
    detect_step,
    ingest,
    preprocess_step,
    run,
    sky_mosaic,
)
