"""The two end-to-end use cases (Section 3), on every engine.

- :mod:`repro.pipelines.neuro` -- the diffusion-MRI pipeline:
  segmentation, denoising, model fitting (Section 3.1.2).
- :mod:`repro.pipelines.astro` -- the LSST-style pipeline:
  pre-processing, patch creation, co-addition, source detection
  (Section 3.2.2).

Each has a single-process ``reference`` implementation (the ground
truth all engine implementations are tested against) plus one module
per engine, mirroring the paper's Table 1 implementations.
"""
