"""The neuroscience (diffusion MRI) use case on every engine.

Pipeline steps (Section 3.1.2, Figure 1):

1. **Segmentation** -- select the b0 volumes, average them, apply
   median-Otsu to build a per-subject brain mask.
2. **Denoising** -- non-local means on each volume, restricted to the
   mask.
3. **Model fitting** -- flatmap volumes into voxel blocks, group the
   288 values per voxel, fit the diffusion tensor, output FA.
"""

from repro.pipelines.neuro.reference import run_reference

__all__ = ["run_reference"]
