"""The neuroscience pipeline on miniSpark (Section 4.2, Figure 6).

The implementation mirrors the paper's structure: pair records keyed by
(subject, image) with NumPy-array values, the mask as a broadcast
variable to avoid a join, and the Figure 6 chain::

    modelsRDD = imgRDD.map(denoise).flatMap(repart)
                      .groupBy(subject, block).map(regroup).map(fitmodel)
"""

import numpy as np

from repro.algorithms.dtm import fit_dtm, fractional_anisotropy
from repro.algorithms.nlmeans import nlmeans_3d
from repro.algorithms.otsu import median_otsu
from repro.engines.base import udf
from repro.formats.sizing import SizedArray
from repro.pipelines import common
from repro.pipelines.neuro.reference import DENOISE_SIGMA, MASK_MEDIAN_RADIUS
from repro.pipelines.neuro.staging import DEFAULT_BUCKET, gradient_tables

DEFAULT_BLOCKS = 8


def build_image_rdd(sc, partitions=None, bucket=DEFAULT_BUCKET, cache=False):
    """The staged-volume RDD; records are SizedArray volumes with
    subject/image metadata."""
    rdd = sc.s3_objects(bucket, numPartitions=partitions)
    if cache:
        rdd = rdd.cache()
    return rdd


def filter_b0(sc, img_rdd, gtabs):
    """Figure 12a's step: select the non-diffusion-weighted volumes."""
    def is_b0(volume):
        gtab = gtabs[volume.meta["subject_id"]]
        return bool(gtab.b0s_mask[volume.meta["image_id"]])

    return img_rdd.filter(udf(is_b0))


def mean_b0(sc, b0_rdd):
    """Figure 12b's step: per-subject mean volume via reduceByKey."""
    cm = sc.cost_model

    def to_pair(volume):
        return volume.meta["subject_id"], (volume.array.astype(np.float64), 1, volume)

    def add(a, b):
        return a[0] + b[0], a[1] + b[1], a[2]

    def add_cost(a, b):
        return a[2].nominal_elements * cm.elementwise_per_element

    def finish(acc):
        total, count, volume = acc
        return SizedArray(
            total / count, nominal_shape=volume.nominal_shape, meta=volume.meta
        )

    return (
        b0_rdd.map(udf(to_pair))
        .reduceByKey(udf(add, cost=add_cost), numPartitions=sc.cluster.spec.n_nodes)
        .mapValues(udf(finish))
    )


def segmentation(sc, img_rdd, gtabs):
    """Step 1-N: returns ``{subject_id: mask ndarray}``."""
    cm = sc.cost_model
    means = mean_b0(sc, filter_b0(sc, img_rdd, gtabs))

    def to_mask(mean_volume):
        _masked, mask = median_otsu(
            mean_volume.array, median_radius=MASK_MEDIAN_RADIUS
        )
        return mask

    masks_rdd = means.mapValues(udf(to_mask, cost=common.otsu_cost(cm)))
    return dict(masks_rdd.collect())


def denoise_and_fit(sc, img_rdd, gtabs, masks, n_blocks=DEFAULT_BLOCKS,
                    group_partitions=None):
    """Steps 2-N and 3-N (the Figure 6 chain); returns
    ``{subject_id: fa SizedArray}``."""
    cm = sc.cost_model
    mask_fraction = float(
        np.mean([common.masked_fraction(m) for m in masks.values()])
    )
    mask_bytes = sum(m.size for m in masks.values())
    masks_b = sc.broadcast(masks, nominal_bytes=mask_bytes)

    def denoise(volume):
        mask = masks_b.value[volume.meta["subject_id"]]
        out = nlmeans_3d(volume.array, sigma=DENOISE_SIGMA, mask=mask)
        return volume.with_array(out)

    def repart(volume):
        pairs = []
        for block_id, block in common.split_volume_blocks(volume, n_blocks):
            key = (volume.meta["subject_id"], block_id)
            pairs.append((key, (volume.meta["image_id"], block)))
        return pairs

    def regroup(kv):
        key, entries = kv
        ordered = sorted(entries, key=lambda e: e[0])
        stacked = np.stack([e[1].array for e in ordered], axis=-1)
        nominal = ordered[0][1].nominal_shape + (len(ordered),)
        return key, SizedArray(stacked, nominal_shape=nominal)

    def regroup_cost(kv):
        _key, entries = kv
        return sum(e[1].nominal_bytes for e in entries) * cm.memcpy_per_byte

    def fitmodel(kv):
        (subject_id, block_id), stacked = kv
        gtab = gtabs[subject_id]
        mask = masks_b.value[subject_id]
        block_slices = _block_slices(mask.shape[0], n_blocks)
        mask_block = mask[block_slices[block_id]]
        evals = fit_dtm(stacked.array, gtab, mask=mask_block)
        fa = fractional_anisotropy(evals)
        nominal = stacked.nominal_shape[:-1]
        return (subject_id, block_id), SizedArray(fa, nominal_shape=nominal)

    def fit_cost(kv):
        _key, stacked = kv
        return stacked.nominal_elements * mask_fraction * cm.dtm_fit_per_voxel_sample

    models = (
        img_rdd.map(udf(denoise, cost=common.denoise_cost(cm, mask_fraction)))
        .flatMap(udf(repart, cost=common.repart_cost(cm)))
        .groupByKey(numPartitions=group_partitions or sc.cluster.spec.total_slots)
        .map(udf(regroup, cost=regroup_cost))
        .map(udf(fitmodel, cost=fit_cost))
    )
    blocks = models.collect()

    fa_by_subject = {}
    for (subject_id, block_id), fa_block in blocks:
        fa_by_subject.setdefault(subject_id, {})[block_id] = fa_block
    return {
        subject: common.reassemble_blocks(by_id)
        for subject, by_id in fa_by_subject.items()
    }


def run(sc, subjects, input_partitions=None, group_partitions=None,
        cache_input=False, n_blocks=DEFAULT_BLOCKS, bucket=DEFAULT_BUCKET):
    """End-to-end neuroscience pipeline on Spark.

    Data must already be staged (see
    :func:`repro.pipelines.neuro.staging.stage_subjects`).  Returns
    ``(masks, fa_by_subject)``.
    """
    gtabs = gradient_tables(subjects)
    img_rdd = build_image_rdd(sc, partitions=input_partitions, bucket=bucket,
                              cache=cache_input)
    masks = segmentation(sc, img_rdd, gtabs)
    fa = denoise_and_fit(
        sc, img_rdd, gtabs, masks,
        n_blocks=n_blocks, group_partitions=group_partitions,
    )
    return masks, fa


def _block_slices(nz, n_blocks):
    bounds = np.linspace(0, nz, min(n_blocks, nz) + 1).astype(int)
    return [slice(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]
