"""Thin re-export: the neuro pipeline is defined once in
``repro.plan.neuro`` and lowered by ``repro.engines.spark.lowering``."""

from repro.engines.spark.lowering.neuro import (  # noqa: F401
    DEFAULT_BLOCKS,
    DEFAULT_BUCKET,
    LoweredNeuro,
    _block_slices,
    build_image_rdd,
    denoise_and_fit,
    filter_b0,
    mean_b0,
    run,
    segmentation,
)
