"""Thin re-export: the neuro pipeline is defined once in
``repro.plan.neuro`` and lowered by ``repro.engines.myria.lowering``."""

from repro.engines.myria.lowering.neuro import (  # noqa: F401
    DEFAULT_BLOCKS,
    DEFAULT_BUCKET,
    FILTER_QUERY,
    IMAGES_COLUMNS,
    MASK_QUERY,
    MEAN_QUERY,
    PIPELINE_QUERY,
    LoweredNeuro,
    _MASK_CACHE,
    _block_of,
    compute_masks,
    ingest,
    make_loader,
    register_s3,
    register_udfs,
    run,
)
