"""Thin re-export: the neuro pipeline is defined once in
``repro.plan.neuro`` and lowered by ``repro.engines.scidb.lowering``."""

from repro.engines.scidb.lowering.neuro import (  # noqa: F401
    VOLUME_CHUNK,
    LoweredNeuro,
    _nominal_b0_mask,
    cohort_dims,
    denoise_step,
    denoise_step_cohort,
    filter_step,
    filter_step_cohort,
    fit_step,
    ingest,
    ingest_cohort,
    mean_step,
    mean_step_cohort,
    run,
    segmentation,
    subject_dims,
)
