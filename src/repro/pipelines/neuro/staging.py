"""S3 staging of neuroscience data.

"To ingest data in the neuroscience use case, we first convert the
NIfTI files into NumPy arrays that we stage on Amazon S3" (Section 4.2);
"we persist as pickled NumPy files per image in S3" (Section 5.2.1).

Each staged object is one image volume (a :class:`SizedArray` with
subject/image metadata) whose nominal size is the pickled-NumPy size of
a full 145x145x174 float32 volume.
"""

from repro.formats.npyio import PICKLE_OVERHEAD_BYTES

DEFAULT_BUCKET = "neuro-npy"


def volume_key(subject_id, image_id):
    """Volume key."""
    return f"{subject_id}/vol-{image_id:04d}"


def stage_subjects(object_store, subjects, bucket=DEFAULT_BUCKET):
    """Upload every subject's volumes as pickled-NumPy objects.

    Returns the number of objects staged.  Idempotent per key.  Nominal
    object sizes are bundle-aware so each subject's staged bytes total
    the paper's 4.2 GB regardless of the real volume count.
    """
    count = 0
    for subject in subjects:
        for index in range(subject.n_volumes):
            volume = subject.volume(index)
            object_store.put(
                bucket,
                volume_key(subject.subject_id, index),
                volume,
                volume.nominal_bytes + PICKLE_OVERHEAD_BYTES,
            )
            count += 1
    return count


def gradient_tables(subjects):
    """Gradient tables."""
    return {s.subject_id: s.gtab for s in subjects}
