"""Thin re-export: the neuro pipeline is defined once in
``repro.plan.neuro`` and lowered by ``repro.engines.dask.lowering``."""

from repro.engines.dask.lowering.neuro import (  # noqa: F401
    DEFAULT_BLOCKS,
    DEFAULT_BUCKET,
    LoweredNeuro,
    build_fit_graph,
    build_mask_graph,
    download_and_filter,
    fetch_volume,
    run,
)
