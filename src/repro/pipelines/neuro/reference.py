"""Single-process reference implementation of the neuroscience pipeline.

Plays the role of the domain scientists' implementation: "Our reference
implementation is written in Python and Cython using Dipy and executes
as a single process on one machine." (Section 3.1.2.)  Every engine
implementation must reproduce these outputs exactly on the same data.
"""

import numpy as np

from repro.algorithms.dtm import fit_dtm, fractional_anisotropy
from repro.algorithms.nlmeans import nlmeans_3d
from repro.algorithms.otsu import median_otsu

#: Noise level assumed by the denoiser (matches the generator's sigma).
DENOISE_SIGMA = 12.0
#: Median-filter radius for the mask (kept small for scaled volumes).
MASK_MEDIAN_RADIUS = 1


def compute_mask(subject):
    """Step 1-N: mean of b0 volumes -> median-Otsu brain mask."""
    data = subject.data.array
    b0 = data[..., subject.gtab.b0s_mask]
    mean_b0 = b0.mean(axis=-1)
    _masked, mask = median_otsu(mean_b0, median_radius=MASK_MEDIAN_RADIUS)
    return mask


def denoise_volume(volume, mask, sigma=DENOISE_SIGMA):
    """Step 2-N: non-local means on one volume, masked."""
    return nlmeans_3d(volume, sigma=sigma, mask=mask)


def denoise_subject(subject, mask):
    """Denoise subject."""
    data = subject.data.array
    out = np.empty_like(data, dtype=np.float64)
    for index in range(data.shape[-1]):
        out[..., index] = denoise_volume(data[..., index], mask)
    return out


def fit_subject(denoised, gtab, mask):
    """Step 3-N: per-voxel DTM fit -> FA map."""
    evals = fit_dtm(denoised, gtab, mask=mask)
    return fractional_anisotropy(evals)


def run_reference(subject):
    """The full pipeline for one subject.

    Returns ``(mask, denoised, fa)``.
    """
    mask = compute_mask(subject)
    denoised = denoise_subject(subject, mask)
    fa = fit_subject(denoised, subject.gtab, mask)
    return mask, denoised, fa
