"""Thin re-export: the neuro pipeline is defined once in
``repro.plan.neuro`` and lowered by ``repro.engines.tensorflow.lowering``."""

from repro.engines.tensorflow.lowering.neuro import (  # noqa: F401
    LoweredNeuro,
    _gaussian_kernel_3d,
    denoise_step,
    filter_step,
    fit_step,
    make_steps,
    mask_step,
    mean_step,
    run,
)
