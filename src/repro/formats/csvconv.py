"""Array <-> CSV/TSV conversion.

miniSciDB's ``aio_input`` ingest path loads CSV files (Section 4.1: "we
first convert the NIfTI files into Comma-Separated Value (CSV) files
that we then load into SciDB using the aio_input function"), and the
``stream()`` interface "connects SciDB and external processes only
through data in CSV format" (Section 5.2.3) -- TSV in the stream case.

These converters are real: they produce and parse genuine text, so the
SciDB ingest and stream code paths in the reproduction move actual data
through the same lossy-but-faithful textual representation.
"""

import numpy as np

#: Average rendered characters per float cell including separator;
#: used for nominal CSV size estimation at paper scale.
CSV_CHARS_PER_FLOAT = 14.0
#: Characters per coordinate column (index + separator).
CSV_CHARS_PER_INDEX = 5.0


def array_to_csv(array, with_coordinates=True):
    """Render an array as CSV text.

    With ``with_coordinates`` (SciDB's load format) each line is
    ``i0,i1,...,value`` for every element in C order; without, each line
    holds one flattened value.
    """
    array = np.asarray(array)
    lines = []
    if with_coordinates:
        for index in np.ndindex(array.shape):
            coords = ",".join(str(i) for i in index)
            lines.append(f"{coords},{array[index].item()!r}")
    else:
        for value in array.ravel():
            lines.append(repr(value.item()))
    return "\n".join(lines) + "\n"


def csv_to_array(text, shape, dtype=np.float64, with_coordinates=True):
    """Parse CSV text produced by :func:`array_to_csv` back to an array."""
    shape = tuple(int(d) for d in shape)
    out = np.zeros(shape, dtype=dtype)
    lines = [line for line in text.splitlines() if line.strip()]
    expected = out.size
    if len(lines) != expected:
        raise ValueError(f"expected {expected} CSV rows, got {len(lines)}")
    if with_coordinates:
        for line in lines:
            parts = line.split(",")
            coords = tuple(int(p) for p in parts[:-1])
            if len(coords) != len(shape):
                raise ValueError(
                    f"row has {len(coords)} coordinates for rank {len(shape)}"
                )
            out[coords] = dtype(parts[-1]) if callable(dtype) else parts[-1]
    else:
        flat = np.array([float(line) for line in lines], dtype=dtype)
        out = flat.reshape(shape)
    return out


def array_to_tsv(array):
    """Render a 2-D slab as TSV, one row per line (stream() wire format)."""
    array = np.atleast_2d(np.asarray(array))
    if array.ndim != 2:
        array = array.reshape(array.shape[0], -1)
    lines = ["\t".join(repr(v) for v in row) for row in array.tolist()]
    return "\n".join(lines) + "\n"


def tsv_to_array(text, dtype=np.float64):
    """Parse TSV text into a 2-D array."""
    rows = [
        [float(cell) for cell in line.split("\t")]
        for line in text.splitlines()
        if line.strip()
    ]
    if not rows:
        return np.zeros((0, 0), dtype=dtype)
    width = len(rows[0])
    if any(len(r) != width for r in rows):
        raise ValueError("ragged TSV rows")
    return np.array(rows, dtype=dtype)


def csv_nominal_bytes(nominal_elements, rank, with_coordinates=True):
    """Estimated CSV size at paper scale for cost accounting."""
    per_row = CSV_CHARS_PER_FLOAT
    if with_coordinates:
        per_row += rank * CSV_CHARS_PER_INDEX
    return int(nominal_elements * per_row)
