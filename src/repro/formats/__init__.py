"""Scientific file formats and staging formats, implemented from scratch.

- :mod:`repro.formats.nifti` -- NIfTI-1 (the neuroscience input format).
- :mod:`repro.formats.fits` -- FITS (the astronomy input format).
- :mod:`repro.formats.csvconv` -- CSV/TSV conversion used by miniSciDB's
  ``aio_input`` ingest and ``stream()`` interface.
- :mod:`repro.formats.npyio` -- pickled-NumPy staging objects, the form
  in which Spark and Myria read volumes from S3 (Section 4.2/4.3).
- :mod:`repro.formats.sizing` -- the :class:`SizedArray` wrapper that
  couples real scaled-down data with nominal paper-scale sizes.
"""

from repro.formats.csvconv import (
    array_to_csv,
    array_to_tsv,
    csv_nominal_bytes,
    csv_to_array,
    tsv_to_array,
)
from repro.formats.fits import FitsError, FitsFile, FitsHDU, read_fits, write_fits
from repro.formats.nifti import NiftiError, NiftiImage, read_nifti, write_nifti
from repro.formats.npyio import pickled_nominal_bytes, pickle_array, unpickle_array
from repro.formats.sizing import SizedArray

__all__ = [
    "FitsError",
    "FitsFile",
    "FitsHDU",
    "NiftiError",
    "NiftiImage",
    "SizedArray",
    "array_to_csv",
    "array_to_tsv",
    "csv_nominal_bytes",
    "csv_to_array",
    "pickle_array",
    "pickled_nominal_bytes",
    "read_fits",
    "read_nifti",
    "tsv_to_array",
    "unpickle_array",
    "write_fits",
    "write_nifti",
]
