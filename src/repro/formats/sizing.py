"""Coupling real scaled-down arrays with nominal paper-scale sizes.

The reproduction runs every pipeline on small arrays (so tests finish in
seconds) while the simulator charges costs for the *nominal* data sizes
of the paper: 145x145x174x288 float32 per dMRI subject, 4000x4072
pixels per astronomy sensor exposure.  :class:`SizedArray` carries both.
"""

import numpy as np


class SizedArray:
    """A real ndarray plus the nominal shape it stands in for.

    The nominal shape defaults to the real shape (scale factor 1), so
    code paths that do not care about simulation can treat a
    ``SizedArray`` as a thin array wrapper.
    """

    __slots__ = ("array", "nominal_shape", "meta")

    def __init__(self, array, nominal_shape=None, meta=None):
        self.array = np.asarray(array)
        if nominal_shape is None:
            nominal_shape = self.array.shape
        self.nominal_shape = tuple(int(d) for d in nominal_shape)
        if any(d <= 0 for d in self.nominal_shape):
            raise ValueError(f"nominal shape must be positive: {nominal_shape}")
        self.meta = dict(meta or {})

    # ------------------------------------------------------------------
    # Nominal accounting
    # ------------------------------------------------------------------

    @property
    def nominal_elements(self):
        """Element count at the paper's nominal data scale."""
        n = 1
        for d in self.nominal_shape:
            n *= d
        return n

    @property
    def nominal_bytes(self):
        """Size in bytes at the paper's nominal data scale."""
        return self.nominal_elements * self.array.dtype.itemsize

    @property
    def scale_factor(self):
        """Ratio of nominal to real element counts (>= 1 in practice)."""
        return self.nominal_elements / max(1, self.array.size)

    # ------------------------------------------------------------------
    # Structure-preserving transforms
    # ------------------------------------------------------------------

    def with_array(self, array, nominal_shape=None, meta=None):
        """New ``SizedArray`` with the same metadata unless overridden."""
        return SizedArray(
            array,
            nominal_shape=self.nominal_shape if nominal_shape is None else nominal_shape,
            meta=self.meta if meta is None else meta,
        )

    def map(self, fn, nominal_shape=None):
        """Apply ``fn`` to the real array, keeping nominal bookkeeping.

        When ``fn`` changes the array rank or the caller knows the
        nominal output shape, pass ``nominal_shape`` explicitly;
        otherwise the nominal shape is scaled elementwise when ranks
        match, or kept as-is.
        """
        out = np.asarray(fn(self.array))
        if nominal_shape is None:
            if out.shape == self.array.shape:
                nominal_shape = self.nominal_shape
            elif len(out.shape) == len(self.array.shape):
                nominal_shape = tuple(
                    max(1, round(n * o / max(1, r)))
                    for n, o, r in zip(self.nominal_shape, out.shape, self.array.shape)
                )
            else:
                nominal_shape = out.shape
        return SizedArray(out, nominal_shape=nominal_shape, meta=self.meta)

    def reduce_axis(self, fn, axis):
        """Reduce one axis (e.g. a mean over volumes), dropping it from
        both real and nominal shapes."""
        out = fn(self.array, axis)
        nominal = tuple(
            d for i, d in enumerate(self.nominal_shape) if i != axis % len(self.nominal_shape)
        )
        return SizedArray(out, nominal_shape=nominal, meta=self.meta)

    def __repr__(self):
        return (
            f"SizedArray(shape={self.array.shape}, nominal={self.nominal_shape},"
            f" dtype={self.array.dtype})"
        )


def total_nominal_bytes(sized_arrays):
    """Sum of nominal bytes across an iterable of :class:`SizedArray`."""
    return sum(s.nominal_bytes for s in sized_arrays)
