"""NIfTI-1 reader/writer, implemented from the format specification.

NIfTI-1 is the standard neuroimaging format used by the Human Connectome
Project data in the paper's neuroscience use case (Section 3.1.1): each
subject's file holds a 4-D array of 288 diffusion-weighted 3-D volumes.

The format is a fixed 348-byte binary header (optionally followed by a
4-byte extension flag) and a raw data block.  Single-file ``.nii`` and
gzip-compressed ``.nii.gz`` variants are supported, matching the
compressed distribution form described in the paper (1.4 GB compressed
expanding to 4.2 GB).
"""

import gzip
import io
import struct

import numpy as np

HEADER_SIZE = 348
#: vox_offset for single-file NIfTI: header + 4-byte extension flag.
SINGLE_FILE_VOX_OFFSET = 352
MAGIC_SINGLE = b"n+1\x00"

#: NIfTI datatype code -> NumPy dtype (big enough subset for the bench).
_DTYPES = {
    2: np.dtype(np.uint8),
    4: np.dtype(np.int16),
    8: np.dtype(np.int32),
    16: np.dtype(np.float32),
    64: np.dtype(np.float64),
    256: np.dtype(np.int8),
    512: np.dtype(np.uint16),
    768: np.dtype(np.uint32),
}
_DTYPE_CODES = {v: k for k, v in _DTYPES.items()}

_HEADER_STRUCT = struct.Struct(
    "<i"      # sizeof_hdr
    "10s"     # data_type (unused)
    "18s"     # db_name (unused)
    "i"       # extents
    "h"       # session_error
    "c"       # regular
    "B"       # dim_info
    "8h"      # dim
    "3f"      # intent_p1..3
    "h"       # intent_code
    "h"       # datatype
    "h"       # bitpix
    "h"       # slice_start
    "8f"      # pixdim
    "f"       # vox_offset
    "f"       # scl_slope
    "f"       # scl_inter
    "h"       # slice_end
    "b"       # slice_code
    "B"       # xyzt_units
    "f"       # cal_max
    "f"       # cal_min
    "f"       # slice_duration
    "f"       # toffset
    "i"       # glmax
    "i"       # glmin
    "80s"     # descrip
    "24s"     # aux_file
    "h"       # qform_code
    "h"       # sform_code
    "3f"      # quatern_b,c,d
    "3f"      # qoffset_x,y,z
    "4f"      # srow_x
    "4f"      # srow_y
    "4f"      # srow_z
    "16s"     # intent_name
    "4s"      # magic
)
assert _HEADER_STRUCT.size == HEADER_SIZE


class NiftiError(Exception):
    """Malformed or unsupported NIfTI content."""


class NiftiImage:
    """An in-memory NIfTI image: data array plus key header fields."""

    def __init__(self, data, pixdim=None, descrip="", scl_slope=1.0, scl_inter=0.0):
        data = np.asarray(data)
        if data.ndim < 1 or data.ndim > 7:
            raise NiftiError(f"NIfTI supports 1..7 dimensions, got {data.ndim}")
        if data.dtype not in _DTYPE_CODES:
            raise NiftiError(f"unsupported dtype for NIfTI: {data.dtype}")
        self.data = data
        if pixdim is None:
            pixdim = (1.0,) * data.ndim
        if len(pixdim) != data.ndim:
            raise NiftiError(
                f"pixdim has {len(pixdim)} entries for {data.ndim}-d data"
            )
        self.pixdim = tuple(float(p) for p in pixdim)
        self.descrip = descrip
        self.scl_slope = float(scl_slope)
        self.scl_inter = float(scl_inter)

    @property
    def shape(self):
        """Real (scaled-down) array shape."""
        return self.data.shape

    @property
    def dtype(self):
        """Element dtype of the data array."""
        return self.data.dtype

    def scaled_data(self):
        """Data with the header's affine intensity scaling applied."""
        slope = self.scl_slope if self.scl_slope not in (0.0,) else 1.0
        if slope == 1.0 and self.scl_inter == 0.0:
            return self.data
        return self.data * slope + self.scl_inter

    def __repr__(self):
        return f"NiftiImage(shape={self.shape}, dtype={self.dtype})"


def _encode_header(image):
    dim = [image.data.ndim] + list(image.data.shape) + [1] * (7 - image.data.ndim)
    pixdim = [0.0] + list(image.pixdim) + [1.0] * (7 - image.data.ndim)
    datatype = _DTYPE_CODES[image.data.dtype]
    bitpix = image.data.dtype.itemsize * 8
    return _HEADER_STRUCT.pack(
        HEADER_SIZE,
        b"", b"", 0, 0, b"r", 0,
        *dim,
        0.0, 0.0, 0.0,
        0,
        datatype,
        bitpix,
        0,
        *pixdim,
        float(SINGLE_FILE_VOX_OFFSET),
        image.scl_slope,
        image.scl_inter,
        0, 0, 0,
        0.0, 0.0, 0.0, 0.0,
        0, 0,
        image.descrip.encode("ascii", "replace")[:80],
        b"",
        0, 0,
        0.0, 0.0, 0.0,
        0.0, 0.0, 0.0,
        1.0, 0.0, 0.0, 0.0,
        0.0, 1.0, 0.0, 0.0,
        0.0, 0.0, 1.0, 0.0,
        b"",
        MAGIC_SINGLE,
    )


def write_nifti(image, path_or_buf, compress=None):
    """Write a :class:`NiftiImage` as a single-file ``.nii``/``.nii.gz``.

    ``compress`` defaults to inferring from a ``.gz`` suffix when a path
    is given, else False.
    """
    payload = bytearray()
    payload += _encode_header(image)
    payload += b"\x00\x00\x00\x00"  # no header extensions
    payload += np.ascontiguousarray(image.data).tobytes(order="F")

    if isinstance(path_or_buf, (str, bytes)):
        if compress is None:
            compress = str(path_or_buf).endswith(".gz")
        opener = gzip.open if compress else open
        with opener(path_or_buf, "wb") as f:
            f.write(bytes(payload))
        return None
    if compress:
        path_or_buf.write(gzip.compress(bytes(payload)))
    else:
        path_or_buf.write(bytes(payload))
    return None


def nifti_bytes(image, compress=False):
    """Serialize a :class:`NiftiImage` to bytes."""
    buf = io.BytesIO()
    write_nifti(image, buf, compress=compress)
    return buf.getvalue()


def read_nifti(path_or_buf):
    """Read a single-file NIfTI-1 image (plain or gzip-compressed)."""
    if isinstance(path_or_buf, (str, bytes)):
        with open(path_or_buf, "rb") as f:
            raw = f.read()
    else:
        raw = path_or_buf.read()
    if raw[:2] == b"\x1f\x8b":  # gzip magic
        raw = gzip.decompress(raw)
    if len(raw) < HEADER_SIZE:
        raise NiftiError(f"file too short for a NIfTI header: {len(raw)} bytes")

    fields = _HEADER_STRUCT.unpack(raw[:HEADER_SIZE])
    sizeof_hdr = fields[0]
    if sizeof_hdr != HEADER_SIZE:
        raise NiftiError(f"bad sizeof_hdr {sizeof_hdr}, expected {HEADER_SIZE}")
    magic = fields[-1]
    if magic != MAGIC_SINGLE:
        raise NiftiError(f"unsupported magic {magic!r}; only single-file n+1")

    dim = fields[7:15]
    ndim = dim[0]
    if not 1 <= ndim <= 7:
        raise NiftiError(f"invalid dim[0]={ndim}")
    shape = tuple(int(d) for d in dim[1:1 + ndim])
    datatype = fields[19]
    if datatype not in _DTYPES:
        raise NiftiError(f"unsupported NIfTI datatype code {datatype}")
    dtype = _DTYPES[datatype]
    pixdim_all = fields[22:30]
    pixdim = tuple(float(p) for p in pixdim_all[1:1 + ndim])
    vox_offset = int(fields[30])
    scl_slope = float(fields[31])
    scl_inter = float(fields[32])
    descrip = fields[42].split(b"\x00", 1)[0].decode("ascii", "replace")

    n_elements = 1
    for d in shape:
        n_elements *= d
    expected = n_elements * dtype.itemsize
    data_block = raw[vox_offset:vox_offset + expected]
    if len(data_block) != expected:
        raise NiftiError(
            f"truncated data block: expected {expected} bytes,"
            f" got {len(data_block)}"
        )
    data = np.frombuffer(data_block, dtype=dtype).reshape(shape, order="F").copy()
    return NiftiImage(
        data,
        pixdim=pixdim,
        descrip=descrip,
        scl_slope=scl_slope if scl_slope != 0.0 else 1.0,
        scl_inter=scl_inter,
    )
