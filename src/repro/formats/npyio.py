"""Pickled-NumPy staging objects.

Both the Spark and Myria implementations in the paper stage the
neuroscience data as pickled NumPy arrays on S3 before ingest
(Section 4.2: "we first convert the NIfTI files into NumPy arrays that
we stage on Amazon S3"; Section 5.2.1: "we persist as pickled NumPy
files per image in S3").  These helpers are the real serialization plus
the nominal-size accounting used by the ingest cost model.
"""

import pickle

import numpy as np

#: Pickle protocol-2+ framing overhead per array, measured empirically;
#: tiny relative to image volumes but kept for honesty.
PICKLE_OVERHEAD_BYTES = 163


def pickle_array(array):
    """Serialize an ndarray to bytes (what a worker would upload)."""
    return pickle.dumps(np.asarray(array), protocol=pickle.HIGHEST_PROTOCOL)


def unpickle_array(blob):
    """Deserialize bytes produced by :func:`pickle_array`."""
    array = pickle.loads(blob)
    if not isinstance(array, np.ndarray):
        raise TypeError(f"expected pickled ndarray, got {type(array)!r}")
    return array


def pickled_nominal_bytes(nominal_elements, itemsize):
    """Nominal on-S3 size of one pickled volume at paper scale."""
    return int(nominal_elements) * int(itemsize) + PICKLE_OVERHEAD_BYTES
