"""FITS reader/writer, implemented from the format specification.

FITS (Flexible Image Transport System) is "the astronomical image and
table format" used by the paper's astronomy use case (Section 3.2.1):
each sensor exposure is a FITS file whose data block holds three 2-D
arrays (flux, variance, mask per pixel).

The implementation covers image HDUs: a primary HDU plus any number of
``XTENSION = 'IMAGE'`` extensions.  Headers are sequences of 80-byte
cards in 2880-byte blocks; data are big-endian arrays padded to
2880-byte boundaries, exactly per the standard.
"""

import io

import numpy as np

BLOCK_SIZE = 2880
CARD_SIZE = 80

#: BITPIX code -> NumPy dtype (big-endian on disk per the standard).
_BITPIX_DTYPES = {
    8: np.dtype(">u1"),
    16: np.dtype(">i2"),
    32: np.dtype(">i4"),
    64: np.dtype(">i8"),
    -32: np.dtype(">f4"),
    -64: np.dtype(">f8"),
}
_DTYPE_BITPIX = {
    np.dtype(np.uint8): 8,
    np.dtype(np.int16): 16,
    np.dtype(np.int32): 32,
    np.dtype(np.int64): 64,
    np.dtype(np.float32): -32,
    np.dtype(np.float64): -64,
}


class FitsError(Exception):
    """Malformed or unsupported FITS content."""


def _format_value(value):
    """Render a header value in FITS fixed format."""
    if isinstance(value, bool):
        return "T".rjust(20) if value else "F".rjust(20)
    if isinstance(value, int):
        return str(value).rjust(20)
    if isinstance(value, float):
        text = f"{value:.10G}"
        if "." not in text and "E" not in text and "N" not in text:
            text += "."
        return text.rjust(20)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped:<8}'"
    raise FitsError(f"unsupported header value type: {type(value)!r}")


def _make_card(keyword, value=None, comment=""):
    keyword = keyword.upper()
    if len(keyword) > 8:
        raise FitsError(f"FITS keyword too long: {keyword!r}")
    if keyword in ("COMMENT", "HISTORY", "END", ""):
        card = f"{keyword:<8}{comment}"
    else:
        card = f"{keyword:<8}= {_format_value(value)}"
        if comment:
            card += f" / {comment}"
    if len(card) > CARD_SIZE:
        card = card[:CARD_SIZE]
    return card.ljust(CARD_SIZE).encode("ascii")


def _parse_value(text):
    text = text.strip()
    if not text:
        return None
    if text.startswith("'"):
        # String value: find the closing quote, honoring '' escapes.
        body = text[1:]
        chars = []
        i = 0
        while i < len(body):
            if body[i] == "'":
                if i + 1 < len(body) and body[i + 1] == "'":
                    chars.append("'")
                    i += 2
                    continue
                break
            chars.append(body[i])
            i += 1
        return "".join(chars).rstrip()
    if text == "T":
        return True
    if text == "F":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


class FitsHDU:
    """One header-data unit: an ordered header plus an optional array."""

    def __init__(self, data=None, header=None, name=None):
        if data is not None:
            data = np.asarray(data)
            canonical = data.dtype.newbyteorder("=")
            if np.dtype(canonical) not in _DTYPE_BITPIX:
                raise FitsError(f"unsupported dtype for FITS image: {data.dtype}")
        self.data = data
        self.header = dict(header or {})
        if name is not None:
            self.header["EXTNAME"] = name

    @property
    def name(self):
        """The EXTNAME header value, if any."""
        return self.header.get("EXTNAME")

    def __repr__(self):
        shape = None if self.data is None else self.data.shape
        return f"FitsHDU(name={self.name!r}, shape={shape})"


class FitsFile:
    """A FITS file: a primary HDU followed by image extensions."""

    def __init__(self, hdus=None):
        self.hdus = list(hdus or [])
        if not self.hdus:
            self.hdus.append(FitsHDU())

    def __getitem__(self, key):
        if isinstance(key, int):
            return self.hdus[key]
        for hdu in self.hdus:
            if hdu.name == key:
                return hdu
        raise KeyError(f"no HDU named {key!r}")

    def __len__(self):
        return len(self.hdus)

    def append(self, hdu):
        """Add an HDU to the file."""
        self.hdus.append(hdu)


def _pad(payload):
    remainder = len(payload) % BLOCK_SIZE
    if remainder:
        payload += b"\x00" * (BLOCK_SIZE - remainder)
    return payload


def _encode_hdu(hdu, primary):
    cards = []
    if primary:
        cards.append(_make_card("SIMPLE", True, "conforms to FITS standard"))
    else:
        cards.append(_make_card("XTENSION", "IMAGE", "image extension"))
    if hdu.data is None:
        cards.append(_make_card("BITPIX", 8))
        cards.append(_make_card("NAXIS", 0))
    else:
        canonical = np.dtype(hdu.data.dtype.newbyteorder("="))
        cards.append(_make_card("BITPIX", _DTYPE_BITPIX[canonical]))
        cards.append(_make_card("NAXIS", hdu.data.ndim))
        # FITS axis order is reversed relative to the array shape.
        for i, dim in enumerate(reversed(hdu.data.shape)):
            cards.append(_make_card(f"NAXIS{i + 1}", int(dim)))
    if not primary:
        cards.append(_make_card("PCOUNT", 0))
        cards.append(_make_card("GCOUNT", 1))
    for keyword, value in hdu.header.items():
        cards.append(_make_card(keyword, value))
    cards.append(_make_card("END"))
    header_bytes = _pad(b"".join(cards) + b" " * 0)

    if hdu.data is None:
        return header_bytes
    canonical = np.dtype(hdu.data.dtype.newbyteorder("="))
    disk_dtype = _BITPIX_DTYPES[_DTYPE_BITPIX[canonical]]
    data_bytes = np.ascontiguousarray(hdu.data, dtype=disk_dtype).tobytes()
    return header_bytes + _pad(data_bytes)


def write_fits(fits_file, path_or_buf):
    """Write a :class:`FitsFile` to a path or binary buffer."""
    chunks = []
    for index, hdu in enumerate(fits_file.hdus):
        chunks.append(_encode_hdu(hdu, primary=(index == 0)))
    payload = b"".join(chunks)
    if isinstance(path_or_buf, (str, bytes)):
        with open(path_or_buf, "wb") as f:
            f.write(payload)
        return None
    path_or_buf.write(payload)
    return None


def fits_bytes(fits_file):
    """Fits bytes."""
    buf = io.BytesIO()
    write_fits(fits_file, buf)
    return buf.getvalue()


def _read_header(raw, offset):
    """Parse one header: returns (cards dict in order, new offset)."""
    cards = {}
    while True:
        if offset + BLOCK_SIZE > len(raw):
            raise FitsError("unexpected end of file inside header")
        block = raw[offset:offset + BLOCK_SIZE]
        offset += BLOCK_SIZE
        for i in range(0, BLOCK_SIZE, CARD_SIZE):
            card = block[i:i + CARD_SIZE].decode("ascii", "replace")
            keyword = card[:8].strip()
            if keyword == "END":
                return cards, offset
            if not keyword or keyword in ("COMMENT", "HISTORY"):
                continue
            if card[8:10] != "= ":
                continue
            body = card[10:]
            if "'" not in body and "/" in body:
                body = body.split("/", 1)[0]
            elif "'" in body:
                # Comment may follow the closing quote.
                close = body.find("'", body.find("'") + 1)
                while close != -1 and close + 1 < len(body) and body[close + 1] == "'":
                    close = body.find("'", close + 2)
                if close != -1 and "/" in body[close:]:
                    body = body[:close + 1 + body[close:].find("/") - 0]
                    body = body.split("/", 1)[0] if "/" in body[close + 1:] else body
            cards[keyword] = _parse_value(body)


def read_fits(path_or_buf):
    """Read a FITS file (primary HDU + image extensions)."""
    if isinstance(path_or_buf, (str, bytes)):
        with open(path_or_buf, "rb") as f:
            raw = f.read()
    else:
        raw = path_or_buf.read()

    hdus = []
    offset = 0
    first = True
    while offset < len(raw):
        # Skip any padding-only tail.
        if not raw[offset:offset + CARD_SIZE].strip(b"\x00 "):
            break
        cards, offset = _read_header(raw, offset)
        if first:
            if cards.get("SIMPLE") is not True:
                raise FitsError("primary HDU missing SIMPLE = T")
            first = False
        bitpix = cards.get("BITPIX")
        naxis = cards.get("NAXIS", 0)
        data = None
        if naxis:
            if bitpix not in _BITPIX_DTYPES:
                raise FitsError(f"unsupported BITPIX {bitpix}")
            shape = tuple(
                int(cards[f"NAXIS{i}"]) for i in range(naxis, 0, -1)
            )
            count = 1
            for d in shape:
                count *= d
            dtype = _BITPIX_DTYPES[bitpix]
            nbytes = count * dtype.itemsize
            blob = raw[offset:offset + nbytes]
            if len(blob) != nbytes:
                raise FitsError(
                    f"truncated data: expected {nbytes} bytes, got {len(blob)}"
                )
            data = np.frombuffer(blob, dtype=dtype).reshape(shape)
            data = data.astype(dtype.newbyteorder("="))
            padded = nbytes + (-nbytes) % BLOCK_SIZE
            offset += padded
        reserved = {
            "SIMPLE", "XTENSION", "BITPIX", "NAXIS", "PCOUNT", "GCOUNT",
        } | {f"NAXIS{i}" for i in range(1, (naxis or 0) + 1)}
        header = {k: v for k, v in cards.items() if k not in reserved}
        hdus.append(FitsHDU(data=data, header=header))
    if not hdus:
        raise FitsError("no HDUs found")
    return FitsFile(hdus)
