"""Rewrite-rule engine over :class:`~repro.plan.ir.LogicalPlan`.

The optimizer applies a catalog of semantics-preserving rewrite rules
(`repro.plan.rules`) to fixpoint under a bounded pass budget.  Each rule
is *match + apply + cost-guard*: ``sites()`` enumerates candidate
rewrite sites, ``apply()`` produces a rewritten (and re-validated) plan,
and the optimizer keeps the rewrite only when the cost guard says the
target engine strictly benefits.  Every accepted rewrite is recorded in
a :class:`RuleFiring` trace, so `harness optimize` can explain exactly
what the compiler did and why — the raco ``rules.py``/``opt_rules``
shape, scaled to this repo's IR.

Guards are deliberately conservative: a rewrite that an engine cannot
exploit (Spark already pipelines narrow chains into stages; Myria
pipelines operators within a fragment) estimates as cost-neutral and is
*rejected*, leaving the plan byte-identical to the naive one.  That is
what makes ``optimized makespan <= naive`` a guarantee rather than a
hope: only strictly-winning rewrites survive.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Default bound on full rule-catalog passes before the optimizer stops
#: (a safety valve; real plans reach fixpoint in one or two passes).
MAX_PASSES = 8


@dataclass(frozen=True)
class RuleFiring:
    """One accepted rewrite, for the firing trace."""

    rule: str                    # rule name
    pass_no: int                 # which fixpoint pass fired it
    site: Tuple[str, ...]        # op ids the rewrite touched
    detail: str                  # human-readable description
    saving: Optional[float] = None   # estimated seconds saved (guarded mode)

    def as_row(self):
        """Row form for snapshots and CLI tables."""
        return {
            "rule": self.rule,
            "pass": self.pass_no,
            "site": list(self.site),
            "detail": self.detail,
            "saving_s": self.saving,
        }


@dataclass(frozen=True)
class OptimizationResult:
    """An optimized plan plus the trace of how it got that way."""

    plan: "LogicalPlan"
    firings: Tuple[RuleFiring, ...] = ()
    engine: Optional[str] = None
    passes: int = 0

    @property
    def changed(self):
        """Changed."""
        return bool(self.firings)

    def fingerprint(self):
        """Stable hash of the optimization outcome.

        Joins the trial cache key so optimized and naive runs of the
        same figure coexist in both cache tiers.  An empty trace hashes
        to a stable "unchanged" token, distinct from the naive path not
        passing any optimizer descriptor at all.
        """
        doc = json.dumps(
            {
                "engine": self.engine,
                "firings": [f.as_row() for f in self.firings],
                "plan": sorted(self.plan.fingerprints().items()),
            },
            sort_keys=True,
            default=repr,
        )
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()

    def trace_rows(self):
        """Trace rows."""
        return [f.as_row() for f in self.firings]


class RewriteRule:
    """Base class: match + apply (+ describe) for one rewrite."""

    #: Rule name used in firing traces; subclasses override.
    name = "rule"

    def sites(self, plan):
        """Candidate rewrite sites, each a tuple of op ids."""
        raise NotImplementedError

    def apply(self, plan, site):
        """Rewrite ``plan`` at ``site``; returns a *validated* new plan."""
        raise NotImplementedError

    def describe(self, plan, site):
        """One-line description of the rewrite at ``site``."""
        return f"{self.name} at {site}"


class CostGuard:
    """Decides whether a candidate rewrite is kept.

    ``estimate(plan)`` prices a whole plan in estimated simulated
    seconds for the guard's engine; ``accepts`` keeps a rewrite only on
    strict improvement beyond a tiny epsilon (so float noise can never
    flip a neutral rewrite into an accepted one).
    """

    epsilon = 1e-9

    def __init__(self, estimate, engine=None):
        self._estimate = estimate
        self.engine = engine

    def estimate(self, plan):
        """Estimate."""
        return float(self._estimate(plan))

    def accepts(self, before, after):
        """Returns the estimated saving if strictly positive, else None."""
        saving = self.estimate(before) - self.estimate(after)
        if saving > self.epsilon:
            return saving
        return None


def structural_guard():
    """Engine-agnostic guard: fewer/cheaper ops win.

    Used when optimizing without an engine target (tests, the `harness
    optimize` explain view): prices a plan by op count with materialize
    weighted heaviest, so elision/CSE/fusion all register as wins while
    pushdown — which only reorders — is accepted via its own structural
    preference (a filter earlier in the chain counts fractionally less).
    """
    weights = {"materialize": 4.0, "group_by": 2.0}

    def estimate(plan):
        total = 0.0
        for index, op in enumerate(plan.ops):
            weight = weights.get(op.kind, 1.0)
            if op.kind == "filter":
                # Earlier filters are better: weight grows with depth.
                weight = 1.0 + 0.01 * index
            total += weight
        return total

    return CostGuard(estimate, engine=None)


class Optimizer:
    """Applies a rule catalog to fixpoint under a pass budget."""

    def __init__(self, rules, max_passes=MAX_PASSES):
        self.rules = tuple(rules)
        self.max_passes = max_passes

    def optimize(self, plan, guard=None):
        """Rewrite ``plan`` to fixpoint; returns :class:`OptimizationResult`.

        Each pass offers every rule every current site; a rewrite is
        kept only when the guard accepts it.  The pass loop ends when a
        full pass accepts nothing or the pass budget runs out.
        """
        if guard is None:
            guard = structural_guard()
        current = plan
        firings = []
        passes = 0
        for pass_no in range(1, self.max_passes + 1):
            passes = pass_no
            fired_this_pass = False
            for rule in self.rules:
                # Re-enumerate after every accepted rewrite: sites are
                # positional and a rewrite invalidates its siblings.
                while True:
                    accepted = False
                    for site in rule.sites(current):
                        candidate = rule.apply(current, site)
                        saving = guard.accepts(current, candidate)
                        if saving is None:
                            continue
                        firings.append(RuleFiring(
                            rule=rule.name,
                            pass_no=pass_no,
                            site=tuple(site),
                            detail=rule.describe(current, site),
                            saving=saving,
                        ))
                        current = candidate
                        accepted = True
                        fired_this_pass = True
                        break
                    if not accepted:
                        break
            if not fired_this_pass:
                break
        return OptimizationResult(
            plan=current,
            firings=tuple(firings),
            engine=guard.engine,
            passes=passes,
        )


def default_optimizer():
    """The standard rule catalog, in application order."""
    from repro.plan.rules import DEFAULT_RULES

    return Optimizer(DEFAULT_RULES)


def optimize_for(plan, engine, profile=None, cost_model=None):
    """Optimize ``plan`` for one engine under its calibrated cost guard.

    ``profile`` describes the workload's nominal sizes (see
    :mod:`repro.plan.route`); without one a generic unit profile is
    used, which preserves the guard's *relative* judgments (per-task
    overheads and duplication factors) even if absolute seconds are
    meaningless.
    """
    from repro.plan.route import engine_guard

    guard = engine_guard(engine, profile=profile, cost_model=cost_model)
    return default_optimizer().optimize(plan, guard=guard)


def optimize_logical(plan):
    """Optimize ``plan`` with the engine-agnostic structural guard."""
    return default_optimizer().optimize(plan)
