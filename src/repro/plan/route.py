"""Cost-based engine routing over logical plans.

Two jobs live here:

1. :func:`estimate_plan_cost` — an analytic per-engine estimator over
   the same calibrated :class:`~repro.cluster.costs.CostModel` constants
   the trial cache keys on.  It prices a plan as
   ``startup + ingest + compute/parallelism + engine taxes`` where the
   taxes are each engine's structural signature: Spark's per-stage
   Python-boundary serialization, Dask's serial task dispatch and
   per-subject placement pinning, Myria's per-tuple operator overhead,
   TF's tensor conversion, SciDB's CSV/stream path.  The estimator is
   coarse in absolute terms; what the router and the optimizer's cost
   guards need from it is *ordering* (which engine is cheapest, whether
   a rewrite strictly helps a given engine), and the structural terms
   carry exactly those distinctions.

2. :func:`choose_engine` — Table-1-style routing: engines whose
   lowering cannot produce the plan's outputs (SciDB and TensorFlow
   refusals) are hard constraints, never cost entries; the cheapest
   fully-capable engine wins.

The estimator is also where fusion profitability is decided per engine:
Dask charges ``dask_task_overhead`` per graph node so collapsing a
narrow 1:1 chain strictly helps, while a fan-out ``flat_map`` that Dask
lowers one-task-per-output-element (``repart``'s per-block split) would
*duplicate* upstream member work — the estimator prices that
duplication, and the guard therefore rejects the rewrite.  Spark fuses
narrow chains into stages natively and Myria pipelines operators within
a fragment, so for them the same rewrite estimates neutral and is
rejected, keeping their optimized plans byte-identical to naive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cluster.costs import DEFAULT_COST_MODEL
from repro.plan.ir import fused_members

#: Engines the router may consider, in deterministic order.
ROUTABLE_ENGINES = ("dask", "myria", "spark", "scidb", "tensorflow")

#: (plan name, engine) -> (support level, reason).  Mirrors the paper's
#: Table 1: "full" lowers every op, "partial" stops mid-plan (NA/X
#: cells), and partial engines are hard refusals for end-to-end routing.
ENGINE_SUPPORT = {
    ("neuro", "spark"): ("full", "Figure 6 chain"),
    ("neuro", "dask"): ("full", "Figure 8 delayed graphs"),
    ("neuro", "myria"): ("full", "MyriaL + Python UDF/UDA"),
    ("neuro", "scidb"): (
        "partial", "stops after denoise: no model-fitting support (Table 1 X)"
    ),
    ("neuro", "tensorflow"): (
        "partial", "per-step graphs only; no end-to-end pipeline (Table 1 X)"
    ),
    ("astro", "spark"): ("full", "RDD lowering"),
    ("astro", "dask"): (
        "full", "runs here; excluded from the paper's charts (Section 4.4)"
    ),
    ("astro", "myria"): ("full", "MyriaL band queries"),
    ("astro", "scidb"): (
        "partial", "ingest + coadd subset only (Table 1 NA)"
    ),
    ("astro", "tensorflow"): (
        "na", "no TensorFlow lowering exists (Table 1 NA)"
    ),
}

#: Fraction of voxels inside the brain mask, used to scale the masked
#: kernels (denoise, model fit) before any mask is computed.  Calibrated
#: to the synthetic subjects' brain fraction (the harness blame ledger
#: shows ~121 s per denoised volume at nominal scale, which pins this
#: at 0.11 given ``nlmeans_per_voxel``).
NOMINAL_MASK_FRACTION = 0.11

#: Multiplier on kernel time for engines that evaluate per-record UDFs
#: across a language boundary.  Spark ships every record through the
#: JVM<->Python pipe around each UDF invocation (the Figure 12a story);
#: calibrated against the quick-profile blame ledger (Spark's
#: denoise-bearing stage runs ~1.6x Myria's on identical records).
KERNEL_FACTOR = {"spark": 1.6}

#: Effective slots one Dask chain (subject/visit) can recruit: its
#: pinned node's slots plus a work-stealing radius of about half a
#: neighbor.  Ingest placement pins each chain's graph to the node that
#: downloaded it; stealing moves only some leaf tasks off it.
DASK_CHAIN_SLOTS = 12

#: Effective cluster-wide slots Dask brings to bear before chains start
#: queueing.  Data-resident placement concentrates the graphs on the
#: few nodes that ingested them (the quick blame ledger shows ~90% of
#: tasks landing on one worker group), so the usable pool saturates
#: well below ``n_nodes x slots``.
DASK_EFFECTIVE_POOL = 24


def supports(plan_name, engine):
    """Support level + reason for one (plan, engine) pair.

    Unknown plans (fragments keep their parent plan's name; synthetic
    test plans do not) default to "full" — routing constraints encode
    Table 1 knowledge about the two real pipelines only.
    """
    return ENGINE_SUPPORT.get((plan_name, engine), ("full", "no constraint"))


# ----------------------------------------------------------------------
# Workload profiles
# ----------------------------------------------------------------------

DEFAULT_PROFILE = {
    "n_chains": 1,          # independent input groups (subjects / visits)
    "items_per_chain": 1,   # records per chain at the scan
    "bytes_per_item": 64.0,
    "elements_per_item": 8.0,
    "selectivity": {},      # filter op_id -> fraction kept
    "groups": {},           # group_by op_id -> group count
    "op_seconds": {},       # op_id -> seconds per input record (override)
    "chain_width": {},      # op_id -> records of one chain that run in
                            # parallel (overrides default_chain_width)
    "default_chain_width": None,  # None = all of a chain's records
    "samples_per_voxel": None,    # nominal measurements per voxel (fit)
}


def neuro_profile(subjects):
    """Profile of a neuro workload from its (already built) subjects."""
    import numpy as np

    from repro.data.neuro import NEURO_VOLUME_SHAPE

    elements = float(np.prod(NEURO_VOLUME_SHAPE))
    n_volumes = subjects[0].n_volumes if subjects else 1
    if subjects:
        # Each real volume stands in for a bundle of nominal volumes so
        # per-record sizes stay at paper scale (Subject.bundle).
        elements *= subjects[0].bundle
        b0 = float(np.mean([s.gtab.b0s_mask.mean() for s in subjects]))
    else:
        b0 = 0.1
    return {
        "n_chains": max(1, len(subjects)),
        "items_per_chain": n_volumes,
        "bytes_per_item": elements * 8.0,
        "elements_per_item": elements,
        "selectivity": {"b0": b0},
        "groups": {
            "mean_b0": max(1, len(subjects)),
            "regroup": max(1, len(subjects)) * 8,
        },
        "op_seconds": {},
        # Every lowering parallelizes a subject per volume record, so a
        # chain's width at any op is its record count (the default).
        "chain_width": {},
        "default_chain_width": None,
        "samples_per_voxel": n_volumes * (subjects[0].bundle if subjects
                                          else 1),
    }


def astro_profile(visits):
    """Profile of an astro workload from its (already built) visits."""
    import numpy as np

    from repro.data.astro import ASTRO_SENSOR_SHAPE

    pixels = float(np.prod(ASTRO_SENSOR_SHAPE))
    n_sensors = len(visits[0].exposures) if visits else 1
    n_visits = max(1, len(visits))
    # Each sensor exposure overlaps a handful of sky patches; the exact
    # count is geometry, four is the structural estimate.
    patches = max(1, n_sensors * 4)
    return {
        "n_chains": n_visits,
        "items_per_chain": n_sensors,
        "bytes_per_item": pixels * 8.0,
        "elements_per_item": pixels,
        "selectivity": {},
        "groups": {
            "stitch": patches * n_visits,
            "coadd": patches,
        },
        "op_seconds": {},
        # Every lowering processes a visit as one pipelined band
        # (Myria's per-visit band queries, Dask's pinned per-visit
        # graphs, Spark's per-visit partitions), so within a chain the
        # ops run serially — width 1, chains parallel across the
        # cluster.  The quick blame ledger confirms: preprocess elapsed
        # equals n_sensors x its per-exposure kernel time on all three
        # engines.
        "chain_width": {},
        "default_chain_width": 1,
        "samples_per_voxel": None,
    }


# ----------------------------------------------------------------------
# Kernel pricing (shared across engines)
# ----------------------------------------------------------------------

def _kernel_seconds(member, card_in, profile, cm):
    """Estimated seconds per *input record* of one member op's kernel."""
    override = profile["op_seconds"].get(member.op_id)
    if override is not None:
        return float(override)
    elements = profile["elements_per_item"]
    nbytes = profile["bytes_per_item"]
    kernel = member.param("kernel") or member.param("agg")
    if kernel in ("nlmeans_3d",):
        return elements * NOMINAL_MASK_FRACTION * cm.nlmeans_per_voxel
    if kernel in ("median_otsu",):
        return elements * 30.0 * cm.otsu_per_voxel
    if kernel in ("fit_dtm",):
        samples = profile.get("samples_per_voxel") or profile["items_per_chain"]
        blocks_per_chain = max(
            1, _group_fan(profile, "regroup") // max(1, profile["n_chains"])
        )
        block_elements = elements / blocks_per_chain
        return (
            block_elements * samples * NOMINAL_MASK_FRACTION
            * cm.dtm_fit_per_voxel_sample
        )
    if kernel in ("split_volume_blocks",):
        return nbytes * cm.memcpy_per_byte
    if kernel in ("mean_volume", "stack_volumes", "stitch_pieces"):
        return elements * cm.elementwise_per_element
    if kernel in ("preprocess_exposure",):
        return elements * cm.astro_preprocess_per_pixel
    if kernel in ("patch_pieces",):
        return elements * cm.astro_patch_per_pixel
    if kernel in ("coadd_patch",):
        iters = float(member.param("n_iter", 3))
        depth = profile["n_chains"]
        return elements * iters * depth * cm.coadd_iteration_per_pixel
    if kernel in ("detect",):
        return elements * cm.source_detect_per_pixel
    return 0.0


def _group_fan(profile, op_id):
    return profile["groups"].get(op_id, profile["n_chains"])


def _expansion(op):
    """Per-input fan-out of a flat_map lowered one-task-per-element."""
    if op.kind != "flat_map":
        return 1
    return int(op.param("n_blocks") or 1)


# ----------------------------------------------------------------------
# The estimator
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CostEstimate:
    """One engine's estimated breakdown for a plan."""

    engine: str
    total: float
    startup: float
    ingest: float
    compute: float
    tax: float

    def as_row(self):
        """Row form for CLI tables and snapshots."""
        return {
            "engine": self.engine,
            "total_s": self.total,
            "startup_s": self.startup,
            "ingest_s": self.ingest,
            "compute_s": self.compute,
            "tax_s": self.tax,
        }


def _walk(plan, profile):
    """Yield ``(carrier, member, card_in, card_out, dup, is_last)``.

    ``dup`` is the work-duplication factor a one-task-per-output-element
    lowering pays for this member: the product of the fan-outs of any
    later flat_map members *inside the same carrier*.  ``is_last`` marks
    the carrier's final member (the one whose output becomes a task).
    """
    cards = {}
    for carrier in plan.ops:
        members = fused_members(carrier)
        expansions = [_expansion(m) for m in members]
        for index, member in enumerate(members):
            if member.kind == "scan":
                card_in = profile["n_chains"] * profile["items_per_chain"]
                card_out = card_in
            else:
                parent = member.parents[0] if member.parents else None
                card_in = cards.get(parent, profile["n_chains"])
                card_out = card_in
                if member.kind == "filter":
                    card_out = card_in * profile["selectivity"].get(
                        member.op_id, 1.0
                    )
                elif member.kind == "flat_map":
                    card_out = card_in * max(1, _expansion(member))
                elif member.kind == "group_by":
                    card_out = _group_fan(profile, member.op_id)
            dup = 1
            for later in expansions[index + 1:]:
                dup *= max(1, later)
            cards[member.op_id] = card_out
            yield carrier, member, card_in, card_out, dup, (
                index == len(members) - 1
            )
        cards[carrier.op_id] = cards[members[-1].op_id]


def estimate_plan_cost(plan, engine, profile=None, cost_model=None,
                       n_nodes=16, slots_per_node=8):
    """Estimated simulated seconds for ``plan`` on ``engine``.

    Returns a :class:`CostEstimate`; see the module docstring for what
    the terms model and what the estimate is (and is not) good for.
    """
    cm = cost_model or DEFAULT_COST_MODEL
    prof = dict(DEFAULT_PROFILE)
    prof.update(profile or {})
    total_slots = n_nodes * slots_per_node

    startup = {
        "spark": cm.spark_job_startup,
        "myria": cm.myria_query_startup,
        "dask": cm.dask_job_startup,
        "tensorflow": cm.tf_session_startup,
        "scidb": cm.scidb_query_startup,
    }.get(engine, 0.0)

    # -- shared ingest: every engine pulls the scan bytes from S3 ------
    scan_items = prof["n_chains"] * prof["items_per_chain"]
    scan_bytes = scan_items * prof["bytes_per_item"]
    ingest = scan_bytes / (cm.s3_bandwidth_per_node * n_nodes)
    ingest += cm.s3_request_latency * scan_items / max(1, total_slots)

    # -- engine parallelism model --------------------------------------
    # Two caps bound each op's effective parallelism: the engine's slot
    # pool, and how wide one chain's records can spread on this engine.
    if engine == "dask":
        # Ingest placement pins one chain (subject/visit) per node; the
        # graph stays resident where it was downloaded and work stealing
        # moves only a fringe of tasks off that node.
        pool = min(total_slots, DASK_EFFECTIVE_POOL)
        chain_cap = DASK_CHAIN_SLOTS
    elif engine == "myria":
        pool = chain_cap = n_nodes * 4  # worker processes, one slot each
    else:
        pool = chain_cap = total_slots
    factor = KERNEL_FACTOR.get(engine, 1.0)

    compute = 0.0
    tax = 0.0
    n_tasks_dask = 0.0
    tuples_myria = 0.0
    n_stages_spark = 1
    n_chains = max(1, prof["n_chains"])
    for carrier, member, card_in, card_out, dup, is_last in _walk(plan, prof):
        sec = _kernel_seconds(member, card_in, prof, cm) * factor
        if sec > 0.0 and card_in > 0.0:
            # Records of one chain that this op can run concurrently.
            width = prof["chain_width"].get(
                member.op_id, prof.get("default_chain_width")
            )
            if width is None:
                width = max(1.0, card_in / n_chains)
            eff = min(pool, n_chains * min(width, chain_cap))
            waves = math.ceil(card_in / max(1.0, eff))
            compute += sec * dup * waves
        if engine == "dask" and is_last and carrier.kind not in (
            "materialize", "broadcast"
        ):
            n_tasks_dask += max(1.0, card_out)
        if engine == "myria" and member.kind != "materialize":
            tuples_myria += card_in
        if engine == "spark" and member.kind in ("group_by", "materialize"):
            n_stages_spark += 1

    if engine == "spark":
        tax += n_stages_spark * cm.spark_task_overhead
        # Each stage boundary ships the live dataset across the
        # JVM<->Python pipe (and pickles it), spread over the nodes.
        tax += n_stages_spark * (
            cm.python_boundary_time(scan_bytes) + cm.pickle_time(scan_bytes)
        ) / max(1, n_nodes)
    elif engine == "dask":
        # Centralized dispatch releases tasks serially.
        tax += n_tasks_dask * cm.dask_task_overhead
    elif engine == "myria":
        tax += tuples_myria * cm.myria_operator_overhead / max(1, pool)
        tax += tuples_myria * cm.myria_insert_per_tuple / max(1, pool)
    elif engine == "tensorflow":
        tax += cm.tensor_convert_time(scan_bytes) / max(1, n_nodes)
        tax += len(plan.ops) * cm.tf_step_overhead
    elif engine == "scidb":
        tax += (scan_bytes / cm.csv_encode_bandwidth) / max(1, n_nodes)
        tax += (scan_bytes / cm.scidb_from_array_bandwidth) / max(1, n_nodes)

    total = startup + ingest + compute + tax
    return CostEstimate(
        engine=engine,
        total=total,
        startup=startup,
        ingest=ingest,
        compute=compute,
        tax=tax,
    )


# ----------------------------------------------------------------------
# Optimizer cost guards
# ----------------------------------------------------------------------

def engine_guard(engine, profile=None, cost_model=None, n_nodes=16,
                 slots_per_node=8):
    """A :class:`~repro.plan.opt.CostGuard` pricing plans for one engine."""
    from repro.plan.opt import CostGuard

    def estimate(plan):
        return estimate_plan_cost(
            plan, engine, profile=profile, cost_model=cost_model,
            n_nodes=n_nodes, slots_per_node=slots_per_node,
        ).total

    return CostGuard(estimate, engine=engine)


# ----------------------------------------------------------------------
# The router
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RoutingDecision:
    """Outcome of routing one plan: chosen engine + the full table."""

    engine: str
    estimates: Tuple[CostEstimate, ...]
    refusals: Dict[str, str]

    def as_rows(self):
        """Serializable routing table (refusals carry no estimate)."""
        rows = [dict(e.as_row(), chosen=(e.engine == self.engine))
                for e in self.estimates]
        rows.extend(
            {"engine": engine, "refused": reason}
            for engine, reason in sorted(self.refusals.items())
        )
        return rows


def choose_engine(plan, profile=None, cost_model=None, n_nodes=16,
                  slots_per_node=8, candidates=None):
    """Pick the cheapest fully-capable engine for ``plan``.

    SciDB/TF partial lowerings are Table-1 hard constraints: they are
    reported as refusals, never priced.  Raises :class:`ValueError`
    when no candidate engine can run the plan at all.
    """
    candidates = tuple(candidates or ROUTABLE_ENGINES)
    estimates = []
    refusals = {}
    for engine in candidates:
        level, reason = supports(plan.name, engine)
        if level != "full":
            refusals[engine] = reason
            continue
        estimates.append(estimate_plan_cost(
            plan, engine, profile=profile, cost_model=cost_model,
            n_nodes=n_nodes, slots_per_node=slots_per_node,
        ))
    if not estimates:
        raise ValueError(
            f"no engine can run plan {plan.name!r} end to end: {refusals}"
        )
    best = min(estimates, key=lambda e: (e.total, e.engine))
    return RoutingDecision(
        engine=best.engine,
        estimates=tuple(estimates),
        refusals=refusals,
    )
