"""Sub-trial memoization hook between lowerings and the harness.

A lowering backend wraps each *forcing* call — the execution of one
``materialize`` op's upstream sub-DAG — in :func:`materialize_scope`.
When the harness has installed a memo on the cluster
(``cluster.materialize_memo``, see ``repro.harness.memo``), the scope
opens a record-or-replay *window* keyed by the logical op's content
fingerprint plus everything else that determines the window's task
stream: the engine, the cluster shape, the engine-relevant cost
constants, and an ``extra`` descriptor the lowering builds from its
actual inputs (dataset identity, tuning knobs that change task
structure).  With no memo installed — every path outside the harness
cache — the scope is a no-op, so engines never pay for the hook.

Fault-injected runs never memoize: straggler slowdowns and S3 retry
backoff are sampled inside the execution the window would skip, so the
scope degrades to a no-op whenever the cluster has a fault plan
installed.  (This also means fault plans never need to enter the window
key.)

This module deliberately lives on the plan side and imports nothing
from ``repro.harness``: engines depend on plans, and the memo object is
duck-typed (``open_window``/``close_window``).
"""

import hashlib
from contextlib import contextmanager


def array_token(arr):
    """Content hash of a small numpy array (dtype, shape, raw bytes).

    Use this — never ``repr`` — when a window descriptor must include
    array data (masks, gradient tables): ``repr`` elides elements and
    would collide distinct inputs.
    """
    digest = hashlib.sha256()
    digest.update(str(arr.dtype).encode("utf-8"))
    digest.update(str(arr.shape).encode("utf-8"))
    digest.update(arr.tobytes())
    return digest.hexdigest()


def subject_token(subject):
    """Content descriptor of one neuro subject: id plus hashes of the
    diffusion data and gradient table (everything the pipelines read).

    Cached on the instance — subjects are immutable once generated and
    one grid re-describes the same subjects many times.
    """
    token = getattr(subject, "_memo_token", None)
    if token is None:
        token = {
            "subject_id": subject.subject_id,
            "data": array_token(subject.data.array),
            "bvals": array_token(subject.gtab.bvals),
            "bvecs": array_token(subject.gtab.bvecs),
        }
        subject._memo_token = token
    return token


def visit_token(visit):
    """Content descriptor of one astro visit: id plus per-exposure
    hashes of flux/variance/mask and the sky placement."""
    token = getattr(visit, "_memo_token", None)
    if token is None:
        token = {
            "visit_id": visit.visit_id,
            "exposures": [
                {
                    "sensor_id": exp.sensor_id,
                    "bundle": exp.bundle,
                    "flux": array_token(exp.flux),
                    "variance": array_token(exp.variance),
                    "mask": array_token(exp.mask),
                    "sky_box": repr(exp.sky_box),
                }
                for exp in visit.exposures
            ],
        }
        visit._memo_token = token
    return token


def gradient_token(gtabs):
    """Content descriptor of a ``{subject_id: GradientTable}`` map."""
    return {
        sid: {"bvals": array_token(g.bvals), "bvecs": array_token(g.bvecs)}
        for sid, g in sorted(gtabs.items())
    }


def mask_token(masks):
    """Content descriptor of a ``{subject_id: mask ndarray}`` map."""
    return {sid: array_token(m) for sid, m in sorted(masks.items())}


def _content_token(value):
    """Content hash of one staged object (volume or exposure)."""
    array = getattr(value, "array", None)
    if array is not None:  # SizedArray volume
        return {
            "array": array_token(array),
            "nominal_shape": list(value.nominal_shape),
            "meta": {k: repr(v) for k, v in sorted(value.meta.items())},
        }
    flux = getattr(value, "flux", None)
    if flux is not None:  # SensorExposure
        return {
            "sensor_id": value.sensor_id,
            "bundle": value.bundle,
            "flux": array_token(value.flux),
            "variance": array_token(value.variance),
            "mask": array_token(value.mask),
            "sky_box": repr(value.sky_box),
        }
    if isinstance(value, bytes):
        return hashlib.sha256(value).hexdigest()
    return repr(value)


def bucket_token(store, bucket, prefix=""):
    """Content descriptor of every staged object under a bucket prefix.

    Op-level cache entries outlive the trial that wrote them, so the
    window key cannot lean on trial kwargs: two trials with identical
    staged *keys* but different staged *content* (e.g. a different data
    scale) must never share a window.  Hashing the staged arrays is far
    cheaper than the pipeline compute the window replaces.
    """
    return [
        {
            "key": key,
            "nbytes": store.size_of(bucket, key),
            "content": _content_token(store.peek(bucket, key)),
        }
        for key in store.list_keys(bucket, prefix)
    ]


def _cluster_token(cluster):
    spec = cluster.spec
    return {
        "n_nodes": spec.n_nodes,
        "workers_per_node": spec.workers_per_node,
        "slots_per_worker": spec.slots_per_worker,
        "node": {
            "name": spec.node.name,
            "cores": spec.node.cores,
            "memory_bytes": spec.node.memory_bytes,
            "disk_bytes": spec.node.disk_bytes,
        },
    }


@contextmanager
def materialize_scope(cluster, plan, op_id, engine, extra=None):
    """Record or replay the execution window of ``plan``'s ``op_id``.

    No-op unless the harness installed ``cluster.materialize_memo``;
    also a no-op under fault injection and inside an already-open window
    (the outermost scope owns the whole stream).

    ``extra`` may be a callable returning the descriptor — pass a
    lambda when building it involves content hashing, so uncached runs
    (no memo installed) never pay for it.
    """
    memo = getattr(cluster, "materialize_memo", None)
    if (
        memo is None
        or getattr(cluster, "_faults", None) is not None
        or getattr(cluster, "memo_window", None) is not None
    ):
        yield
        return
    if callable(extra):
        extra = extra()
    descriptor = {
        "plan": plan.name,
        "op_id": op_id,
        "op": plan.fingerprint(op_id),
        "engine": engine,
        "cluster": _cluster_token(cluster),
        "extra": extra,
    }
    window = memo.open_window(descriptor, cluster.cost_model)
    if window is None:
        yield
        return
    cluster.memo_window = window
    try:
        yield
    except BaseException:
        window.abort()
        raise
    finally:
        cluster.memo_window = None
        memo.close_window(window)
