"""Logical dataflow IR shared by both scientific pipelines.

A :class:`LogicalPlan` is a small DAG of typed operators (``scan``,
``filter``, ``map``, ``flat_map``, ``group_by``, ``join``, ``broadcast``,
``materialize``).  Each pipeline (neuro, astro) is expressed exactly once
as a plan; every engine owns a lowering backend
(``repro.engines.<engine>.lowering``) that translates the plan into its
native execution model.  The plan carries only *logical* structure plus
format/partitioning metadata — kernel bodies, cost models, and physical
choices (shuffle placement, broadcast strategy, chunking) live in the
lowerings.

Operators carry two pieces of cross-cutting metadata the harness relies
on:

``step``
    the paper-facing pipeline step the op belongs to (``"Segmentation"``,
    ``"Co-addition"``, ...) — used by ``loc.py`` for Table 1 accounting.

``blame``
    required on every ``materialize``: the blame-category tag the
    engine must attach when it forces the result (``validate()`` lints
    this so an untagged materialization cannot ship).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

OP_KINDS = (
    "scan",
    "filter",
    "map",
    "flat_map",
    "group_by",
    "join",
    "broadcast",
    "materialize",
)

#: Pseudo-ops used by the attribution fold for physical work that maps
#: to no logical operator.  Real provenance ids are ``"<plan>/<op_id>"``
#: (see :func:`provenance_id`); the ``@`` prefix keeps these disjoint.
PSEUDO_OVERHEAD = "@overhead"
PSEUDO_RECOVERY = "@recovery"
PSEUDO_IDLE = "@idle"
PSEUDO_OPS = (PSEUDO_OVERHEAD, PSEUDO_RECOVERY, PSEUDO_IDLE)


def _fingerprint_canon(obj):
    """Canonical JSON for fingerprint documents (stable across runs)."""
    return json.dumps(obj, sort_keys=True, default=repr,
                      separators=(",", ":"))


def provenance_id(plan_name, op_id):
    """The stable provenance id of one logical op: ``"<plan>/<op_id>"``.

    This is the single definition every lowering backend references
    when tagging physical tasks, spans, and blame segments with the
    logical op that produced them.
    """
    return f"{plan_name}/{op_id}"


class PlanError(ValueError):
    """A logical plan failed validation."""


@dataclass(frozen=True)
class Op:
    """One typed operator in a logical plan."""

    op_id: str
    kind: str
    parents: Tuple[str, ...] = ()
    step: Optional[str] = None
    blame: Optional[str] = None
    uses: Tuple[str, ...] = ()
    params: Dict[str, object] = field(default_factory=dict)

    def param(self, name, default=None):
        return self.params.get(name, default)


def scan(op_id, *, step, format, **params):
    params["format"] = format
    return Op(op_id, "scan", (), step=step, params=params)


def filter_(op_id, parent, *, step, **params):
    return Op(op_id, "filter", (parent,), step=step, params=params)


def map_(op_id, parent, *, step, uses=(), **params):
    return Op(op_id, "map", (parent,), step=step, uses=tuple(uses),
              params=params)


def flat_map(op_id, parent, *, step, uses=(), **params):
    return Op(op_id, "flat_map", (parent,), step=step, uses=tuple(uses),
              params=params)


def group_by(op_id, parent, *, step, key, agg, partitions=None, **params):
    params.update({"key": key, "agg": agg, "partitions": partitions})
    return Op(op_id, "group_by", (parent,), step=step, params=params)


def join(op_id, left, right, *, step, on, **params):
    params["on"] = on
    return Op(op_id, "join", (left, right), step=step, params=params)


def broadcast(op_id, parent, *, step, **params):
    return Op(op_id, "broadcast", (parent,), step=step, params=params)


def materialize(op_id, parent, *, step, blame, **params):
    return Op(op_id, "materialize", (parent,), step=step, blame=blame,
              params=params)


@dataclass(frozen=True)
class LogicalPlan:
    """An ordered DAG of :class:`Op` nodes plus plan-level parameters."""

    name: str
    ops: Tuple[Op, ...]
    params: Dict[str, object] = field(default_factory=dict)

    def op(self, op_id):
        for op in self.ops:
            if op.op_id == op_id:
                return op
        raise KeyError(op_id)

    def chain(self, first, last):
        """The linear run of ops from ``first`` to ``last`` inclusive.

        Follows single-parent edges backward from ``last``; raises
        :class:`PlanError` if the segment branches or never reaches
        ``first``.
        """
        segment = [self.op(last)]
        while segment[-1].op_id != first:
            op = segment[-1]
            if len(op.parents) != 1:
                raise PlanError(
                    f"{self.name}: chain({first!r}, {last!r}) crosses "
                    f"non-linear op {op.op_id!r}"
                )
            segment.append(self.op(op.parents[0]))
        return tuple(reversed(segment))

    def children_of(self, op_id):
        return tuple(op for op in self.ops if op_id in op.parents)

    def provenance(self, op_id):
        """Stable provenance id of ``op_id`` (raises ``KeyError`` if the
        op does not exist in this plan)."""
        return provenance_id(self.name, self.op(op_id).op_id)

    def provenance_ids(self):
        """Provenance ids of every op, in plan order."""
        return tuple(provenance_id(self.name, op.op_id) for op in self.ops)

    def param(self, name, default=None):
        return self.params.get(name, default)

    def fingerprints(self):
        """op_id -> stable content fingerprint (sha256 hex) for every op.

        An op's fingerprint hashes its own identity (kind, params, step,
        blame) together with the fingerprints of its parents and
        broadcast side-inputs, plus the plan name and plan-level
        parameters.  Two ops agree iff their entire upstream sub-DAGs
        agree, so the fingerprint is the content address the op-level
        cache tier keys on.
        """
        fps = {}
        base = _fingerprint_canon({"plan": self.name, "params": self.params})
        for op in self.ops:
            doc = _fingerprint_canon({
                "base": base,
                "op": op.op_id,
                "kind": op.kind,
                "step": op.step,
                "blame": op.blame,
                "params": op.params,
                "parents": [fps[p] for p in op.parents],
                "uses": [fps[u] for u in op.uses],
            })
            fps[op.op_id] = hashlib.sha256(doc.encode("utf-8")).hexdigest()
        return fps

    def fingerprint(self, op_id):
        """Content fingerprint of one op (raises ``KeyError`` if absent)."""
        self.op(op_id)  # raise KeyError for unknown ids
        return self.fingerprints()[op_id]

    def validate(self):
        """Lint the plan; raises :class:`PlanError` on the first defect."""
        seen = set()
        for op in self.ops:
            if op.op_id in seen:
                raise PlanError(f"{self.name}: duplicate op id {op.op_id!r}")
            if op.kind not in OP_KINDS:
                raise PlanError(
                    f"{self.name}: {op.op_id!r} has unknown kind {op.kind!r}"
                )
            for parent in op.parents:
                if parent not in seen:
                    raise PlanError(
                        f"{self.name}: {op.op_id!r} references parent "
                        f"{parent!r} that is undefined or defined later"
                    )
            if op.step is None:
                raise PlanError(f"{self.name}: {op.op_id!r} has no step label")
            if op.kind == "scan":
                if op.parents:
                    raise PlanError(
                        f"{self.name}: scan {op.op_id!r} must not have parents"
                    )
                if not op.param("format"):
                    raise PlanError(
                        f"{self.name}: scan {op.op_id!r} lacks a format"
                    )
            elif not op.parents:
                raise PlanError(
                    f"{self.name}: {op.kind} {op.op_id!r} has no parents"
                )
            if op.kind == "group_by":
                if not op.param("key") or not op.param("agg"):
                    raise PlanError(
                        f"{self.name}: group_by {op.op_id!r} needs key and agg"
                    )
            if op.kind == "join":
                if len(op.parents) != 2:
                    raise PlanError(
                        f"{self.name}: join {op.op_id!r} needs two parents"
                    )
                if not op.param("on"):
                    raise PlanError(
                        f"{self.name}: join {op.op_id!r} lacks an 'on' key"
                    )
            if op.kind == "broadcast":
                parent = self.op(op.parents[0])
                if parent.kind != "materialize":
                    raise PlanError(
                        f"{self.name}: broadcast {op.op_id!r} must broadcast "
                        f"a materialized result, got {parent.kind!r}"
                    )
            if op.kind == "materialize" and not op.blame:
                raise PlanError(
                    f"{self.name}: materialize {op.op_id!r} has no blame tag"
                )
            for used in op.uses:
                if used not in seen:
                    raise PlanError(
                        f"{self.name}: {op.op_id!r} uses {used!r} before "
                        f"it is defined"
                    )
                if self.op(used).kind != "broadcast":
                    raise PlanError(
                        f"{self.name}: {op.op_id!r} uses non-broadcast op "
                        f"{used!r} as side input"
                    )
            seen.add(op.op_id)
        for op in self.ops:
            if op.kind in ("materialize", "broadcast"):
                continue
            if not self.children_of(op.op_id):
                raise PlanError(
                    f"{self.name}: {op.kind} {op.op_id!r} is dead (no "
                    f"consumer and not materialized)"
                )
        return self
