"""Logical dataflow IR shared by both scientific pipelines.

A :class:`LogicalPlan` is a small DAG of typed operators (``scan``,
``filter``, ``map``, ``flat_map``, ``group_by``, ``join``, ``broadcast``,
``materialize``).  Each pipeline (neuro, astro) is expressed exactly once
as a plan; every engine owns a lowering backend
(``repro.engines.<engine>.lowering``) that translates the plan into its
native execution model.  The plan carries only *logical* structure plus
format/partitioning metadata — kernel bodies, cost models, and physical
choices (shuffle placement, broadcast strategy, chunking) live in the
lowerings.

Operators carry two pieces of cross-cutting metadata the harness relies
on:

``step``
    the paper-facing pipeline step the op belongs to (``"Segmentation"``,
    ``"Co-addition"``, ...) — used by ``loc.py`` for Table 1 accounting.

``blame``
    required on every ``materialize``: the blame-category tag the
    engine must attach when it forces the result (``validate()`` lints
    this so an untagged materialization cannot ship).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

OP_KINDS = (
    "scan",
    "filter",
    "map",
    "flat_map",
    "group_by",
    "join",
    "broadcast",
    "materialize",
)

#: Pseudo-ops used by the attribution fold for physical work that maps
#: to no logical operator.  Real provenance ids are ``"<plan>/<op_id>"``
#: (see :func:`provenance_id`); the ``@`` prefix keeps these disjoint.
PSEUDO_OVERHEAD = "@overhead"
PSEUDO_RECOVERY = "@recovery"
PSEUDO_IDLE = "@idle"
PSEUDO_OPS = (PSEUDO_OVERHEAD, PSEUDO_RECOVERY, PSEUDO_IDLE)


def _fingerprint_canon(obj):
    """Canonical JSON for fingerprint documents (stable across runs)."""
    return json.dumps(obj, sort_keys=True, default=repr,
                      separators=(",", ":"))


def provenance_id(plan_name, op_id):
    """The stable provenance id of one logical op: ``"<plan>/<op_id>"``.

    This is the single definition every lowering backend references
    when tagging physical tasks, spans, and blame segments with the
    logical op that produced them.
    """
    return f"{plan_name}/{op_id}"


class PlanError(ValueError):
    """A logical plan failed validation."""


@dataclass(frozen=True)
class Op:
    """One typed operator in a logical plan."""

    op_id: str
    kind: str
    parents: Tuple[str, ...] = ()
    step: Optional[str] = None
    blame: Optional[str] = None
    uses: Tuple[str, ...] = ()
    params: Dict[str, object] = field(default_factory=dict)

    def param(self, name, default=None):
        return self.params.get(name, default)


def scan(op_id, *, step, format, **params):
    params["format"] = format
    return Op(op_id, "scan", (), step=step, params=params)


def filter_(op_id, parent, *, step, **params):
    return Op(op_id, "filter", (parent,), step=step, params=params)


def map_(op_id, parent, *, step, uses=(), **params):
    return Op(op_id, "map", (parent,), step=step, uses=tuple(uses),
              params=params)


def flat_map(op_id, parent, *, step, uses=(), **params):
    return Op(op_id, "flat_map", (parent,), step=step, uses=tuple(uses),
              params=params)


def group_by(op_id, parent, *, step, key, agg, partitions=None, **params):
    params.update({"key": key, "agg": agg, "partitions": partitions})
    return Op(op_id, "group_by", (parent,), step=step, params=params)


def join(op_id, left, right, *, step, on, **params):
    params["on"] = on
    return Op(op_id, "join", (left, right), step=step, params=params)


def broadcast(op_id, parent, *, step, **params):
    return Op(op_id, "broadcast", (parent,), step=step, params=params)


def materialize(op_id, parent, *, step, blame, **params):
    return Op(op_id, "materialize", (parent,), step=step, blame=blame,
              params=params)


# ----------------------------------------------------------------------
# Fused operators (produced by the optimizer, never written by hand)
# ----------------------------------------------------------------------

#: Param key under which a fused op carries its constituent members.
FUSED_PARAM = "fused"

#: Separator joining member op ids into a fused op id
#: (``"preprocess+patches"``).
FUSED_SEP = "+"


def is_fused(op):
    """True when ``op`` is an optimizer-fused carrier of several ops."""
    return FUSED_PARAM in op.params


def member_doc(op):
    """Serializable description of one op for embedding in a fused
    carrier's params (JSON-stable, round-trips through
    :func:`fused_members`)."""
    return {
        "op_id": op.op_id,
        "kind": op.kind,
        "step": op.step,
        "uses": list(op.uses),
        "params": dict(op.params),
    }


def fused_members(op):
    """The constituent :class:`Op` sequence a fused carrier stands for.

    Members come back with linearized parent edges (the first member
    inherits the carrier's parents, each later member chains on the
    previous one), so lowerings can expand a fused op into exactly the
    original physical sequence.  A non-fused op is its own single
    member.
    """
    docs = op.params.get(FUSED_PARAM)
    if not docs:
        return (op,)
    members = []
    prev = op.parents
    for doc in docs:
        member = Op(
            doc["op_id"],
            doc["kind"],
            tuple(prev),
            step=doc["step"],
            uses=tuple(doc["uses"]),
            params=dict(doc["params"]),
        )
        members.append(member)
        prev = (member.op_id,)
    return tuple(members)


@dataclass(frozen=True)
class LogicalPlan:
    """An ordered DAG of :class:`Op` nodes plus plan-level parameters."""

    name: str
    ops: Tuple[Op, ...]
    params: Dict[str, object] = field(default_factory=dict)

    def op(self, op_id):
        for op in self.ops:
            if op.op_id == op_id:
                return op
        raise KeyError(op_id)

    def carrier_of(self, op_id):
        """The op that *carries* ``op_id``: the op itself, or the fused
        carrier one of whose members it became after optimization."""
        for op in self.ops:
            if op.op_id == op_id:
                return op
            if is_fused(op):
                for doc in op.params[FUSED_PARAM]:
                    if doc["op_id"] == op_id:
                        return op
        raise KeyError(op_id)

    def member_param(self, op_id, name, default=None):
        """Param lookup that sees through fusion: reads ``name`` from the
        original op even when it now lives inside a fused carrier."""
        carrier = self.carrier_of(op_id)
        for member in fused_members(carrier):
            if member.op_id == op_id:
                return member.param(name, default)
        return carrier.param(name, default)

    def member(self, op_id):
        """The original op with ``op_id``, seen through fusion: the op
        itself, or its reconstructed member if the optimizer folded it
        into a fused carrier.  Raises ``KeyError`` for unknown ids."""
        carrier = self.carrier_of(op_id)
        for member in fused_members(carrier):
            if member.op_id == op_id:
                return member
        return carrier

    def chain(self, first, last):
        """The linear run of ops from ``first`` to ``last`` inclusive.

        Follows single-parent edges backward from ``last``; raises
        :class:`PlanError` if the segment branches or never reaches
        ``first``.  Endpoints may name ops that fusion folded into a
        carrier; the returned segment is then the carrier sequence.
        """
        first_carrier = self.carrier_of(first).op_id
        segment = [self.carrier_of(last)]
        while segment[-1].op_id != first_carrier:
            op = segment[-1]
            if len(op.parents) != 1:
                raise PlanError(
                    f"{self.name}: chain({first!r}, {last!r}) crosses "
                    f"non-linear op {op.op_id!r}"
                )
            segment.append(self.op(op.parents[0]))
        return tuple(reversed(segment))

    def expanded_chain(self, first, last):
        """Like :meth:`chain` but with fused carriers expanded back to
        their original member ops.

        The expansion is trimmed to the ``[first, last]`` window: a
        carrier straddling an endpoint only contributes the members
        inside the window.  Lowerings that execute ops one-by-one (the
        Spark walker) use this so an optimizer-fused plan lowers to the
        exact physical sequence the naive plan does.
        """
        ops = []
        for op in self.chain(first, last):
            ops.extend(fused_members(op))
        start = next(i for i, op in enumerate(ops) if op.op_id == first)
        stop = next(i for i, op in enumerate(ops) if op.op_id == last)
        return tuple(ops[start:stop + 1])

    def children_of(self, op_id):
        return tuple(op for op in self.ops if op_id in op.parents)

    def provenance(self, op_id):
        """Stable provenance id of ``op_id`` (raises ``KeyError`` if the
        op does not exist in this plan, even as a fused member)."""
        return provenance_id(self.name, self.member(op_id).op_id)

    def provenance_ids(self):
        """Provenance ids of every op, in plan order."""
        return tuple(provenance_id(self.name, op.op_id) for op in self.ops)

    def param(self, name, default=None):
        return self.params.get(name, default)

    def fingerprints(self):
        """op_id -> stable content fingerprint (sha256 hex) for every op.

        An op's fingerprint hashes its own identity (kind, params, step,
        blame) together with the fingerprints of its parents and
        broadcast side-inputs, plus the plan name and plan-level
        parameters.  Two ops agree iff their entire upstream sub-DAGs
        agree, so the fingerprint is the content address the op-level
        cache tier keys on.
        """
        fps = {}
        base = _fingerprint_canon({"plan": self.name, "params": self.params})
        for op in self.ops:
            doc = _fingerprint_canon({
                "base": base,
                "op": op.op_id,
                "kind": op.kind,
                "step": op.step,
                "blame": op.blame,
                "params": op.params,
                "parents": [fps[p] for p in op.parents],
                "uses": [fps[u] for u in op.uses],
            })
            fps[op.op_id] = hashlib.sha256(doc.encode("utf-8")).hexdigest()
        return fps

    def fingerprint(self, op_id):
        """Content fingerprint of one op (raises ``KeyError`` if absent)."""
        self.op(op_id)  # raise KeyError for unknown ids
        return self.fingerprints()[op_id]

    def structural_fingerprints(self):
        """op_id -> fingerprint of the op's *structure*, ignoring ids.

        Unlike :meth:`fingerprints` the op's own name is left out of the
        hash, so two ops with identical kind/params/step over identical
        upstream structure collide — exactly the equivalence the CSE
        rewrite rule needs.  Cache keys must keep using
        :meth:`fingerprints` (ids are part of a window's address).
        """
        fps = {}
        base = _fingerprint_canon({"plan": self.name, "params": self.params})
        for op in self.ops:
            doc = _fingerprint_canon({
                "base": base,
                "kind": op.kind,
                "step": op.step,
                "blame": op.blame,
                "params": op.params,
                "parents": [fps[p] for p in op.parents],
                "uses": [fps[u] for u in op.uses],
            })
            fps[op.op_id] = hashlib.sha256(doc.encode("utf-8")).hexdigest()
        return fps

    def outputs(self):
        """Op ids of the results the figure consumes.

        Declared explicitly via ``params["outputs"]``; otherwise every
        childless ``materialize`` is assumed consumed (so the
        materialize-elision rule never fires on a plan that does not opt
        in by declaring its outputs).
        """
        declared = self.params.get("outputs")
        if declared is not None:
            return tuple(declared)
        return tuple(
            op.op_id for op in self.ops
            if op.kind == "materialize" and not self.children_of(op.op_id)
        )

    def replace_ops(self, ops):
        """A copy of this plan with a new op tuple (params unchanged)."""
        return LogicalPlan(name=self.name, ops=tuple(ops), params=self.params)

    def _check_well_formed(self):
        """Reject duplicate op ids and cyclic parent references.

        These are structural defects the per-op lints below cannot
        diagnose well (a cycle shows up as a forward reference); each
        diagnostic names the offending op.
        """
        ids = []
        for op in self.ops:
            if op.op_id in ids:
                raise PlanError(
                    f"{self.name}: duplicate op id {op.op_id!r} "
                    f"(second definition is a {op.kind})"
                )
            ids.append(op.op_id)
        by_id = {op.op_id: op for op in self.ops}
        # Iterative three-color DFS over parent edges; a back edge means
        # the parent references are cyclic.
        state = {}  # op_id -> "active" | "done"
        for root in ids:
            if state.get(root) == "done":
                continue
            stack = [(root, iter(by_id[root].parents))]
            state[root] = "active"
            path = [root]
            while stack:
                op_id, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if parent not in by_id:
                        continue  # undefined parent: per-op lint reports it
                    if state.get(parent) == "active":
                        cycle = path[path.index(parent):] + [parent]
                        raise PlanError(
                            f"{self.name}: cyclic parent references "
                            f"involving {parent!r}: "
                            + " -> ".join(cycle)
                        )
                    if state.get(parent) != "done":
                        state[parent] = "active"
                        stack.append((parent, iter(by_id[parent].parents)))
                        path.append(parent)
                        advanced = True
                        break
                if not advanced:
                    state[op_id] = "done"
                    stack.pop()
                    path.pop()

    def validate(self):
        """Lint the plan; raises :class:`PlanError` on the first defect."""
        self._check_well_formed()
        seen = set()
        for op in self.ops:
            if op.kind not in OP_KINDS:
                raise PlanError(
                    f"{self.name}: {op.op_id!r} has unknown kind {op.kind!r}"
                )
            for parent in op.parents:
                if parent not in seen:
                    raise PlanError(
                        f"{self.name}: {op.op_id!r} references parent "
                        f"{parent!r} that is undefined or defined later"
                    )
            if op.step is None:
                raise PlanError(f"{self.name}: {op.op_id!r} has no step label")
            if op.kind == "scan":
                if op.parents:
                    raise PlanError(
                        f"{self.name}: scan {op.op_id!r} must not have parents"
                    )
                if not op.param("format"):
                    raise PlanError(
                        f"{self.name}: scan {op.op_id!r} lacks a format"
                    )
            elif not op.parents:
                raise PlanError(
                    f"{self.name}: {op.kind} {op.op_id!r} has no parents"
                )
            if op.kind == "group_by":
                if not op.param("key") or not op.param("agg"):
                    raise PlanError(
                        f"{self.name}: group_by {op.op_id!r} needs key and agg"
                    )
            if op.kind == "join":
                if len(op.parents) != 2:
                    raise PlanError(
                        f"{self.name}: join {op.op_id!r} needs two parents"
                    )
                if not op.param("on"):
                    raise PlanError(
                        f"{self.name}: join {op.op_id!r} lacks an 'on' key"
                    )
            if op.kind == "broadcast":
                parent = self.op(op.parents[0])
                if parent.kind != "materialize":
                    raise PlanError(
                        f"{self.name}: broadcast {op.op_id!r} must broadcast "
                        f"a materialized result, got {parent.kind!r}"
                    )
            if op.kind == "materialize" and not op.blame:
                raise PlanError(
                    f"{self.name}: materialize {op.op_id!r} has no blame tag"
                )
            for used in op.uses:
                if used not in seen:
                    raise PlanError(
                        f"{self.name}: {op.op_id!r} uses {used!r} before "
                        f"it is defined"
                    )
                if self.op(used).kind != "broadcast":
                    raise PlanError(
                        f"{self.name}: {op.op_id!r} uses non-broadcast op "
                        f"{used!r} as side input"
                    )
            seen.add(op.op_id)
        for op in self.ops:
            if op.kind in ("materialize", "broadcast"):
                continue
            if not self.children_of(op.op_id):
                raise PlanError(
                    f"{self.name}: {op.kind} {op.op_id!r} is dead (no "
                    f"consumer and not materialized)"
                )
        return self
