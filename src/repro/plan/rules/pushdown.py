"""Filter/selection pushdown through metadata-preserving maps.

A filter whose predicate reads only record *metadata* (subject id,
image id, band — never the transformed payload) commutes with any map
that preserves that metadata.  Both facts are opt-in annotations on the
ops: the map declares ``preserves_meta=True``, the filter declares
``on_meta=True`` (side-channel-free predicates like ``is_b0``).
Pushing the filter below the map means the map's kernel runs on fewer
records — a strict win whenever the filter is selective, priced by the
per-engine estimator as the map's per-record cost over the records the
filter would have dropped.
"""

from dataclasses import replace as _dc_replace

from repro.plan.opt import RewriteRule
from repro.plan.rules.base import consumers_of, rewire


class PushFilterThroughMap(RewriteRule):
    """filter(map(x)) -> map(filter(x)) for meta-only predicates."""

    name = "push-filter-through-map"

    def sites(self, plan):
        order = {op.op_id: i for i, op in enumerate(plan.ops)}
        for f in plan.ops:
            if f.kind != "filter" or len(f.parents) != 1:
                continue
            if not f.param("on_meta", False):
                continue
            try:
                m = plan.op(f.parents[0])
            except KeyError:
                continue
            if m.kind != "map" or not m.param("preserves_meta", False):
                continue
            if len(consumers_of(plan, m.op_id)) != 1:
                continue
            # The filter moves above the map: its broadcast side inputs
            # must already be defined there.
            if any(order[u] > order[m.op_id] for u in f.uses):
                continue
            yield (f.op_id, m.op_id)

    def apply(self, plan, site):
        f_id, m_id = site
        f = plan.op(f_id)
        m = plan.op(m_id)
        new_f = _dc_replace(f, parents=m.parents)
        new_m = _dc_replace(m, parents=(f.op_id,))
        ops = []
        for op in plan.ops:
            if op.op_id == m.op_id:
                ops.extend([new_f, new_m])
            elif op.op_id == f.op_id:
                continue
            else:
                # Consumers of the filter's output now read the map's.
                ops.extend(rewire((op,), f.op_id, m.op_id))
        return plan.replace_ops(ops).validate()

    def describe(self, plan, site):
        f_id, m_id = site
        return (
            f"push filter {f_id!r} below map {m_id!r} "
            f"(kernel runs on fewer records)"
        )
