"""Materialize elision: drop results nothing consumes.

A ``materialize`` with no downstream consumer that is not one of the
plan's declared outputs (``params["outputs"]``) forces a collect the
figure never reads.  Eliding it — together with any upstream ops left
without a consumer — removes the whole dead branch.  Plans that do not
declare outputs treat every childless materialize as consumed, so the
rule is a no-op unless a plan opts in (fragment compositions and
exploratory sessions do).
"""

from repro.plan.opt import RewriteRule
from repro.plan.rules.base import consumers_of, drop


class ElideDeadMaterialize(RewriteRule):
    """Remove unconsumed non-output materializes and their dead branch."""

    name = "elide-dead-materialize"

    def sites(self, plan):
        outputs = set(plan.outputs())
        for op in plan.ops:
            if op.kind != "materialize" or op.op_id in outputs:
                continue
            if not consumers_of(plan, op.op_id):
                yield (op.op_id,)

    def apply(self, plan, site):
        (dead_id,) = site
        outputs = set(plan.outputs())
        current = plan.replace_ops(drop(plan.ops, dead_id))
        # Cascade: an op whose only consumer was the elided branch is
        # dead too (the structural win — whole sub-DAGs disappear).
        while True:
            removable = [
                op.op_id for op in current.ops
                if op.op_id not in outputs
                and not consumers_of(current, op.op_id)
                and op.kind != "materialize"
            ]
            if not removable:
                break
            current = current.replace_ops(drop(current.ops, removable[0]))
        return current.validate()

    def describe(self, plan, site):
        (dead_id,) = site
        return (
            f"elide materialize {dead_id!r} (no consumer, not a declared "
            f"output) and its dead upstream branch"
        )
