"""Common-subexpression elimination across shared scan prefixes.

Two ops with identical *structural* fingerprints (same kind, params and
step over structurally identical upstream sub-DAGs — op names ignored,
see :meth:`LogicalPlan.structural_fingerprints`) compute the same
result; the later one is dropped and its consumers rewired to the
survivor.  This fires on plans assembled from fragments that each
re-declare the same scan chain — exactly what gluing micro-benchmark
fragments together produces.

``materialize`` and ``broadcast`` ops are never merged: a materialize's
identity (its blame tag, its memo window) is part of the figure's
contract even when two of them hold equal bytes.
"""

from repro.plan.opt import RewriteRule
from repro.plan.rules.base import drop, rewire

_MERGEABLE = ("scan", "filter", "map", "flat_map", "group_by", "join")


class EliminateCommonSubexpressions(RewriteRule):
    """Merge structurally identical computation ops."""

    name = "common-subexpression-elimination"

    def sites(self, plan):
        fps = plan.structural_fingerprints()
        survivors = {}
        for op in plan.ops:
            if op.kind not in _MERGEABLE:
                continue
            fp = fps[op.op_id]
            if fp in survivors:
                yield (survivors[fp], op.op_id)
            else:
                survivors[fp] = op.op_id

    def apply(self, plan, site):
        keep_id, dup_id = site
        ops = rewire(drop(plan.ops, dup_id), dup_id, keep_id)
        return plan.replace_ops(ops).validate()

    def describe(self, plan, site):
        keep_id, dup_id = site
        return (
            f"merge {dup_id!r} into structurally identical {keep_id!r} "
            f"(shared upstream computed once)"
        )
