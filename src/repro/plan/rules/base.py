"""Shared plan-surgery helpers for rewrite rules.

Rules rebuild plans as new op tuples; these helpers keep the edge
rewiring (parents and broadcast ``uses``) in one place so every rule
preserves referential integrity the same way.
"""

from dataclasses import replace as _dc_replace


def rewire(ops, old_id, new_id):
    """Point every parent/uses reference to ``old_id`` at ``new_id``."""
    out = []
    for op in ops:
        parents = tuple(new_id if p == old_id else p for p in op.parents)
        uses = tuple(new_id if u == old_id else u for u in op.uses)
        if parents != op.parents or uses != op.uses:
            op = _dc_replace(op, parents=parents, uses=uses)
        out.append(op)
    return tuple(out)


def drop(ops, op_id):
    """The op tuple without ``op_id``."""
    return tuple(op for op in ops if op.op_id != op_id)


def consumers_of(plan, op_id):
    """Every op consuming ``op_id`` — as a parent or a side input."""
    return tuple(
        op for op in plan.ops
        if op_id in op.parents or op_id in op.uses
    )
