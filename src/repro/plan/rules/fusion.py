"""Narrow-map fusion: collapse a linear narrow pair into one fused op.

Fuses ``b`` (a ``map``/``flat_map``) into its single parent ``a`` when
``b`` is ``a``'s only consumer and ``a`` is itself narrow (scan, filter,
map, flat_map).  The fused carrier remembers its members (see
:func:`repro.plan.ir.fused_members`), so a lowering can either execute
the members as one physical task (Dask, where every graph node pays
``dask_task_overhead``) or expand them back to the original sequence
(Spark, whose scheduler already pipelines narrow ops into stages —
which is also why the Spark cost guard prices this rewrite as neutral
and rejects it).

Whether fusion *pays* is the cost guard's call, not this rule's: fusing
a map into a fan-out ``flat_map`` that an engine lowers as
one-task-per-output-element (Dask's per-block ``repart``) would
duplicate the map's work per element, and the per-engine estimator
prices exactly that duplication (see ``repro.plan.route``).
"""

from repro.plan.ir import FUSED_SEP, Op, fused_members, member_doc
from repro.plan.opt import RewriteRule
from repro.plan.rules.base import consumers_of, rewire

#: Op kinds a narrow op may be fused into.
FUSABLE_PARENTS = ("scan", "filter", "map", "flat_map")

#: Op kinds that may be fused into their parent.
FUSABLE_CHILDREN = ("map", "flat_map")


def _carrier_kind(members):
    kinds = [m.kind for m in members]
    if "scan" in kinds:
        return "scan"
    if "flat_map" in kinds:
        return "flat_map"
    if "map" in kinds:
        return "map"
    return "filter"


def fuse_pair(plan, a_id, b_id):
    """The plan with ``b_id`` fused into ``a_id`` (no guard applied)."""
    a = plan.op(a_id)
    b = plan.op(b_id)
    members = fused_members(a) + fused_members(b)
    params = {"fused": tuple(member_doc(m) for m in members)}
    if members[0].kind == "scan":
        # The scan lint requires a format on the carrier itself.
        params["format"] = members[0].param("format")
    carrier = Op(
        op_id=FUSED_SEP.join(m.op_id for m in members),
        kind=_carrier_kind(members),
        parents=a.parents,
        step=b.step,
        uses=tuple(dict.fromkeys(a.uses + b.uses)),
        params=params,
    )
    ops = []
    for op in plan.ops:
        if op.op_id == a.op_id:
            ops.append(carrier)
        elif op.op_id == b.op_id:
            continue
        else:
            ops.append(op)
    ops = rewire(ops, b.op_id, carrier.op_id)
    ops = rewire(ops, a.op_id, carrier.op_id)
    return plan.replace_ops(ops).validate()


class FuseNarrowMaps(RewriteRule):
    """map/flat_map fused into its sole-consumer narrow parent."""

    name = "fuse-narrow-maps"

    def sites(self, plan):
        for b in plan.ops:
            if b.kind not in FUSABLE_CHILDREN or len(b.parents) != 1:
                continue
            try:
                a = plan.op(b.parents[0])
            except KeyError:
                continue
            if a.kind not in FUSABLE_PARENTS:
                continue
            if len(consumers_of(plan, a.op_id)) != 1:
                continue
            yield (a.op_id, b.op_id)

    def apply(self, plan, site):
        a_id, b_id = site
        return fuse_pair(plan, a_id, b_id)

    def describe(self, plan, site):
        a_id, b_id = site
        return f"fuse {b_id!r} into {a_id!r} (one physical task per input)"
