"""The optimizer's rewrite-rule catalog.

Application order matters only as a heuristic (the optimizer loops to
fixpoint anyway): elision first so dead branches never get optimized,
CSE next so fusion sees the merged graph, pushdown before fusion so a
pushed filter can still fuse with its new neighbors.
"""

from repro.plan.rules.cse import EliminateCommonSubexpressions
from repro.plan.rules.elision import ElideDeadMaterialize
from repro.plan.rules.fusion import FuseNarrowMaps
from repro.plan.rules.pushdown import PushFilterThroughMap

DEFAULT_RULES = (
    ElideDeadMaterialize(),
    EliminateCommonSubexpressions(),
    PushFilterThroughMap(),
    FuseNarrowMaps(),
)

__all__ = [
    "DEFAULT_RULES",
    "ElideDeadMaterialize",
    "EliminateCommonSubexpressions",
    "FuseNarrowMaps",
    "PushFilterThroughMap",
]
