"""The astronomy (LSST coadd) pipeline, stated once.

Scan FITS exposures, calibrate them (bias/flat pre-processing), cut each
exposure into sky patches, stitch per-(patch, visit) piece groups into
patch exposures, sigma-clipped coadd across visits, and run source
detection on each coadd.

Myria's x0-pushdown band queries, SciDB's AQL incremental coadd, and the
Spark/Dask shuffle choices are lowering decisions; the logical structure
below is what the paper holds constant across systems.
"""

from __future__ import annotations

from repro.pipelines.astro import reference as ref
from repro.pipelines.astro.staging import DEFAULT_BUCKET
from repro.plan.ir import (
    LogicalPlan,
    flat_map,
    group_by,
    map_,
    materialize,
    scan,
)


def astro_plan(bucket=DEFAULT_BUCKET):
    """Build and validate the logical astronomy plan."""
    ops = (
        scan("exposures", step="Data Ingest", format="fits", bucket=bucket),
        map_("preprocess", "exposures", step="Pre-processing",
             kernel="preprocess_exposure"),
        flat_map("patches", "preprocess", step="Patch Creation",
                 kernel="patch_pieces"),
        group_by("stitch", "patches", step="Patch Creation",
                 key=("patch", "visit"), agg="stitch_pieces",
                 partitions="total_slots"),
        group_by("coadd", "stitch", step="Co-addition", key="patch",
                 agg="coadd_patch", partitions="total_slots", rekey=True,
                 n_sigma=ref.COADD_SIGMA, n_iter=ref.COADD_ITERATIONS),
        map_("detect", "coadd", step="Source Detection", kernel="detect"),
        materialize("sources", "detect", step="Source Detection",
                    blame="detect-collect"),
    )
    plan = LogicalPlan(
        name="astro",
        ops=ops,
        params={"bucket": bucket},
    )
    return plan.validate()
