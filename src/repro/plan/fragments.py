"""Plan fragments: the micro-benchmark slices of the two pipelines.

Figures 11 and 12 measure individual steps (ingest, filter, mean,
denoise, coadd) rather than whole pipelines.  Instead of hand-writing
each step a second time, a *fragment* is carved out of the full logical
plan: the ancestor closure of one op, keeping the parent plan's name and
params.  Keeping the name is deliberate — provenance ids
(``"neuro/b0"``), emitted MyriaL text, and memo keys must be identical
whether an op runs inside the full pipeline or inside its
micro-benchmark slice, so the fig11/fig12 baselines stay byte-stable.

Fragments are ordinary :class:`~repro.plan.ir.LogicalPlan` objects: they
validate, lower, and optimize like any plan.  :func:`glue` composes
fragments into one plan (renaming colliding op ids), which is what makes
the optimizer's common-subexpression rule earn its keep: two glued
fragments re-declare the same scan chain, and CSE merges them.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace

from repro.plan.astro import astro_plan
from repro.plan.ir import PlanError
from repro.plan.ir import materialize as _mk_materialize
from repro.plan.neuro import neuro_plan


def fragment(plan, last, outputs=()):
    """The ancestor closure of ``last`` as a standalone plan.

    Includes ``last``, its parents, its broadcast side inputs
    (``uses``), and so on transitively, in the original plan order.
    ``outputs`` optionally declares the fragment's live materializes
    (see ``LogicalPlan.outputs``) so the optimizer may elide dead ones.
    """
    by_id = {op.op_id: op for op in plan.ops}
    if last not in by_id:
        raise PlanError(f"{plan.name}: no op {last!r} to take a fragment of")
    keep = set()
    frontier = [last]
    while frontier:
        op_id = frontier.pop()
        if op_id in keep:
            continue
        keep.add(op_id)
        op = by_id[op_id]
        frontier.extend(op.parents)
        frontier.extend(op.uses)
    params = dict(plan.params)
    if outputs:
        params["outputs"] = tuple(outputs)
    ops = [op for op in plan.ops if op.op_id in keep]
    tail = by_id[last]
    if tail.kind != "materialize":
        # A fragment measures an interior op, so its sink would be a
        # dead non-materialize — exactly what validate() rejects.  Give
        # the slice an explicit materialize sink; lowerings never see it
        # (they lower the chain window ending at ``last``).
        ops.append(_mk_materialize(
            f"{last}.sink", last,
            step=tail.step, blame=tail.blame or tail.op_id,
        ))
    sliced = _dc_replace(plan, ops=tuple(ops), params=params)
    return sliced.validate()


def glue(*fragments, rename=None):
    """Compose fragments into one plan, renaming colliding op ids.

    The first fragment's ops keep their ids; a later fragment's op
    whose id is already taken gets a ``.2``/``.3``... suffix (its
    parents and uses are rewritten to match).  The result deliberately
    re-declares any shared prefix — running the optimizer's CSE rule
    afterwards merges the duplicates back into one chain.
    """
    if not fragments:
        raise PlanError("glue needs at least one fragment")
    base = fragments[0]
    ops = list(base.ops)
    taken = {op.op_id for op in ops}
    for index, frag in enumerate(fragments[1:], start=2):
        if frag.name != base.name:
            raise PlanError(
                f"cannot glue {frag.name!r} onto {base.name!r}: fragments "
                f"must come from the same pipeline"
            )
        mapping = {}
        for op in frag.ops:
            new_id = op.op_id
            if new_id in taken:
                new_id = rename(op.op_id, index) if rename \
                    else f"{op.op_id}.{index}"
            if new_id in taken:
                raise PlanError(f"glue: renamed id {new_id!r} still collides")
            mapping[op.op_id] = new_id
            taken.add(new_id)
        for op in frag.ops:
            ops.append(_dc_replace(
                op,
                op_id=mapping[op.op_id],
                parents=tuple(mapping[p] for p in op.parents),
                uses=tuple(mapping[u] for u in op.uses),
            ))
    glued = _dc_replace(base, ops=tuple(ops), params=dict(base.params))
    return glued.validate()


# ----------------------------------------------------------------------
# The named slices figures 11 and 12 run
# ----------------------------------------------------------------------

def neuro_scan_fragment(**kwargs):
    """Fig 11: just the ``volumes`` scan (ingest)."""
    return fragment(neuro_plan(**kwargs), "volumes")


def neuro_filter_fragment(**kwargs):
    """Fig 12a: ``volumes -> b0`` (select the non-diffusion volumes)."""
    return fragment(neuro_plan(**kwargs), "b0")


def neuro_mean_fragment(**kwargs):
    """Fig 12b: ``volumes -> b0 -> mean_b0`` (per-subject mean)."""
    return fragment(neuro_plan(**kwargs), "mean_b0")


def neuro_mask_fragment(**kwargs):
    """Segmentation slice: everything up to the ``masks`` materialize."""
    return fragment(neuro_plan(**kwargs), "masks")


def neuro_denoise_fragment(**kwargs):
    """Fig 12c: up to ``denoise`` (includes the mask chain it uses)."""
    return fragment(neuro_plan(**kwargs), "denoise")


def astro_coadd_fragment(**kwargs):
    """Fig 12d: ``exposures -> ... -> coadd``."""
    return fragment(astro_plan(**kwargs), "coadd")


def astro_preprocess_fragment(**kwargs):
    """Pre-processing slice: ``exposures -> preprocess``."""
    return fragment(astro_plan(**kwargs), "preprocess")
