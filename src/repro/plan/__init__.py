"""repro.plan — logical dataflow IR with per-engine lowering backends.

Both scientific pipelines are defined exactly once here
(:func:`neuro_plan`, :func:`astro_plan`); each engine translates a plan
into its native execution model through
``repro.engines.<engine>.lowering.lower(plan, ctx)``.  :func:`lower`
dispatches by engine name so harness code never imports a lowering
module directly.
"""

from importlib import import_module

from repro.plan.astro import astro_plan
from repro.plan.ir import (
    PSEUDO_IDLE,
    PSEUDO_OPS,
    PSEUDO_OVERHEAD,
    PSEUDO_RECOVERY,
    LogicalPlan,
    Op,
    PlanError,
    provenance_id,
)
from repro.plan.neuro import neuro_plan
from repro.plan.opt import (
    OptimizationResult,
    Optimizer,
    RuleFiring,
    default_optimizer,
    optimize_for,
    optimize_logical,
)
from repro.plan.route import (
    RoutingDecision,
    choose_engine,
    engine_guard,
    estimate_plan_cost,
    supports,
)

# Engine name -> module that exposes lower(plan, ctx).
ENGINE_LOWERINGS = {
    "spark": "repro.engines.spark.lowering",
    "dask": "repro.engines.dask.lowering",
    "myria": "repro.engines.myria.lowering",
    "scidb": "repro.engines.scidb.lowering",
    "tensorflow": "repro.engines.tensorflow.lowering",
}


def lower(plan, engine, ctx):
    """Lower ``plan`` for ``engine`` against execution context ``ctx``.

    ``ctx`` is the engine's native entry point (SparkContext, Dask
    client, Myria connection, SciDB handle, TF session).  Returns the
    engine's lowered-pipeline object; raises :class:`NotImplementedError`
    for plan/engine combinations the paper marks NA.
    """
    try:
        module_name = ENGINE_LOWERINGS[engine]
    except KeyError:
        raise PlanError(f"no lowering backend for engine {engine!r}")
    return import_module(module_name).lower(plan, ctx)


__all__ = [
    "LogicalPlan",
    "Op",
    "PlanError",
    "PSEUDO_IDLE",
    "PSEUDO_OPS",
    "PSEUDO_OVERHEAD",
    "PSEUDO_RECOVERY",
    "ENGINE_LOWERINGS",
    "OptimizationResult",
    "Optimizer",
    "RoutingDecision",
    "RuleFiring",
    "astro_plan",
    "choose_engine",
    "default_optimizer",
    "engine_guard",
    "estimate_plan_cost",
    "lower",
    "neuro_plan",
    "optimize_for",
    "optimize_logical",
    "provenance_id",
    "supports",
]
