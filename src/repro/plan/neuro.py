"""The neuroimaging pipeline (Section 4 of the paper), stated once.

This is the single logical definition of the dMRI workload every engine
lowers: scan NIfTI volumes from shared storage, filter the b=0 volumes,
average them per subject, segment a brain mask (median Otsu), broadcast
the masks, denoise every volume (masked non-local means), re-partition
into Z-blocks, and fit the diffusion tensor model per block.

Physical choices — Spark's reduceByKey vs. Myria's UDA, SciDB's
chunk-streamed denoise, TF's whole-dataset broadcast — belong to the
engine lowerings, not here.
"""

from __future__ import annotations

from repro.pipelines.neuro.reference import DENOISE_SIGMA, MASK_MEDIAN_RADIUS
from repro.pipelines.neuro.staging import DEFAULT_BUCKET
from repro.plan.ir import (
    LogicalPlan,
    broadcast,
    filter_,
    flat_map,
    group_by,
    map_,
    materialize,
    scan,
)

DEFAULT_BLOCKS = 8


def neuro_plan(n_blocks=DEFAULT_BLOCKS, bucket=DEFAULT_BUCKET,
               sigma=DENOISE_SIGMA, median_radius=MASK_MEDIAN_RADIUS):
    """Build and validate the logical neuroimaging plan."""
    ops = (
        scan("volumes", step="Data Ingest", format="nifti", bucket=bucket),
        filter_("b0", "volumes", step="Segmentation", predicate="is_b0"),
        group_by("mean_b0", "b0", step="Segmentation", key="subject",
                 agg="mean_volume", partitions="n_nodes", combinable=True),
        map_("otsu", "mean_b0", step="Segmentation", kernel="median_otsu",
             median_radius=median_radius),
        materialize("masks", "otsu", step="Segmentation",
                    blame="mask-collect"),
        broadcast("mask_bcast", "masks", step="Denoising"),
        map_("denoise", "volumes", step="Denoising", uses=("mask_bcast",),
             kernel="nlmeans_3d", sigma=sigma),
        flat_map("repart", "denoise", step="Model Fitting",
                 kernel="split_volume_blocks", n_blocks=n_blocks),
        group_by("regroup", "repart", step="Model Fitting",
                 key=("subject", "block"), agg="stack_volumes",
                 partitions="total_slots"),
        map_("fitmodel", "regroup", step="Model Fitting",
             uses=("mask_bcast",), kernel="fit_dtm"),
        materialize("fa", "fitmodel", step="Model Fitting",
                    blame="fit-collect"),
    )
    plan = LogicalPlan(
        name="neuro",
        ops=ops,
        params={
            "bucket": bucket,
            "n_blocks": n_blocks,
            "sigma": sigma,
            "median_radius": median_radius,
        },
    )
    return plan.validate()
