"""Per-group "where did the time go" summaries of a simulated run.

Grouping prefers explicit structure: a task recorded under a span is
attributed to that span's name.  Tasks recorded outside any span fall
back to a name-prefix heuristic, so hand-built clusters summarize
exactly as before.
"""

from collections import defaultdict

from repro.obs.spans import TaskRecord


def default_grouper(name):
    """Group task names by their engine/stage prefix.

    ``spark-stage3-part7`` -> ``spark-stage3``; ``dask-denoise_one-42``
    -> ``dask-denoise_one``; anything without digits groups as itself.
    """
    parts = name.split("-")
    while parts and parts[-1].isdigit():
        parts.pop()
    head = "-".join(parts) if parts else name
    return head.rstrip("0123456789")


def records_of(cluster):
    """Task records of a cluster, span-tagged when available."""
    obs = getattr(cluster, "obs", None)
    if obs is not None:
        return list(obs.task_records)
    # Pre-observability clusters: synthesize span-less records.
    return [
        TaskRecord(name, node, start, end)
        for name, node, start, end in cluster.task_trace
    ]


def group_of(record, grouper=None):
    """The attribution group of one record.

    An explicit ``grouper`` always wins; otherwise the enclosing span's
    name, falling back to :func:`default_grouper` on the task name.
    """
    if grouper is not None:
        return grouper(record.name)
    if record.span is not None:
        return record.span.name
    return default_grouper(record.name)


def summarize_records(records, grouper=None):
    """Aggregate task records into per-group totals.

    Returns rows sorted by descending busy time: ``{"group", "busy_s",
    "tasks", "first_start", "last_end", "mean_task_s", "max_task_s"}``.
    """
    busy = defaultdict(float)
    count = defaultdict(int)
    first = {}
    last = {}
    longest = defaultdict(float)
    for record in records:
        group = group_of(record, grouper)
        duration = record.end - record.start
        busy[group] += duration
        count[group] += 1
        first[group] = min(first.get(group, record.start), record.start)
        last[group] = max(last.get(group, record.end), record.end)
        longest[group] = max(longest[group], duration)
    rows = [
        {
            "group": group,
            "busy_s": busy[group],
            "tasks": count[group],
            "first_start": first[group],
            "last_end": last[group],
            "mean_task_s": busy[group] / count[group],
            "max_task_s": longest[group],
        }
        for group in busy
    ]
    rows.sort(key=lambda r: -r["busy_s"])
    return rows


def node_utilization_rows(cluster):
    """Per-node busy fraction of the elapsed simulated time."""
    if cluster.now == 0:
        return []
    busy = defaultdict(float)
    for record in records_of(cluster):
        busy[record.node] += record.end - record.start
    return [
        {
            "node": name,
            "utilization": busy.get(name, 0.0)
            / (cluster.now * cluster.spec.slots_per_node),
        }
        for name in cluster.node_order
    ]


def _fmt_bytes(nbytes):
    """Human-scale byte rendering (GB/MB/KB/B)."""
    for unit, scale in (("GB", 1024 ** 3), ("MB", 1024 ** 2), ("KB", 1024)):
        if nbytes >= scale:
            return f"{nbytes / scale:.2f} {unit}"
    return f"{nbytes} B"


def format_breakdown(cluster, metrics=None, top=12):
    """Plain-text "where did the time go" report for one run.

    Sections: per-group busy time with shares, data-movement totals
    from the network model, and per-node peaks from the cluster's node
    summaries.  ``metrics`` (a
    :class:`~repro.obs.metrics.ClusterMetrics`) adds straggler spread
    columns when provided.
    """
    lines = []
    elapsed = cluster.now
    rows = summarize_records(records_of(cluster))
    total_busy = sum(r["busy_s"] for r in rows) or 1.0
    lines.append(
        f"Where did the time go ({elapsed:.1f} simulated s,"
        f" utilization {cluster.utilization():.0%}):"
    )
    width = max([len(r["group"]) for r in rows[:top]] + [5])
    lines.append(
        f"  {'group'.ljust(width)}  {'busy_s':>10}  {'share':>6}"
        f"  {'tasks':>6}  {'max_task_s':>10}"
    )
    for row in rows[:top]:
        lines.append(
            f"  {row['group'].ljust(width)}  {row['busy_s']:>10.1f}"
            f"  {row['busy_s'] / total_busy:>6.1%}  {row['tasks']:>6}"
            f"  {row['max_task_s']:>10.2f}"
        )
    if len(rows) > top:
        rest = sum(r["busy_s"] for r in rows[top:])
        lines.append(
            f"  {'(other groups)'.ljust(width)}  {rest:>10.1f}"
            f"  {rest / total_busy:>6.1%}"
            f"  {sum(r['tasks'] for r in rows[top:]):>6}"
        )

    network = cluster.network
    lines.append("Data movement:")
    lines.append(
        f"  node-to-node  {_fmt_bytes(network.bytes_node_to_node)}"
        f"  (broadcast wire {_fmt_bytes(network.bytes_broadcast)})"
    )
    lines.append(f"  s3 ingest     {_fmt_bytes(network.bytes_from_s3)}")
    spilled = sum(n.memory.spilled_bytes for n in cluster.nodes.values())
    lines.append(f"  memory spill  {_fmt_bytes(spilled)}")

    lines.append("Per-node:")
    lines.append(
        f"  {'node':<10}  {'peak_mem':>10}  {'busy_s':>10}  {'util':>6}"
        f"  {'oom':>4}  {'spilled':>10}"
    )
    util = {r["node"]: r["utilization"] for r in node_utilization_rows(cluster)}
    for summary in cluster.node_summaries():
        lines.append(
            f"  {summary['node']:<10}"
            f"  {_fmt_bytes(summary['peak_memory_bytes']):>10}"
            f"  {summary['busy_seconds']:>10.1f}"
            f"  {util.get(summary['node'], 0.0):>6.1%}"
            f"  {summary['oom_count']:>4}"
            f"  {_fmt_bytes(summary['spilled_bytes']):>10}"
        )

    if metrics is not None:
        stragglers = [r for r in metrics.straggler_rows() if r["tasks"] > 1]
        if stragglers:
            lines.append("Straggler spread (max/mean per group):")
            for row in stragglers[:5]:
                lines.append(
                    f"  {row['group']:<{width}}  mean {row['mean_s']:.2f}s"
                    f"  p95 {row['p95_s']:.2f}s  max {row['max_s']:.2f}s"
                    f"  skew {row['skew']:.1f}x"
                )
    return "\n".join(lines)
