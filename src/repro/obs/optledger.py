"""Optimizer ledger figure: optimized-vs-naive blame, per engine.

The ``opt`` experiment (``python -m repro.harness opt --quick``) runs
every (pipeline, engine) cell twice — once on the naive logical plan
and once on the optimizer's output — on fresh clusters over identical
staged data.  Its ledger snapshot therefore contains paired runs
labeled ``NN-<pipeline>-<engine>-naive`` / ``...-optimized``.

This module pairs those runs back up and renders the compiler's
scorecard: per-cell simulated makespans side by side, the per-op
critical-path blame rows that moved, and the two invariants the
`harness optimize --check` / ``ledger --optimize`` gates enforce:

- **non-increasing makespan** — the cost guard only accepts rewrites
  that strictly win, so ``optimized <= naive`` on every cell;
- **byte-identical results** — rewrites are semantics-preserving, so
  materialized outputs digest identically (asserted trial-side and
  recorded in the comparison rows, not re-derivable from snapshots).
"""

import re

_LABEL = re.compile(
    r"^(?:\d+-)?(?P<cell>.+)-(?P<variant>naive|optimized)$"
)

#: Makespan slack for the non-increasing gate: float scheduling noise
#: only, never a real regression.
MAKESPAN_EPSILON = 1e-6


def opt_pairs(snapshot):
    """``[(cell, naive_run, optimized_run)]`` from an opt snapshot.

    ``cell`` is the ``<pipeline>-<engine>`` label stem.  Runs whose
    labels do not carry the naive/optimized suffix, and cells missing
    either half, are skipped — the formatter degrades gracefully on
    foreign snapshots instead of crashing.
    """
    halves = {}
    order = []
    for run in snapshot.get("runs", ()):
        match = _LABEL.match(run.get("label", ""))
        if not match:
            continue
        cell = match.group("cell")
        if cell not in halves:
            halves[cell] = {}
            order.append(cell)
        halves[cell][match.group("variant")] = run
    return [
        (cell, halves[cell]["naive"], halves[cell]["optimized"])
        for cell in order
        if "naive" in halves[cell] and "optimized" in halves[cell]
    ]


def _op_blame_map(run):
    return {row["op"]: row["seconds"] for row in run.get("op_blame", ())}


def opt_comparison_rows(snapshot):
    """One row per cell: makespans, delta, and the biggest blame move."""
    rows = []
    for cell, naive, optimized in opt_pairs(snapshot):
        naive_s = naive.get("makespan_s", 0.0)
        opt_s = optimized.get("makespan_s", 0.0)
        before = _op_blame_map(naive)
        after = _op_blame_map(optimized)
        moves = sorted(
            ((op, after.get(op, 0.0) - before.get(op, 0.0))
             for op in set(before) | set(after)),
            key=lambda item: abs(item[1]),
            reverse=True,
        )
        top_op, top_delta = moves[0] if moves else ("-", 0.0)
        rows.append({
            "cell": cell,
            "naive_s": round(naive_s, 3),
            "optimized_s": round(opt_s, 3),
            "saved_s": round(naive_s - opt_s, 3),
            "regressed": opt_s > naive_s + MAKESPAN_EPSILON,
            "top_moved_op": top_op,
            "top_moved_delta_s": round(top_delta, 3),
        })
    return rows


def check_opt_snapshot(snapshot):
    """Violations of the non-increasing-makespan invariant (strings)."""
    return [
        f"{row['cell']}: optimized makespan {row['optimized_s']}s exceeds"
        f" naive {row['naive_s']}s"
        for row in opt_comparison_rows(snapshot)
        if row["regressed"]
    ]


def format_opt_comparison(snapshot, blame_rows=3):
    """Plain-text optimizer scorecard for one opt ledger snapshot."""
    pairs = opt_pairs(snapshot)
    if not pairs:
        return "no naive/optimized run pairs in this snapshot"
    lines = ["Optimizer ledger: naive vs optimized (simulated s)"]
    width = max(len(cell) for cell, _n, _o in pairs)
    for cell, naive, optimized in pairs:
        naive_s = naive.get("makespan_s", 0.0)
        opt_s = optimized.get("makespan_s", 0.0)
        saved = naive_s - opt_s
        note = "unchanged" if abs(saved) <= MAKESPAN_EPSILON else (
            f"saved {saved:.3f}s" if saved > 0
            else f"REGRESSED by {-saved:.3f}s"
        )
        lines.append(
            f"  {cell:<{width}}  {naive_s:>10.3f} -> {opt_s:>10.3f}  ({note})"
        )
        if abs(saved) <= MAKESPAN_EPSILON:
            continue
        before = _op_blame_map(naive)
        after = _op_blame_map(optimized)
        moved = sorted(
            ((op, after.get(op, 0.0) - before.get(op, 0.0))
             for op in set(before) | set(after)),
            key=lambda item: abs(item[1]),
            reverse=True,
        )
        for op, delta in moved[:blame_rows]:
            if abs(delta) <= MAKESPAN_EPSILON:
                continue
            lines.append(f"  {'':<{width}}    {op}: {delta:+.3f}s blame")
    return "\n".join(lines)
