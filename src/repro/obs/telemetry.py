"""Wall-clock self-telemetry for the harness process (Plane 2).

Every other module in ``repro.obs`` watches the *virtual* clock of a
simulated cluster.  This one watches the *real* process: where does the
wall time of ``python -m repro.harness`` actually go when trials fan
out across a pool?  It provides

- :class:`PhaseRecorder` -- nested wall-clock phases with self-time
  accounting (a phase's ``self_s`` excludes its children), so the
  recorded phases of a run tile its wall time by construction;
- structured JSON-lines logging (one event per line, wall timestamps);
- a :class:`~repro.obs.metrics.MetricsRegistry` for pool-utilization
  gauges, payload-size histograms and cache counters;
- an optional per-worker cProfile hook, enabled by pointing the
  ``REPRO_PROFILE_DIR`` environment variable at a directory.

Telemetry follows the null-object pattern: module-level helpers proxy
to :data:`NULL_RECORDER` (all no-ops) unless a :func:`recording` scope
is active, so the instrumented hot paths in ``repro.harness`` cost
nothing when nobody is watching.  Telemetry never alters trial
payloads -- the serial/parallel/cache byte-identity invariant is
property-tested in ``tests/harness/test_parallel.py``.
"""

import json
import os
import time
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry

#: Environment variable: directory for per-worker cProfile dumps.
PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"


class PhaseRecorder:
    """Nested wall-clock phases + structured logging + metrics.

    ``clock`` is injectable for tests; it defaults to
    :func:`time.perf_counter`.
    """

    def __init__(self, log_path=None, clock=time.perf_counter):
        self.clock = clock
        self.metrics = MetricsRegistry()
        #: Completed phases, in completion order:
        #: ``{"name", "wall_s", "self_s", "depth"}``.
        self.phases = []
        self._stack = []
        self._log_path = log_path
        self._log = open(log_path, "a") if log_path else None

    @property
    def active(self):
        """True for real recorders; the null recorder reports False."""
        return True

    # -- phases --------------------------------------------------------

    @contextmanager
    def phase(self, name, **fields):
        """Measure the block as phase ``name``.

        Nested phases subtract their wall time from the parent's
        ``self_s``, so summing ``self_s`` over all phases of a
        top-level phase reproduces its wall time exactly.
        """
        start = self.clock()
        frame = [name, start, 0.0]
        self._stack.append(frame)
        try:
            yield
        finally:
            self._stack.pop()
            wall = self.clock() - start
            if self._stack:
                self._stack[-1][2] += wall
            self_s = max(0.0, wall - frame[2])
            self.phases.append(
                {
                    "name": name,
                    "wall_s": wall,
                    "self_s": self_s,
                    "depth": len(self._stack),
                }
            )
            self.event(
                "phase", name=name, wall_s=round(wall, 6),
                self_s=round(self_s, 6), **fields
            )

    def phase_totals(self):
        """Aggregate completed phases by name.

        Returns ``{name: {"wall_s", "self_s", "count"}}``.
        """
        totals = {}
        for phase in self.phases:
            row = totals.setdefault(
                phase["name"], {"wall_s": 0.0, "self_s": 0.0, "count": 0}
            )
            row["wall_s"] += phase["wall_s"]
            row["self_s"] += phase["self_s"]
            row["count"] += 1
        return totals

    # -- structured log ------------------------------------------------

    def event(self, kind, **fields):
        """Append one JSON event line to the telemetry log."""
        if self._log is None:
            return
        record = {"ts": round(time.time(), 6), "event": kind}
        record.update(fields)
        self._log.write(json.dumps(record, sort_keys=True) + "\n")
        self._log.flush()

    # -- metrics -------------------------------------------------------

    def count(self, name, amount=1):
        """Increment counter ``name``."""
        self.metrics.counter(name).inc(amount)

    def gauge(self, name, value):
        """Set gauge ``name``."""
        self.metrics.gauge(name).set(value)

    def observe(self, name, value):
        """Record one observation in histogram ``name``."""
        self.metrics.histogram(name).observe(value)

    def close(self):
        """Flush and close the JSON log (idempotent)."""
        if self._log is not None:
            self._log.close()
            self._log = None


class _NullRecorder:
    """Inactive recorder: every operation is a no-op."""

    active = False
    phases = ()

    @contextmanager
    def phase(self, name, **fields):
        yield

    def phase_totals(self):
        return {}

    def event(self, kind, **fields):
        pass

    def count(self, name, amount=1):
        pass

    def gauge(self, name, value):
        pass

    def observe(self, name, value):
        pass

    def close(self):
        pass


#: The shared inactive recorder returned outside :func:`recording`.
NULL_RECORDER = _NullRecorder()

_current = NULL_RECORDER


def recorder():
    """The active :class:`PhaseRecorder`, or :data:`NULL_RECORDER`."""
    return _current


def clear_recorder():
    """Reset to the null recorder without closing anything.

    Forked pool workers call this from their initializer: the recorder
    they inherit belongs to the parent (including its log file
    descriptor), and worker-side telemetry returns through the result
    sidecar instead.
    """
    global _current
    _current = NULL_RECORDER


@contextmanager
def recording(log_path=None, clock=time.perf_counter):
    """Activate a fresh :class:`PhaseRecorder` for the block."""
    global _current
    previous = _current
    _current = PhaseRecorder(log_path=log_path, clock=clock)
    try:
        yield _current
    finally:
        _current.close()
        _current = previous


@contextmanager
def telemetry_phase(name, **fields):
    """Instrumentation shim: a phase on whatever recorder is active."""
    with recorder().phase(name, **fields):
        yield


def profile_dir():
    """The per-worker cProfile dump directory, or ``None``."""
    return os.environ.get(PROFILE_DIR_ENV) or None


def phase_report(totals, total_wall_s):
    """Summarize :meth:`PhaseRecorder.phase_totals` against a measured
    wall time.

    Returns ``{"phases": {name: {...}}, "accounted_s", "coverage"}``
    where ``coverage`` is the fraction of ``total_wall_s`` explained by
    phase self-times (capped at 1.0 against clock jitter).
    """
    phases = {
        name: {
            "wall_s": round(row["wall_s"], 6),
            "self_s": round(row["self_s"], 6),
            "count": row["count"],
        }
        for name, row in sorted(totals.items())
    }
    accounted = sum(row["self_s"] for row in totals.values())
    coverage = min(1.0, accounted / total_wall_s) if total_wall_s else 1.0
    return {
        "phases": phases,
        "accounted_s": round(accounted, 6),
        "coverage": round(coverage, 6),
    }
