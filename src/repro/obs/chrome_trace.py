"""Chrome ``trace_event`` export of a simulated run.

Produces the JSON object format understood by ``chrome://tracing`` and
Perfetto: one process per node (tasks as complete "X" events in greedy
lanes), one extra process for engine spans (nesting depth as the
thread id), and optional per-node memory counter tracks.

Virtual-clock seconds map to trace microseconds.
"""

import json

from repro.obs.breakdown import records_of

#: Tolerance when packing tasks into lanes: ends and starts produced by
#: float arithmetic may differ in the last ulp.
_LANE_EPSILON = 1e-9

SPAN_PROCESS_NAME = "engine spans"


def chrome_trace(cluster, metrics=None, critical_path=None):
    """Build the trace document (a JSON-ready dict) for one cluster.

    ``metrics`` (a :class:`~repro.obs.metrics.ClusterMetrics` attached
    before the run) adds per-node ``memory used`` counter tracks.
    ``critical_path`` (a :class:`~repro.obs.critical_path.CriticalPath`)
    adds flow arrows ("s"/"f" events) linking consecutive task slices
    along the path, so the chain that determines the makespan is
    visually traceable in Perfetto.
    """
    events = []
    pids = {name: pid for pid, name in enumerate(cluster.node_order)}
    span_pid = len(pids)
    for name, pid in pids.items():
        events.append(_process_name(pid, name))
    events.append(_process_name(span_pid, SPAN_PROCESS_NAME))

    # Tasks: one lane (tid) per concurrent slot, packed greedily.
    lanes = {name: [] for name in pids}
    placement = {}
    ordered = sorted(
        records_of(cluster), key=lambda r: (r.start, r.end, r.name)
    )
    for record in ordered:
        lane_ends = lanes[record.node]
        for tid, lane_end in enumerate(lane_ends):
            if lane_end <= record.start + _LANE_EPSILON:
                lane_ends[tid] = record.end
                break
        else:
            tid = len(lane_ends)
            lane_ends.append(record.end)
        placement[(record.name, record.node, record.start, record.end)] = (
            pids[record.node], tid,
        )
        events.append(
            {
                "name": record.name,
                "cat": record.span.name if record.span is not None else "task",
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": (record.end - record.start) * 1e6,
                "pid": pids[record.node],
                "tid": tid,
            }
        )

    # Spans: nesting depth as the thread id keeps parents above children.
    obs = getattr(cluster, "obs", None)
    spans = obs.spans.spans if obs is not None else []
    for span in spans:
        end = span.end if span.end is not None else cluster.now
        args = {"parent": span.parent.name if span.parent else None}
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (end - span.start) * 1e6,
                "pid": span_pid,
                "tid": span.depth,
                "args": args,
            }
        )

    # Critical-path highlighting: flow arrows between consecutive task
    # slices on the path (wait/idle segments have no slice to anchor).
    if critical_path is not None:
        events.extend(_flow_events(critical_path, placement))

    # Memory counter tracks, when a metrics aggregator was listening.
    if metrics is not None:
        for node, series in sorted(metrics.memory_series.items()):
            for time, used in series:
                events.append(
                    {
                        "name": "memory used",
                        "ph": "C",
                        "ts": time * 1e6,
                        "pid": pids.get(node, span_pid),
                        "tid": 0,
                        "args": {"bytes": used},
                    }
                )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "elapsed_simulated_s": cluster.now,
            "nodes": len(cluster.node_order),
            "slots_per_node": cluster.spec.slots_per_node,
        },
    }


def _flow_events(critical_path, placement):
    """Flow start/finish pairs walking the path's task slices in order."""
    from repro.obs.critical_path import EXTENT_KINDS

    anchored = []
    for segment in critical_path.segments:
        if segment.kind not in EXTENT_KINDS:
            continue
        record = critical_path.record_for(segment)
        if record is None:
            continue
        key = (record.name, record.node, record.start, record.end)
        if key not in placement:
            continue
        anchored.append((segment, record, placement[key]))

    events = []
    flow_id = 0
    for (seg_a, rec_a, (pid_a, tid_a)), (seg_b, rec_b, (pid_b, tid_b)) in zip(
        anchored, anchored[1:]
    ):
        if rec_a is rec_b:
            continue
        flow_id += 1
        common = {"name": "critical-path", "cat": "critical-path",
                  "id": flow_id}
        events.append(
            dict(common, ph="s", ts=seg_a.end * 1e6, pid=pid_a, tid=tid_a)
        )
        events.append(
            dict(common, ph="f", bp="e", ts=seg_b.start * 1e6,
                 pid=pid_b, tid=tid_b)
        )
    return events


def write_chrome_trace(cluster, path, metrics=None, critical_path=None):
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    document = chrome_trace(cluster, metrics=metrics,
                            critical_path=critical_path)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=1, sort_keys=True)
    return path


def _process_name(pid, name):
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": name},
    }
