"""Critical-path reconstruction and per-resource blame attribution.

Turns a run's task records into a causal explanation of its makespan:
walk backward from the last-finishing task, covering simulated time with
typed segments --

- ``compute`` / ``transfer`` / ``spill``: a task extent, split using the
  decomposition the executor recorded (dependency transfers, modeled
  compute, spill disk traffic);
- ``dispatch-delay``: the task was ready but its ``not_before`` floor
  (centralized scheduler dispatch) had not passed;
- ``memory-wait`` / ``resource-wait``: the task was ready and
  dispatchable but memory admission or slot contention held it back;
- ``idle``: nothing recorded was running (gaps between ``cluster.run``
  calls that no coordinator charge covers).

At each step the walk prefers the *binding dependency* (the predecessor
whose completion made the task ready); when a task was ready the moment
it was queued, the record whose extent reaches closest to the current
frontier takes over instead -- that is how serialized coordinator work
(``charge_master``) and earlier pipeline stages join the path.

Because the segments tile ``[epoch, makespan]`` exactly, blame fractions
sum to 1 by construction, and the path length (the extent segments only)
can never exceed the makespan; for a pure chain DAG the two are equal.
"""

from collections import defaultdict

from repro.obs.breakdown import default_grouper, records_of

#: Segment kinds that represent actual work on the path (the "path
#: length"), as opposed to waiting or idle time.
EXTENT_KINDS = ("compute", "transfer", "spill")

#: Segment kinds for time a ready task spent waiting to start.
#: ``recovery-wait`` covers the ready->start gap of retried/recomputed
#: task attempts (failure detection plus retry backoff).
WAIT_KINDS = ("dispatch-delay", "memory-wait", "resource-wait", "recovery-wait")

_EPS = 1e-9


def blame_category(record):
    """Blame label of one record: explicit engine tag, else name prefix."""
    if record.category is not None:
        return record.category
    return default_grouper(record.name)


class PathSegment:
    """One typed interval of the critical path."""

    __slots__ = ("kind", "category", "name", "node", "start", "end")

    def __init__(self, kind, category, name, node, start, end):
        self.kind = kind
        self.category = category
        self.name = name
        self.node = node
        self.start = start
        self.end = end

    @property
    def duration(self):
        """Simulated seconds this segment covers."""
        return self.end - self.start

    def __repr__(self):
        return (
            f"PathSegment({self.kind} {self.category!r},"
            f" {self.start:.3f}-{self.end:.3f})"
        )


class CriticalPath:
    """The reconstructed critical path of one run."""

    def __init__(self, segments, epoch, end, records=None):
        #: Segments in increasing-time order, tiling ``[epoch, end]``.
        self.segments = segments
        self.epoch = epoch
        self.end = end
        self._records = records or {}

    @property
    def makespan(self):
        """Total simulated seconds the path explains."""
        return self.end - self.epoch

    @property
    def path_length(self):
        """Seconds of actual work (compute/transfer/spill) on the path."""
        return sum(
            s.duration for s in self.segments if s.kind in EXTENT_KINDS
        )

    @property
    def wait_s(self):
        """Seconds a ready task spent waiting on the path."""
        return sum(s.duration for s in self.segments if s.kind in WAIT_KINDS)

    @property
    def idle_s(self):
        """Seconds nothing recorded was running."""
        return sum(s.duration for s in self.segments if s.kind == "idle")

    def record_for(self, segment):
        """The task record a segment was cut from (``None`` for idle)."""
        return self._records.get(id(segment))

    def blame(self):
        """Per-(category, kind) attribution rows, largest first.

        Rows: ``{"category", "kind", "seconds", "fraction"}``; fractions
        are of the makespan and sum to 1.0 (idle included).
        """
        totals = defaultdict(float)
        for segment in self.segments:
            totals[(segment.category, segment.kind)] += segment.duration
        makespan = self.makespan or 1.0
        rows = [
            {
                "category": category,
                "kind": kind,
                "seconds": seconds,
                "fraction": seconds / makespan,
            }
            for (category, kind), seconds in totals.items()
        ]
        rows.sort(key=lambda r: (-r["seconds"], r["category"], r["kind"]))
        return rows

    def __repr__(self):
        return (
            f"CriticalPath({len(self.segments)} segments,"
            f" {self.path_length:.3f}s work / {self.makespan:.3f}s makespan)"
        )


def compute_critical_path(source):
    """Reconstruct the critical path of a cluster (or list of records).

    ``source`` is a :class:`~repro.cluster.cluster.SimulatedCluster`
    (records come from ``records_of``) or an iterable of
    :class:`~repro.obs.spans.TaskRecord`.
    """
    if hasattr(source, "task_trace") or hasattr(source, "obs"):
        records = records_of(source)
    else:
        records = list(source)
    if not records:
        return CriticalPath([], 0.0, 0.0)

    # The epoch reaches back to the earliest queue time so that
    # scheduling delay ahead of the first start stays inside the tiling.
    epoch = min(
        min(r.start, r.queued if r.queued is not None else r.start)
        for r in records
    )
    end = max(r.end for r in records)
    by_id = {r.task_id: r for r in records if r.task_id is not None}

    def order_key(record):
        return (record.end, record.start, record.name)

    segments = []
    seg_records = {}

    def emit(kind, record, lo, hi):
        if hi - lo <= 0:
            return
        category = blame_category(record) if record is not None else "(idle)"
        segment = PathSegment(
            kind,
            category,
            record.name if record is not None else None,
            record.node if record is not None else None,
            lo,
            hi,
        )
        segments.append(segment)
        if record is not None:
            seg_records[id(segment)] = record

    current = max(records, key=order_key)
    frontier = end
    # Each iteration strictly lowers the frontier or follows one DAG
    # edge (acyclic), so this terminates; the cap is a safety net.
    for _ in range(10 * len(records) + 100):
        r = current
        hi = min(r.end, frontier)
        # Decompose the extent [start, end] as [transfer][compute][spill]
        # and clip each piece to the uncovered window.
        t_end = r.start + r.transfer_s
        c_end = t_end + r.compute_s
        emit("transfer", r, r.start, min(t_end, hi))
        emit("compute", r, min(t_end, hi), min(c_end, hi))
        emit("spill", r, min(c_end, hi), hi)
        frontier = r.start

        # Time between becoming ready and starting: dispatch floor
        # first, then memory/slot contention.
        ready = r.ready if r.ready is not None else r.start
        if ready < frontier - _EPS:
            if getattr(r, "retried", False):
                # A retried attempt's whole ready->start gap (failure
                # detection, retry backoff, waiting for a survivor
                # slot) is recovery overhead.
                emit("recovery-wait", r, ready, frontier)
                frontier = ready
            else:
                wait_kind = "memory-wait" if r.mem_deferred else "resource-wait"
                floor = r.not_before or 0.0
                if floor > ready + _EPS:
                    floor_end = min(floor, frontier)
                    emit(wait_kind, r, floor_end, frontier)
                    emit("dispatch-delay", r, ready, floor_end)
                else:
                    emit(wait_kind, r, ready, frontier)
                frontier = ready

        if frontier <= epoch + _EPS:
            # Sub-epsilon residue (degenerate scales): idle-fill so the
            # tiling invariant holds at any magnitude.
            emit("idle", None, epoch, frontier)
            break

        # Binding dependency: the predecessor whose completion made this
        # task ready (its end coincides with the frontier).  A dep that
        # starts at/after the frontier cannot explain it causally --
        # that happens when a crashed node's results were recomputed
        # *after* a consumer that read the originals; following it would
        # move the frontier backward-in-causality (forward in time).
        binding = [
            by_id[d]
            for d in r.dep_ids
            if d in by_id
            and by_id[d].end >= frontier - 1e-6
            and by_id[d].start < frontier - _EPS
        ]
        if binding:
            current = max(binding, key=order_key)
            continue

        # No dependency explains the frontier: hand over to whichever
        # record's extent reaches closest to it (serialized coordinator
        # work, a previous cluster.run, or a concurrent straggler).
        candidates = [x for x in records if x.start < frontier - _EPS]
        if not candidates:
            emit("idle", None, epoch, frontier)
            frontier = epoch
            break
        current = max(
            candidates, key=lambda x: (min(x.end, frontier), x.start, x.name)
        )
        covered = min(current.end, frontier)
        if covered < frontier - _EPS:
            emit("idle", None, covered, frontier)
            frontier = covered
    else:
        # Safety cap hit: account the remainder as idle so the tiling
        # invariant (fractions sum to 1) still holds.
        emit("idle", None, epoch, frontier)

    segments.sort(key=lambda s: (s.start, s.end))
    return CriticalPath(segments, epoch, end, records=seg_records)


def format_critical_path(path, top=12):
    """Plain-text blame report for one critical path."""
    lines = []
    makespan = path.makespan
    lines.append(
        f"Critical path: {path.path_length:.1f}s of work explains"
        f" {makespan:.1f}s makespan"
        f" (waits {path.wait_s:.1f}s, idle {path.idle_s:.1f}s)"
    )
    rows = path.blame()
    width = max([len(str(r["category"])) for r in rows[:top]] + [8])
    lines.append(
        f"  {'blame'.ljust(width)}  {'kind':<14}  {'seconds':>9}  {'share':>6}"
    )
    for row in rows[:top]:
        lines.append(
            f"  {str(row['category']).ljust(width)}  {row['kind']:<14}"
            f"  {row['seconds']:>9.1f}  {row['fraction']:>6.1%}"
        )
    if len(rows) > top:
        rest = sum(r["seconds"] for r in rows[top:])
        lines.append(
            f"  {'(other)'.ljust(width)}  {'':<14}  {rest:>9.1f}"
            f"  {rest / (makespan or 1.0):>6.1%}"
        )
    return "\n".join(lines)
