"""Span-based tracing: named, nested extents of engine work.

Engines wrap logical units (a Spark stage, a Myria statement, a Dask
barrier) in spans::

    with cluster.obs.span("spark-stage0", category="spark"):
        cluster.run(tasks)

Because the simulator is single-threaded and synchronous, the stack of
currently-open spans is a faithful parent chain: every task recorded
while a span is open belongs to it, which replaces the old
name-prefix-grouping heuristic with explicit structure.
"""

from contextlib import contextmanager

from repro.obs.events import SpanClosed, SpanOpened


class Span:
    """One named extent of simulated time, with a parent link."""

    __slots__ = ("span_id", "name", "category", "parent", "start", "end", "attrs")

    def __init__(self, span_id, name, start, category=None, parent=None,
                 attrs=None):
        self.span_id = span_id
        self.name = name
        self.category = category
        self.parent = parent
        self.start = start
        self.end = None
        self.attrs = dict(attrs or {})

    @property
    def parent_id(self):
        """Parent span id, or -1 at the root."""
        return self.parent.span_id if self.parent is not None else -1

    @property
    def duration(self):
        """Simulated seconds covered; ``None`` while still open."""
        return None if self.end is None else self.end - self.start

    @property
    def depth(self):
        """Nesting depth (0 for root spans)."""
        depth = 0
        span = self.parent
        while span is not None:
            depth += 1
            span = span.parent
        return depth

    def __repr__(self):
        state = "open" if self.end is None else f"{self.duration:.3f}s"
        return f"Span({self.name!r}, {state})"


class SpanStore:
    """All spans of one cluster, plus the stack of open ones."""

    def __init__(self):
        self.spans = []
        self._stack = []
        self._next_id = 0

    def open(self, name, time, category=None, attrs=None):
        """Open a span at ``time``, nested under the current one."""
        span = Span(
            self._next_id, name, time, category=category,
            parent=self.current(), attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def close(self, span, time):
        """Close ``span`` at ``time``; spans must close innermost-first."""
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order"
            )
        self._stack.pop()
        span.end = time

    def current(self):
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    def clear(self):
        """Drop all spans (between benchmark trials on one cluster)."""
        self.spans.clear()
        self._stack.clear()

    def __len__(self):
        return len(self.spans)


class TaskRecord:
    """One executed task, tagged with the span it ran under.

    Beyond the ``[start, end]`` slot extent, the executor attaches the
    scheduling metadata that critical-path analysis needs: when the
    task was queued, when its last dependency resolved (``ready``), its
    dispatch floor (``not_before``), whether memory admission deferred
    it, the transfer/compute/spill decomposition of its extent, and the
    ids of its dependencies.  All fields default so that records
    synthesized from bare ``task_trace`` tuples keep working.
    """

    __slots__ = (
        "name",
        "node",
        "start",
        "end",
        "span",
        "task_id",
        "category",
        "op",
        "queued",
        "ready",
        "not_before",
        "mem_deferred",
        "transfer_s",
        "compute_s",
        "spill_s",
        "dep_ids",
        "retried",
    )

    def __init__(self, name, node, start, end, span=None, task_id=None,
                 category=None, op=None, queued=None, ready=None,
                 not_before=0.0, mem_deferred=False, transfer_s=0.0,
                 compute_s=None, spill_s=0.0, dep_ids=(), retried=False):
        self.name = name
        self.node = node
        self.start = start
        self.end = end
        self.span = span
        self.task_id = task_id
        self.category = category
        self.op = op
        self.queued = queued
        self.ready = ready
        self.not_before = not_before
        self.mem_deferred = mem_deferred
        self.transfer_s = transfer_s
        # Untracked records (coordinator charges, synthesized traces)
        # count their whole extent as compute.
        if compute_s is None:
            compute_s = (end - start) - transfer_s - spill_s
        self.compute_s = compute_s
        self.spill_s = spill_s
        self.dep_ids = tuple(dep_ids)
        self.retried = retried

    @property
    def duration(self):
        """Simulated seconds the task occupied its slot."""
        return self.end - self.start

    def __repr__(self):
        return (
            f"TaskRecord({self.name!r} on {self.node},"
            f" {self.start:.3f}-{self.end:.3f})"
        )


class Observability:
    """Per-cluster observability state: event bus, spans, task records.

    Owned by :class:`~repro.cluster.cluster.SimulatedCluster` as
    ``cluster.obs``; engines only ever need :meth:`span`, consumers
    subscribe to ``obs.events`` or read ``obs.task_records`` after a
    run.
    """

    def __init__(self, clock):
        from repro.obs.events import EventBus

        self.clock = clock
        self.events = EventBus()
        self.spans = SpanStore()
        self.task_records = []
        # Plane-1 provenance state: the ambient logical-op scope stack
        # plus the lowering's declared span-name/category -> op maps
        # (consumed by repro.obs.attribution).
        self._provenance_stack = []
        self.provenance_spans = {}
        self.provenance_categories = {}

    @contextmanager
    def span(self, name, category=None, **attrs):
        """Open a named span for the duration of the ``with`` block."""
        span = self.spans.open(
            name, self.clock.now, category=category, attrs=attrs
        )
        if self.events:
            self.events.emit(
                SpanOpened(self.clock.now, name, span.span_id, span.parent_id)
            )
        try:
            yield span
        finally:
            self.spans.close(span, self.clock.now)
            if self.events:
                self.events.emit(
                    SpanClosed(self.clock.now, name, span.span_id, span.start)
                )

    def record_task(self, name, node, start, end, **meta):
        """Record one executed task under the currently-open span.

        ``meta`` carries the optional :class:`TaskRecord` scheduling
        fields (``task_id``, ``category``, ``queued``, ``ready``, ...).
        Records with no explicit ``op`` inherit the ambient provenance
        scope, if one is open.  Recording is pure bookkeeping -- it
        never touches the clock, so observed and unobserved runs stay
        bit-identical.
        """
        if meta.get("op") is None and self._provenance_stack:
            meta["op"] = self._provenance_stack[-1]
        self.task_records.append(
            TaskRecord(name, node, start, end, self.spans.current(), **meta)
        )

    @contextmanager
    def provenance(self, op):
        """Attribute every task recorded inside the block to logical
        ``op`` (unless the record carries its own explicit op)."""
        self._provenance_stack.append(op)
        try:
            yield
        finally:
            self._provenance_stack.pop()

    def current_provenance(self):
        """The innermost ambient provenance id, or ``None``."""
        return self._provenance_stack[-1] if self._provenance_stack else None

    def declare_provenance(self, spans=None, categories=None):
        """Merge lowering-declared span-name -> op and category -> op
        maps, used by the attribution fold for tasks whose records do
        not carry an explicit op."""
        if spans:
            self.provenance_spans.update(spans)
        if categories:
            self.provenance_categories.update(categories)

    def reset(self):
        """Drop spans and records (used by ``cluster.reset_clock``).

        Provenance declarations survive a reset: they describe the
        lowering, not one run.
        """
        self.spans.clear()
        self.task_records.clear()
