"""Typed lifecycle events and the cluster event bus.

Every event carries its virtual-clock ``time``.  Emission sites follow
the guard idiom::

    bus = cluster.obs.events
    if bus:
        bus.emit(TaskStarted(cluster.now, ...))

``EventBus.__bool__`` is false while nobody is subscribed, so with no
subscribers neither the event object nor any of its fields are ever
constructed -- the zero-overhead requirement that keeps simulated
durations bit-identical whether or not a run is being observed.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Event:
    """Base class: anything that happened at a virtual-clock instant."""

    time: float


# -- task lifecycle ----------------------------------------------------

@dataclass(frozen=True)
class TaskQueued(Event):
    """A task entered the executor's pending set."""

    name: str
    task_id: int


@dataclass(frozen=True)
class TaskPlaced(Event):
    """The scheduler chose a node for a task."""

    name: str
    task_id: int
    node: str


@dataclass(frozen=True)
class TaskStarted(Event):
    """A task began occupying a slot."""

    name: str
    task_id: int
    node: str


@dataclass(frozen=True)
class TaskFinished(Event):
    """A task released its slot; ``time - start`` is its duration."""

    name: str
    task_id: int
    node: str
    start: float


@dataclass(frozen=True)
class TaskFailed(Event):
    """A task's function raised (rewrapped as ``TaskFailedError``)."""

    name: str
    task_id: int
    node: str
    error: str


# -- faults and recovery -----------------------------------------------

@dataclass(frozen=True)
class NodeCrashed(Event):
    """A node died: its slots, memory and in-flight tasks are gone."""

    node: str
    killed_tasks: tuple


@dataclass(frozen=True)
class NodeRecovered(Event):
    """A crashed node rejoined the cluster with empty state."""

    node: str


@dataclass(frozen=True)
class TaskRetried(Event):
    """A failed/killed task attempt was requeued for another try."""

    name: str
    task_id: int
    node: str
    attempt: int


@dataclass(frozen=True)
class QueryRestarted(Event):
    """An engine restarted a whole query/job after a crash."""

    engine: str
    attempt: int
    reason: str


# -- data movement -----------------------------------------------------

@dataclass(frozen=True)
class NetworkTransfer(Event):
    """Bytes priced for a point-to-point move (``src == dst`` = memcpy)."""

    nbytes: int
    src: str
    dst: str
    seconds: float


@dataclass(frozen=True)
class BroadcastSent(Event):
    """A tree broadcast of ``nbytes`` payload to ``n_nodes`` nodes."""

    nbytes: int
    n_nodes: int
    seconds: float


@dataclass(frozen=True)
class S3Download(Event):
    """One node pulled ``nbytes`` from the object store."""

    nbytes: int
    n_objects: int
    seconds: float


# -- memory ------------------------------------------------------------

@dataclass(frozen=True)
class MemoryAllocated(Event):
    """A node reserved ``nbytes``; ``used_bytes`` is the new total."""

    node: str
    nbytes: int
    used_bytes: int
    label: str


@dataclass(frozen=True)
class MemoryFreed(Event):
    """A node released ``nbytes``; ``used_bytes`` is the new total."""

    node: str
    nbytes: int
    used_bytes: int


@dataclass(frozen=True)
class MemorySpilled(Event):
    """Bytes that did not fit in memory and went through local disk."""

    node: str
    nbytes: int
    label: str


@dataclass(frozen=True)
class MemoryOOM(Event):
    """An allocation was refused (the "fail" admission policy)."""

    node: str
    requested: int
    available: int
    label: str


# -- object store ------------------------------------------------------

@dataclass(frozen=True)
class ObjectPut(Event):
    """An object was uploaded to the S3-like store."""

    bucket: str
    key: str
    nbytes: int


@dataclass(frozen=True)
class ObjectGet(Event):
    """An object was read from the S3-like store."""

    bucket: str
    key: str
    nbytes: int


# -- spans -------------------------------------------------------------

@dataclass(frozen=True)
class SpanOpened(Event):
    """An engine opened a named span (stage/query/barrier)."""

    name: str
    span_id: int
    parent_id: int


@dataclass(frozen=True)
class SpanClosed(Event):
    """A span ended; ``time - start`` is its wall-clock extent."""

    name: str
    span_id: int
    start: float


class EventBus:
    """Synchronous fan-out of events to subscribers.

    Falsy while no subscriber is attached, so emission sites can skip
    event construction entirely (``if bus: bus.emit(...)``).
    """

    __slots__ = ("_subscribers",)

    def __init__(self):
        self._subscribers = []

    def __bool__(self):
        return bool(self._subscribers)

    def subscribe(self, handler):
        """Register ``handler(event)``; returns it for later removal."""
        if not callable(handler):
            raise TypeError(f"handler must be callable, got {handler!r}")
        self._subscribers.append(handler)
        return handler

    def unsubscribe(self, handler):
        """Remove a previously subscribed handler."""
        try:
            self._subscribers.remove(handler)
        except ValueError:
            raise KeyError(f"handler {handler!r} is not subscribed") from None

    def emit(self, event):
        """Deliver one event to every subscriber, in subscription order."""
        for handler in self._subscribers:
            handler(event)
