"""Cluster-wide observability: events, metrics, spans, exporters.

The paper's conclusions come from explaining *where time goes* in each
system (startup, format conversion, shuffles, memory pressure --
Figures 10-15).  This package makes those explanations observable from
any simulated run:

- :mod:`repro.obs.events` -- typed lifecycle events on a per-cluster
  bus (``cluster.obs.events``), with zero overhead while nobody
  subscribes.
- :mod:`repro.obs.metrics` -- counters/gauges/histograms populated
  from the bus by :class:`ClusterMetrics`.
- :mod:`repro.obs.spans` -- named, nested spans engines wrap their
  stages in (``with cluster.obs.span("spark-stage0"): ...``).
- :mod:`repro.obs.breakdown` -- per-group "where did the time go"
  summaries and the plain-text report.
- :mod:`repro.obs.chrome_trace` -- Chrome ``trace_event`` JSON export
  (chrome://tracing / Perfetto).
- :mod:`repro.obs.critical_path` -- critical-path reconstruction and
  per-resource blame attribution over the recorded task DAG.
- :mod:`repro.obs.attribution` -- folds critical-path blame up to the
  logical ops of ``repro.plan`` for cross-engine per-op comparison.
- :mod:`repro.obs.telemetry` -- wall-clock self-telemetry for the
  harness process itself (phases, structured JSON logs, metrics).
- :mod:`repro.obs.ledger` -- versioned JSON run snapshots under
  ``benchmarks/ledger/`` and regression diffing between them
  (``python -m repro.harness compare``).

See the "Observability" section of DESIGN.md and
``python -m repro.harness trace`` for the end-to-end workflow.
"""

from repro.obs.attribution import (
    attribute_critical_path,
    format_attribution,
    format_op_table,
    is_recovery_category,
    op_table,
    op_totals,
    resolve_segment_op,
)
from repro.obs.breakdown import (
    default_grouper,
    format_breakdown,
    group_of,
    node_utilization_rows,
    records_of,
    summarize_records,
)
from repro.obs.chrome_trace import chrome_trace, write_chrome_trace
from repro.obs.critical_path import (
    CriticalPath,
    PathSegment,
    blame_category,
    compute_critical_path,
    format_critical_path,
)
from repro.obs.events import (
    BroadcastSent,
    Event,
    EventBus,
    MemoryAllocated,
    MemoryFreed,
    MemoryOOM,
    MemorySpilled,
    NetworkTransfer,
    NodeCrashed,
    NodeRecovered,
    ObjectGet,
    ObjectPut,
    QueryRestarted,
    S3Download,
    SpanClosed,
    SpanOpened,
    TaskFailed,
    TaskFinished,
    TaskPlaced,
    TaskQueued,
    TaskRetried,
    TaskStarted,
)
from repro.obs.metrics import (
    ClusterMetrics,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.ledger import (
    LedgerSchemaError,
    compare_snapshots,
    experiment_snapshot,
    format_compare,
    load_snapshot,
    run_snapshot,
    write_snapshot,
)
from repro.obs.optledger import (
    check_opt_snapshot,
    format_opt_comparison,
    opt_comparison_rows,
    opt_pairs,
)
from repro.obs.spans import Observability, Span, SpanStore, TaskRecord
from repro.obs.telemetry import (
    NULL_RECORDER,
    PhaseRecorder,
    recorder,
    recording,
    telemetry_phase,
)

__all__ = [
    "BroadcastSent",
    "ClusterMetrics",
    "Counter",
    "CriticalPath",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "LedgerSchemaError",
    "NULL_RECORDER",
    "PhaseRecorder",
    "MemoryAllocated",
    "MemoryFreed",
    "MemoryOOM",
    "MemorySpilled",
    "MetricsRegistry",
    "NetworkTransfer",
    "NodeCrashed",
    "NodeRecovered",
    "ObjectGet",
    "ObjectPut",
    "Observability",
    "PathSegment",
    "QueryRestarted",
    "S3Download",
    "Span",
    "SpanClosed",
    "SpanOpened",
    "SpanStore",
    "TaskFailed",
    "TaskFinished",
    "TaskPlaced",
    "TaskQueued",
    "TaskRecord",
    "TaskRetried",
    "TaskStarted",
    "attribute_critical_path",
    "blame_category",
    "check_opt_snapshot",
    "chrome_trace",
    "compare_snapshots",
    "compute_critical_path",
    "default_grouper",
    "experiment_snapshot",
    "format_attribution",
    "format_breakdown",
    "format_compare",
    "format_critical_path",
    "format_op_table",
    "format_opt_comparison",
    "group_of",
    "is_recovery_category",
    "load_snapshot",
    "node_utilization_rows",
    "op_table",
    "op_totals",
    "opt_comparison_rows",
    "opt_pairs",
    "recorder",
    "recording",
    "records_of",
    "resolve_segment_op",
    "run_snapshot",
    "summarize_records",
    "telemetry_phase",
    "write_chrome_trace",
    "write_snapshot",
]
