"""Metrics primitives and the event-bus-fed cluster aggregator.

:class:`MetricsRegistry` holds counters, gauges (with high-water
marks) and histograms.  :class:`ClusterMetrics` subscribes to a
cluster's event bus and keeps the registry current while a run
executes -- per-node slot occupancy and memory, bytes shuffled,
broadcast and ingested, spill volume, and per-group task-duration
histograms (the straggler statistics of Figures 10g/13).
"""

from collections import defaultdict

from repro.obs import events as ev


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease: {amount}")
        self.value += amount

    def __repr__(self):
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A settable level that remembers its high-water mark."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name):
        self.name = name
        self.value = 0
        self.high_water = 0

    def set(self, value):
        """Set the level; the high-water mark only ratchets up."""
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, delta):
        """Adjust the level by ``delta``."""
        self.set(self.value + delta)

    def __repr__(self):
        return f"Gauge({self.name}={self.value}, hwm={self.high_water})"


class Histogram:
    """A bag of observations with summary statistics."""

    __slots__ = ("name", "values")

    def __init__(self, name):
        self.name = name
        self.values = []

    def observe(self, value):
        """Record one observation."""
        self.values.append(value)

    @property
    def count(self):
        """Number of observations."""
        return len(self.values)

    @property
    def total(self):
        """Sum of observations."""
        return sum(self.values)

    @property
    def mean(self):
        """Mean observation (0.0 when empty)."""
        return self.total / len(self.values) if self.values else 0.0

    @property
    def max(self):
        """Largest observation (0.0 when empty)."""
        return max(self.values) if self.values else 0.0

    def percentile(self, p):
        """The ``p``-th percentile (nearest-rank; 0.0 when empty)."""
        if not self.values:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, round(p / 100 * len(ordered)) - 1))
        return ordered[rank]

    def __repr__(self):
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Named metrics, created on first use."""

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def counter(self, name):
        """The counter called ``name`` (created empty if new)."""
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name):
        """The gauge called ``name`` (created empty if new)."""
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(self, name):
        """The histogram called ``name`` (created empty if new)."""
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def snapshot(self):
        """Flat ``{name: value}`` view of everything registered."""
        out = {}
        for name, counter in sorted(self.counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(self.gauges.items()):
            out[name] = gauge.value
            out[f"{name}.high_water"] = gauge.high_water
        for name, histogram in sorted(self.histograms.items()):
            out[f"{name}.count"] = histogram.count
            out[f"{name}.mean"] = histogram.mean
            out[f"{name}.max"] = histogram.max
        return out


class ClusterMetrics:
    """Aggregates a cluster's event stream into a registry.

    Use :meth:`attach` to subscribe before a run and read the registry
    (or the convenience properties) afterwards; :meth:`detach` restores
    the zero-subscriber fast path.
    """

    def __init__(self, cluster):
        self.cluster = cluster
        self.registry = MetricsRegistry()
        #: Per-node ``[(time, used_bytes), ...]`` for counter-track export.
        self.memory_series = defaultdict(list)
        self.events_seen = 0
        self._dispatch = {
            ev.TaskStarted: self._on_task_started,
            ev.TaskFinished: self._on_task_finished,
            ev.TaskFailed: self._on_task_failed,
            ev.NetworkTransfer: self._on_transfer,
            ev.BroadcastSent: self._on_broadcast,
            ev.S3Download: self._on_s3,
            ev.MemoryAllocated: self._on_memory,
            ev.MemoryFreed: self._on_memory,
            ev.MemorySpilled: self._on_spill,
            ev.MemoryOOM: self._on_oom,
            ev.ObjectPut: self._on_object_put,
            ev.ObjectGet: self._on_object_get,
        }

    @classmethod
    def attach(cls, cluster):
        """Subscribe a fresh aggregator to ``cluster``'s event bus."""
        metrics = cls(cluster)
        cluster.obs.events.subscribe(metrics.on_event)
        return metrics

    def detach(self):
        """Stop listening (the bus becomes falsy again if last out)."""
        self.cluster.obs.events.unsubscribe(self.on_event)

    def on_event(self, event):
        """Bus callback: route one event to its aggregation handler."""
        self.events_seen += 1
        handler = self._dispatch.get(type(event))
        if handler is not None:
            handler(event)

    # -- handlers ------------------------------------------------------

    def _on_task_started(self, event):
        self.registry.counter("tasks.started").inc()
        self.registry.gauge(f"slots.busy.{event.node}").add(1)

    def _on_task_finished(self, event):
        self.registry.counter("tasks.finished").inc()
        self.registry.gauge(f"slots.busy.{event.node}").add(-1)
        from repro.obs.breakdown import default_grouper

        group = default_grouper(event.name)
        self.registry.histogram(f"task_seconds.{group}").observe(
            event.time - event.start
        )

    def _on_task_failed(self, event):
        self.registry.counter("tasks.failed").inc()

    def _on_transfer(self, event):
        self.registry.counter("network.transfers").inc()
        if event.src != event.dst:
            self.registry.counter("network.bytes_node_to_node").inc(event.nbytes)

    def _on_broadcast(self, event):
        self.registry.counter("network.broadcasts").inc()
        self.registry.counter("network.bytes_broadcast").inc(
            event.nbytes * (event.n_nodes - 1)
        )

    def _on_s3(self, event):
        self.registry.counter("s3.objects").inc(event.n_objects)
        self.registry.counter("s3.bytes_ingested").inc(event.nbytes)

    def _on_memory(self, event):
        gauge = self.registry.gauge(f"memory.used.{event.node}")
        gauge.set(event.used_bytes)
        self.memory_series[event.node].append((event.time, event.used_bytes))

    def _on_spill(self, event):
        self.registry.counter("memory.bytes_spilled").inc(event.nbytes)

    def _on_oom(self, event):
        self.registry.counter("memory.oom").inc()

    def _on_object_put(self, event):
        self.registry.counter("objectstore.bytes_put").inc(event.nbytes)

    def _on_object_get(self, event):
        self.registry.counter("objectstore.bytes_get").inc(event.nbytes)

    # -- convenience views ---------------------------------------------

    @property
    def shuffle_bytes(self):
        """Bytes moved node-to-node (shuffles, steals, fetches)."""
        return self.registry.counter("network.bytes_node_to_node").value

    @property
    def broadcast_bytes(self):
        """Bytes put on the wire by tree broadcasts."""
        return self.registry.counter("network.bytes_broadcast").value

    @property
    def s3_bytes(self):
        """Bytes ingested from the object store."""
        return self.registry.counter("s3.bytes_ingested").value

    @property
    def spilled_bytes(self):
        """Bytes that overflowed memory to local disk."""
        return self.registry.counter("memory.bytes_spilled").value

    def peak_memory(self, node):
        """High-water mark of tracked memory on one node, in bytes."""
        return self.registry.gauge(f"memory.used.{node}").high_water

    def straggler_rows(self):
        """Per-group duration spread: where max >> mean, stragglers.

        Rows sorted by descending total busy time:
        ``{"group", "tasks", "mean_s", "p95_s", "max_s", "skew"}`` where
        ``skew`` is ``max / mean``.
        """
        rows = []
        for name, hist in self.registry.histograms.items():
            if not name.startswith("task_seconds.") or not hist.count:
                continue
            mean = hist.mean
            rows.append(
                {
                    "group": name[len("task_seconds."):],
                    "tasks": hist.count,
                    "mean_s": mean,
                    "p95_s": hist.percentile(95),
                    "max_s": hist.max,
                    "skew": hist.max / mean if mean > 0 else 0.0,
                }
            )
        rows.sort(key=lambda r: -(r["mean_s"] * r["tasks"]))
        return rows
