"""Logical-op attribution: fold critical-path blame up to plan ops.

The blame ledger attributes makespan to *physical* categories
(``spark-denoise``, ``myria-shuffle-...``) that cannot be compared
across engines.  This module folds the same critical-path segments up
to the *logical* ops of ``repro.plan`` -- the level at which every
workload is defined exactly once -- so per-op cost is comparable
op-for-op across all five systems (the paper's Table 1 comparison made
quantitative).

Each segment resolves to a provenance id through a fixed order:

1. the explicit ``op`` its task record carries (stamped by the lowering
   on the task, a costed function, or an ambient
   ``obs.provenance(...)`` scope);
2. the span chain the record ran under, innermost first -- a span's
   ``plan_op`` attribute or the lowering-declared span-name map;
3. the lowering-declared category map (exact match, then declared
   prefixes);
4. a pseudo-op: ``@recovery`` for failure-recovery work and waits,
   ``@idle`` for uncovered gaps, ``@overhead`` for everything an
   engine does that implements no logical op (startup, coordinator
   bookkeeping, scheduler waits).

Pseudo-ops keep the tiling invariant: attributed op costs tile the
makespan exactly and fractions sum to 1, property-tested like
``critical_path``.
"""

from collections import defaultdict

from repro.obs.critical_path import compute_critical_path
from repro.plan.ir import PSEUDO_IDLE, PSEUDO_OVERHEAD, PSEUDO_RECOVERY

#: Category suffixes that mark failure-recovery work in any engine
#: (``spark-recompute``, ``dask-recompute``, ``myria-restart``,
#: ``tf-rerun``, ``scidb-rerun``).
_RECOVERY_SUFFIXES = ("-recompute", "-restart", "-rerun")


def is_recovery_category(category):
    """True when a physical blame category is failure-recovery work."""
    return bool(category) and category.endswith(_RECOVERY_SUFFIXES)


def resolve_segment_op(segment, record, span_map=None, category_map=None):
    """Provenance id of one critical-path segment (never ``None``)."""
    if record is None:
        return PSEUDO_IDLE
    if segment is not None and segment.kind == "recovery-wait":
        return PSEUDO_RECOVERY
    if record.op is not None:
        return record.op
    span_map = span_map or {}
    span = record.span
    while span is not None:
        op = span.attrs.get("plan_op") or span_map.get(span.name)
        if op is not None:
            return op
        span = span.parent
    category = segment.category if segment is not None else record.category
    if category:
        category_map = category_map or {}
        op = category_map.get(category)
        if op is not None:
            return op
        for prefix, mapped in category_map.items():
            if category.startswith(prefix):
                return mapped
        if is_recovery_category(category):
            return PSEUDO_RECOVERY
    return PSEUDO_OVERHEAD


def attribute_critical_path(cluster, path=None):
    """Fold a run's critical path up to logical ops.

    Returns rows ``{"op", "kind", "seconds", "fraction"}`` sorted
    largest-first.  The rows tile the makespan exactly: seconds sum to
    the makespan and fractions sum to 1 (pseudo-ops included).
    """
    obs = getattr(cluster, "obs", None)
    span_map = dict(obs.provenance_spans) if obs is not None else {}
    category_map = dict(obs.provenance_categories) if obs is not None else {}
    if path is None:
        path = compute_critical_path(cluster)
    totals = defaultdict(float)
    for segment in path.segments:
        record = path.record_for(segment)
        op = resolve_segment_op(segment, record, span_map, category_map)
        totals[(op, segment.kind)] += segment.duration
    makespan = path.makespan or 1.0
    rows = [
        {
            "op": op,
            "kind": kind,
            "seconds": seconds,
            "fraction": seconds / makespan,
        }
        for (op, kind), seconds in totals.items()
    ]
    rows.sort(key=lambda r: (-r["seconds"], r["op"], r["kind"]))
    return rows


def op_totals(rows):
    """Collapse attribution rows over kinds: op -> total seconds."""
    totals = defaultdict(float)
    for row in rows:
        totals[row["op"]] += row["seconds"]
    return dict(totals)


def op_table(columns, plan=None):
    """Cross-engine per-op cost table.

    ``columns`` maps a column label (usually the engine name) to the
    attribution rows of one run.  Returns
    ``{"ops": [...], "columns": [...], "cells": {op: {label: seconds}}}``
    with ops ordered by the plan (when given) followed by pseudo-ops,
    else by total cost.
    """
    labels = list(columns)
    per_op = {label: op_totals(rows) for label, rows in columns.items()}
    seen = set()
    for totals in per_op.values():
        seen.update(totals)
    if plan is not None:
        ordered = [op for op in plan.provenance_ids() if op in seen]
        extras = sorted(op for op in seen if op not in set(ordered))
    else:
        grand = defaultdict(float)
        for totals in per_op.values():
            for op, seconds in totals.items():
                grand[op] += seconds
        ordered, extras = [], []
        for op in sorted(grand, key=lambda o: (-grand[o], o)):
            (extras if op.startswith("@") else ordered).append(op)
    ops = ordered + [op for op in extras if not op.startswith("@")] + [
        op for op in extras if op.startswith("@")
    ]
    cells = {
        op: {label: per_op[label].get(op, 0.0) for label in labels}
        for op in ops
    }
    return {"ops": ops, "columns": labels, "cells": cells}


def format_attribution(rows, top=12):
    """Plain-text per-op blame report for one run."""
    lines = []
    total = sum(r["seconds"] for r in rows)
    lines.append(f"Per-op attribution ({total:.1f}s makespan):")
    width = max([len(str(r["op"])) for r in rows[:top]] + [8])
    lines.append(
        f"  {'op'.ljust(width)}  {'kind':<14}  {'seconds':>9}  {'share':>6}"
    )
    for row in rows[:top]:
        lines.append(
            f"  {str(row['op']).ljust(width)}  {row['kind']:<14}"
            f"  {row['seconds']:>9.1f}  {row['fraction']:>6.1%}"
        )
    if len(rows) > top:
        rest = sum(r["seconds"] for r in rows[top:])
        lines.append(
            f"  {'(other)'.ljust(width)}  {'':<14}  {rest:>9.1f}"
            f"  {rest / (total or 1.0):>6.1%}"
        )
    return "\n".join(lines)


def format_op_table(table, digits=1):
    """Plain-text rendering of :func:`op_table` (ops x engines)."""
    labels = table["columns"]
    width = max([len(op) for op in table["ops"]] + [4])
    col = max([len(label) for label in labels] + [9])
    lines = [
        "  ".join(["op".ljust(width)] + [label.rjust(col) for label in labels])
    ]
    for op in table["ops"]:
        cells = table["cells"][op]
        lines.append(
            "  ".join(
                [op.ljust(width)]
                + [format(cells[label], f">{col}.{digits}f") for label in labels]
            )
        )
    return "\n".join(lines)
