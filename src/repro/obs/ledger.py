"""Persistent run ledger: versioned snapshots + regression diffing.

A *run snapshot* captures one cluster's makespan, critical-path blame,
data movement and memory behavior as plain JSON-ready dicts; an
*experiment snapshot* stacks the run snapshots of every cluster an
experiment built (experiments run one cluster per engine/size) under a
schema version, the git SHA, and the scale profile.  Snapshots written
under ``benchmarks/ledger/`` are the perf trajectory the ROADMAP asks
for: ``python -m repro.harness compare`` diffs any two and flags
makespan or blame regressions beyond a tolerance.

Everything here is deterministic (the simulator is), so regenerating a
baseline on an unchanged tree reproduces it byte-for-byte except the
``git_sha`` stamp.
"""

import json
import subprocess
from collections import defaultdict

from repro.obs.attribution import attribute_critical_path
from repro.obs.breakdown import records_of, summarize_records
from repro.obs.critical_path import compute_critical_path

#: Bump when snapshot layout changes incompatibly.
#: v2 (this build) adds the ``op_blame`` section: critical-path blame
#: folded up to logical plan ops (see ``repro.obs.attribution``).
LEDGER_SCHEMA_VERSION = 2

#: Default relative tolerance for makespan/blame regression flags.
DEFAULT_TOLERANCE = 0.05


class LedgerSchemaError(ValueError):
    """A snapshot's schema version does not match this build."""

    def __init__(self, path, found):
        self.path = path
        self.found = found
        super().__init__(
            f"ledger snapshot {path} has schema_version {found!r};"
            f" this build reads version {LEDGER_SCHEMA_VERSION}"
        )

    def diagnostic(self):
        """Human-readable explanation of the schema gap."""
        lines = [str(self)]
        if self.found == 1 and LEDGER_SCHEMA_VERSION == 2:
            lines.append(
                "schema v2 adds the per-logical-op 'op_blame' section"
                " (critical-path blame folded up to repro.plan ops);"
                " v1 snapshots lack it and cannot be compared op-for-op."
            )
        lines.append(
            "regenerate the snapshot with:"
            " PYTHONPATH=src python -m repro.harness ledger <experiment>"
            " --quick --out-dir benchmarks/ledger"
        )
        return "\n".join(lines)


def _round(value, digits=6):
    return round(float(value), digits)


def git_sha():
    """HEAD commit of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        )
        return out.stdout.strip()
    except Exception:  # noqa: BLE001 - any failure means "no git info"
        return "unknown"


def run_snapshot(cluster, label=None, critical_path=None, top_groups=12):
    """JSON-ready summary of one observed cluster run.

    This is the shared serializer behind both ledger snapshots and
    ``harness trace --json``.
    """
    path = critical_path or compute_critical_path(cluster)
    op_blame = attribute_critical_path(cluster, path=path)
    records = records_of(cluster)
    groups = summarize_records(records)
    spilled = sum(n.memory.spilled_bytes for n in cluster.nodes.values())
    oom = sum(n.memory.oom_count for n in cluster.nodes.values())
    peak = max(
        (n.memory.peak_bytes for n in cluster.nodes.values()), default=0
    )
    return {
        "label": label,
        "makespan_s": _round(cluster.now),
        "utilization": _round(cluster.utilization()),
        "tasks": len(records),
        "critical_path": {
            "path_length_s": _round(path.path_length),
            "wait_s": _round(path.wait_s),
            "idle_s": _round(path.idle_s),
            "blame": [
                {
                    "category": row["category"],
                    "kind": row["kind"],
                    "seconds": _round(row["seconds"]),
                    "fraction": _round(row["fraction"]),
                }
                for row in path.blame()
            ],
        },
        "op_blame": [
            {
                "op": row["op"],
                "kind": row["kind"],
                "seconds": _round(row["seconds"]),
                "fraction": _round(row["fraction"]),
            }
            for row in op_blame
        ],
        "bytes": {
            "node_to_node": cluster.network.bytes_node_to_node,
            "broadcast": cluster.network.bytes_broadcast,
            "s3": cluster.network.bytes_from_s3,
            "spilled": spilled,
        },
        "memory": {
            "peak_bytes": peak,
            "oom_count": oom,
            "spilled_bytes": spilled,
        },
        "groups": [
            {
                "group": row["group"],
                "busy_s": _round(row["busy_s"]),
                "tasks": row["tasks"],
            }
            for row in groups[:top_groups]
        ],
    }


def experiment_snapshot(experiment, runs, quick=False, scale=None):
    """Stack per-run snapshots into one versioned experiment snapshot."""
    blame = defaultdict(float)
    for run in runs:
        for row in run["critical_path"]["blame"]:
            blame[(row["category"], row["kind"])] += row["seconds"]
    blame_rows = [
        {"category": category, "kind": kind, "seconds": _round(seconds)}
        for (category, kind), seconds in blame.items()
    ]
    blame_rows.sort(key=lambda r: (-r["seconds"], r["category"], r["kind"]))
    op_blame = defaultdict(float)
    for run in runs:
        for row in run.get("op_blame", []):
            op_blame[(row["op"], row["kind"])] += row["seconds"]
    op_rows = [
        {"op": op, "kind": kind, "seconds": _round(seconds)}
        for (op, kind), seconds in op_blame.items()
    ]
    op_rows.sort(key=lambda r: (-r["seconds"], r["op"], r["kind"]))
    return {
        "schema_version": LEDGER_SCHEMA_VERSION,
        "experiment": experiment,
        "quick": bool(quick),
        "git_sha": git_sha(),
        "scale": scale,
        "total_makespan_s": _round(sum(r["makespan_s"] for r in runs)),
        "blame": blame_rows,
        "op_blame": op_rows,
        "bytes": {
            key: sum(r["bytes"][key] for r in runs)
            for key in ("node_to_node", "broadcast", "s3", "spilled")
        },
        "memory": {
            "peak_bytes": max((r["memory"]["peak_bytes"] for r in runs),
                              default=0),
            "oom_count": sum(r["memory"]["oom_count"] for r in runs),
            "spilled_bytes": sum(r["memory"]["spilled_bytes"] for r in runs),
        },
        "runs": runs,
    }


def write_snapshot(snapshot, path):
    """Serialize a snapshot to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def load_snapshot(path):
    """Read a snapshot written by :func:`write_snapshot`."""
    with open(path) as fh:
        snapshot = json.load(fh)
    version = snapshot.get("schema_version")
    if version != LEDGER_SCHEMA_VERSION:
        raise LedgerSchemaError(path, version)
    return snapshot


def compare_snapshots(baseline, candidate, tolerance=DEFAULT_TOLERANCE):
    """Diff two experiment snapshots; returns a JSON-ready report.

    Flags a makespan regression when the candidate exceeds the baseline
    by more than ``tolerance`` (relative), per-blame regressions when a
    category/kind grows by more than ``tolerance`` of the baseline
    makespan, and warns when spills or OOMs appear in the candidate but
    not the baseline.
    """
    b_make = baseline.get("total_makespan_s", 0.0)
    c_make = candidate.get("total_makespan_s", 0.0)
    delta = c_make - b_make
    ratio = (c_make / b_make) if b_make else None
    regression = ratio is not None and ratio > 1.0 + tolerance
    improvement = ratio is not None and ratio < 1.0 - tolerance

    def blame_map(snapshot):
        return {
            (row["category"], row["kind"]): row["seconds"]
            for row in snapshot.get("blame", [])
        }

    b_blame = blame_map(baseline)
    c_blame = blame_map(candidate)
    blame_rows = []
    for key in sorted(set(b_blame) | set(c_blame)):
        category, kind = key
        b_s = b_blame.get(key, 0.0)
        c_s = c_blame.get(key, 0.0)
        row = {
            "category": category,
            "kind": kind,
            "baseline_s": _round(b_s),
            "candidate_s": _round(c_s),
            "delta_s": _round(c_s - b_s),
        }
        if delta:
            row["share_of_delta"] = _round((c_s - b_s) / delta)
        blame_rows.append(row)
    blame_rows.sort(
        key=lambda r: (-r["delta_s"], r["category"], r["kind"])
    )
    threshold = tolerance * max(b_make, 1e-12)
    blame_regressions = [
        row for row in blame_rows if row["delta_s"] > threshold
    ]

    def op_map(snapshot):
        return {
            (row["op"], row["kind"]): row["seconds"]
            for row in snapshot.get("op_blame", [])
        }

    b_ops = op_map(baseline)
    c_ops = op_map(candidate)
    op_rows = []
    for key in sorted(set(b_ops) | set(c_ops)):
        op, kind = key
        b_s = b_ops.get(key, 0.0)
        c_s = c_ops.get(key, 0.0)
        op_rows.append(
            {
                "op": op,
                "kind": kind,
                "baseline_s": _round(b_s),
                "candidate_s": _round(c_s),
                "delta_s": _round(c_s - b_s),
            }
        )
    op_rows.sort(key=lambda r: (-r["delta_s"], r["op"], r["kind"]))
    op_regressions = [row for row in op_rows if row["delta_s"] > threshold]

    warnings = []
    b_mem = baseline.get("memory", {})
    c_mem = candidate.get("memory", {})
    if c_mem.get("oom_count", 0) and not b_mem.get("oom_count", 0):
        warnings.append(
            f"candidate hit {c_mem['oom_count']} OOM event(s);"
            " the baseline had none"
        )
    if c_mem.get("spilled_bytes", 0) and not b_mem.get("spilled_bytes", 0):
        warnings.append(
            f"candidate spilled {c_mem['spilled_bytes']} bytes;"
            " the baseline spilled nothing"
        )

    run_rows = []
    b_runs = baseline.get("runs", [])
    c_runs = candidate.get("runs", [])
    for index in range(max(len(b_runs), len(c_runs))):
        b_run = b_runs[index] if index < len(b_runs) else None
        c_run = c_runs[index] if index < len(c_runs) else None
        run_rows.append(
            {
                "label": (c_run or b_run).get("label"),
                "baseline_s": b_run["makespan_s"] if b_run else None,
                "candidate_s": c_run["makespan_s"] if c_run else None,
                "delta_s": _round(c_run["makespan_s"] - b_run["makespan_s"])
                if b_run and c_run else None,
            }
        )

    return {
        "baseline": {
            "experiment": baseline.get("experiment"),
            "git_sha": baseline.get("git_sha"),
        },
        "candidate": {
            "experiment": candidate.get("experiment"),
            "git_sha": candidate.get("git_sha"),
        },
        "tolerance": tolerance,
        "makespan": {
            "baseline_s": _round(b_make),
            "candidate_s": _round(c_make),
            "delta_s": _round(delta),
            "ratio": _round(ratio) if ratio is not None else None,
            "regression": regression,
            "improvement": improvement,
        },
        "blame_deltas": blame_rows,
        "blame_regressions": blame_regressions,
        "op_blame_deltas": op_rows,
        "op_blame_regressions": op_regressions,
        "warnings": warnings,
        "runs": run_rows,
    }


def format_compare(report, top=10):
    """Plain-text rendering of a :func:`compare_snapshots` report."""
    lines = []
    make = report["makespan"]
    verdict = "REGRESSION" if make["regression"] else (
        "improvement" if make["improvement"] else "within tolerance"
    )
    ratio = make["ratio"]
    lines.append(
        f"Makespan: {make['baseline_s']:.1f}s -> {make['candidate_s']:.1f}s"
        f" ({make['delta_s']:+.1f}s,"
        f" {'x' + format(ratio, '.3f') if ratio is not None else 'n/a'})"
        f" [{verdict}, tolerance {report['tolerance']:.0%}]"
    )
    rows = [r for r in report["blame_deltas"] if r["delta_s"] != 0.0]
    if rows:
        lines.append("Blame deltas (candidate - baseline):")
        width = max([len(str(r["category"])) for r in rows[:top]] + [8])
        lines.append(
            f"  {'category'.ljust(width)}  {'kind':<14}  {'delta_s':>9}"
            f"  {'of delta':>8}"
        )
        for row in rows[:top]:
            share = row.get("share_of_delta")
            lines.append(
                f"  {str(row['category']).ljust(width)}  {row['kind']:<14}"
                f"  {row['delta_s']:>+9.1f}"
                f"  {format(share, '>7.0%') if share is not None else '':>8}"
            )
    for row in report["blame_regressions"][:top]:
        lines.append(
            f"  REGRESSION: {row['category']} [{row['kind']}]"
            f" grew {row['delta_s']:+.1f}s"
        )
    op_rows = [
        r for r in report.get("op_blame_deltas", []) if r["delta_s"] != 0.0
    ]
    if op_rows:
        lines.append("Logical-op deltas (candidate - baseline):")
        width = max([len(str(r["op"])) for r in op_rows[:top]] + [8])
        for row in op_rows[:top]:
            lines.append(
                f"  {str(row['op']).ljust(width)}  {row['kind']:<14}"
                f"  {row['delta_s']:>+9.1f}"
            )
    for row in report.get("op_blame_regressions", [])[:top]:
        lines.append(
            f"  REGRESSION: {row['op']} [{row['kind']}]"
            f" grew {row['delta_s']:+.1f}s"
        )
    for warning in report["warnings"]:
        lines.append(f"  WARNING: {warning}")
    runs = [r for r in report["runs"] if r["delta_s"]]
    if runs:
        lines.append("Per-run makespan deltas:")
        for row in runs:
            lines.append(
                f"  {row['label']}: {row['baseline_s']:.1f}s ->"
                f" {row['candidate_s']:.1f}s ({row['delta_s']:+.1f}s)"
            )
    return "\n".join(lines)
