"""Per-node local disk model (the 160 GB SSD of an r3.2xlarge).

Used for Myria's PostgreSQL-backed storage, Spark's shuffle files and
spill, and SciDB's chunk store.  Contents are kept as real Python
objects keyed by path so engines can actually read back what they wrote;
sizes are nominal bytes for capacity accounting and timing.
"""

from repro.cluster.errors import DiskFullError


class LocalDisk:
    """A node's local SSD: a byte-budgeted key-value store."""

    def __init__(self, node, capacity_bytes):
        if capacity_bytes <= 0:
            raise ValueError("disk capacity must be positive")
        self.node = node
        self.capacity_bytes = int(capacity_bytes)
        self._files = {}
        self._wiped_paths = set()
        self.bytes_written = 0
        self.bytes_read = 0

    @property
    def used_bytes(self):
        """Bytes currently accounted as in use."""
        return sum(size for _value, size in self._files.values())

    @property
    def available_bytes(self):
        """Bytes still free under the capacity."""
        return self.capacity_bytes - self.used_bytes

    def write(self, path, value, nbytes):
        """Store ``value`` under ``path`` occupying ``nbytes``.

        Overwriting an existing path first releases its old space.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"cannot write negative bytes: {nbytes}")
        released = self._files[path][1] if path in self._files else 0
        if nbytes - released > self.available_bytes:
            raise DiskFullError(self.node, nbytes, self.available_bytes + released)
        self._files[path] = (value, nbytes)
        self.bytes_written += nbytes

    def read(self, path):
        """Return the stored value; raises ``KeyError`` if absent."""
        value, nbytes = self._files[path]
        self.bytes_read += nbytes
        return value

    def size_of(self, path):
        """Stored size in bytes of one entry."""
        return self._files[path][1]

    def exists(self, path):
        """Whether the entry is present."""
        return path in self._files

    def delete(self, path):
        """Remove one entry; raises ``KeyError`` when absent.

        Entries destroyed by a node crash (:meth:`wipe`) may still be
        deleted by surviving owners; those deletes are silent no-ops.
        """
        if path not in self._files:
            if path in self._wiped_paths:
                self._wiped_paths.discard(path)
                return
            raise KeyError(f"no such file on {self.node!r}: {path}")
        del self._files[path]

    def list(self, prefix=""):
        """Paths stored on this disk, optionally filtered by prefix."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def clear(self):
        """Remove all entries."""
        self._files.clear()

    def wipe(self):
        """Destroy all contents, as a disk-losing node crash does.

        Remembers the destroyed paths so late :meth:`delete` calls from
        surviving owners succeed silently.  Returns bytes lost.
        """
        lost = self.used_bytes
        self._wiped_paths.update(self._files)
        self._files.clear()
        return lost
