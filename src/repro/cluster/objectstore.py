"""S3-like object store.

All input data in the paper "was staged in Amazon S3" (Section 5.2.1).
The store holds real objects (scaled-down arrays or encoded files) with
nominal byte sizes; download timings are charged by the network model of
the cluster performing the read.
"""


class ObjectStore:
    """A flat bucket/key object store with nominal size accounting."""

    def __init__(self):
        self._objects = {}
        self._events = None
        self._clock = None
        self._faults = None
        self.retry_count = 0
        self.total_retry_delay_s = 0.0

    def install_faults(self, plan):
        """Attach a :class:`~repro.cluster.faults.FaultPlan` for reads.

        Reads consult ``plan.s3_attempt_retries``; transient failures
        are retried under the plan's retry policy, accumulating backoff
        into :attr:`total_retry_delay_s` so the executor can charge it
        to the reading task's duration.  Exceeding the retry cap raises
        :class:`~repro.cluster.errors.S3RetriesExhaustedError`.
        """
        self._faults = plan

    def bind(self, events, clock):
        """Attach an event bus + clock for put/get publication.

        A store shared across clusters follows the most recently
        constructed one (each ``SimulatedCluster`` re-binds the store
        it is given).
        """
        self._events = events
        self._clock = clock

    def _now(self):
        return self._clock.now if self._clock is not None else 0.0

    @staticmethod
    def _key(bucket, key):
        if not bucket or not key:
            raise ValueError("bucket and key must be non-empty")
        return f"{bucket}/{key}"

    def put(self, bucket, key, value, nbytes):
        """Upload ``value`` (any object) as ``bucket/key`` of ``nbytes``."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"object size cannot be negative: {nbytes}")
        self._objects[self._key(bucket, key)] = (value, nbytes)
        if self._events:
            from repro.obs.events import ObjectPut

            self._events.emit(ObjectPut(self._now(), bucket, key, nbytes))

    def get(self, bucket, key):
        """Return the stored object; raises ``KeyError`` when missing."""
        full = self._key(bucket, key)
        value, nbytes = self._objects[full]
        if self._faults is not None:
            retries = self._faults.s3_attempt_retries(full)
            if retries:
                policy = self._faults.retry_policy
                if retries >= policy.max_attempts:
                    from repro.cluster.errors import S3RetriesExhaustedError

                    raise S3RetriesExhaustedError(full, retries + 1)
                delay = policy.total_delay(retries)
                if (policy.timeout_s is not None
                        and delay > policy.timeout_s):
                    from repro.cluster.errors import S3RetriesExhaustedError

                    raise S3RetriesExhaustedError(full, retries + 1)
                self.retry_count += retries
                self.total_retry_delay_s += delay
        if self._events:
            from repro.obs.events import ObjectGet

            self._events.emit(ObjectGet(self._now(), bucket, key, nbytes))
        return value

    def peek(self, bucket, key):
        """Return the stored object without emitting events or sampling
        fault retries (memo/introspection use, never a data path)."""
        return self._objects[self._key(bucket, key)][0]

    def size_of(self, bucket, key):
        """Stored size in bytes of one entry."""
        return self._objects[self._key(bucket, key)][1]

    def exists(self, bucket, key):
        """Whether the entry is present."""
        return self._key(bucket, key) in self._objects

    def delete(self, bucket, key):
        """Remove one entry; raises ``KeyError`` when absent."""
        del self._objects[self._key(bucket, key)]

    def list_keys(self, bucket, prefix=""):
        """Sorted keys in ``bucket`` starting with ``prefix``."""
        marker = f"{bucket}/"
        keys = [
            full[len(marker):]
            for full in self._objects
            if full.startswith(marker)
        ]
        return sorted(k for k in keys if k.startswith(prefix))

    def total_bytes(self, bucket, prefix=""):
        """Total stored bytes (optionally under a prefix)."""
        return sum(
            self.size_of(bucket, key) for key in self.list_keys(bucket, prefix)
        )

    def __len__(self):
        return len(self._objects)
