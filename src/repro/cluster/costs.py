"""Calibrated cost model for the simulated cluster.

Every timing the reproduction reports is derived from the constants in
:class:`CostModel`.  The constants are *calibrated*, not measured: the
paper does not publish raw per-operation microbenchmarks, so each value
is chosen to be physically plausible for 2016-era EC2 hardware and then
tuned so that the benchmark harness reproduces the orderings, ratios and
crossovers of the paper's figures (see ``EXPERIMENTS.md`` for the
paper-vs-measured comparison).  Each attribute's docstring records which
figure pins it down.

Units: bandwidths are bytes/second, latencies are seconds, kernel costs
are seconds per (nominal) element unless stated otherwise.
"""

from dataclasses import dataclass, replace

MB = 1024 ** 2
GB = 1024 ** 3


@dataclass(frozen=True)
class CostModel:
    """Constants that convert nominal data volumes into simulated time."""

    # ------------------------------------------------------------------
    # Storage and network fabric
    # ------------------------------------------------------------------

    #: Sustained S3 download bandwidth achievable by one node using
    #: parallel range requests.  Pins the floor of Figure 11 (Myria and
    #: Spark ingest ~100 GB onto 16 nodes in minutes, not hours).
    s3_bandwidth_per_node: float = 100.0 * MB

    #: Per-object S3 GET latency; matters when ingest fetches thousands
    #: of small pickled-volume objects (Figure 11, Spark vs Myria gap).
    s3_request_latency: float = 0.040

    #: Cost, on the coordinating node, of listing one S3 key before
    #: scheduling parallel downloads.  Spark's API "enumerates the data
    #: files on the master node" (Section 5.2.1) while Myria consumes a
    #: CSV list of files directly, avoiding this overhead.
    s3_list_per_object: float = 0.010

    #: Local SSD sequential write / read bandwidth (r3.2xlarge SSD).
    disk_write_bandwidth: float = 200.0 * MB
    disk_read_bandwidth: float = 400.0 * MB

    #: Node-to-node network bandwidth (about 1 Gb/s pairwise on 2016
    #: EC2) and per-message latency.  Drives shuffle costs (Figure 10c:
    #: Spark/Myria repartition between steps, Dask does not).
    network_bandwidth: float = 125.0 * MB
    network_latency: float = 0.0005

    # ------------------------------------------------------------------
    # Serialization / format conversion
    # ------------------------------------------------------------------

    #: Pickle serialize/deserialize throughput for NumPy payloads.
    pickle_bandwidth: float = 1.0 * GB
    unpickle_bandwidth: float = 1.5 * GB

    #: Throughput of moving data across the JVM<->Python worker boundary
    #: (Spark's Py4J + pipe serialization).  This is why Spark's filter
    #: is "an order of magnitude slower than Dask, even though data is
    #: in memory for both systems" (Section 5.2.2, Figure 12a).
    python_boundary_bandwidth: float = 120.0 * MB

    #: CSV/TSV encode and decode throughput.  Pins SciDB's ``aio_input``
    #: conversion overhead (Figure 11: "the NIfTI-to-CSV conversion
    #: overhead for SciDB is a little larger than the NIfTI-to-NumPy
    #: overhead") and the ``stream()`` interface penalty (Figure 12c).
    csv_encode_bandwidth: float = 60.0 * MB
    csv_decode_bandwidth: float = 90.0 * MB

    #: Single-stream ingest throughput of SciDB's ``from_array()``
    #: Python API, which funnels data through the coordinator one
    #: chunk at a time.  Pins SciDB-1 in Figure 11 (an order of
    #: magnitude slower than ``aio_input``).
    scidb_from_array_bandwidth: float = 30.0 * MB

    #: Parallel per-instance load bandwidth of SciDB's ``aio_input``.
    scidb_aio_bandwidth: float = 120.0 * MB

    #: NIfTI decompress+parse and FITS parse throughput (per node).
    nifti_parse_bandwidth: float = 250.0 * MB
    fits_parse_bandwidth: float = 300.0 * MB

    #: Conversion between NumPy arrays and miniTF tensors, performed on
    #: the master (Section 4.5).  Pins TensorFlow's curves in
    #: Figures 11 and 12 ("incurs extra cost in converting from image
    #: volume to tensors and is an order of magnitude slower").
    tensor_convert_bandwidth: float = 80.0 * MB

    # ------------------------------------------------------------------
    # Engine fixed overheads
    # ------------------------------------------------------------------

    #: Per-task overhead charged by each engine scheduler: closure
    #: serialization, dispatch, result handling.
    spark_task_overhead: float = 0.020
    myria_operator_overhead: float = 0.002
    dask_task_overhead: float = 0.001
    tf_step_overhead: float = 0.050
    scidb_chunk_overhead: float = 0.001

    #: One-time job startup: driver/JVM spin-up, scheduler handshakes.
    #: Dask's is the largest: "Dask's efficiency increase is most
    #: pronounced, indicating that the tool has the largest start-up
    #: overhead" (Section 5.1, Figure 10e).
    spark_job_startup: float = 12.0
    myria_query_startup: float = 1.0
    dask_job_startup: float = 90.0
    tf_session_startup: float = 10.0
    scidb_query_startup: float = 2.0

    #: Dask work-stealing: cost per steal event on the scheduler plus
    #: data movement.  "Scheduling overhead makes Dask less efficient as
    #: cluster sizes increase, as the scheduler attempts to move tasks
    #: among different machines via aggressive work stealing"
    #: (Section 5.1, Figure 10g).
    dask_steal_overhead: float = 0.25

    #: Myria pushes selections into per-node PostgreSQL storage;
    #: per-tuple index scan cost (Figure 12a).
    myria_index_scan_per_tuple: float = 2.0e-6

    #: PostgreSQL per-tuple insert cost during Myria ingest (catalog +
    #: page management on top of raw disk writes).
    myria_insert_per_tuple: float = 1.0e-4

    # ------------------------------------------------------------------
    # Scientific kernel costs (seconds per nominal element)
    # ------------------------------------------------------------------

    #: Simple elementwise passes (mean, sum, subtract, compare).
    elementwise_per_element: float = 2.0e-9

    #: Memory copy / slicing of already-resident arrays.
    memcpy_per_byte: float = 1.0 / (5.0 * GB)

    #: Non-local means denoising per *masked* voxel (3-D patch search).
    #: Dominates the neuroscience pipeline; calibrated so one subject's
    #: 288 volumes cost ~3.2 core-hours, matching the pipeline-dominant
    #: share visible in Figures 10c and 12c.
    nlmeans_per_voxel: float = 2.5e-5

    #: Diffusion tensor model fit per masked voxel *per sample* (the
    #: WLS fit consumes 288 measurements per voxel; whole-voxel cost is
    #: 288x this).
    dtm_fit_per_voxel_sample: float = 5.6e-7

    #: Otsu threshold per voxel of the mean volume.
    otsu_per_voxel: float = 6.0e-9

    #: Astronomy pre-processing per pixel (background estimation,
    #: cosmic-ray detect/repair, calibration): ~25 s per 16 Mpx CCD.
    astro_preprocess_per_pixel: float = 1.5e-6

    #: Patch remap per pixel (geometry + copy).
    astro_patch_per_pixel: float = 8.0e-8

    #: One co-addition cleaning iteration per pixel-visit (mean, sigma
    #: computation, outlier rejection) in optimized user code.
    coadd_iteration_per_pixel: float = 2.0e-8

    #: Cell-at-a-time evaluation of one pass of the iterative AQL
    #: co-addition plan.  The paper's Step 3-A is 180 lines of AQL --
    #: tens of chained operators whose interpreted per-cell evaluation
    #: is orders of magnitude slower than the reference's vectorized
    #: kernels; drives SciDB's Figure 12d deficit.
    scidb_aql_per_cell: float = 6.0e-6

    #: Small-chunk inefficiency of the AQL plan: per-chunk operator
    #: setup/messaging amortizes poorly below the reference chunk
    #: footprint (3/4 of the instance buffer).  Calibrated to the
    #: Section 5.3.1 observation that [500x500] chunks run ~3x slower
    #: than [1000x1000]; the paper itself "did not find a strong
    #: correlation between the overall performance and common system
    #: configurations", so this is an empirical fit, not a derivation.
    scidb_small_chunk_penalty: float = 0.73

    #: Large-chunk buffer thrash: when a chunk exceeds the instance
    #: buffer, the whole operator chain stalls on working-set eviction.
    #: Calibrated to Section 5.3.1's +22%/+55% at [1500^2]/[2000^2].
    scidb_buffer_thrash: float = 0.25

    #: Source detection per patch pixel (threshold + labeling).
    source_detect_per_pixel: float = 1.0e-7

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------

    def s3_read_time(self, nbytes, n_objects=1):
        """Time for one node to fetch ``nbytes`` across ``n_objects``."""
        return n_objects * self.s3_request_latency + nbytes / self.s3_bandwidth_per_node

    def s3_list_time(self, n_objects):
        """Seconds to list the given number of S3 objects."""
        return n_objects * self.s3_list_per_object

    def disk_write_time(self, nbytes):
        """Seconds to write ``nbytes`` to local SSD."""
        return nbytes / self.disk_write_bandwidth

    def disk_read_time(self, nbytes):
        """Seconds to read ``nbytes`` from local SSD."""
        return nbytes / self.disk_read_bandwidth

    def network_time(self, nbytes, n_messages=1):
        """Seconds to move ``nbytes`` across one link."""
        return n_messages * self.network_latency + nbytes / self.network_bandwidth

    def pickle_time(self, nbytes):
        """Seconds to pickle ``nbytes`` of NumPy payload."""
        return nbytes / self.pickle_bandwidth

    def unpickle_time(self, nbytes):
        """Seconds to unpickle ``nbytes``."""
        return nbytes / self.unpickle_bandwidth

    def python_boundary_time(self, nbytes):
        """JVM->Python worker (or back) transfer of ``nbytes``."""
        return nbytes / self.python_boundary_bandwidth

    def csv_encode_time(self, nbytes):
        """Seconds to render ``nbytes`` of CSV text."""
        return nbytes / self.csv_encode_bandwidth

    def csv_decode_time(self, nbytes):
        """Seconds to parse ``nbytes`` of CSV text."""
        return nbytes / self.csv_decode_bandwidth

    def tensor_convert_time(self, nbytes):
        """Seconds to convert ``nbytes`` to/from tensors."""
        return nbytes / self.tensor_convert_bandwidth

    def with_overrides(self, **kwargs):
        """Return a copy with some constants replaced (for ablations)."""
        return replace(self, **kwargs)


#: Default model used by every experiment unless overridden.
DEFAULT_COST_MODEL = CostModel()
