"""The simulated cluster: nodes, slots, and the event-driven executor.

``SimulatedCluster.run()`` executes a DAG of :class:`~repro.cluster.task.Task`
objects.  Each node offers ``spec.slots_per_node`` parallel slots; tasks
occupy one slot for their modeled duration.  Input transfers between
nodes, memory admission (with fail/wait/spill policies) and the virtual
clock are all handled here, so that engines only need to express the
*structure* of their execution.
"""

import heapq
from bisect import insort

from repro.cluster.clock import VirtualClock
from repro.cluster.costs import DEFAULT_COST_MODEL
from repro.cluster.disk import LocalDisk
from repro.cluster.errors import (
    NodeCrashedError,
    OutOfMemoryError,
    PlacementError,
    TaskFailedError,
)
from repro.cluster.faults import RecoveryPolicy
from repro.cluster.memory import MemoryTracker
from repro.cluster.network import NetworkModel
from repro.cluster.objectstore import ObjectStore
from repro.cluster.spec import ClusterSpec
from repro.cluster.task import Task, TaskResult
from repro.obs import Observability
from repro.obs.events import (
    NodeCrashed,
    NodeRecovered,
    TaskFailed,
    TaskFinished,
    TaskPlaced,
    TaskQueued,
    TaskRetried,
    TaskStarted,
)


class AdmissionQueue:
    """Tasks eligible to start, kept permanently sorted by ``task_id``.

    The executor used to keep a plain ``ready`` list and re-sort it
    after every completion, retry and requeue (three copies of the same
    ``append`` + ``sort`` idiom, O(n log n) per event).  This queue is
    the one admission path: it maintains the sorted invariant
    incrementally -- single admissions are binary insertions, batches
    are sort-then-merge -- so a scan can hand the backing list out
    wholesale and iteration order is exactly the old fully-sorted
    order.  Memory-deferred (OOM-wait) tasks re-enter through the same
    queue, so they compete with newly-ready tasks in plain task-id
    order instead of being prepended ahead of tasks with smaller ids.

    Entries are ``(task_id, task)`` pairs; ids are unique, so tuple
    comparison never reaches the task object.
    """

    __slots__ = ("_entries",)

    def __init__(self):
        self._entries = []

    def __bool__(self):
        return bool(self._entries)

    def __len__(self):
        return len(self._entries)

    def clear(self):
        """Drop every entry (schedule rebuilds start from scratch)."""
        del self._entries[:]

    def admit(self, task):
        """Insert one task, preserving task-id order."""
        insort(self._entries, (task.task_id, task))

    def admit_all(self, tasks):
        """Insert a batch: sort the newcomers once, then linear-merge."""
        new = sorted((t.task_id, t) for t in tasks)
        if not new:
            return
        if self._entries:
            self._entries = list(heapq.merge(self._entries, new))
        else:
            self._entries = new

    def take(self):
        """Remove and return every entry, in task-id order."""
        entries = self._entries
        self._entries = []
        return entries

    def put_back(self, entries):
        """Restore (still-sorted) entries a scan did not consume."""
        if self._entries:
            self._entries = list(heapq.merge(entries, self._entries))
        else:
            self._entries = entries

    def first(self):
        """The lowest-id task (error reporting)."""
        return self._entries[0][1]


class Node:
    """Runtime state of one simulated machine."""

    def __init__(self, name, spec, slots, cost_model, obs=None):
        self.name = name
        self.spec = spec
        self.slots = slots
        self.busy_slots = 0
        self.memory = MemoryTracker(
            name,
            spec.memory_bytes,
            events=obs.events if obs is not None else None,
            clock=obs.clock if obs is not None else None,
        )
        self.disk = LocalDisk(name, spec.disk_bytes)
        self.cost_model = cost_model
        self.busy_seconds = 0.0
        self.alive = True
        #: Times this node has crashed; consumers (e.g. Dask's client)
        #: use it as a liveness epoch for results placed here.
        self.crash_count = 0
        self.failed_tasks = 0
        self.retried_tasks = 0

    @property
    def free_slots(self):
        """Execution slots currently idle on this node."""
        return self.slots - self.busy_slots

    def __repr__(self):
        return f"Node({self.name!r}, slots={self.slots}, busy={self.busy_slots})"


class SimulatedCluster:
    """A deterministic, discrete-event cluster of identical nodes."""

    def __init__(self, spec, cost_model=DEFAULT_COST_MODEL, object_store=None):
        if not isinstance(spec, ClusterSpec):
            raise TypeError(f"spec must be a ClusterSpec, got {type(spec)!r}")
        self.spec = spec
        self.cost_model = cost_model
        self.clock = VirtualClock()
        self.obs = Observability(self.clock)
        self.network = NetworkModel(
            cost_model, events=self.obs.events, clock=self.clock
        )
        self.object_store = object_store if object_store is not None else ObjectStore()
        self.object_store.bind(self.obs.events, self.clock)
        self.nodes = {
            name: Node(name, spec.node, spec.slots_per_node, cost_model,
                       obs=self.obs)
            for name in spec.node_names()
        }
        self.node_order = spec.node_names()
        self.completed = {}
        self.task_trace = []
        self._start_times = {}
        #: Sub-trial memoization: the harness may attach a memo object
        #: (``repro.harness.memo.MaterializeMemo``); lowerings open
        #: record/replay windows through ``repro.plan.memo`` which the
        #: executor consults per memoizable task.  Both stay ``None``
        #: outside harness-cached runs.
        self.materialize_memo = None
        self.memo_window = None
        #: task_id -> scheduling bookkeeping (queued/ready times, memory
        #: deferrals, transfer/compute/spill split) feeding the task
        #: records that critical-path analysis consumes.
        self._sched_info = {}
        # -- fault injection and recovery state ------------------------
        self._faults = None
        self.recovery_policy = RecoveryPolicy()
        self._blacklisted = set()
        #: task_id -> failed attempts so far (crash kills + transients).
        self._attempts = {}
        #: Completed task ids whose results died with a crashed node.
        self._lost_results = set()
        #: Task ids being re-run after a failure (sets the ``retried``
        #: flag and recompute category on their next record).
        self._resurrected = set()
        #: node name -> virtual time its post-crash restart completes.
        self._pending_recover = {}
        #: task_id -> (task, node, alloc_id, end, attempt) per running
        #: attempt.
        self._inflight = {}
        self._fault_seq = 10 ** 9
        #: Monotonic per-push sequence: the third heap field, so equal
        #: (time, tiebreak) events resolve by push order instead of
        #: comparing payloads.
        self._event_seq = 0

    # ------------------------------------------------------------------
    # Fault injection and recovery configuration
    # ------------------------------------------------------------------

    def install_faults(self, plan):
        """Attach a :class:`~repro.cluster.faults.FaultPlan` to this run.

        Link degradations apply to the network model immediately;
        crashes and transient failures are scheduled by :meth:`run` on
        the virtual clock.  Plans are single-use: share one across
        clusters only if you want the identical schedule replayed.
        """
        self._faults = plan
        for (src, dst), factor in sorted(plan.link_factors.items()):
            self.network.set_link_factor(src, dst, factor)
        if plan.s3_faults is not None:
            self.object_store.install_faults(plan)
        return plan

    def install_recovery(self, policy):
        """Set the engine's :class:`~repro.cluster.faults.RecoveryPolicy`."""
        self.recovery_policy = policy
        return policy

    def _next_fault_tiebreak(self):
        """Heap tiebreaks for fault events: after task events, unique."""
        self._fault_seq += 1
        return self._fault_seq

    def _push_event(self, events, time, tiebreak, kind, payload):
        """Heap entries are ``(time, tiebreak, seq, kind, payload)``."""
        self._event_seq += 1
        heapq.heappush(events, (time, tiebreak, self._event_seq, kind, payload))

    def _revive(self, name):
        """A crashed node rejoins the cluster (with empty state).

        Rejoining also clears any blacklist entry: the rebooted node
        registers as a fresh executor, like a replacement Spark
        executor after ``spark.blacklist.timeout``.
        """
        node = self.nodes[name]
        self._pending_recover.pop(name, None)
        self._blacklisted.discard(name)
        if node.alive:
            return
        node.alive = True
        if self.obs.events:
            self.obs.events.emit(NodeRecovered(self.now, name))

    def _drain_inflight(self):
        """Release slots/memory of running attempts when a run aborts.

        Without this, any exception out of :meth:`run` (task failure,
        OOM, node crash under the abort policy) would leak the busy
        slots and allocations of every other in-flight task, because
        their completion events die with the local event heap.
        """
        for _tid, (task, node, alloc_id, end, _attempt) in sorted(
            self._inflight.items()
        ):
            if node.alive:
                node.busy_slots = max(0, node.busy_slots - 1)
                node.busy_seconds -= max(0.0, end - self.now)
            if alloc_id is not None:
                try:
                    node.memory.free(alloc_id)
                except KeyError:
                    pass
        self._inflight.clear()

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def master(self):
        """The coordinator node (drivers, masters, query coordinators)."""
        return self.node_order[0]

    def node(self, name):
        """Look up a node by name; raises on unknown names."""
        try:
            return self.nodes[name]
        except KeyError:
            raise PlacementError(f"unknown node {name!r}") from None

    def result_of(self, task):
        """Value produced by ``task`` in a previous :meth:`run` call."""
        return self.completed[task.task_id].value

    def charge_master(self, seconds, label="coordinator work", category=None,
                      op=None):
        """Advance the clock for serial coordinator-side work."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self.clock.advance_by(seconds)
        start = self.now - seconds
        self.task_trace.append((label, self.master, start, self.now))
        self.obs.record_task(label, self.master, start, self.now,
                             category=category, op=op)

    # ------------------------------------------------------------------
    # The executor
    # ------------------------------------------------------------------

    def run(self, tasks):
        """Execute a DAG of tasks; returns ``{task_id: TaskResult}``.

        The clock starts at its current value (runs are cumulative,
        modeling consecutive pipeline stages) and finishes at the
        makespan of the DAG.  Tasks that were already completed in a
        previous run are treated as satisfied dependencies.
        """
        pending = self._collect(tasks)
        if not pending:
            return {}

        policy = self.recovery_policy
        bus = self.obs.events
        if bus:
            for task in sorted(pending.values(), key=lambda t: t.task_id):
                bus.emit(TaskQueued(self.now, task.name, task.task_id))

        waiting_deps = {}
        dependents = {}
        ready = AdmissionQueue()
        events = []  # heap of (time, tiebreak, kind, payload)
        run_results = {}
        oom_waiting = []
        timers_set = set()
        cancelled = set()
        initial_total = len(pending)
        completions = 0
        #: Count of "crash"/"recover" entries currently in the heap, so
        #: the only-fault-events-left check is O(1) per event instead
        #: of a scan of the whole heap.
        heap_faults = [0]

        def rebuild_schedule(time):
            """(Re)derive readiness state from ``pending``.

            Called once at run start and again after every crash, when
            requeued and resurrected tasks invalidate the incremental
            waiting-dependency counts.
            """
            waiting_deps.clear()
            dependents.clear()
            ready.clear()
            oom_waiting.clear()
            runnable = []
            for task in pending.values():
                if (task.task_id in self.completed
                        or task.task_id in self._inflight):
                    continue
                open_deps = [
                    d for d in task.dependencies()
                    if d.task_id not in self.completed
                ]
                for dep in open_deps:
                    if dep.task_id not in pending:
                        raise TaskFailedError(
                            task.name,
                            RuntimeError(
                                f"dependency {dep.name!r} neither scheduled"
                                " nor completed"
                            ),
                            category=task.category,
                        )
                    dependents.setdefault(dep.task_id, []).append(task)
                waiting_deps[task.task_id] = len(open_deps)
                info = self._sched_info.get(task.task_id)
                if task.task_id in self._resurrected:
                    self._resurrected.discard(task.task_id)
                    info = {
                        "queued": time,
                        "ready": time if not open_deps else None,
                        "mem_deferred": False,
                        "retried": True,
                    }
                    if policy.recompute_category:
                        info["category_override"] = policy.recompute_category
                    self._sched_info[task.task_id] = info
                elif info is None:
                    self._sched_info[task.task_id] = {
                        "queued": time,
                        "ready": time if not open_deps else None,
                        "mem_deferred": False,
                    }
                elif open_deps:
                    info["ready"] = None
                elif info.get("ready") is None:
                    info["ready"] = time
                if not open_deps:
                    runnable.append(task)
            # FIFO by task id keeps scheduling deterministic.
            ready.admit_all(runnable)

        def fire_crash(crash, time):
            """Kill a node: wipe its state, then recover per policy."""
            crash.fired = True
            node = self.nodes.get(crash.node)
            if node is None:
                raise PlacementError(
                    f"fault plan crashes unknown node {crash.node!r}"
                )
            if not node.alive:
                return
            node.alive = False
            node.crash_count += 1
            killed = []
            for tid in sorted(self._inflight):
                task, on_node, _alloc, end, attempt = self._inflight[tid]
                if on_node is not node:
                    continue
                del self._inflight[tid]
                cancelled.add((tid, attempt))
                node.failed_tasks += 1
                node.busy_seconds -= max(0.0, end - time)
                start = self._start_times.get(tid, time)
                # Record the lost partial extent so node-busy tiling
                # (and blame, if it lands on the path) stays exact.
                self.obs.record_task(task.name, node.name, start, time,
                                     category=task.category, op=task.op)
                if bus:
                    bus.emit(TaskFailed(time, task.name, tid, node.name,
                                        f"node {node.name} crashed"))
                killed.append(task)
            node.busy_slots = 0
            node.memory.wipe()
            if crash.lose_disk:
                node.disk.wipe()
            for tid, res in self.completed.items():
                if res.node == node.name:
                    self._lost_results.add(tid)
            recover_at = None
            if crash.restart_after is not None:
                recover_at = time + crash.restart_after
                self._pending_recover[node.name] = recover_at
                heap_faults[0] += 1
                self._push_event(
                    events, recover_at, self._next_fault_tiebreak(),
                    "recover", node.name,
                )
            if bus:
                bus.emit(NodeCrashed(time, node.name,
                                     tuple(t.name for t in killed)))
            if policy.mode == RecoveryPolicy.ABORT:
                raise NodeCrashedError(
                    node.name, time, recover_at=recover_at,
                    killed_tasks=tuple(t.name for t in killed),
                )
            if policy.blacklist:
                self._blacklisted.add(node.name)
            # Requeue killed attempts, bounded by the recovery policy.
            for task in killed:
                attempts = self._attempts.get(task.task_id, 0) + 1
                self._attempts[task.task_id] = attempts
                if attempts >= policy.max_task_failures:
                    raise TaskFailedError(
                        task.name,
                        NodeCrashedError(node.name, time,
                                         recover_at=recover_at),
                        node=node.name,
                        category=task.category,
                    )
                node.retried_tasks += 1
                self._resurrected.add(task.task_id)
                if bus:
                    bus.emit(TaskRetried(time, task.name, task.task_id,
                                         node.name, attempts + 1))
            # Unpin not-yet-finished tasks stranded on the dead node.
            for task in pending.values():
                if task.task_id in self.completed:
                    continue
                if task.node == node.name:
                    task.node = None
            # Resurrect lost dependencies transitively: every result
            # that lived on the crashed node and is still needed must
            # be recomputed from lineage on the survivors.
            stack = [
                t for t in list(pending.values())
                if t.task_id not in self.completed
            ]
            seen = set()
            while stack:
                t = stack.pop()
                if t.task_id in seen:
                    continue
                seen.add(t.task_id)
                for dep in t.dependencies():
                    if (dep.task_id in self._lost_results
                            and dep.task_id in self.completed):
                        del self.completed[dep.task_id]
                        self._lost_results.discard(dep.task_id)
                        self._resurrected.add(dep.task_id)
                        pending[dep.task_id] = dep
                        if dep.node is not None:
                            owner = self.nodes.get(dep.node)
                            if (owner is None or not owner.alive
                                    or dep.node in self._blacklisted):
                                dep.node = None
                        if bus:
                            bus.emit(TaskRetried(
                                time, dep.name, dep.task_id, node.name,
                                self._attempts.get(dep.task_id, 0) + 1,
                            ))
                    if dep.task_id not in self.completed:
                        stack.append(dep)
            rebuild_schedule(time)

        def start_candidates():
            entries = ready.take()
            if not entries:
                return
            # Free slots across usable nodes: once this hits zero no
            # further placement can succeed, so the remaining ready
            # tasks skip their O(nodes) placement scans entirely.
            free = 0
            for node in self.nodes.values():
                if node.alive and node.name not in self._blacklisted:
                    free += node.free_slots
            now = self.now
            still_ready = []
            for entry in entries:
                task = entry[1]
                if task.not_before > now:
                    if task.task_id not in timers_set:
                        timers_set.add(task.task_id)
                        self._push_event(
                            events, task.not_before, task.task_id, "timer", None
                        )
                    still_ready.append(entry)
                    continue
                if free <= 0:
                    # Nothing can start, but a task pinned to a dead or
                    # blacklisted node must still shed (or surface) its
                    # stale pin exactly as _place would.
                    if task.node is not None:
                        pinned = self.node(task.node)
                        if (not pinned.alive
                                or pinned.name in self._blacklisted):
                            if (self.recovery_policy.mode
                                    == RecoveryPolicy.RECOMPUTE):
                                task.node = None
                            else:
                                raise NodeCrashedError(
                                    pinned.name, now,
                                    recover_at=self._pending_recover.get(
                                        pinned.name
                                    ),
                                )
                    still_ready.append(entry)
                    continue
                node = self._place(task)
                if node is None:
                    still_ready.append(entry)
                    continue
                started = self._try_start(task, node, events)
                if started is None:
                    # Memory admission deferred the task.
                    self._sched_info[task.task_id]["mem_deferred"] = True
                    oom_waiting.append(task)
                else:
                    free -= 1
            ready.put_back(still_ready)

        def check_progress_crashes(time):
            if self._faults is None or initial_total == 0:
                return
            for crash in self._faults.crashes:
                if (not crash.fired and crash.at_progress is not None
                        and completions >= crash.at_progress * initial_total):
                    fire_crash(crash, time)

        try:
            rebuild_schedule(self.now)
            # Nodes whose post-crash restart completed while the engine
            # was between runs rejoin now; in-run restarts get events.
            for name in sorted(self._pending_recover):
                at = self._pending_recover[name]
                if at <= self.now:
                    self._revive(name)
                else:
                    heap_faults[0] += 1
                    self._push_event(
                        events, at, self._next_fault_tiebreak(), "recover", name
                    )
            # Arm this plan's unfired time-based crashes.
            if self._faults is not None:
                for crash in self._faults.crashes:
                    if crash.fired or crash.at_time is None:
                        continue
                    heap_faults[0] += 1
                    self._push_event(
                        events, max(crash.at_time, self.now),
                        self._next_fault_tiebreak(), "crash", crash,
                    )

            start_candidates()
            if not events and (ready or oom_waiting):
                blocked = ready.first() if ready else oom_waiting[0]
                raise TaskFailedError(
                    blocked.name,
                    RuntimeError("no task could start: cluster has no usable slot"),
                )

            inflight = self._inflight
            advance_to = self.clock.advance_to
            record_task = self.obs.record_task
            sched_info = self._sched_info
            while events:
                if (not inflight and not ready and not oom_waiting
                        and len(events) == heap_faults[0]):
                    # Only future fault events remain.  If the DAG is
                    # done, leave them for the next run instead of
                    # advancing the clock past the real makespan.
                    unfinished = [
                        t for t in pending.values()
                        if t.task_id not in self.completed
                    ]
                    if not unfinished:
                        break
                    raise TaskFailedError(
                        unfinished[0].name,
                        RuntimeError(
                            "deadlock: task cannot start (insufficient"
                            " memory or slots)"
                        ),
                        category=unfinished[0].category,
                    )
                time, _tiebreak, _seq, kind, payload = heapq.heappop(events)
                if kind in ("complete", "task-fail"):
                    key = (payload[0].task_id, payload[-1])
                    if key in cancelled:
                        # The attempt died with its node; drop the
                        # event without advancing the clock.
                        cancelled.discard(key)
                        continue
                elif kind in ("crash", "recover"):
                    heap_faults[0] -= 1
                advance_to(time)
                if kind == "crash":
                    if not payload.fired:
                        fire_crash(payload, time)
                elif kind == "recover":
                    self._revive(payload)
                elif kind == "task-fail":
                    self._handle_task_fail(payload, time, ready, timers_set)
                elif kind == "complete":
                    task, node, alloc_id, value, _attempt = payload
                    inflight.pop(task.task_id, None)
                    node.busy_slots -= 1
                    if alloc_id is not None:
                        node.memory.free(alloc_id)
                    result = TaskResult(
                        task, value, self._start_times[task.task_id], time, node.name
                    )
                    self.completed[task.task_id] = result
                    run_results[task.task_id] = result
                    self.task_trace.append((task.name, node.name, result.start_time, time))
                    info = sched_info.get(task.task_id, {})
                    record_task(
                        task.name, node.name, result.start_time, time,
                        task_id=task.task_id,
                        category=info.get("category_override") or task.category,
                        # A recovery recompute loses its logical op so
                        # the attribution fold charges it to @recovery
                        # via the recompute category, not the op.
                        op=None if info.get("category_override") else task.op,
                        queued=info.get("queued"),
                        ready=info.get("ready"),
                        not_before=task.not_before,
                        mem_deferred=info.get("mem_deferred", False),
                        transfer_s=info.get("transfer_s", 0.0),
                        compute_s=info.get("compute_s"),
                        spill_s=info.get("spill_s", 0.0),
                        dep_ids=tuple(d.task_id for d in task.dependencies()),
                        retried=info.get("retried", False),
                    )
                    if bus:
                        bus.emit(
                            TaskFinished(
                                time, task.name, task.task_id, node.name,
                                result.start_time,
                            )
                        )
                    newly_ready = []
                    for child in dependents.get(task.task_id, ()):
                        waiting_deps[child.task_id] -= 1
                        if waiting_deps[child.task_id] == 0:
                            sched_info[child.task_id]["ready"] = time
                            newly_ready.append(child)
                    # Retry memory-deferred tasks now that memory may
                    # have freed; they re-enter the admission queue in
                    # plain task-id order alongside newly-ready tasks.
                    if oom_waiting:
                        newly_ready.extend(oom_waiting)
                        oom_waiting.clear()
                    if newly_ready:
                        ready.admit_all(newly_ready)
                    completions += 1
                    check_progress_crashes(time)
                start_candidates()
                if not events and (ready or oom_waiting):
                    blocked = ready.first() if ready else oom_waiting[0]
                    raise TaskFailedError(
                        blocked.name,
                        RuntimeError(
                            "deadlock: task cannot start (insufficient memory or slots)"
                        ),
                        category=blocked.category,
                    )
        except BaseException:
            # Whatever aborted the run, in-flight attempts must not
            # leak their slots or memory reservations.
            self._drain_inflight()
            raise

        return run_results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _handle_task_fail(self, payload, time, ready, timers_set):
        """An injected transient failure was detected; retry or give up."""
        task, node, alloc_id, _end, _attempt = payload
        tid = task.task_id
        self._inflight.pop(tid, None)
        if node.alive:
            node.busy_slots -= 1
        if alloc_id is not None:
            node.memory.free(alloc_id)
        node.failed_tasks += 1
        attempts = self._attempts.get(tid, 0) + 1
        self._attempts[tid] = attempts
        start = self._start_times.get(tid, time)
        # Record the failed attempt's extent (no task_id: the eventual
        # successful attempt owns the id in the critical-path DAG).
        self.obs.record_task(task.name, node.name, start, time,
                             category=task.category, op=task.op)
        bus = self.obs.events
        if bus:
            bus.emit(TaskFailed(time, task.name, tid, node.name,
                                "injected transient failure"))
        retry = self._faults.retry_policy
        if attempts >= retry.max_attempts:
            raise TaskFailedError(
                task.name,
                RuntimeError(f"transient failure persisted for"
                             f" {attempts} attempt(s)"),
                node=node.name,
                category=task.category,
            )
        node.retried_tasks += 1
        task.not_before = max(task.not_before, time + retry.backoff(attempts))
        info = self._sched_info.get(tid)
        if info is not None:
            info["ready"] = time
            info["retried"] = True
        timers_set.discard(tid)
        if bus:
            bus.emit(TaskRetried(time, task.name, tid, node.name, attempts + 1))
        ready.admit(task)

    def _collect(self, tasks):
        """Transitively gather the task set, keyed by id.

        A task that completed earlier but whose result died with a
        crashed node is collected again: resubmitting it (or anything
        depending on it) recomputes it from lineage.
        """
        pending = {}
        stack = list(tasks)
        while stack:
            task = stack.pop()
            if not isinstance(task, Task):
                raise TypeError(f"expected Task, got {type(task)!r}")
            if task.task_id in pending:
                continue
            if task.task_id in self.completed:
                if task.task_id not in self._lost_results:
                    continue
                del self.completed[task.task_id]
                self._lost_results.discard(task.task_id)
                self._resurrected.add(task.task_id)
                if task.node is not None:
                    owner = self.nodes.get(task.node)
                    if (owner is None or not owner.alive
                            or task.node in self._blacklisted):
                        task.node = None
            pending[task.task_id] = task
            stack.extend(task.dependencies())
        return pending

    def _place(self, task):
        """Pick a node for ``task``; ``None`` when no slot is free.

        Dead and blacklisted nodes are never eligible.  A task pinned
        to one is silently unpinned under the "recompute" recovery
        policy (lineage recompute runs wherever survivors have slots);
        under "abort" the stranded pin surfaces as
        :class:`NodeCrashedError` so the engine can wait or restart.
        """
        if task.node is not None:
            node = self.node(task.node)
            if not node.alive or node.name in self._blacklisted:
                if self.recovery_policy.mode == RecoveryPolicy.RECOMPUTE:
                    task.node = None
                else:
                    raise NodeCrashedError(
                        node.name, self.now,
                        recover_at=self._pending_recover.get(node.name),
                    )
            else:
                return node if node.free_slots > 0 else None
        best = None
        for name in self.node_order:
            node = self.nodes[name]
            if not node.alive or name in self._blacklisted:
                continue
            if node.free_slots <= 0:
                continue
            if best is None or node.free_slots > best.free_slots:
                best = node
        return best

    def _try_start(self, task, node, events):
        """Begin executing ``task`` on ``node``.

        Returns True on success, None when deferred by the "wait" OOM
        policy, and raises for the "fail" policy.  (False is reserved
        for future admission rules.)
        """
        spill_bytes = 0
        alloc_id = None
        if task.memory_bytes > 0:
            if node.memory.would_fit(task.memory_bytes):
                alloc_id = node.memory.allocate(task.memory_bytes, task.name)
            elif task.on_oom == "wait":
                if task.memory_bytes > node.memory.capacity_bytes:
                    raise OutOfMemoryError(
                        node.name,
                        task.memory_bytes,
                        node.memory.capacity_bytes,
                        task.name,
                    )
                return None
            elif task.on_oom == "spill":
                spill_bytes = task.memory_bytes - node.memory.available_bytes
                fit_bytes = task.memory_bytes - spill_bytes
                if fit_bytes > 0:
                    alloc_id = node.memory.allocate(fit_bytes, task.name)
                node.memory.note_spill(spill_bytes, task.name)
            else:  # "fail"
                node.memory.record_oom(task.memory_bytes, task.name)
                raise OutOfMemoryError(
                    node.name,
                    task.memory_bytes,
                    node.memory.available_bytes,
                    task.name,
                )

        attempt = self._attempts.get(task.task_id, 0)

        # Injected transient failure: the attempt occupies its slot for
        # the detection delay, never running the task body (whose side
        # effects and cost closures must only happen once).
        if self._faults is not None:
            detect_delay = self._faults.task_should_fail(task, attempt + 1)
            if detect_delay is not None:
                start = self.now
                end = start + detect_delay
                node.busy_slots += 1
                node.busy_seconds += detect_delay
                self._start_times[task.task_id] = start
                self._inflight[task.task_id] = (
                    task, node, alloc_id, end, attempt
                )
                if self.obs.events:
                    self.obs.events.emit(
                        TaskPlaced(start, task.name, task.task_id, node.name)
                    )
                    self.obs.events.emit(
                        TaskStarted(start, task.name, task.task_id, node.name)
                    )
                self._push_event(
                    events, end, task.task_id, "task-fail",
                    (task, node, alloc_id, end, attempt),
                )
                return True

        resolved_args = [self._resolve(a) for a in task.args]
        resolved_kwargs = {k: self._resolve(v) for k, v in task.kwargs.items()}

        transfer = 0.0
        for dep in task.dependencies():
            dep_result = self.completed[dep.task_id]
            if dep.output_bytes > 0 and dep_result.node != node.name:
                transfer += self.network.transfer_time(
                    dep.output_bytes, dep_result.node, node.name
                )

        # Sub-trial memoization: inside an open materialize window, a
        # memoizable task's fn/duration outcome is replayed from the
        # recorded stream (or recorded for next time).  Everything else
        # in this method — admission, transfers, slots, events, the
        # clock — always runs live, so replayed runs stay
        # byte-identical to recorded ones.  Fault-injected runs never
        # memoize: slowdown and S3-retry sampling happen in the very
        # evaluation the window would skip.
        window = self.memo_window
        if not (window is not None and task.memoizable
                and self._faults is None):
            window = None
        replayed = None
        if window is not None:
            replayed = window.replay(task, node, self.network)
        if replayed is not None:
            value, duration = replayed
        else:
            counters_before = None
            if window is not None:
                counters_before = window.snapshot(node, self.network)
            # Real computation runs first so that cost callables may
            # price the work from its actual outputs.
            s3_delay_before = self.object_store.total_retry_delay_s
            if task.fn is not None:
                try:
                    value = task.fn(*resolved_args, **resolved_kwargs)
                except Exception as exc:  # noqa: BLE001 - rewrapped
                    if alloc_id is not None:
                        node.memory.free(alloc_id)
                    if self.obs.events:
                        self.obs.events.emit(
                            TaskFailed(
                                self.now, task.name, task.task_id,
                                node.name, repr(exc),
                            )
                        )
                    raise TaskFailedError(
                        task.name, exc, node=node.name,
                        category=task.category
                    ) from exc
            else:
                value = None

            if callable(task.duration):
                duration = float(
                    task.duration(*resolved_args, **resolved_kwargs)
                )
            else:
                duration = float(task.duration)
            if self._faults is not None:
                # Stragglers stretch this node's compute; transient S3
                # retries hit during fn stretch it by their total
                # backoff.
                duration *= self._faults.slowdown(node.name)
                duration += (
                    self.object_store.total_retry_delay_s - s3_delay_before
                )
            if window is not None:
                window.record(
                    task, value, duration, node, self.network,
                    counters_before,
                )
        compute_seconds = duration
        if spill_bytes > 0:
            duration += self.cost_model.disk_write_time(spill_bytes)
            duration += self.cost_model.disk_read_time(spill_bytes)

        info = self._sched_info.get(task.task_id)
        if info is not None:
            info["transfer_s"] = transfer
            info["compute_s"] = compute_seconds
            info["spill_s"] = duration - compute_seconds

        start = self.now
        end = start + transfer + duration
        node.busy_slots += 1
        node.busy_seconds += transfer + duration
        self._start_times[task.task_id] = start
        self._inflight[task.task_id] = (task, node, alloc_id, end, attempt)
        if self.obs.events:
            self.obs.events.emit(
                TaskPlaced(start, task.name, task.task_id, node.name)
            )
            self.obs.events.emit(
                TaskStarted(start, task.name, task.task_id, node.name)
            )
        self._push_event(
            events, end, task.task_id, "complete",
            (task, node, alloc_id, value, attempt),
        )
        return True

    def _resolve(self, arg):
        if isinstance(arg, Task):
            return self.completed[arg.task_id].value
        return arg

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def utilization(self):
        """Fraction of slot-seconds spent busy since time zero."""
        if self.now == 0:
            return 0.0
        total_capacity = self.spec.total_slots * self.now
        busy = sum(n.busy_seconds for n in self.nodes.values())
        return busy / total_capacity

    def node_summaries(self):
        """Per-node resource summary rows, master first.

        Each row reports ``busy_seconds``, the memory high-water mark
        (``peak_memory_bytes``), OOM and spill totals, and disk
        traffic -- the per-node view behind Figure 15's memory
        analysis and the ``trace`` CLI breakdown.
        """
        rows = []
        for name in self.node_order:
            node = self.nodes[name]
            rows.append(
                {
                    "node": name,
                    "busy_seconds": node.busy_seconds,
                    "peak_memory_bytes": node.memory.peak_bytes,
                    "used_memory_bytes": node.memory.used_bytes,
                    "oom_count": node.memory.oom_count,
                    "spilled_bytes": node.memory.spilled_bytes,
                    "disk_bytes_written": node.disk.bytes_written,
                    "disk_bytes_read": node.disk.bytes_read,
                    "failed_tasks": node.failed_tasks,
                    "retried_tasks": node.retried_tasks,
                    "crash_count": node.crash_count,
                }
            )
        return rows

    def reset_clock(self):
        """Rewind the clock (between benchmark trials on one cluster)."""
        self.clock.reset()
        self.task_trace.clear()
        self.obs.reset()
        for node in self.nodes.values():
            node.busy_seconds = 0.0
