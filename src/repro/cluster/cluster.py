"""The simulated cluster: nodes, slots, and the event-driven executor.

``SimulatedCluster.run()`` executes a DAG of :class:`~repro.cluster.task.Task`
objects.  Each node offers ``spec.slots_per_node`` parallel slots; tasks
occupy one slot for their modeled duration.  Input transfers between
nodes, memory admission (with fail/wait/spill policies) and the virtual
clock are all handled here, so that engines only need to express the
*structure* of their execution.
"""

import heapq

from repro.cluster.clock import VirtualClock
from repro.cluster.costs import DEFAULT_COST_MODEL
from repro.cluster.disk import LocalDisk
from repro.cluster.errors import (
    OutOfMemoryError,
    PlacementError,
    TaskFailedError,
)
from repro.cluster.memory import MemoryTracker
from repro.cluster.network import NetworkModel
from repro.cluster.objectstore import ObjectStore
from repro.cluster.spec import ClusterSpec
from repro.cluster.task import Task, TaskResult
from repro.obs import Observability
from repro.obs.events import (
    TaskFailed,
    TaskFinished,
    TaskPlaced,
    TaskQueued,
    TaskStarted,
)


class Node:
    """Runtime state of one simulated machine."""

    def __init__(self, name, spec, slots, cost_model, obs=None):
        self.name = name
        self.spec = spec
        self.slots = slots
        self.busy_slots = 0
        self.memory = MemoryTracker(
            name,
            spec.memory_bytes,
            events=obs.events if obs is not None else None,
            clock=obs.clock if obs is not None else None,
        )
        self.disk = LocalDisk(name, spec.disk_bytes)
        self.cost_model = cost_model
        self.busy_seconds = 0.0

    @property
    def free_slots(self):
        """Execution slots currently idle on this node."""
        return self.slots - self.busy_slots

    def __repr__(self):
        return f"Node({self.name!r}, slots={self.slots}, busy={self.busy_slots})"


class SimulatedCluster:
    """A deterministic, discrete-event cluster of identical nodes."""

    def __init__(self, spec, cost_model=DEFAULT_COST_MODEL, object_store=None):
        if not isinstance(spec, ClusterSpec):
            raise TypeError(f"spec must be a ClusterSpec, got {type(spec)!r}")
        self.spec = spec
        self.cost_model = cost_model
        self.clock = VirtualClock()
        self.obs = Observability(self.clock)
        self.network = NetworkModel(
            cost_model, events=self.obs.events, clock=self.clock
        )
        self.object_store = object_store if object_store is not None else ObjectStore()
        self.object_store.bind(self.obs.events, self.clock)
        self.nodes = {
            name: Node(name, spec.node, spec.slots_per_node, cost_model,
                       obs=self.obs)
            for name in spec.node_names()
        }
        self.node_order = spec.node_names()
        self.completed = {}
        self.task_trace = []
        self._start_times = {}
        #: task_id -> scheduling bookkeeping (queued/ready times, memory
        #: deferrals, transfer/compute/spill split) feeding the task
        #: records that critical-path analysis consumes.
        self._sched_info = {}

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def master(self):
        """The coordinator node (drivers, masters, query coordinators)."""
        return self.node_order[0]

    def node(self, name):
        """Look up a node by name; raises on unknown names."""
        try:
            return self.nodes[name]
        except KeyError:
            raise PlacementError(f"unknown node {name!r}") from None

    def result_of(self, task):
        """Value produced by ``task`` in a previous :meth:`run` call."""
        return self.completed[task.task_id].value

    def charge_master(self, seconds, label="coordinator work", category=None):
        """Advance the clock for serial coordinator-side work."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self.clock.advance_by(seconds)
        start = self.now - seconds
        self.task_trace.append((label, self.master, start, self.now))
        self.obs.record_task(label, self.master, start, self.now,
                             category=category)

    # ------------------------------------------------------------------
    # The executor
    # ------------------------------------------------------------------

    def run(self, tasks):
        """Execute a DAG of tasks; returns ``{task_id: TaskResult}``.

        The clock starts at its current value (runs are cumulative,
        modeling consecutive pipeline stages) and finishes at the
        makespan of the DAG.  Tasks that were already completed in a
        previous run are treated as satisfied dependencies.
        """
        pending = self._collect(tasks)
        if not pending:
            return {}

        bus = self.obs.events
        if bus:
            for task in sorted(pending.values(), key=lambda t: t.task_id):
                bus.emit(TaskQueued(self.now, task.name, task.task_id))

        waiting_deps = {}
        dependents = {}
        ready = []
        for task in pending.values():
            open_deps = [
                d for d in task.dependencies() if d.task_id not in self.completed
            ]
            for dep in open_deps:
                if dep.task_id not in pending:
                    raise TaskFailedError(
                        task.name,
                        RuntimeError(
                            f"dependency {dep.name!r} neither scheduled nor completed"
                        ),
                    )
                dependents.setdefault(dep.task_id, []).append(task)
            waiting_deps[task.task_id] = len(open_deps)
            self._sched_info[task.task_id] = {
                "queued": self.now,
                "ready": self.now if not open_deps else None,
                "mem_deferred": False,
            }
            if not open_deps:
                ready.append(task)
        # FIFO by task id keeps scheduling deterministic.
        ready.sort(key=lambda t: t.task_id)

        events = []  # heap of (time, tiebreak, kind, payload)
        run_results = {}
        oom_waiting = []
        timers_set = set()

        def start_candidates():
            still_ready = []
            for task in ready:
                if task.not_before > self.now:
                    if task.task_id not in timers_set:
                        timers_set.add(task.task_id)
                        heapq.heappush(
                            events, (task.not_before, task.task_id, "timer", None)
                        )
                    still_ready.append(task)
                    continue
                node = self._place(task)
                if node is None:
                    still_ready.append(task)
                    continue
                started = self._try_start(task, node, events)
                if started is None:
                    # Memory admission deferred the task.
                    self._sched_info[task.task_id]["mem_deferred"] = True
                    oom_waiting.append(task)
            ready[:] = still_ready

        start_candidates()
        if not events and (ready or oom_waiting):
            raise TaskFailedError(
                (ready + oom_waiting)[0].name,
                RuntimeError("no task could start: cluster has no usable slot"),
            )

        while events:
            time, _tiebreak, kind, payload = heapq.heappop(events)
            self.clock.advance_to(time)
            if kind == "complete":
                task, node, alloc_id, value = payload
                node.busy_slots -= 1
                if alloc_id is not None:
                    node.memory.free(alloc_id)
                result = TaskResult(
                    task, value, self._start_times[task.task_id], time, node.name
                )
                self.completed[task.task_id] = result
                run_results[task.task_id] = result
                self.task_trace.append((task.name, node.name, result.start_time, time))
                info = self._sched_info.get(task.task_id, {})
                self.obs.record_task(
                    task.name, node.name, result.start_time, time,
                    task_id=task.task_id,
                    category=task.category,
                    queued=info.get("queued"),
                    ready=info.get("ready"),
                    not_before=task.not_before,
                    mem_deferred=info.get("mem_deferred", False),
                    transfer_s=info.get("transfer_s", 0.0),
                    compute_s=info.get("compute_s"),
                    spill_s=info.get("spill_s", 0.0),
                    dep_ids=tuple(d.task_id for d in task.dependencies()),
                )
                if bus:
                    bus.emit(
                        TaskFinished(
                            time, task.name, task.task_id, node.name,
                            result.start_time,
                        )
                    )
                for child in dependents.get(task.task_id, ()):
                    waiting_deps[child.task_id] -= 1
                    if waiting_deps[child.task_id] == 0:
                        self._sched_info[child.task_id]["ready"] = time
                        ready.append(child)
                ready.sort(key=lambda t: t.task_id)
                # Retry memory-deferred tasks now that memory may have freed.
                if oom_waiting:
                    ready[:0] = sorted(oom_waiting, key=lambda t: t.task_id)
                    oom_waiting.clear()
            start_candidates()
            if not events and (ready or oom_waiting):
                blocked = (ready + oom_waiting)[0]
                raise TaskFailedError(
                    blocked.name,
                    RuntimeError(
                        "deadlock: task cannot start (insufficient memory or slots)"
                    ),
                )

        return run_results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _collect(self, tasks):
        """Transitively gather the task set, keyed by id."""
        pending = {}
        stack = list(tasks)
        while stack:
            task = stack.pop()
            if not isinstance(task, Task):
                raise TypeError(f"expected Task, got {type(task)!r}")
            if task.task_id in pending or task.task_id in self.completed:
                continue
            pending[task.task_id] = task
            stack.extend(task.dependencies())
        return pending

    def _place(self, task):
        """Pick a node for ``task``; ``None`` when no slot is free."""
        if task.node is not None:
            node = self.node(task.node)
            return node if node.free_slots > 0 else None
        best = None
        for name in self.node_order:
            node = self.nodes[name]
            if node.free_slots <= 0:
                continue
            if best is None or node.free_slots > best.free_slots:
                best = node
        return best

    def _try_start(self, task, node, events):
        """Begin executing ``task`` on ``node``.

        Returns True on success, None when deferred by the "wait" OOM
        policy, and raises for the "fail" policy.  (False is reserved
        for future admission rules.)
        """
        spill_bytes = 0
        alloc_id = None
        if task.memory_bytes > 0:
            if node.memory.would_fit(task.memory_bytes):
                alloc_id = node.memory.allocate(task.memory_bytes, task.name)
            elif task.on_oom == "wait":
                if task.memory_bytes > node.memory.capacity_bytes:
                    raise OutOfMemoryError(
                        node.name,
                        task.memory_bytes,
                        node.memory.capacity_bytes,
                        task.name,
                    )
                return None
            elif task.on_oom == "spill":
                spill_bytes = task.memory_bytes - node.memory.available_bytes
                fit_bytes = task.memory_bytes - spill_bytes
                if fit_bytes > 0:
                    alloc_id = node.memory.allocate(fit_bytes, task.name)
                node.memory.note_spill(spill_bytes, task.name)
            else:  # "fail"
                node.memory.record_oom(task.memory_bytes, task.name)
                raise OutOfMemoryError(
                    node.name,
                    task.memory_bytes,
                    node.memory.available_bytes,
                    task.name,
                )

        resolved_args = [self._resolve(a) for a in task.args]
        resolved_kwargs = {k: self._resolve(v) for k, v in task.kwargs.items()}

        transfer = 0.0
        for dep in task.dependencies():
            dep_result = self.completed[dep.task_id]
            if dep.output_bytes > 0 and dep_result.node != node.name:
                transfer += self.network.transfer_time(
                    dep.output_bytes, dep_result.node, node.name
                )

        # Real computation runs first so that cost callables may price
        # the work from its actual outputs.
        if task.fn is not None:
            try:
                value = task.fn(*resolved_args, **resolved_kwargs)
            except Exception as exc:  # noqa: BLE001 - rewrapped with context
                if alloc_id is not None:
                    node.memory.free(alloc_id)
                if self.obs.events:
                    self.obs.events.emit(
                        TaskFailed(
                            self.now, task.name, task.task_id, node.name,
                            repr(exc),
                        )
                    )
                raise TaskFailedError(task.name, exc) from exc
        else:
            value = None

        if callable(task.duration):
            duration = float(task.duration(*resolved_args, **resolved_kwargs))
        else:
            duration = float(task.duration)
        compute_seconds = duration
        if spill_bytes > 0:
            duration += self.cost_model.disk_write_time(spill_bytes)
            duration += self.cost_model.disk_read_time(spill_bytes)

        info = self._sched_info.get(task.task_id)
        if info is not None:
            info["transfer_s"] = transfer
            info["compute_s"] = compute_seconds
            info["spill_s"] = duration - compute_seconds

        start = self.now
        end = start + transfer + duration
        node.busy_slots += 1
        node.busy_seconds += transfer + duration
        self._start_times[task.task_id] = start
        if self.obs.events:
            self.obs.events.emit(
                TaskPlaced(start, task.name, task.task_id, node.name)
            )
            self.obs.events.emit(
                TaskStarted(start, task.name, task.task_id, node.name)
            )
        heapq.heappush(
            events, (end, task.task_id, "complete", (task, node, alloc_id, value))
        )
        return True

    def _resolve(self, arg):
        if isinstance(arg, Task):
            return self.completed[arg.task_id].value
        return arg

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def utilization(self):
        """Fraction of slot-seconds spent busy since time zero."""
        if self.now == 0:
            return 0.0
        total_capacity = self.spec.total_slots * self.now
        busy = sum(n.busy_seconds for n in self.nodes.values())
        return busy / total_capacity

    def node_summaries(self):
        """Per-node resource summary rows, master first.

        Each row reports ``busy_seconds``, the memory high-water mark
        (``peak_memory_bytes``), OOM and spill totals, and disk
        traffic -- the per-node view behind Figure 15's memory
        analysis and the ``trace`` CLI breakdown.
        """
        rows = []
        for name in self.node_order:
            node = self.nodes[name]
            rows.append(
                {
                    "node": name,
                    "busy_seconds": node.busy_seconds,
                    "peak_memory_bytes": node.memory.peak_bytes,
                    "used_memory_bytes": node.memory.used_bytes,
                    "oom_count": node.memory.oom_count,
                    "spilled_bytes": node.memory.spilled_bytes,
                    "disk_bytes_written": node.disk.bytes_written,
                    "disk_bytes_read": node.disk.bytes_read,
                }
            )
        return rows

    def reset_clock(self):
        """Rewind the clock (between benchmark trials on one cluster)."""
        self.clock.reset()
        self.task_trace.clear()
        self.obs.reset()
        for node in self.nodes.values():
            node.busy_seconds = 0.0
