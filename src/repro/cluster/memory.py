"""Per-node memory accounting.

Section 5.3.2 of the paper: "Image analytics workloads are memory
intensive. ... image analytics pipelines can easily experience
out-of-memory failures."  The tracker lets engines model their distinct
responses: Myria's pipelined execution fails the query, Spark spills to
disk, Dask keeps results on the producing worker.
"""

from repro.cluster.errors import OutOfMemoryError


class MemoryTracker:
    """Tracks resident bytes on one node and enforces its capacity."""

    def __init__(self, node, capacity_bytes):
        if capacity_bytes <= 0:
            raise ValueError("memory capacity must be positive")
        self.node = node
        self.capacity_bytes = int(capacity_bytes)
        self._allocations = {}
        self._next_id = 0
        self.peak_bytes = 0
        self.oom_count = 0

    @property
    def used_bytes(self):
        """Bytes currently accounted as in use."""
        return sum(self._allocations.values())

    @property
    def available_bytes(self):
        """Bytes still free under the capacity."""
        return self.capacity_bytes - self.used_bytes

    def allocate(self, nbytes, label=""):
        """Reserve ``nbytes``; returns an allocation id for :meth:`free`.

        Raises :class:`OutOfMemoryError` when the node cannot hold the
        allocation.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"cannot allocate negative bytes: {nbytes}")
        if nbytes > self.available_bytes:
            self.oom_count += 1
            raise OutOfMemoryError(self.node, nbytes, self.available_bytes, label)
        alloc_id = self._next_id
        self._next_id += 1
        self._allocations[alloc_id] = nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        return alloc_id

    def would_fit(self, nbytes):
        """Whether an allocation of ``nbytes`` would succeed."""
        return int(nbytes) <= self.available_bytes

    def free(self, alloc_id):
        """Release a previous allocation; idempotent frees are bugs."""
        if alloc_id not in self._allocations:
            raise KeyError(f"unknown or already-freed allocation {alloc_id}")
        del self._allocations[alloc_id]

    def free_all(self):
        """Release every outstanding allocation."""
        self._allocations.clear()

    def __repr__(self):
        return (
            f"MemoryTracker(node={self.node!r}, used={self.used_bytes},"
            f" capacity={self.capacity_bytes})"
        )
