"""Per-node memory accounting.

Section 5.3.2 of the paper: "Image analytics workloads are memory
intensive. ... image analytics pipelines can easily experience
out-of-memory failures."  The tracker lets engines model their distinct
responses: Myria's pipelined execution fails the query, Spark spills to
disk, Dask keeps results on the producing worker.
"""

from repro.cluster.errors import OutOfMemoryError
from repro.obs.events import (
    MemoryAllocated,
    MemoryFreed,
    MemoryOOM,
    MemorySpilled,
)


class MemoryTracker:
    """Tracks resident bytes on one node and enforces its capacity.

    ``events``/``clock`` (optional, wired by the cluster) let the
    tracker publish allocate/free/spill/OOM events with virtual-clock
    timestamps; standalone trackers work unchanged without them.
    """

    def __init__(self, node, capacity_bytes, events=None, clock=None):
        if capacity_bytes <= 0:
            raise ValueError("memory capacity must be positive")
        self.node = node
        self.capacity_bytes = int(capacity_bytes)
        self._allocations = {}
        self._wiped_ids = set()
        self._next_id = 0
        self.peak_bytes = 0
        self.oom_count = 0
        self.spilled_bytes = 0
        self._events = events
        self._clock = clock

    def _now(self):
        return self._clock.now if self._clock is not None else 0.0

    @property
    def used_bytes(self):
        """Bytes currently accounted as in use."""
        return sum(self._allocations.values())

    @property
    def available_bytes(self):
        """Bytes still free under the capacity."""
        return self.capacity_bytes - self.used_bytes

    def allocate(self, nbytes, label=""):
        """Reserve ``nbytes``; returns an allocation id for :meth:`free`.

        Raises :class:`OutOfMemoryError` when the node cannot hold the
        allocation.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"cannot allocate negative bytes: {nbytes}")
        if nbytes > self.available_bytes:
            self.record_oom(nbytes, label)
            raise OutOfMemoryError(self.node, nbytes, self.available_bytes, label)
        alloc_id = self._next_id
        self._next_id += 1
        self._allocations[alloc_id] = nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        if self._events:
            self._events.emit(
                MemoryAllocated(
                    self._now(), self.node, nbytes, self.used_bytes, label
                )
            )
        return alloc_id

    def record_oom(self, requested, label=""):
        """Count (and publish) one refused allocation."""
        self.oom_count += 1
        if self._events:
            self._events.emit(
                MemoryOOM(
                    self._now(), self.node, int(requested),
                    self.available_bytes, label,
                )
            )

    def note_spill(self, nbytes, label=""):
        """Count (and publish) bytes that overflowed to local disk."""
        self.spilled_bytes += int(nbytes)
        if self._events:
            self._events.emit(
                MemorySpilled(self._now(), self.node, int(nbytes), label)
            )

    def would_fit(self, nbytes):
        """Whether an allocation of ``nbytes`` would succeed."""
        return int(nbytes) <= self.available_bytes

    def free(self, alloc_id):
        """Release a previous allocation; idempotent frees are bugs.

        Allocations destroyed by a node crash (:meth:`wipe`) are the
        one exception: owners that outlive the crash (engine caches,
        resident pipelines) may still hold ids for wiped memory, and
        their late frees are silent no-ops rather than bookkeeping
        errors.
        """
        if alloc_id not in self._allocations:
            if alloc_id in self._wiped_ids:
                self._wiped_ids.discard(alloc_id)
                return
            raise KeyError(f"unknown or already-freed allocation {alloc_id}")
        nbytes = self._allocations.pop(alloc_id)
        if self._events:
            self._events.emit(
                MemoryFreed(self._now(), self.node, nbytes, self.used_bytes)
            )

    def free_all(self):
        """Release every outstanding allocation."""
        released = self.used_bytes
        self._allocations.clear()
        if self._events and released:
            self._events.emit(MemoryFreed(self._now(), self.node, released, 0))

    def wipe(self):
        """Destroy all resident memory, as a node crash does.

        Outstanding allocation ids are remembered so that late
        :meth:`free` calls from surviving owners succeed silently.
        Returns the number of bytes lost.
        """
        lost = self.used_bytes
        self._wiped_ids.update(self._allocations)
        self._allocations.clear()
        if self._events and lost:
            self._events.emit(MemoryFreed(self._now(), self.node, lost, 0))
        return lost

    def holds(self, alloc_id):
        """Whether ``alloc_id`` is still a live (un-wiped) allocation."""
        return alloc_id in self._allocations

    def __repr__(self):
        return (
            f"MemoryTracker(node={self.node!r}, used={self.used_bytes},"
            f" capacity={self.capacity_bytes})"
        )
