"""Task abstraction executed by the simulated cluster.

A :class:`Task` couples *real* computation (``fn`` runs on actual NumPy
data) with *modeled* cost (``duration`` in simulated seconds, typically
derived from nominal paper-scale data sizes).  Engines express barriers,
pipelining, shuffles and placement purely through task dependency
structure and node pinning.
"""

import itertools

_task_counter = itertools.count()


class Task:
    """One schedulable unit of work.

    Parameters
    ----------
    name:
        Human-readable label used in error messages and traces.
    fn:
        Callable run when the task executes.  Any :class:`Task` instance
        appearing in ``args``/``kwargs`` is replaced by that task's
        result value.  ``None`` means a pure time-charge (no value).
    duration:
        Simulated seconds the task occupies its slot.  Either a float or
        a callable invoked with the resolved arguments (useful when the
        cost depends on an upstream result).
    node:
        Pin the task to a node name, or ``None`` to let the scheduler
        place it.
    deps:
        Extra dependencies beyond those implied by ``args``/``kwargs``.
    memory_bytes:
        Transient working-set size held while the task runs.
    output_bytes:
        Nominal size of the produced value; charged as a network
        transfer when a downstream task runs on a different node.
    on_oom:
        Policy when ``memory_bytes`` does not fit on the chosen node:
        ``"fail"`` aborts the run (Myria's pipelined execution),
        ``"wait"`` delays the task until memory frees (Spark's bounded
        task admission), ``"spill"`` charges disk traffic for the
        overflow and proceeds (Spark's spill-to-disk).
    not_before:
        Earliest simulated time the task may start, even if a slot is
        free (models serialized dispatch by central schedulers/masters).
    category:
        Blame-attribution label for critical-path analysis (e.g.
        ``"spark-denoise"``, ``"scidb-convert"``).  ``None`` falls back
        to the name-prefix grouping heuristic.
    op:
        Provenance id of the logical plan op this task implements
        (``"neuro/denoise"``), or ``None`` when the lowering resolves
        provenance through spans/categories instead.
    memoizable:
        Opt-in flag for sub-trial memoization: the task's ``fn`` and
        ``duration`` are pure (deterministic in their resolved
        arguments, no engine-state mutation beyond the network/disk
        counters and ``output_bytes`` the memo records), so an open
        materialize window may record and replay their outcome.
        Engines set this only on audited task-construction sites.
    """

    __slots__ = (
        "task_id",
        "name",
        "fn",
        "args",
        "kwargs",
        "duration",
        "node",
        "deps",
        "memory_bytes",
        "output_bytes",
        "on_oom",
        "not_before",
        "category",
        "op",
        "memoizable",
    )

    _OOM_POLICIES = ("fail", "wait", "spill")

    def __init__(
        self,
        name,
        fn=None,
        args=(),
        kwargs=None,
        duration=0.0,
        node=None,
        deps=(),
        memory_bytes=0,
        output_bytes=0,
        on_oom="fail",
        not_before=0.0,
        category=None,
        op=None,
        memoizable=False,
    ):
        if on_oom not in self._OOM_POLICIES:
            raise ValueError(
                f"on_oom must be one of {self._OOM_POLICIES}, got {on_oom!r}"
            )
        if not callable(duration) and duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        if not_before < 0:
            raise ValueError(f"not_before must be non-negative, got {not_before}")
        self.task_id = next(_task_counter)
        self.name = name
        self.fn = fn
        self.args = tuple(args)
        self.kwargs = dict(kwargs or {})
        self.duration = duration
        self.node = node
        self.deps = tuple(deps)
        self.memory_bytes = int(memory_bytes)
        self.output_bytes = int(output_bytes)
        self.on_oom = on_oom
        self.not_before = float(not_before)
        self.category = category
        self.op = op
        self.memoizable = bool(memoizable)

    def dependencies(self):
        """All upstream tasks: explicit ``deps`` plus tasks in arguments."""
        seen = {}
        for dep in self.deps:
            seen[dep.task_id] = dep
        for arg in self.args:
            if isinstance(arg, Task):
                seen[arg.task_id] = arg
        for arg in self.kwargs.values():
            if isinstance(arg, Task):
                seen[arg.task_id] = arg
        return list(seen.values())

    def __repr__(self):
        return f"Task(#{self.task_id} {self.name!r})"


class TaskResult:
    """Outcome of one executed task."""

    __slots__ = ("task", "value", "start_time", "end_time", "node")

    def __init__(self, task, value, start_time, end_time, node):
        self.task = task
        self.value = value
        self.start_time = start_time
        self.end_time = end_time
        self.node = node

    @property
    def duration(self):
        """Elapsed simulated seconds (end - start)."""
        return self.end_time - self.start_time

    def __repr__(self):
        return (
            f"TaskResult({self.task.name!r} on {self.node!r},"
            f" {self.start_time:.3f}->{self.end_time:.3f})"
        )
