"""Exception hierarchy for the simulated cluster."""


class ClusterError(Exception):
    """Base class for all simulated-cluster failures."""


class OutOfMemoryError(ClusterError):
    """A node's resident set exceeded its memory capacity.

    The paper's Section 5.3.2 discusses how image analytics pipelines
    "can easily experience out-of-memory failures"; Myria's pipelined
    execution surfaces this error while Spark spills to disk instead.
    """

    def __init__(self, node, requested_bytes, available_bytes, label=""):
        self.node = node
        self.requested_bytes = requested_bytes
        self.available_bytes = available_bytes
        self.label = label
        super().__init__(
            f"node {node!r}: allocation of {requested_bytes} bytes"
            f"{f' for {label}' if label else ''} exceeds available"
            f" {available_bytes} bytes"
        )


class DiskFullError(ClusterError):
    """A node's local disk filled up (160 GB on r3.2xlarge)."""

    def __init__(self, node, requested_bytes, available_bytes):
        self.node = node
        self.requested_bytes = requested_bytes
        self.available_bytes = available_bytes
        super().__init__(
            f"node {node!r}: write of {requested_bytes} bytes exceeds"
            f" available disk space {available_bytes} bytes"
        )


class PlacementError(ClusterError):
    """A task was pinned to a node that does not exist."""


class TaskFailedError(ClusterError):
    """A task body raised; wraps the original exception."""

    def __init__(self, task_name, cause):
        self.task_name = task_name
        self.cause = cause
        super().__init__(f"task {task_name!r} failed: {cause!r}")


class GraphTooLargeError(ClusterError):
    """A miniTensorFlow graph exceeded the 2 GB serialized-size limit.

    Section 4.5: "each compute graph must be smaller than 2GB when
    serialized".
    """
