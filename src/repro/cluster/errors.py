"""Exception hierarchy for the simulated cluster."""


class ClusterError(Exception):
    """Base class for all simulated-cluster failures."""


class OutOfMemoryError(ClusterError):
    """A node's resident set exceeded its memory capacity.

    The paper's Section 5.3.2 discusses how image analytics pipelines
    "can easily experience out-of-memory failures"; Myria's pipelined
    execution surfaces this error while Spark spills to disk instead.
    """

    def __init__(self, node, requested_bytes, available_bytes, label=""):
        self.node = node
        self.requested_bytes = requested_bytes
        self.available_bytes = available_bytes
        self.label = label
        super().__init__(
            f"node {node!r}: allocation of {requested_bytes} bytes"
            f"{f' for {label}' if label else ''} exceeds available"
            f" {available_bytes} bytes"
        )


class DiskFullError(ClusterError):
    """A node's local disk filled up (160 GB on r3.2xlarge)."""

    def __init__(self, node, requested_bytes, available_bytes):
        self.node = node
        self.requested_bytes = requested_bytes
        self.available_bytes = available_bytes
        super().__init__(
            f"node {node!r}: write of {requested_bytes} bytes exceeds"
            f" available disk space {available_bytes} bytes"
        )


class PlacementError(ClusterError):
    """A task was pinned to a node that does not exist."""


class TaskFailedError(ClusterError):
    """A task failed permanently; wraps the original exception.

    Carries the node the failing attempt ran on and the task's blame
    category so crash runs are diagnosable from the error alone.
    """

    def __init__(self, task_name, cause, node=None, category=None):
        self.task_name = task_name
        self.cause = cause
        self.node = node
        self.category = category
        where = f" on node {node!r}" if node else ""
        tag = f" [{category}]" if category else ""
        super().__init__(f"task {task_name!r}{tag} failed{where}: {cause!r}")


class NodeCrashedError(ClusterError):
    """A node crashed mid-run and the recovery policy is "abort".

    Engines whose recovery granularity is coarser than a task (Myria's
    query restart, SciDB's rerun-from-ingested-array, TensorFlow's
    whole-job rerun) catch this, perform their restart, and resubmit.
    ``recover_at`` is the virtual time the node rejoins (``None`` when
    it stays down).
    """

    def __init__(self, node, at_time, recover_at=None, killed_tasks=()):
        self.node = node
        self.at_time = at_time
        self.recover_at = recover_at
        self.killed_tasks = tuple(killed_tasks)
        rejoin = (
            f", rejoins at t={recover_at:.1f}s" if recover_at is not None
            else ", stays down"
        )
        super().__init__(
            f"node {node!r} crashed at t={at_time:.1f}s"
            f" killing {len(self.killed_tasks)} task(s){rejoin}"
        )


class S3RetriesExhaustedError(ClusterError):
    """An object-store read kept failing past the retry policy's cap."""

    def __init__(self, key, attempts):
        self.key = key
        self.attempts = attempts
        super().__init__(
            f"object {key!r} unreadable after {attempts} attempt(s)"
        )


class GraphTooLargeError(ClusterError):
    """A miniTensorFlow graph exceeded the 2 GB serialized-size limit.

    Section 4.5: "each compute graph must be smaller than 2GB when
    serialized".
    """
