"""Virtual clock for the discrete-event simulation."""


class VirtualClock:
    """Monotonic simulated clock measured in seconds.

    The clock only moves forward.  All engine-visible timings in the
    reproduction are simulated seconds on this clock, never wall-clock
    time, which makes every benchmark deterministic and independent of
    the host machine.
    """

    def __init__(self, start=0.0):
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, timestamp):
        """Move the clock forward to ``timestamp``.

        Raises :class:`ValueError` on attempts to move backwards, which
        would indicate a scheduling bug in an engine.
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)

    def advance_by(self, delta):
        """Move the clock forward by ``delta`` seconds (must be >= 0)."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        self._now += float(delta)

    def reset(self):
        """Rewind to time zero (used between benchmark trials)."""
        self._now = 0.0

    def __repr__(self):
        return f"VirtualClock(now={self._now:.6f})"
