"""Deterministic fault injection for the simulated cluster.

The paper's comparison is not only about speed: Section 2 contrasts how
the five systems behave under failure -- Spark recomputes lost
partitions from lineage, Dask reschedules lost futures, Myria restarts
the query, while SciDB and TensorFlow 0.x rerun from scratch.  A
:class:`FaultPlan` turns those qualitative claims into a measurable
experiment: it injects node crashes (at a virtual time or a progress
fraction), transient task failures, stragglers (per-node slowdown) and
degraded network links, all scheduled on the virtual clock and drawn
from a seeded hash so that the same seed reproduces the same run
bit-for-bit.

Nothing here consults wall-clock time or Python's salted ``hash()``;
every draw goes through :func:`_stable_fraction` (CRC32 of a
seed-qualified key) so fault schedules survive interpreter restarts.
"""

import zlib

#: Default cap on transient retries per task, mirroring Spark's
#: ``spark.task.maxFailures`` default of 4.
SPARK_MAX_TASK_FAILURES = 4


def _stable_fraction(seed, key):
    """Deterministic uniform draw in [0, 1) from ``seed`` and ``key``."""
    digest = zlib.crc32(f"{seed}:{key}".encode("utf-8")) & 0xFFFFFFFF
    return digest / 2 ** 32


class RetryPolicy:
    """Exponential backoff with a retry cap and an overall timeout.

    Shared by transient task failures and transient S3/object-store
    errors.  ``backoff(attempt)`` prices the wait before retry
    ``attempt`` (1-based: the delay after the first failure is
    ``backoff(1) == base_delay_s``).
    """

    def __init__(self, max_attempts=4, base_delay_s=1.0, multiplier=2.0,
                 max_delay_s=30.0, timeout_s=None):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if base_delay_s < 0 or max_delay_s < 0:
            raise ValueError("retry delays cannot be negative")
        self.max_attempts = int(max_attempts)
        self.base_delay_s = float(base_delay_s)
        self.multiplier = float(multiplier)
        self.max_delay_s = float(max_delay_s)
        self.timeout_s = timeout_s if timeout_s is None else float(timeout_s)

    def backoff(self, attempt):
        """Delay in simulated seconds before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be 1-based, got {attempt}")
        delay = self.base_delay_s * self.multiplier ** (attempt - 1)
        return min(delay, self.max_delay_s)

    def total_delay(self, retries):
        """Cumulative backoff across ``retries`` consecutive retries."""
        return sum(self.backoff(a) for a in range(1, retries + 1))


class RecoveryPolicy:
    """How a :class:`~repro.cluster.cluster.SimulatedCluster` reacts to faults.

    ``mode`` is either ``"abort"`` (raise ``NodeCrashedError`` out of
    ``run()`` so the engine can restart at its own granularity -- Myria
    restarts the query, SciDB reruns from the last ingested array, TF
    reruns the job) or ``"recompute"`` (the executor reschedules killed
    and lost tasks onto surviving nodes, recomputing wiped dependencies
    from lineage -- Spark and Dask).

    ``max_task_failures`` bounds per-task attempts (crash kills and
    transient failures both count); ``blacklist`` excludes a crashed
    node from placement until it restarts (a rebooted node rejoins as
    a fresh executor);
    ``recompute_category`` re-tags recomputed tasks so the critical-path
    blame walk can attribute recovery work (``spark-recompute``,
    ``dask-recompute``).
    """

    ABORT = "abort"
    RECOMPUTE = "recompute"

    def __init__(self, mode=ABORT, max_task_failures=1, blacklist=False,
                 recompute_category=None, label=None):
        if mode not in (self.ABORT, self.RECOMPUTE):
            raise ValueError(f"unknown recovery mode {mode!r}")
        if max_task_failures < 1:
            raise ValueError("max_task_failures must be at least 1")
        self.mode = mode
        self.max_task_failures = int(max_task_failures)
        self.blacklist = bool(blacklist)
        self.recompute_category = recompute_category
        self.label = label or mode

    def __repr__(self):
        return (
            f"RecoveryPolicy(mode={self.mode!r},"
            f" max_task_failures={self.max_task_failures},"
            f" blacklist={self.blacklist})"
        )


def spark_recovery():
    """Lineage recompute with bounded retries and node blacklisting."""
    return RecoveryPolicy(
        mode=RecoveryPolicy.RECOMPUTE,
        max_task_failures=SPARK_MAX_TASK_FAILURES,
        blacklist=True,
        recompute_category="spark-recompute",
        label="spark-lineage",
    )


def dask_recovery():
    """Reschedule lost futures onto survivors; recompute from S3."""
    return RecoveryPolicy(
        mode=RecoveryPolicy.RECOMPUTE,
        max_task_failures=3,
        blacklist=False,
        recompute_category="dask-recompute",
        label="dask-reschedule",
    )


def abort_recovery(label):
    """Whole-query / whole-job restart is the engine's responsibility."""
    return RecoveryPolicy(mode=RecoveryPolicy.ABORT, label=label)


class NodeCrash:
    """One scheduled node crash (and optional restart)."""

    __slots__ = ("node", "at_time", "at_progress", "restart_after",
                 "lose_disk", "fired")

    def __init__(self, node, at_time=None, at_progress=None,
                 restart_after=None, lose_disk=False):
        if (at_time is None) == (at_progress is None):
            raise ValueError("specify exactly one of at_time / at_progress")
        if at_progress is not None and not 0.0 < at_progress < 1.0:
            raise ValueError("at_progress must be in (0, 1)")
        self.node = node
        self.at_time = at_time if at_time is None else float(at_time)
        self.at_progress = at_progress
        self.restart_after = (
            restart_after if restart_after is None else float(restart_after)
        )
        self.lose_disk = bool(lose_disk)
        self.fired = False


class _TransientFaults:
    """Seeded transient-failure schedule for matching tasks."""

    __slots__ = ("rate", "match", "detect_delay_s", "max_failures_per_task")

    def __init__(self, rate, match=None, detect_delay_s=0.5,
                 max_failures_per_task=None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"failure rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self.match = match
        self.detect_delay_s = float(detect_delay_s)
        self.max_failures_per_task = max_failures_per_task


class _S3Faults:
    """Seeded transient object-store failure schedule."""

    __slots__ = ("rate", "max_failures_per_key")

    def __init__(self, rate, max_failures_per_key=2):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"failure rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self.max_failures_per_key = int(max_failures_per_key)


class FaultPlan:
    """A seeded, single-use schedule of faults for one cluster.

    Build a plan with the fluent methods, then hand it to
    :meth:`SimulatedCluster.install_faults`.  All randomness derives
    from ``seed`` via CRC32, so identical seeds give bit-identical
    fault schedules (and therefore bit-identical ledger snapshots).
    """

    def __init__(self, seed=0, retry_policy=None):
        self.seed = int(seed)
        self.retry_policy = retry_policy or RetryPolicy()
        self.crashes = []
        self.transient = []
        self.slowdowns = {}
        self.link_factors = {}
        self.s3_faults = None

    # -- builders ------------------------------------------------------

    def crash_node(self, node, at_time=None, at_progress=None,
                   restart_after=None, lose_disk=False):
        """Kill ``node`` at a virtual time or DAG-progress fraction.

        The crash wipes the node's memory (and, with ``lose_disk``, its
        local disk); ``restart_after`` seconds later the node rejoins
        with empty state, modeling an instance reboot.
        """
        self.crashes.append(
            NodeCrash(node, at_time=at_time, at_progress=at_progress,
                      restart_after=restart_after, lose_disk=lose_disk)
        )
        return self

    def fail_tasks(self, rate, match=None, detect_delay_s=0.5,
                   max_failures_per_task=None):
        """Fail a seeded ``rate`` fraction of task attempts transiently.

        ``match`` optionally restricts the fault to tasks whose name
        contains the substring.  A failing attempt occupies its slot
        for ``detect_delay_s`` (the failure-detection latency) without
        running the task body, then releases it.
        ``max_failures_per_task`` caps how many attempts of one task
        can fail so bounded-retry policies always converge.
        """
        self.transient.append(
            _TransientFaults(rate, match=match, detect_delay_s=detect_delay_s,
                             max_failures_per_task=max_failures_per_task)
        )
        return self

    def slow_node(self, node, factor):
        """Stretch compute durations on ``node`` by ``factor`` (>= 1)."""
        if factor < 1.0:
            raise ValueError(f"straggler factor must be >= 1, got {factor}")
        self.slowdowns[node] = float(factor)
        return self

    def degrade_link(self, src, dst, factor):
        """Stretch transfer times on the ``src``->``dst`` link."""
        if factor < 1.0:
            raise ValueError(f"link factor must be >= 1, got {factor}")
        self.link_factors[(src, dst)] = float(factor)
        return self

    def fail_s3(self, rate, max_failures_per_key=2):
        """Make a seeded fraction of object-store reads fail transiently.

        Failed reads are retried under the plan's :class:`RetryPolicy`;
        the accumulated backoff is charged to the reading task's
        duration.
        """
        self.s3_faults = _S3Faults(rate, max_failures_per_key)
        return self

    # -- queries (consulted by the executor) ---------------------------

    def task_should_fail(self, task, attempt):
        """Whether this attempt of ``task`` fails; returns detect delay.

        Returns ``None`` for a healthy attempt, else the detection
        delay in simulated seconds.
        """
        for spec in self.transient:
            if spec.match is not None and spec.match not in task.name:
                continue
            cap = spec.max_failures_per_task
            if cap is not None and attempt > cap:
                continue
            draw = _stable_fraction(
                self.seed, f"task:{task.name}:{attempt}"
            )
            if draw < spec.rate:
                return spec.detect_delay_s
        return None

    def slowdown(self, node_name):
        """Compute-duration multiplier for ``node_name`` (1.0 = healthy)."""
        return self.slowdowns.get(node_name, 1.0)

    def s3_attempt_retries(self, full_key):
        """Number of transient failures a read of ``full_key`` hits."""
        spec = self.s3_faults
        if spec is None or spec.rate <= 0.0:
            return 0
        retries = 0
        while retries < spec.max_failures_per_key:
            draw = _stable_fraction(self.seed, f"s3:{full_key}:{retries}")
            if draw >= spec.rate:
                break
            retries += 1
        return retries
