"""Hardware specifications for simulated nodes and clusters.

The defaults mirror the paper's experimental setup (Section 5): Amazon
EC2 ``r3.2xlarge`` instances with 8 vCPUs (Intel Xeon E5-2670 v2),
61 GB of memory, and 160 GB of SSD storage, in clusters of 16 to 64
nodes.
"""

from dataclasses import dataclass

GB = 1024 ** 3
MB = 1024 ** 2


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one machine in the cluster."""

    name: str
    cores: int
    memory_bytes: int
    disk_bytes: int

    def __post_init__(self):
        if self.cores <= 0:
            raise ValueError(f"node must have at least one core, got {self.cores}")
        if self.memory_bytes <= 0:
            raise ValueError("node memory must be positive")
        if self.disk_bytes <= 0:
            raise ValueError("node disk must be positive")

    @property
    def memory_gb(self):
        """Memory capacity in GiB."""
        return self.memory_bytes / GB

    @property
    def disk_gb(self):
        """Disk capacity in GiB."""
        return self.disk_bytes / GB


#: The instance type used for every experiment in the paper.
R3_2XLARGE = NodeSpec(
    name="r3.2xlarge",
    cores=8,
    memory_bytes=61 * GB,
    disk_bytes=160 * GB,
)


@dataclass(frozen=True)
class ClusterSpec:
    """Description of a whole cluster.

    ``workers_per_node`` is the system-level tuning knob studied in
    Figure 13 (Myria): how many engine worker processes share each
    physical node.  ``slots_per_worker`` lets engines that multiplex
    tasks over cores within a worker (Spark executors) model that too.
    """

    n_nodes: int
    node: NodeSpec = R3_2XLARGE
    workers_per_node: int = 1
    slots_per_worker: int = None  # default: cores // workers_per_node

    def __post_init__(self):
        if self.n_nodes <= 0:
            raise ValueError(f"cluster needs at least one node, got {self.n_nodes}")
        if self.workers_per_node <= 0:
            raise ValueError("workers_per_node must be positive")
        if self.slots_per_worker is not None and self.slots_per_worker <= 0:
            raise ValueError("slots_per_worker must be positive when given")

    @property
    def total_workers(self):
        """Worker processes across the whole cluster."""
        return self.n_nodes * self.workers_per_node

    @property
    def slots_per_node(self):
        """Parallel task slots available on one node.

        When ``slots_per_worker`` is unset, each worker gets an even
        share of the node's cores (at least one slot per worker so an
        over-subscribed node still makes progress, as real engines do).
        """
        if self.slots_per_worker is not None:
            return self.workers_per_node * self.slots_per_worker
        return self.workers_per_node * max(1, self.node.cores // self.workers_per_node)

    @property
    def total_slots(self):
        """Task slots across the whole cluster."""
        return self.n_nodes * self.slots_per_node

    @property
    def total_memory_bytes(self):
        """Memory capacity across the whole cluster."""
        return self.n_nodes * self.node.memory_bytes

    def node_names(self):
        """Deterministic node names, ``node-0`` .. ``node-{n-1}``."""
        return [f"node-{i}" for i in range(self.n_nodes)]
