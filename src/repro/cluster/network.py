"""Network fabric model for the simulated cluster.

The model is intentionally simple: pairwise transfers are charged at a
flat per-link bandwidth plus a per-message latency, and S3 traffic is
charged per node at the S3 bandwidth from the cost model.  This level of
detail is sufficient for the paper's effects, which depend on *whether*
data moves (shuffles, master-mediated ingest) far more than on topology.
"""

from repro.cluster.costs import DEFAULT_COST_MODEL


class NetworkModel:
    """Computes transfer durations and tallies traffic statistics."""

    def __init__(self, cost_model=DEFAULT_COST_MODEL):
        self.cost_model = cost_model
        self.bytes_node_to_node = 0
        self.bytes_from_s3 = 0
        self.transfer_count = 0

    def transfer_time(self, nbytes, src, dst, n_messages=1):
        """Seconds to move ``nbytes`` from node ``src`` to node ``dst``.

        A transfer within the same node is a memory copy, not a network
        hop, and is charged at memcpy speed.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer negative bytes: {nbytes}")
        self.transfer_count += 1
        if src == dst:
            return nbytes * self.cost_model.memcpy_per_byte
        self.bytes_node_to_node += nbytes
        return self.cost_model.network_time(nbytes, n_messages=n_messages)

    def s3_download_time(self, nbytes, n_objects=1):
        """Seconds for one node to pull ``nbytes`` from the object store."""
        if nbytes < 0:
            raise ValueError(f"cannot download negative bytes: {nbytes}")
        self.bytes_from_s3 += nbytes
        return self.cost_model.s3_read_time(nbytes, n_objects=n_objects)

    def broadcast_time(self, nbytes, n_nodes):
        """Seconds to broadcast ``nbytes`` from one node to ``n_nodes``.

        Models a BitTorrent-style tree broadcast (Spark's TorrentBroadcast,
        Myria's broadcast operator): latency grows logarithmically while
        each node still receives the full payload once.
        """
        if n_nodes <= 1:
            return 0.0
        rounds = max(1, (n_nodes - 1).bit_length())
        self.bytes_node_to_node += nbytes * (n_nodes - 1)
        per_round = self.cost_model.network_time(nbytes)
        return rounds * per_round

    def reset_stats(self):
        """Zero the traffic counters."""
        self.bytes_node_to_node = 0
        self.bytes_from_s3 = 0
        self.transfer_count = 0
