"""Network fabric model for the simulated cluster.

The model is intentionally simple: pairwise transfers are charged at a
flat per-link bandwidth plus a per-message latency, and S3 traffic is
charged per node at the S3 bandwidth from the cost model.  This level of
detail is sufficient for the paper's effects, which depend on *whether*
data moves (shuffles, master-mediated ingest) far more than on topology.

``events``/``clock`` (optional, wired by the cluster) publish each
priced movement to the observability bus; a bare ``NetworkModel``
works unchanged without them.
"""

from repro.cluster.costs import DEFAULT_COST_MODEL
from repro.obs.events import BroadcastSent, NetworkTransfer, S3Download


class NetworkModel:
    """Computes transfer durations and tallies traffic statistics."""

    def __init__(self, cost_model=DEFAULT_COST_MODEL, events=None, clock=None):
        self.cost_model = cost_model
        self.bytes_node_to_node = 0
        self.bytes_from_s3 = 0
        self.bytes_broadcast = 0
        self.transfer_count = 0
        self._events = events
        self._clock = clock
        #: (src, dst) -> slowdown factor for degraded links (fault
        #: injection); absent links run at full speed.
        self._link_factors = {}

    def _now(self):
        return self._clock.now if self._clock is not None else 0.0

    def set_link_factor(self, src, dst, factor):
        """Degrade the ``src``->``dst`` link by ``factor`` (>= 1)."""
        if factor < 1.0:
            raise ValueError(f"link factor must be >= 1, got {factor}")
        self._link_factors[(src, dst)] = float(factor)

    def transfer_time(self, nbytes, src, dst, n_messages=1):
        """Seconds to move ``nbytes`` from node ``src`` to node ``dst``.

        A transfer within the same node is a memory copy, not a network
        hop, and is charged at memcpy speed.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer negative bytes: {nbytes}")
        self.transfer_count += 1
        if src == dst:
            seconds = nbytes * self.cost_model.memcpy_per_byte
        else:
            self.bytes_node_to_node += nbytes
            seconds = self.cost_model.network_time(nbytes, n_messages=n_messages)
            if self._link_factors:
                seconds *= self._link_factors.get((src, dst), 1.0)
        if self._events:
            self._events.emit(
                NetworkTransfer(self._now(), nbytes, src, dst, seconds)
            )
        return seconds

    def s3_download_time(self, nbytes, n_objects=1):
        """Seconds for one node to pull ``nbytes`` from the object store."""
        if nbytes < 0:
            raise ValueError(f"cannot download negative bytes: {nbytes}")
        self.bytes_from_s3 += nbytes
        seconds = self.cost_model.s3_read_time(nbytes, n_objects=n_objects)
        if self._events:
            self._events.emit(
                S3Download(self._now(), nbytes, n_objects, seconds)
            )
        return seconds

    def broadcast_time(self, nbytes, n_nodes):
        """Seconds to broadcast ``nbytes`` from one node to ``n_nodes``.

        Models a BitTorrent-style tree broadcast (Spark's TorrentBroadcast,
        Myria's broadcast operator): latency grows logarithmically while
        each node still receives the full payload once.
        """
        if n_nodes <= 1:
            return 0.0
        rounds = max(1, (n_nodes - 1).bit_length())
        wire_bytes = nbytes * (n_nodes - 1)
        self.bytes_node_to_node += wire_bytes
        self.bytes_broadcast += wire_bytes
        seconds = rounds * self.cost_model.network_time(nbytes)
        if self._events:
            self._events.emit(
                BroadcastSent(self._now(), nbytes, n_nodes, seconds)
            )
        return seconds

    def reset_stats(self):
        """Zero the traffic counters."""
        self.bytes_node_to_node = 0
        self.bytes_from_s3 = 0
        self.bytes_broadcast = 0
        self.transfer_count = 0
