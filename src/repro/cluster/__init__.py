"""Discrete-event simulated cluster substrate.

The paper evaluated the five systems on Amazon EC2 ``r3.2xlarge``
instances (8 vCPU, 61 GB memory, 160 GB SSD) in clusters of 16 to 64
nodes.  This package substitutes a deterministic discrete-event
simulation for that testbed: nodes offer execution *slots*, tasks occupy
slots for modeled durations derived from a calibrated
:class:`~repro.cluster.costs.CostModel`, and a virtual clock records the
makespan.  Real (scaled-down) NumPy computation still runs inside each
task, so outputs remain checkable against the single-node reference
pipelines while timings reflect paper-scale data.
"""

from repro.cluster.clock import VirtualClock
from repro.cluster.cluster import Node, SimulatedCluster
from repro.cluster.costs import CostModel
from repro.cluster.disk import LocalDisk
from repro.cluster.errors import (
    ClusterError,
    DiskFullError,
    NodeCrashedError,
    OutOfMemoryError,
    PlacementError,
    S3RetriesExhaustedError,
    TaskFailedError,
)
from repro.cluster.faults import (
    FaultPlan,
    RecoveryPolicy,
    RetryPolicy,
    abort_recovery,
    dask_recovery,
    spark_recovery,
)
from repro.cluster.memory import MemoryTracker
from repro.cluster.network import NetworkModel
from repro.cluster.objectstore import ObjectStore
from repro.cluster.spec import ClusterSpec, NodeSpec, R3_2XLARGE
from repro.cluster.task import Task, TaskResult

__all__ = [
    "ClusterError",
    "ClusterSpec",
    "CostModel",
    "DiskFullError",
    "FaultPlan",
    "LocalDisk",
    "MemoryTracker",
    "NetworkModel",
    "Node",
    "NodeCrashedError",
    "NodeSpec",
    "ObjectStore",
    "OutOfMemoryError",
    "PlacementError",
    "R3_2XLARGE",
    "RecoveryPolicy",
    "RetryPolicy",
    "S3RetriesExhaustedError",
    "SimulatedCluster",
    "Task",
    "TaskFailedError",
    "TaskResult",
    "VirtualClock",
    "abort_recovery",
    "dask_recovery",
    "spark_recovery",
]
