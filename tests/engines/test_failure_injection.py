"""Failure-injection tests: memory pressure and size limits.

Section 5.3.2: "image analytics pipelines can easily experience
out-of-memory failures.  Big data systems can use different approaches
to trade-off query execution time and memory consumption."  Each engine
has a distinct failure (or survival) mode; these tests exercise them.
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, SimulatedCluster
from repro.cluster.errors import (
    GraphTooLargeError,
    OutOfMemoryError,
    TaskFailedError,
)
from repro.engines.base import udf
from repro.engines.dask import DaskClient
from repro.engines.myria import MyriaConnection, MyriaQuery, Relation
from repro.engines.spark import SparkContext
from repro.formats.sizing import SizedArray

GB = 10 ** 9


def _big(nbytes):
    return SizedArray(np.zeros(8), nominal_shape=(nbytes // 8,))


def test_spark_survives_oversized_shuffle_by_spilling():
    """Spark "can spill intermediate results to disk to avoid
    out-of-memory failures" -- the job completes, slower."""
    cluster = SimulatedCluster(ClusterSpec(n_nodes=1))
    sc = SparkContext(cluster)
    # 80 GB of records through one 61 GB node.
    records = [(i % 2, _big(10 * GB)) for i in range(8)]
    rdd = sc.parallelize(records, numSlices=4).groupByKey(numPartitions=2)
    parts = rdd.persist_to_workers()
    assert sum(len(p.records) for p in parts) == 2  # both groups exist


def test_spark_spill_costs_time():
    def run(nbytes):
        cluster = SimulatedCluster(ClusterSpec(n_nodes=1))
        sc = SparkContext(cluster)
        sc.ensure_started()
        rdd = sc.parallelize([_big(nbytes)], numSlices=1).map(udf(lambda x: x))
        t0 = cluster.now
        rdd.persist_to_workers()
        return cluster.now - t0

    fits = run(10 * GB)
    spills = run(100 * GB)
    assert spills > fits * 2


def test_myria_pipelined_fails_materialized_survives():
    cluster = SimulatedCluster(
        ClusterSpec(n_nodes=1, workers_per_node=4, slots_per_worker=1)
    )
    conn = MyriaConnection(cluster)
    rows = [(i, _big(4 * GB)) for i in range(8)]  # 32 GB of blobs
    conn.ingest_relation(Relation.from_rows("Big", ("id", "blob"), rows), "id")
    conn.create_function("Copy", udf(lambda b: b))
    text = """
    T = SCAN(Big);
    A = [FROM T EMIT PYUDF(Copy, T.blob) AS b, T.id];
    B = [FROM A EMIT PYUDF(Copy, A.b) AS b2, A.id];
    C = [FROM B EMIT PYUDF(Copy, B.b2) AS b3, B.id];
    """
    with pytest.raises(OutOfMemoryError):
        MyriaQuery.submit(conn, text, mode="pipelined")
    MyriaQuery.submit(conn, text, mode="materialized")  # completes


def test_myria_failed_query_releases_memory():
    cluster = SimulatedCluster(
        ClusterSpec(n_nodes=1, workers_per_node=4, slots_per_worker=1)
    )
    conn = MyriaConnection(cluster)
    rows = [(i, _big(4 * GB)) for i in range(8)]
    conn.ingest_relation(Relation.from_rows("Big", ("id", "blob"), rows), "id")
    conn.create_function("Copy", udf(lambda b: b))
    text = """
    T = SCAN(Big);
    A = [FROM T EMIT PYUDF(Copy, T.blob) AS b, T.id];
    B = [FROM A EMIT PYUDF(Copy, A.b) AS b2, A.id];
    C = [FROM B EMIT PYUDF(Copy, B.b2) AS b3, B.id];
    """
    with pytest.raises(OutOfMemoryError):
        MyriaQuery.submit(conn, text, mode="pipelined")
    for node in cluster.nodes.values():
        assert node.memory.used_bytes == 0


def test_dask_results_accumulate_until_oom():
    """Dask has no persistence layer: un-released results pile up in
    worker memory and eventually nothing more fits."""
    cluster = SimulatedCluster(ClusterSpec(n_nodes=1))
    client = DaskClient(cluster)
    make = client.delayed(lambda i: _big(25 * GB))
    a = make(0)
    b = make(1)
    c = make(2)
    client.compute([a, b])  # 50 GB resident on a 61 GiB node
    with pytest.raises(OutOfMemoryError):
        client.compute([c])
    # Releasing frees the memory; the third result now fits.
    client.release([a])
    client.compute([c])


def test_tf_graph_limit_forces_step_structure():
    """A constant-heavy graph trips the 2 GB limit; splitting the same
    work into per-step graphs (the Figure 9 pattern) succeeds."""
    from repro.engines.tensorflow import Graph, Session, Tensor

    cluster = SimulatedCluster(ClusterSpec(n_nodes=2))
    session = Session(cluster)

    def big_constant(graph):
        node = graph.constant(np.zeros(4))
        node.attrs["value"] = Tensor(np.zeros(4), nominal_shape=(160_000_000,))
        return node  # ~1.28 GB each

    monolith = Graph()
    fetches = [monolith.identity(big_constant(monolith)) for _i in range(2)]
    with pytest.raises(GraphTooLargeError):
        session.run(monolith, fetches)

    for _step in range(2):
        graph = Graph()
        fetch = graph.identity(big_constant(graph))
        session.run(graph, [fetch])  # each step fits


def test_failing_udf_surfaces_as_task_failure():
    cluster = SimulatedCluster(ClusterSpec(n_nodes=2))
    sc = SparkContext(cluster)

    def boom(x):
        raise RuntimeError("bad record")

    rdd = sc.parallelize([1], numSlices=1).map(udf(boom))
    with pytest.raises(TaskFailedError):
        rdd.collect()
