"""Tests for miniSpark."""

import numpy as np
import pytest

from repro.engines.base import udf
from repro.engines.spark import SparkContext
from repro.engines.spark.partitioner import HashPartitioner, stable_hash
from repro.formats.sizing import SizedArray


@pytest.fixture
def sc(small_cluster):
    return SparkContext(small_cluster)


def test_parallelize_collect_roundtrip(sc):
    data = list(range(50))
    assert sorted(sc.parallelize(data, numSlices=7).collect()) == data


def test_map_filter_chain(sc):
    rdd = sc.parallelize(range(20), numSlices=4)
    out = rdd.map(udf(lambda x: x * 2)).filter(udf(lambda x: x % 3 == 0)).collect()
    assert sorted(out) == [x * 2 for x in range(20) if (x * 2) % 3 == 0]


def test_flatmap(sc):
    rdd = sc.parallelize([1, 2, 3], numSlices=2)
    out = rdd.flatMap(udf(lambda x: [x] * x)).collect()
    assert sorted(out) == [1, 2, 2, 3, 3, 3]


def test_groupbykey_completeness(sc):
    pairs = [(i % 4, i) for i in range(40)]
    grouped = dict(sc.parallelize(pairs, numSlices=8).groupByKey(4).collect())
    for key in range(4):
        assert sorted(grouped[key]) == [i for i in range(40) if i % 4 == key]


def test_groupby_keyfn(sc):
    out = dict(
        sc.parallelize(range(10), numSlices=4)
        .groupBy(udf(lambda x: x % 2), numPartitions=2)
        .collect()
    )
    assert sorted(out[0]) == [0, 2, 4, 6, 8]


def test_reducebykey(sc):
    pairs = [(i % 3, 1) for i in range(30)]
    out = dict(
        sc.parallelize(pairs, numSlices=6)
        .reduceByKey(udf(lambda a, b: a + b), numPartitions=3)
        .collect()
    )
    assert out == {0: 10, 1: 10, 2: 10}


def test_mapvalues(sc):
    out = dict(
        sc.parallelize([(1, 2), (3, 4)], numSlices=2)
        .mapValues(udf(lambda v: v * 10))
        .collect()
    )
    assert out == {1: 20, 3: 40}


def test_count(sc):
    assert sc.parallelize(range(17), numSlices=5).count() == 17


def test_stage_count_narrow_fused(sc):
    """Narrow chains execute as one stage; a shuffle adds one more."""
    rdd = sc.parallelize(range(10), numSlices=2)
    chained = rdd.map(udf(lambda x: (x % 2, x))).groupByKey(2)
    before = sc.scheduler.stages_run
    chained.collect()
    assert sc.scheduler.stages_run - before == 2


def test_wide_op_repartitions(sc):
    rdd = sc.parallelize([(i, i) for i in range(16)], numSlices=2)
    grouped = rdd.groupByKey(numPartitions=8)
    parts = grouped.persist_to_workers()
    assert len(parts) == 8


def test_s3_source_reads_objects(sc):
    store = sc.cluster.object_store
    for i in range(10):
        store.put("b", f"obj{i}", i, 1000)
    rdd = sc.s3_objects("b", numPartitions=5)
    assert sorted(rdd.collect()) == list(range(10))


def test_s3_default_partitions_like_hdfs_blocks(sc):
    """Unspecified partitioning gives few, large partitions
    (Section 5.3.1: only 4 partitions for one ~4 GB subject)."""
    store = sc.cluster.object_store
    for i in range(288):
        store.put("b", f"vol{i:03d}", i, 4_200_000_000 // 288)
    rdd = sc.s3_objects("b")
    assert rdd.num_partitions <= 4


def test_s3_missing_bucket_raises(sc):
    with pytest.raises(ValueError):
        sc.s3_objects("empty-bucket")


def test_broadcast_value_accessible(sc):
    b = sc.broadcast({"mask": 1}, nominal_bytes=1000)
    assert b.value == {"mask": 1}


def test_cache_avoids_recompute_cost(sc):
    store = sc.cluster.object_store
    for i in range(8):
        store.put("b", f"o{i}", i, 10_000_000)
    base = sc.s3_objects("b", numPartitions=8).cache()
    base.count()
    t1 = sc.cluster.now
    base.count()
    second_action = sc.cluster.now - t1
    assert second_action < t1 * 0.5


def test_uncached_rdd_recomputes(sc):
    store = sc.cluster.object_store
    for i in range(8):
        store.put("b", f"o{i}", i, 10_000_000)
    base = sc.s3_objects("b", numPartitions=8)
    base.count()  # warm-up (includes job startup)
    t1 = sc.cluster.now
    base.count()
    second_action = sc.cluster.now - t1
    t2 = sc.cluster.now
    base.count()
    third_action = sc.cluster.now - t2
    # Without caching every action re-reads S3: repeat cost is stable
    # and non-trivial.
    assert second_action == pytest.approx(third_action, rel=0.01)
    assert second_action > 0.1


def test_costed_udf_charges_time(sc):
    sc.ensure_started()  # exclude the one-time job startup
    items = [SizedArray(np.zeros(4), nominal_shape=(10**7,)) for _ in range(8)]
    rdd = sc.parallelize(items, numSlices=8)
    cheap = rdd.map(udf(lambda x: x))
    t0 = sc.cluster.now
    cheap.persist_to_workers()
    cheap_time = sc.cluster.now - t0
    heavy = rdd.map(udf(lambda x: x, cost=lambda x: 5.0))
    t0 = sc.cluster.now
    heavy.persist_to_workers()
    heavy_time = sc.cluster.now - t0
    assert heavy_time > cheap_time + 4.0


def test_more_partitions_parallelize_better(sc):
    items = [SizedArray(np.zeros(4), nominal_shape=(10**6,)) for _ in range(32)]
    work = udf(lambda x: x, cost=lambda x: 1.0)

    def timed(slices):
        ctx = SparkContext(type(sc.cluster)(sc.cluster.spec))
        rdd = ctx.parallelize(items, numSlices=slices).map(work)
        t0 = ctx.cluster.now
        rdd.persist_to_workers()
        return ctx.cluster.now - t0

    assert timed(32) < timed(1)


def test_stable_hash_deterministic_types():
    assert stable_hash("abc") == stable_hash("abc")
    assert stable_hash(("s", 1)) == stable_hash(("s", 1))
    assert stable_hash(7) == 7
    with pytest.raises(TypeError):
        stable_hash([1, 2])


def test_hash_partitioner():
    p = HashPartitioner(4)
    assert all(0 <= p.partition_for(("subj", i)) < 4 for i in range(100))
    assert p == HashPartitioner(4)
    with pytest.raises(ValueError):
        HashPartitioner(0)


def test_spill_on_oversized_partition(sc):
    """A partition larger than node memory spills instead of failing."""
    huge = SizedArray(np.zeros(4), nominal_shape=(9 * 10**9,))  # 72 GB
    rdd = sc.parallelize([huge], numSlices=1).map(udf(lambda x: x))
    parts = rdd.persist_to_workers()
    assert len(parts) == 1  # completed despite exceeding 61 GB memory


def test_take_and_first(sc):
    rdd = sc.parallelize(range(100), numSlices=8)
    taken = rdd.take(5)
    assert len(taken) == 5
    assert all(t in range(100) for t in taken)
    assert rdd.first() in range(100)


def test_take_more_than_available(sc):
    assert sorted(sc.parallelize([1, 2], numSlices=2).take(10)) == [1, 2]
    assert sc.parallelize([1], numSlices=1).take(0) == []


def test_first_empty_raises(sc):
    import pytest as _pytest

    empty = sc.parallelize([1], numSlices=1).filter(udf(lambda x: False))
    with _pytest.raises(ValueError):
        empty.first()


def test_distinct(sc):
    rdd = sc.parallelize([1, 2, 2, 3, 3, 3], numSlices=3)
    assert sorted(rdd.distinct(numPartitions=2).collect()) == [1, 2, 3]
