"""Tests for MyriaL's imperative DO...WHILE loops."""

import pytest

from repro.engines.base import udf
from repro.engines.myria import MyriaConnection, MyriaQuery, Relation
from repro.engines.myria.myrial import DoWhile, MyriaLSyntaxError, parse


@pytest.fixture
def conn(worker_cluster):
    connection = MyriaConnection(worker_cluster)
    rows = [(i, float(2 ** i)) for i in range(8)]
    connection.ingest_relation(
        Relation.from_rows("Values", ("id", "val"), rows), "id"
    )
    return connection


def test_parse_do_while():
    program = parse(
        """
        T = SCAN(Values);
        DO
            T = [SELECT T.id, T.val FROM T WHERE T.val < 10];
        WHILE T;
        """
    )
    loop = program.statements[1]
    assert isinstance(loop, DoWhile)
    assert loop.condition == "T"
    assert len(loop.body) == 1


def test_parse_do_without_while_rejected():
    with pytest.raises(MyriaLSyntaxError):
        parse("DO T = SCAN(Values);")


def test_parse_empty_do_rejected():
    with pytest.raises(MyriaLSyntaxError):
        parse("DO WHILE T;")


def test_loop_runs_until_empty(conn):
    """Iterative halving: keep rows above 1.0, shrinking each pass."""
    conn.create_function("Halve", udf(lambda v: v / 2.0))
    query = MyriaQuery.submit(
        conn,
        """
        T = SCAN(Values);
        Cur = [FROM T EMIT T.id, T.val];
        DO
            Cur = [FROM Cur EMIT Cur.id, PYUDF(Halve, Cur.val) AS val];
            Big = [SELECT Cur.id, Cur.val FROM Cur WHERE Cur.val >= 1.0];
        WHILE Big;
        """,
    )
    rows = dict(query.relation("Cur").rows)
    # Every value was halved until all fell below 1.0.
    assert all(v < 1.0 for v in rows.values())
    assert len(rows) == 8


def test_loop_iteration_count_matches_math(conn):
    """2^7 = 128 needs 8 halvings to drop below 1: the loop's body
    charges simulated time on every iteration."""
    conn.create_function("Halve", udf(lambda v: v / 2.0, cost=lambda v: 0.5))
    t0 = conn.cluster.now
    MyriaQuery.submit(
        conn,
        """
        T = SCAN(Values);
        Cur = [FROM T EMIT T.id, T.val];
        DO
            Cur = [FROM Cur EMIT Cur.id, PYUDF(Halve, Cur.val) AS val];
            Big = [SELECT Cur.id, Cur.val FROM Cur WHERE Cur.val >= 1.0];
        WHILE Big;
        """,
    )
    elapsed = conn.cluster.now - t0
    # At least 8 iterations x 0.5 s of per-row UDF time somewhere.
    assert elapsed > 3.0


def test_unknown_while_relation_rejected(conn):
    with pytest.raises(KeyError):
        MyriaQuery.submit(
            conn,
            """
            T = SCAN(Values);
            DO
                Cur = [FROM T EMIT T.id];
            WHILE Nope;
            """,
        )


def test_runaway_loop_capped(conn):
    from repro.engines.myria.plan import MyriaServer

    conn.server.MAX_LOOP_ITERATIONS = 5
    with pytest.raises(RuntimeError):
        MyriaQuery.submit(
            conn,
            """
            T = SCAN(Values);
            DO
                Cur = [FROM T EMIT T.id, T.val];
            WHILE Cur;
            """,
        )