"""Tests for miniTF placement helpers."""

import pytest

from repro.engines.tensorflow.placement import (
    fixed_assignment,
    one_item_per_node,
    round_robin_steps,
)

DEVICES = ["node-0", "node-1", "node-2"]


def test_round_robin_covers_all_items():
    steps = round_robin_steps(DEVICES, 8)
    flat = [index for step in steps for index, _d in step]
    assert sorted(flat) == list(range(8))


def test_round_robin_one_item_per_device_per_step():
    steps = round_robin_steps(DEVICES, 8)
    for step in steps:
        devices = [d for _i, d in step]
        assert len(devices) == len(set(devices))
        assert len(step) <= len(DEVICES)


def test_round_robin_step_count():
    assert len(round_robin_steps(DEVICES, 8)) == 3  # ceil(8/3)
    assert len(round_robin_steps(DEVICES, 3)) == 1
    assert round_robin_steps(DEVICES, 0) == []


def test_round_robin_needs_devices():
    with pytest.raises(ValueError):
        round_robin_steps([], 4)


def test_one_item_per_node_alias():
    assert one_item_per_node(DEVICES, 5) == round_robin_steps(DEVICES, 5)


def test_fixed_assignment_deals_in_order():
    table = fixed_assignment(DEVICES, [2, 0, 3])
    assert table["node-0"] == [0, 1]
    assert table["node-1"] == []
    assert table["node-2"] == [2, 3, 4]


def test_fixed_assignment_validation():
    with pytest.raises(ValueError):
        fixed_assignment(DEVICES, [1, 2])
    with pytest.raises(ValueError):
        fixed_assignment(DEVICES, [1, -1, 2])
