"""Tests for miniDask."""

import numpy as np
import pytest

from repro.engines.dask import DaskClient
from repro.formats.sizing import SizedArray


@pytest.fixture
def client(small_cluster):
    return DaskClient(small_cluster)


def test_delayed_result(client):
    node = client.delayed(lambda a, b: a + b)(2, 3)
    assert node.result() == 5


def test_graph_composition(client):
    inc = client.delayed(lambda x: x + 1)
    add = client.delayed(lambda a, b: a + b)
    total = add(inc(1), inc(10))
    assert total.result() == 13


def test_kwargs_resolved(client):
    fn = client.delayed(lambda x, y=0: x + y)
    inner = client.delayed(lambda: 5)()
    assert fn(1, y=inner).result() == 6


def test_shared_dependency_computed_once(client):
    calls = []

    def source():
        calls.append(1)
        return 1

    src = client.delayed(source)()
    a = client.delayed(lambda x: x + 1)(src)
    b = client.delayed(lambda x: x + 2)(src)
    assert client.compute([a, b]) == [2, 3]
    assert len(calls) == 1


def test_barrier_caches_results(client):
    node = client.delayed(lambda: 42)()
    node.result()
    t1 = client.cluster.now
    node.result()  # no recompute, no time
    assert client.cluster.now == t1


def test_startup_charged_at_first_barrier(client):
    cm = client.cost_model
    client.delayed(lambda: 1)().result()
    assert client.cluster.now >= cm.dask_job_startup


def test_worker_pinning(client):
    node = client.delayed(lambda: "x", workers="node-3")()
    node.result()
    assert client.node_of(node) == "node-3"


def test_locality_prefers_data_node(client):
    big = SizedArray(np.zeros(4), nominal_shape=(10 ** 8,))
    producer = client.delayed(lambda: big, workers="node-2")()
    consumer = client.delayed(lambda v: v)(producer)
    client.compute([consumer])
    assert client.node_of(consumer) == "node-2"


def test_work_stealing_spreads_load(client):
    """Many tasks whose inputs sit on one node get stolen elsewhere."""
    data = client.delayed(lambda: 1, workers="node-0")()
    data.result()
    slow = client.delayed(lambda v, i: i, cost=lambda v, i: 1.0)
    tasks = [slow(data, i) for i in range(64)]
    t0 = client.cluster.now
    client.compute(tasks)
    elapsed = client.cluster.now - t0
    assert client.steal_count > 0
    # With stealing, far faster than 64 serial-ish waves on one node.
    assert elapsed < 40.0


def test_dispatch_serialization_grows_with_tasks(client):
    quick = client.delayed(lambda i: i)
    many = [quick(i) for i in range(200)]
    t0 = client.cluster.now
    client.compute(many)
    elapsed = client.cluster.now - t0
    cm = client.cost_model
    assert elapsed >= 199 * cm.dask_task_overhead * 0.9


def test_results_stay_resident_until_release(client):
    big = SizedArray(np.zeros(8), nominal_shape=(10 ** 9,))
    node = client.delayed(lambda: big)()
    node.result()
    held = sum(n.memory.used_bytes for n in client.cluster.nodes.values())
    assert held >= 8 * 10 ** 9  # float64 nominal bytes
    client.release([node])
    held_after = sum(n.memory.used_bytes for n in client.cluster.nodes.values())
    assert held_after == 0


def test_costed_functions_charge_time(client):
    client.ensure_started()
    t0 = client.cluster.now
    client.delayed(lambda: 1, cost=lambda: 9.0)().result()
    assert client.cluster.now - t0 >= 9.0


def test_failure_propagates(client):
    from repro.cluster.errors import TaskFailedError

    def boom():
        raise ValueError("nope")

    with pytest.raises(TaskFailedError):
        client.delayed(boom)().result()


def test_map_fan_out(client):
    results = client.compute(client.map(lambda a, b: a + b, [1, 2, 3], [10, 20, 30]))
    assert results == [11, 22, 33]


def test_scatter_places_round_robin(client):
    values = [SizedArray(np.zeros(2), nominal_shape=(10 ** 6,)) for _i in range(6)]
    handles = client.scatter(values)
    nodes = {client.node_of(h) for h in handles}
    assert len(nodes) == 4  # spread over all 4 nodes


def test_scatter_values_usable_in_graphs(client):
    (handle,) = client.scatter([21])
    doubled = client.delayed(lambda x: x * 2)(handle)
    assert doubled.result() == 42


def test_scatter_pins_to_worker(client):
    (handle,) = client.scatter(["x"], workers="node-1")
    assert client.node_of(handle) == "node-1"


def test_scatter_consumes_memory_until_release(client):
    big = SizedArray(np.zeros(2), nominal_shape=(10 ** 9,))
    (handle,) = client.scatter([big])
    held = sum(n.memory.used_bytes for n in client.cluster.nodes.values())
    assert held >= 8 * 10 ** 9
    client.release([handle])
    assert sum(n.memory.used_bytes for n in client.cluster.nodes.values()) == 0
