"""Tests for shared engine abstractions."""

import numpy as np
import pytest

from repro.engines.base import (
    SMALL_RECORD_BYTES,
    CostedFunction,
    as_costed,
    nominal_bytes_of,
    udf,
)
from repro.formats.sizing import SizedArray


def test_nominal_bytes_sized_array():
    a = SizedArray(np.zeros((2, 2), dtype=np.float32), nominal_shape=(10, 10))
    assert nominal_bytes_of(a) == 400


def test_nominal_bytes_object_with_attribute():
    class Thing:
        nominal_bytes = 1234

    assert nominal_bytes_of(Thing()) == 1234


def test_nominal_bytes_ndarray_uses_real_size():
    assert nominal_bytes_of(np.zeros(10, dtype=np.float64)) == 80


def test_nominal_bytes_containers():
    a = SizedArray(np.zeros(1, dtype=np.float64), nominal_shape=(10,))
    assert nominal_bytes_of([a, a]) == 160
    assert nominal_bytes_of(("key", a)) == 3 + 80
    assert nominal_bytes_of({"x": a}) == 80


def test_nominal_bytes_scalar_fallback():
    assert nominal_bytes_of(42) == SMALL_RECORD_BYTES
    assert nominal_bytes_of(None) == SMALL_RECORD_BYTES


def test_costed_function_call_and_cost():
    fn = CostedFunction(lambda x: x + 1, cost_fn=lambda x: x * 0.5)
    assert fn(4) == 5
    assert fn.cost(4) == 2.0


def test_costed_function_default_cost_zero():
    fn = CostedFunction(lambda x: x)
    assert fn.cost(10) == 0.0


def test_udf_decorator_form():
    @udf(cost=lambda x: 1.0)
    def double(x):
        return 2 * x

    assert isinstance(double, CostedFunction)
    assert double(3) == 6
    assert double.cost(3) == 1.0


def test_udf_idempotent():
    fn = udf(lambda x: x)
    assert udf(fn) is fn


def test_as_costed_wraps_plain_callable():
    fn = as_costed(len)
    assert fn("abc") == 3
    assert fn.cost("abc") == 0.0


def test_costed_function_validation():
    with pytest.raises(TypeError):
        CostedFunction(42)
    with pytest.raises(TypeError):
        CostedFunction(lambda: None, cost_fn=42)


def test_engine_startup_charged_once(small_cluster):
    from repro.engines.base import Engine

    class Fake(Engine):
        name = "fake"

        def startup_cost(self):
            return 7.0

    engine = Fake(small_cluster)
    engine.ensure_started()
    engine.ensure_started()
    assert small_cluster.now == 7.0
