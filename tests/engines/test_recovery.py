"""Per-engine recovery semantics under an injected node crash.

Section 2's fault-tolerance contrasts, made executable: Spark
recomputes lost partitions from lineage, Dask reschedules lost futures
onto the survivors, Myria's coordinator restarts the query, while
SciDB and TensorFlow surface the crash to the caller (who reruns).
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, SimulatedCluster
from repro.cluster.errors import NodeCrashedError
from repro.cluster.faults import FaultPlan, RecoveryPolicy
from repro.engines.base import udf
from repro.engines.dask import DaskClient
from repro.engines.myria import MyriaConnection, MyriaQuery, Relation
from repro.engines.scidb import DimSpec, SciDBConnection
from repro.engines.spark import SparkContext
from repro.engines.tensorflow import Graph, Session
from repro.obs.breakdown import records_of
from repro.obs.events import QueryRestarted, TaskRetried
from repro.formats.sizing import SizedArray


def _four_nodes():
    return SimulatedCluster(ClusterSpec(n_nodes=4))


def _worker_nodes():
    return SimulatedCluster(
        ClusterSpec(n_nodes=4, workers_per_node=4, slots_per_worker=1)
    )


# ----------------------------------------------------------------------
# Spark: lineage recompute
# ----------------------------------------------------------------------

def _spark_job(cluster):
    sc = SparkContext(cluster)
    rdd = sc.parallelize(list(range(32)), numSlices=32).map(
        udf(lambda x: x + 1, cost=lambda x: 2.0)
    )
    return sorted(rdd.collect())


def test_spark_installs_recompute_policy():
    cluster = _four_nodes()
    SparkContext(cluster)
    assert cluster.recovery_policy.mode == RecoveryPolicy.RECOMPUTE
    assert cluster.recovery_policy.blacklist


def test_spark_job_survives_mid_stage_crash():
    baseline = _four_nodes()
    expected = _spark_job(baseline)
    half = baseline.now / 2

    cluster = _four_nodes()
    cluster.install_faults(FaultPlan(seed=5).crash_node("node-3", at_time=half))
    retried = []
    cluster.obs.events.subscribe(
        lambda e: retried.append(e) if isinstance(e, TaskRetried) else None
    )
    assert _spark_job(cluster) == expected
    # The survivors redid the victim's killed attempts...
    assert retried
    assert cluster.node("node-3").failed_tasks > 0
    # ...and the run costs more than the fault-free baseline.
    assert cluster.now > baseline.now


def test_spark_recomputes_lost_cached_partitions_from_lineage():
    def job(cluster, plan=None):
        sc = SparkContext(cluster)
        cached = sc.parallelize(list(range(16)), numSlices=16).map(
            udf(lambda x: x * 10, cost=lambda x: 1.0)
        ).cache()
        cached.persist_to_workers()
        if plan is not None:
            cluster.install_faults(plan)
        follow = cached.map(udf(lambda x: x + 1, cost=lambda x: 1.0))
        return sorted(follow.collect())

    baseline = _four_nodes()
    expected = job(baseline)

    cluster = _four_nodes()
    # Crash immediately after the cache materialized: the follow-up
    # stage finds node-3's cached partitions gone and recomputes them.
    got = job(cluster, FaultPlan(seed=5).crash_node("node-3", at_time=0.01))
    assert got == expected
    recomputed = [
        r for r in records_of(cluster) if r.category == "spark-recompute"
    ]
    assert recomputed


# ----------------------------------------------------------------------
# Dask: reschedule lost futures
# ----------------------------------------------------------------------

def test_dask_purges_and_recomputes_lost_futures():
    cluster = _four_nodes()
    client = DaskClient(cluster)
    calls = []

    def source(i):
        calls.append(i)
        return i * 2

    futures = [
        client.delayed(source, cost=lambda i: 1.0)(i) for i in range(8)
    ]
    assert client.compute(futures) == [0, 2, 4, 6, 8, 10, 12, 14]
    first_calls = len(calls)

    # A node dies and reboots while unrelated work runs: its futures
    # are lost even though the node is back (fresh process, empty
    # memory).  The next barrier purges and recomputes them.
    cluster.install_faults(
        FaultPlan(seed=6).crash_node("node-2", at_time=cluster.now + 0.005,
                                     restart_after=0.01)
    )
    client.delayed(lambda: None, cost=lambda: 1.0)().result()
    assert cluster.node("node-2").alive
    downstream = [
        client.delayed(lambda x: x + 1, cost=lambda x: 1.0)(f)
        for f in futures
    ]
    assert client.compute(downstream) == [1, 3, 5, 7, 9, 11, 13, 15]
    assert client.lost_futures > 0
    # Only the lost partitions re-ran their source.
    assert first_calls < len(calls) < 2 * first_calls


def test_dask_future_loss_is_transparent_to_the_caller():
    cluster = _four_nodes()
    client = DaskClient(cluster)
    calls = []

    def source():
        calls.append(1)
        return 41

    f = client.delayed(source, cost=lambda: 1.0)()
    assert f.result() == 41
    owner = client._result_nodes[f.key]
    cluster.install_faults(
        FaultPlan(seed=6).crash_node(owner, at_time=cluster.now + 0.005,
                                     restart_after=0.01)
    )
    # Unrelated work rides out the crash and reboot.
    client.delayed(lambda: None, cost=lambda: 1.0)().result()
    g = client.delayed(lambda x: x + 1, cost=lambda x: 1.0)(f)
    # The caller sees the right answer; underneath, f was recomputed.
    assert g.result() == 42
    assert len(calls) == 2
    assert client.lost_futures == 1


# ----------------------------------------------------------------------
# Myria: coordinator restarts the query
# ----------------------------------------------------------------------

def _myria_setup(cluster):
    conn = MyriaConnection(cluster, workers_per_node=4)
    rows = []
    for s in range(4):
        for i in range(8):
            rows.append(
                (
                    f"subj{s}",
                    i,
                    SizedArray(
                        np.full((4, 4), float(i)),
                        nominal_shape=(2000, 2000),
                        meta={"subject_id": f"subj{s}", "image_id": i},
                    ),
                )
            )
    conn.ingest_relation(
        Relation.from_rows("Images", ("subjId", "imgId", "img"), rows),
        "subjId",
    )
    return conn


_MYRIA_PROGRAM = (
    "T = SCAN(Images);"
    " S = [FROM T EMIT T.subjId, T.imgId];"
    " STORE(S, Pairs);"
)


_RESCAN = "P = SCAN(Pairs); Q = [FROM P EMIT P.subjId, P.imgId];"


def test_myria_restarts_query_after_worker_crash():
    baseline_cluster = _worker_nodes()
    conn = _myria_setup(baseline_cluster)
    ingest_end = baseline_cluster.now
    query_start = baseline_cluster.now
    MyriaQuery.submit(conn, _MYRIA_PROGRAM)
    query_end = baseline_cluster.now
    expected = sorted(
        MyriaQuery.submit(conn, _RESCAN).relation("Q").rows
    )
    assert ingest_end == query_start
    crash_at = query_start + 0.5 * (query_end - query_start)

    cluster = _worker_nodes()
    conn = _myria_setup(cluster)
    restarts = []
    cluster.obs.events.subscribe(
        lambda e: restarts.append(e) if isinstance(e, QueryRestarted) else None
    )
    cluster.install_faults(
        FaultPlan(seed=7).crash_node("node-3", at_time=crash_at,
                                     restart_after=5.0)
    )
    MyriaQuery.submit(conn, _MYRIA_PROGRAM)
    # Same answer, no duplicated rows from the aborted attempt.
    got = sorted(MyriaQuery.submit(conn, _RESCAN).relation("Q").rows)
    assert got == expected
    assert len(restarts) == 1
    assert restarts[0].engine == "Myria"
    # The restart wait was charged under its blame category.
    assert any(
        r.category == "myria-restart" for r in records_of(cluster)
    )
    assert cluster.now > crash_at + 5.0


def test_myria_restart_rolls_back_partial_stores():
    cluster = _worker_nodes()
    conn = _myria_setup(cluster)
    server = conn.server
    cluster.install_faults(
        FaultPlan(seed=7).crash_node("node-3", at_time=cluster.now + 0.01,
                                     restart_after=1.0)
    )
    MyriaQuery.submit(conn, _MYRIA_PROGRAM)
    # The catalog holds exactly one fully-populated Pairs relation;
    # shards inserted by the aborted attempt were rolled back.
    assert "Pairs" in server.catalog
    total = sum(
        storage.row_count("Pairs")
        for storage in server.storages
        if storage.has_table("Pairs")
    )
    assert total == 32


def test_myria_gives_up_after_max_restarts():
    cluster = _worker_nodes()
    conn = _myria_setup(cluster)
    # The node never comes back: every restart attempt finds it dead.
    cluster.install_faults(
        FaultPlan(seed=7).crash_node("node-3", at_time=cluster.now + 0.01)
    )
    with pytest.raises(NodeCrashedError):
        MyriaQuery.submit(conn, _MYRIA_PROGRAM)


# ----------------------------------------------------------------------
# SciDB and TensorFlow: no recovery, the crash surfaces
# ----------------------------------------------------------------------

def test_scidb_crash_aborts_to_caller(rng):
    cluster = _worker_nodes()
    sdb = SciDBConnection(cluster, instances_per_node=4)
    assert cluster.recovery_policy.mode == RecoveryPolicy.ABORT
    real = rng.random((8, 8, 24))
    dims = [
        DimSpec("x", 145, 145),
        DimSpec("y", 145, 145),
        DimSpec("vol", 288, 16),
    ]
    array = sdb.create_array("data", dims, real)
    cluster.install_faults(
        FaultPlan(seed=8).crash_node("node-2", at_time=cluster.now + 0.01,
                                     restart_after=2.0)
    )
    with pytest.raises(NodeCrashedError) as info:
        sdb.apply_elementwise(array, lambda x: x + 1.0, per_element_cost=1e-9)
    assert info.value.recover_at is not None


def test_tensorflow_crash_aborts_to_caller(rng):
    cluster = _four_nodes()
    session = Session(cluster)
    assert cluster.recovery_policy.mode == RecoveryPolicy.ABORT
    g = Graph()
    ph = g.placeholder((2000, 2000))
    out = g.reduce_mean(ph, axis=None)
    cluster.install_faults(
        FaultPlan(seed=9).crash_node("node-1", at_time=cluster.now + 0.01)
    )
    with pytest.raises(NodeCrashedError):
        session.run(
            g, [out],
            feed_dict={ph: SizedArray(rng.random((8, 8)),
                                      nominal_shape=(2000, 2000))},
        )
