"""Tests for Spark's stage planner (lineage cutting)."""

import pytest

from repro.engines.base import udf
from repro.engines.spark import SparkContext
from repro.engines.spark.stage import _StagePlan


@pytest.fixture
def sc(small_cluster):
    return SparkContext(small_cluster)


def _plan(sc, rdd):
    return sc.scheduler._plan_stages(rdd)


def test_narrow_chain_is_one_stage(sc):
    rdd = (
        sc.parallelize(range(4), numSlices=2)
        .map(udf(lambda x: x))
        .filter(udf(lambda x: True))
        .map(udf(lambda x: x))
    )
    plans = _plan(sc, rdd)
    assert len(plans) == 1
    assert len(plans[0].narrow_ops) == 3


def test_wide_op_cuts_stage(sc):
    rdd = (
        sc.parallelize([(1, 2)], numSlices=2)
        .map(udf(lambda kv: kv))
        .groupByKey(2)
        .map(udf(lambda kv: kv))
    )
    plans = _plan(sc, rdd)
    assert len(plans) == 2
    assert plans[1].base.op == "groupByKey"
    assert len(plans[1].narrow_ops) == 1


def test_two_shuffles_three_stages(sc):
    rdd = (
        sc.parallelize([(1, 2)], numSlices=2)
        .groupByKey(2)
        .map(udf(lambda kv: (kv[0], sum(kv[1]))))
        .groupByKey(2)
    )
    plans = _plan(sc, rdd)
    assert len(plans) == 3


def test_cached_node_is_materialization_point(sc):
    base = sc.parallelize(range(4), numSlices=2).cache()
    rdd = base.map(udf(lambda x: x + 1))
    plans = _plan(sc, rdd)
    # Stage 1 ends at the cached node; stage 2 maps over the cache.
    assert len(plans) == 2
    assert plans[0].result_rdd is base
    assert plans[1].base is base


def test_cache_hit_short_circuits_lineage(sc):
    base = sc.parallelize(range(4), numSlices=2).cache()
    base.count()  # materializes and stores the cache
    plans = _plan(sc, base.map(udf(lambda x: x)))
    assert len(plans) == 1
    assert plans[0].base is base  # reads from cache, no parallelize


def test_recount_of_cached_rdd_single_cheap_stage(sc):
    base = sc.parallelize(range(4), numSlices=2).cache()
    base.count()
    plans = _plan(sc, base)
    assert len(plans) == 1
    assert plans[0].narrow_ops == []


def test_mid_chain_cache(sc):
    mapped = sc.parallelize(range(4), numSlices=2).map(udf(lambda x: x)).cache()
    final = mapped.filter(udf(lambda x: True))
    plans = _plan(sc, final)
    assert len(plans) == 2
    assert plans[0].result_rdd is mapped


def test_cached_results_correct_after_recompute(sc):
    base = sc.parallelize(list(range(10)), numSlices=4).cache()
    doubled = base.map(udf(lambda x: 2 * x))
    assert sorted(doubled.collect()) == [2 * x for x in range(10)]
    # Second derived action reads the cache and stays correct.
    tripled = base.map(udf(lambda x: 3 * x))
    assert sorted(tripled.collect()) == [3 * x for x in range(10)]
