"""Tests for miniSciDB."""

import numpy as np
import pytest

from repro.engines.base import udf
from repro.engines.scidb import DimSpec, SciDBConnection
from repro.engines.scidb.array import SciDBArray
from repro.engines.scidb.ingest import aio_input, from_array


@pytest.fixture
def sdb(worker_cluster):
    return SciDBConnection(worker_cluster, instances_per_node=4)


@pytest.fixture
def array_4d(sdb, rng):
    real = rng.random((8, 8, 10, 24))
    dims = [
        DimSpec("x", 145, 145),
        DimSpec("y", 145, 145),
        DimSpec("z", 174, 174),
        DimSpec("vol", 288, 16),
    ]
    return sdb.create_array("data", dims, real)


def test_dimspec_validation():
    with pytest.raises(ValueError):
        DimSpec("x", 0, 1)
    with pytest.raises(ValueError):
        DimSpec("x", 10, 11)
    assert DimSpec("x", 10, 3).n_chunks == 4


def test_chunk_grid(array_4d):
    assert array_4d.n_chunks == 18  # 288 / 16 along the volume axis
    grid = array_4d.chunk_grid()
    assert len(grid) == 18
    assert grid[0] == (0, 0, 0, 0)


def test_chunk_bounds_and_sizes(array_4d):
    bounds = array_4d.chunk_bounds((0, 0, 0, 2))
    assert bounds[3] == (32, 48)
    assert array_4d.chunk_nominal_elements((0, 0, 0, 2)) == 145 * 145 * 174 * 16


def test_real_slices_proportional(array_4d):
    slices = array_4d.real_slices((0, 0, 0, 0))
    # 16/288 of the 24 real volumes = 1.33 -> volumes [0, 1).
    assert slices[3] == slice(0, 1)
    payloads = [
        array_4d.chunk_payload(c) for c in array_4d.chunk_grid()
    ]
    # Chunk payloads tile the real array completely.
    assert sum(p.shape[3] for p in payloads) == 24


def test_instance_round_robin(array_4d):
    instances = [
        array_4d.instance_of(c, 16) for c in array_4d.chunk_grid()
    ]
    assert max(instances) < 16
    # 18 chunks over 16 instances: at most 2 per instance.
    from collections import Counter

    assert max(Counter(instances).values()) <= 2


def test_compress_real_result(sdb, array_4d):
    mask = np.zeros(288, dtype=bool)
    mask[::12] = True  # maps exactly onto the 24 real volumes
    out = sdb.compress(array_4d, mask, axis=3)
    assert out.real.shape[3] == 24 // 12 * 1 * 2 or out.real.shape[3] >= 1
    assert out.nominal_shape[3] == int(mask.sum())


def test_compress_misaligned_slower_than_aligned(worker_cluster, rng):
    """Section 5.2.2: chunks not aligned with the selection force
    extract+rebuild work on every chunk."""
    from repro.cluster import ClusterSpec, SimulatedCluster

    real = rng.random((4, 4, 4, 24))
    mask = np.zeros(288, dtype=bool)
    mask[::12] = True

    def run(vol_chunk):
        cluster = SimulatedCluster(
            ClusterSpec(n_nodes=4, workers_per_node=4, slots_per_worker=1)
        )
        sdb = SciDBConnection(cluster)
        dims = [
            DimSpec("x", 145, 145),
            DimSpec("y", 145, 145),
            DimSpec("z", 174, 174),
            DimSpec("vol", 288, vol_chunk),
        ]
        arr = sdb.create_array("d", dims, real)
        t0 = cluster.now
        sdb.compress(arr, mask, axis=3)
        return cluster.now - t0

    assert run(16) > run(1)


def test_mean_correctness(sdb, array_4d):
    out = sdb.mean(array_4d, axis=3)
    assert np.allclose(out.real, array_4d.real.mean(axis=3))
    assert out.nominal_shape == (145, 145, 174)


def test_apply_elementwise(sdb, array_4d):
    out = sdb.apply_elementwise(array_4d, lambda a: a + 1, 1e-9)
    assert np.allclose(out.real, array_4d.real + 1)


def test_stream_runs_external_code(sdb, array_4d):
    out = sdb.stream(array_4d, udf(lambda chunk, coords: chunk * 3))
    assert np.allclose(out.real, array_4d.real * 3)


def test_stream_charges_csv_overhead(sdb, array_4d):
    t0 = sdb.cluster.now
    sdb.apply_elementwise(array_4d, lambda a: a, 0.0, name="native")
    native = sdb.cluster.now - t0
    t0 = sdb.cluster.now
    sdb.stream(array_4d, udf(lambda chunk, coords: chunk), name="streamed")
    streamed = sdb.cluster.now - t0
    assert streamed > 2 * native


def test_from_array_slower_than_aio(rng):
    """Figure 11: SciDB-1 vs SciDB-2."""
    from repro.cluster import ClusterSpec, SimulatedCluster

    real = rng.random((4, 4, 4, 12))
    dims = [
        DimSpec("x", 145, 145),
        DimSpec("y", 145, 145),
        DimSpec("z", 174, 174),
        DimSpec("vol", 288, 16),
    ]
    nominal = 145 * 145 * 174 * 288 * 4

    c1 = SimulatedCluster(ClusterSpec(n_nodes=4, workers_per_node=4, slots_per_worker=1))
    from_array(SciDBConnection(c1), "a", dims, real, nominal)
    c2 = SimulatedCluster(ClusterSpec(n_nodes=4, workers_per_node=4, slots_per_worker=1))
    aio_input(SciDBConnection(c2), "a", dims, real, nominal, rank=0)
    # Even on this small 4-node cluster the serial coordinator path
    # clearly loses; the Figure 11 order-of-magnitude separation at 16
    # nodes is asserted in the ingest benchmark.
    assert c1.now > 1.5 * c2.now


def test_coadd_aql_matches_reference(sdb, rng):
    from repro.algorithms.coadd import coadd_stack

    stack = np.full((24, 30, 30), 10.0) + rng.normal(0, 0.1, (24, 30, 30))
    stack[3, 5, 5] = 1000.0
    dims = [
        DimSpec("visit", 24, 24),
        DimSpec("y", 3000, 1000),
        DimSpec("x", 3000, 1000),
    ]
    arr = sdb.create_array("visits", dims, stack)
    out = sdb.coadd_aql(arr)
    expected, _counts = coadd_stack(stack)
    assert np.allclose(np.nan_to_num(out.real), np.nan_to_num(expected))


def test_incremental_matches_stock_results(sdb, rng):
    stack = np.full((24, 20, 20), 5.0) + rng.normal(0, 0.1, (24, 20, 20))
    stack[7, 3, 3] = 500.0
    dims = [
        DimSpec("visit", 24, 24),
        DimSpec("y", 2000, 1000),
        DimSpec("x", 2000, 1000),
    ]
    a1 = sdb.create_array("v1", dims, stack)
    stock = sdb.coadd_aql(a1)
    a2 = sdb.create_array("v2", dims, stack)
    incremental = sdb.coadd_aql(a2, incremental=True)
    assert np.allclose(stock.real, incremental.real)


def test_spill_factor(sdb):
    from repro.engines.scidb.query import INSTANCE_BUFFER_BYTES

    assert sdb._spill_factor(INSTANCE_BUFFER_BYTES) == 1.0
    assert sdb._spill_factor(2 * INSTANCE_BUFFER_BYTES) == 2.0


def test_startup_charged_once(sdb, array_4d):
    sdb.mean(array_4d, axis=3, name="m1")
    t_after_first = sdb.cluster.now
    # Second operation does not pay query startup again.
    filtered = sdb.mean(array_4d, axis=2, name="m2")
    assert sdb.cluster.now - t_after_first < t_after_first


def test_window_avg_matches_truncated_box(sdb, rng):
    real = rng.random((5, 6, 4, 3))
    dims = [
        DimSpec("x", 50, 25),
        DimSpec("y", 60, 30),
        DimSpec("z", 40, 40),
        DimSpec("v", 30, 30),
    ]
    arr = sdb.create_array("w", dims, real)
    out = sdb.window(arr, (1, 1, 0, 0), agg="avg")
    # Interior cell: plain 3x3 neighborhood mean.
    expected = real[0:3, 0:3, 2, 1].mean()
    assert out.real[1, 1, 2, 1] == pytest.approx(expected)
    # Corner cell: truncated 2x2 window.
    corner = real[0:2, 0:2, 0, 0].mean()
    assert out.real[0, 0, 0, 0] == pytest.approx(corner)


def test_window_sum(sdb, rng):
    real = rng.random((4, 4))
    dims = [DimSpec("x", 4, 2), DimSpec("y", 4, 2)]
    arr = sdb.create_array("s", dims, real)
    out = sdb.window(arr, (1, 0), agg="sum")
    assert out.real[2, 3] == pytest.approx(real[1:4, 3].sum())


def test_window_charges_halo_and_compute(sdb, rng):
    real = rng.random((8, 8))
    dims = [DimSpec("x", 4000, 1000), DimSpec("y", 4000, 1000)]
    arr = sdb.create_array("h", dims, real)
    sdb.ensure_started()  # exclude the one-time query startup
    t0 = sdb.cluster.now
    sdb.window(arr, (0, 0))
    zero = sdb.cluster.now - t0
    t0 = sdb.cluster.now
    sdb.window(arr, (3, 3), name="wide")
    wide = sdb.cluster.now - t0
    assert wide > zero


def test_window_validation(sdb, rng):
    arr = sdb.create_array(
        "v", [DimSpec("x", 4, 2)], rng.random(4)
    )
    with pytest.raises(ValueError):
        sdb.window(arr, (1, 1))
    with pytest.raises(ValueError):
        sdb.window(arr, (-1,))
    with pytest.raises(ValueError):
        sdb.window(arr, (1,), agg="median")
