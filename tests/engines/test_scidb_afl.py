"""Tests for the AFL language front-end."""

import numpy as np
import pytest

from repro.engines.scidb import DimSpec, SciDBConnection
from repro.engines.scidb.afl import AFLError, execute, parse, tokenize
from repro.engines.scidb.afl import Call, Comparison, Name, Number


@pytest.fixture
def sdb(worker_cluster, rng):
    connection = SciDBConnection(worker_cluster)
    real = rng.random((6, 6, 8))
    dims = [
        DimSpec("x", 60, 30),
        DimSpec("y", 60, 30),
        DimSpec("vol", 80, 10),
    ]
    connection.create_array("data", dims, real)
    return connection


# -- parsing --------------------------------------------------------------


def test_tokenize_basic():
    tokens = tokenize("scan(data)")
    assert [t[0] for t in tokens] == ["name", "punct", "name", "punct"]


def test_parse_nested_calls():
    ast = parse("aggregate(filter(scan(data), vol < 18), avg(v), x, y)")
    assert isinstance(ast, Call)
    assert ast.fname == "aggregate"
    inner = ast.args[0]
    assert inner.fname == "filter"
    assert isinstance(inner.args[1], Comparison)
    assert inner.args[1].op == "<"


def test_parse_arithmetic():
    ast = parse("apply(scan(data), w, v * 2)")
    assert ast.args[2].op == "*"


def test_parse_rejects_garbage():
    with pytest.raises(AFLError):
        parse("scan(data) extra")
    with pytest.raises(AFLError):
        parse("scan(")
    with pytest.raises(AFLError):
        tokenize("scan(@data)")


def test_parse_negative_number():
    ast = parse("filter(scan(data), v > -3)")
    assert ast.args[1].right.value == -3


# -- execution ------------------------------------------------------------


def test_scan_returns_array(sdb):
    out = execute(sdb, "scan(data)")
    assert out is sdb.arrays["data"]


def test_unknown_array_rejected(sdb):
    with pytest.raises(AFLError):
        execute(sdb, "scan(nope)")


def test_filter_on_dimension(sdb):
    out = execute(sdb, "filter(scan(data), vol < 10)")
    # vol < 10 keeps exactly the first chunk of the 80-long axis.
    assert out.nominal_shape[2] == 10


def test_figure5_style_query(sdb):
    """The Figure 5 pattern: filter on the volume axis, then mean."""
    out = execute(
        sdb, "aggregate(filter(scan(data), vol < 40), avg(v), x, y)"
    )
    assert out.nominal_shape == (60, 60)
    base = sdb.arrays["data"]
    filtered = base.real[:, :, : base.real.shape[2] // 2]
    assert np.allclose(out.real, filtered.mean(axis=2))


def test_aggregate_sum(sdb):
    out = execute(sdb, "aggregate(scan(data), sum(v), x, y)")
    assert np.allclose(out.real, sdb.arrays["data"].real.sum(axis=2))


def test_aggregate_all_dims_rejected(sdb):
    with pytest.raises(AFLError):
        execute(sdb, "aggregate(scan(data), avg(v), x, y, vol)")


def test_apply_arithmetic(sdb):
    out = execute(sdb, "apply(scan(data), w, v * 2)")
    assert np.allclose(out.real, sdb.arrays["data"].real * 2)
    assert out.attr == "w"


def test_apply_with_constant_add(sdb):
    out = execute(sdb, "apply(scan(data), w, v + 10)")
    assert np.allclose(out.real, sdb.arrays["data"].real + 10)


def test_project(sdb):
    out = execute(sdb, "project(apply(scan(data), w, v * 3), w)")
    assert out.attr == "w"
    with pytest.raises(AFLError):
        execute(sdb, "project(scan(data), nope)")


def test_between_restricts_dims(sdb):
    out = execute(sdb, "between(scan(data), 0, 0, 0, 29, 59, 79)")
    assert out.nominal_shape[0] == 30
    assert out.nominal_shape[1] == 60


def test_between_wrong_arity(sdb):
    with pytest.raises(AFLError):
        execute(sdb, "between(scan(data), 0, 0, 29)")


def test_attribute_filter_marks_non_matching(sdb):
    out = execute(sdb, "filter(scan(data), v > 2)")
    # All values are < 1, so everything becomes empty (NaN).
    assert np.isnan(out.real).all()


def test_afl_charges_simulated_time(sdb):
    before = sdb.cluster.now
    execute(sdb, "aggregate(scan(data), avg(v), x, y)")
    assert sdb.cluster.now > before
