"""Tests for miniTensorFlow."""

import numpy as np
import pytest

from repro.cluster.errors import GraphTooLargeError
from repro.engines.tensorflow import Graph, Session, Tensor
from repro.engines.tensorflow.graph import GRAPH_SIZE_LIMIT
from repro.engines.tensorflow.ops import OpError
from repro.formats.sizing import SizedArray


@pytest.fixture
def session(small_cluster):
    return Session(small_cluster)


def _feed(array, nominal=None):
    return SizedArray(array, nominal_shape=nominal)


def test_reduce_mean(session, rng):
    g = Graph()
    ph = g.placeholder((100, 100))
    out = g.reduce_mean(ph, axis=None)
    data = rng.random((10, 10))
    (result,) = session.run(g, [out], feed_dict={ph: _feed(data, (100, 100))})
    assert float(result.array) == pytest.approx(data.mean())


def test_reduce_axis_drops_nominal_dim(session, rng):
    g = Graph()
    ph = g.placeholder((100, 100, 50))
    out = g.reduce_mean(ph, axis=2)
    data = rng.random((4, 4, 5))
    (result,) = session.run(g, [out], feed_dict={ph: _feed(data, (100, 100, 50))})
    assert result.nominal_shape == (100, 100)
    assert np.allclose(result.array, data.mean(axis=2))


def test_elementwise_ops(session, rng):
    g = Graph()
    a = g.placeholder((10,))
    b = g.placeholder((10,))
    outs = [g.add(a, b), g.sub(a, b), g.mul(a, b)]
    x, y = rng.random(10), rng.random(10)
    results = session.run(
        g, outs, feed_dict={a: _feed(x), b: _feed(y)}
    )
    assert np.allclose(results[0].array, x + y)
    assert np.allclose(results[1].array, x - y)
    assert np.allclose(results[2].array, x * y)


def test_gather_first_axis_only(session, rng):
    g = Graph()
    ph = g.placeholder((288, 10, 10))
    sel = g.gather(ph, indices=[0, 2], nominal_indices=list(range(18)))
    data = rng.random((4, 3, 3))
    (result,) = session.run(g, [sel], feed_dict={ph: _feed(data, (288, 10, 10))})
    assert np.allclose(result.array, data[[0, 2]])
    assert result.nominal_shape == (18, 10, 10)


def test_transpose(session, rng):
    g = Graph()
    ph = g.placeholder((10, 20, 30))
    out = g.transpose(ph, (2, 0, 1))
    data = rng.random((2, 3, 4))
    (result,) = session.run(g, [out], feed_dict={ph: _feed(data, (10, 20, 30))})
    assert result.array.shape == (4, 2, 3)
    assert result.nominal_shape == (30, 10, 20)


def test_reshape_is_expensive(session, rng):
    """Section 5.2.2: "reshaping is expensive compared with filtering"."""
    cm = session.cost_model
    nominal = (288, 145, 145, 174)
    data = rng.random((4, 4, 4, 4))

    g1 = Graph()
    ph1 = g1.placeholder(nominal)
    sel = g1.gather(ph1, [0], nominal_indices=list(range(18)))
    t0 = session.cluster.now
    session.run(g1, [sel], feed_dict={ph1: _feed(data, nominal)})
    gather_time = session.cluster.now - t0

    g2 = Graph()
    ph2 = g2.placeholder(nominal)
    flat = g2.reshape(ph2, new_nominal=(np.prod(nominal),), new_real=(256,))
    t0 = session.cluster.now
    session.run(g2, [flat], feed_dict={ph2: _feed(data, nominal)})
    reshape_time = session.cluster.now - t0
    assert reshape_time > gather_time


def test_conv3d(session, rng):
    from repro.algorithms.stencil import convolve3d

    g = Graph()
    ph = g.placeholder((20, 20, 20))
    kernel = rng.random((3, 3, 3))
    out = g.conv3d(ph, kernel)
    data = rng.random((6, 6, 6))
    (result,) = session.run(g, [out], feed_dict={ph: _feed(data, (20, 20, 20))})
    assert np.allclose(result.array, convolve3d(data, kernel))


def test_device_placement(session, rng):
    g = Graph()
    with g.device("node-2"):
        ph = g.placeholder((10,))
        out = g.reduce_mean(ph, axis=None)
    assert out.device == "node-2"
    session.run(g, [out], feed_dict={ph: _feed(rng.random(5))})


def test_master_mediation_charges_conversions(session, rng):
    """Ingest and fetch both convert tensors on the master."""
    session.ensure_started()
    cm = session.cost_model
    nominal = (10 ** 9,)  # 8 GB nominal float64
    g = Graph()
    ph = g.placeholder(nominal)
    out = g.identity(ph)
    t0 = session.cluster.now
    session.run(g, [out], feed_dict={ph: _feed(np.zeros(4), nominal)})
    elapsed = session.cluster.now - t0
    assert elapsed >= 2 * cm.tensor_convert_time(8 * 10 ** 9) * 0.9


def test_graph_size_limit(session):
    g = Graph()
    const = g.constant(np.zeros(4))
    const.attrs["value"] = Tensor(np.zeros(4), nominal_shape=(400_000_000,))
    node = g.identity(const)
    assert g.serialized_bytes() > GRAPH_SIZE_LIMIT
    with pytest.raises(GraphTooLargeError):
        session.run(g, [node])


def test_placeholder_must_be_fed(session):
    g = Graph()
    ph = g.placeholder((10,))
    out = g.identity(ph)
    with pytest.raises(OpError):
        session.run(g, [out])


def test_py_func_escape_hatch(session, rng):
    g = Graph()
    ph = g.placeholder((10,))
    out = g.py_func(lambda a: a * 2, [ph], cost_fn=lambda t: 1.0)
    data = rng.random(10)
    (result,) = session.run(g, [out], feed_dict={ph: _feed(data)})
    assert np.allclose(result.array, data * 2)


def test_unknown_op_rejected():
    g = Graph()
    with pytest.raises(OpError):
        g._add("matmul_nope", ())


def test_tensor_wrap():
    t = Tensor.wrap(np.zeros((2, 2)))
    assert t.nominal_shape == (2, 2)
    s = Tensor.wrap(SizedArray(np.zeros((2, 2)), nominal_shape=(10, 10)))
    assert s.nominal_shape == (10, 10)
    assert Tensor.wrap(t) is t
