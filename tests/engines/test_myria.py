"""Tests for miniMyria execution."""

import numpy as np
import pytest

from repro.cluster.errors import OutOfMemoryError
from repro.engines.base import udf
from repro.engines.myria import MyriaConnection, MyriaQuery, Relation
from repro.formats.sizing import SizedArray


@pytest.fixture
def conn(worker_cluster):
    return MyriaConnection(worker_cluster, workers_per_node=4)


@pytest.fixture
def images_conn(conn):
    rows = []
    for s in range(3):
        for i in range(6):
            rows.append(
                (
                    f"subj{s}",
                    i,
                    int(i < 2),
                    SizedArray(
                        np.full((4, 4), float(s * 10 + i)),
                        nominal_shape=(100, 100),
                        meta={"subject_id": f"subj{s}", "image_id": i},
                    ),
                )
            )
    conn.ingest_relation(
        Relation.from_rows("Images", ("subjId", "imgId", "b0flag", "img"), rows),
        "subjId",
    )
    return conn


def test_scan_and_project(images_conn):
    q = MyriaQuery.submit(
        images_conn, "T = SCAN(Images); P = [FROM T EMIT T.subjId, T.imgId];"
    )
    rows = q.relation("P").rows
    assert len(rows) == 18
    assert ("subj0", 0) in rows


def test_selection_pushdown(images_conn):
    q = MyriaQuery.submit(
        images_conn,
        "T = SCAN(Images); B = [SELECT T.subjId, T.imgId FROM T WHERE T.b0flag = 1];",
    )
    rows = q.relation("B").rows
    assert len(rows) == 6  # 2 per subject


def test_comparison_predicates(images_conn):
    q = MyriaQuery.submit(
        images_conn,
        "T = SCAN(Images); B = [SELECT T.imgId FROM T WHERE T.imgId >= 4];",
    )
    assert len(q.relation("B").rows) == 6


def test_pyudf_application(images_conn):
    images_conn.create_function(
        "Double", udf(lambda img: img.with_array(img.array * 2))
    )
    q = MyriaQuery.submit(
        images_conn,
        "T = SCAN(Images); D = [FROM T EMIT PYUDF(Double, T.img) AS img, T.subjId];",
    )
    rows = q.relation("D").rows
    assert len(rows) == 18
    # subj0/img0 had value 0; doubling keeps 0; subj1/img1 had 11 -> 22.
    values = {(r[1], float(r[0].array[0, 0])) for r in rows}
    assert ("subj1", 22.0) in values


def test_broadcast_join(images_conn):
    masks = [
        (f"subj{s}", SizedArray(np.ones((4, 4)) * s, nominal_shape=(100, 100)))
        for s in range(3)
    ]
    images_conn.ingest_relation(
        Relation.from_rows("Mask", ("subjId", "mask"), masks), "subjId"
    )
    q = MyriaQuery.submit(
        images_conn,
        """
        T1 = SCAN(Images);
        T2 = SCAN(Mask);
        J = [SELECT T1.subjId, T1.imgId, T2.mask FROM T1, BROADCAST(T2)
             WHERE T1.subjId = T2.subjId];
        """,
    )
    rows = q.relation("J").rows
    assert len(rows) == 18
    for subj, _img, mask in rows:
        assert float(mask.array[0, 0]) == float(subj[-1])


def test_repartition_join(images_conn):
    flags = [(f"subj{s}", s * 100) for s in range(3)]
    images_conn.ingest_relation(
        Relation.from_rows("Flags", ("subjId", "flag"), flags), "subjId"
    )
    q = MyriaQuery.submit(
        images_conn,
        """
        T1 = SCAN(Images);
        T2 = SCAN(Flags);
        J = [SELECT T1.subjId, T1.imgId, T2.flag FROM T1, T2
             WHERE T1.subjId = T2.subjId];
        """,
    )
    rows = q.relation("J").rows
    assert len(rows) == 18
    assert all(r[2] == int(r[0][-1]) * 100 for r in rows)


def test_uda_implicit_groupby(images_conn):
    images_conn.create_function(
        "CountAgg", udf(lambda imgs: len(imgs))
    )
    q = MyriaQuery.submit(
        images_conn,
        "T = SCAN(Images); C = [FROM T EMIT T.subjId, UDA(CountAgg, T.img) AS n];",
    )
    rows = dict(q.relation("C").rows)
    assert rows == {"subj0": 6, "subj1": 6, "subj2": 6}


def test_unnest_flatmap(images_conn):
    images_conn.create_function(
        "Explode", udf(lambda img: [(0, "a"), (1, "b")])
    )
    q = MyriaQuery.submit(
        images_conn,
        "T = SCAN(Images); X = [FROM T EMIT UNNEST(PYUDF(Explode, T.img)) AS (idx, tag), T.subjId];",
    )
    rows = q.relation("X").rows
    assert len(rows) == 36
    assert (0, "a", "subj0") in rows


def test_store_and_rescan(images_conn):
    MyriaQuery.submit(
        images_conn,
        "T = SCAN(Images); P = [FROM T EMIT T.subjId, T.imgId]; STORE(P, Pairs);",
    )
    q2 = MyriaQuery.submit(
        images_conn, "P = SCAN(Pairs); Q = [SELECT P.subjId FROM P WHERE P.imgId = 0];"
    )
    assert len(q2.relation("Q").rows) == 3


def test_pipelined_faster_than_materialized(images_conn):
    text = "T = SCAN(Images); P = [FROM T EMIT T.subjId, T.img];"
    t0 = images_conn.cluster.now
    MyriaQuery.submit(images_conn, text, mode="pipelined")
    pipelined = images_conn.cluster.now - t0
    t0 = images_conn.cluster.now
    MyriaQuery.submit(images_conn, text, mode="materialized")
    materialized = images_conn.cluster.now - t0
    assert pipelined < materialized


def test_pipelined_releases_memory(images_conn):
    MyriaQuery.submit(
        images_conn, "T = SCAN(Images); P = [FROM T EMIT T.subjId, T.img];"
    )
    for node in images_conn.cluster.nodes.values():
        assert node.memory.used_bytes == 0


def test_pipelined_oom_on_huge_intermediates(conn):
    rows = [
        (i, SizedArray(np.zeros(4), nominal_shape=(3 * 10 ** 9,)))  # 24 GB each
        for i in range(16)
    ]
    conn.ingest_relation(Relation.from_rows("Big", ("id", "blob"), rows), "id")
    conn.create_function("Copy", udf(lambda b: b))
    text = """
    T = SCAN(Big);
    A = [FROM T EMIT PYUDF(Copy, T.blob) AS b1, T.id];
    B = [FROM A EMIT PYUDF(Copy, A.b1) AS b2, A.id];
    C = [FROM B EMIT PYUDF(Copy, B.b2) AS b3, B.id];
    """
    with pytest.raises(OutOfMemoryError):
        MyriaQuery.submit(conn, text, mode="pipelined")
    # Materialized execution survives the same plan.
    MyriaQuery.submit(conn, text, mode="materialized")


def test_workers_partition_relation(images_conn):
    server = images_conn.server
    total = sum(
        storage.row_count("Images") for storage in server.storages
    )
    assert total == 18
    # Hash partitioning on subjId groups each subject on one worker.
    for storage in server.storages:
        if storage.row_count("Images"):
            subjects = {r[0] for r in storage._tables["Images"][1]}
            assert len(subjects) <= 3


def test_s3_relation_scan(conn):
    store = conn.cluster.object_store
    for i in range(12):
        store.put("bkt", f"o{i:02d}", (i, i * 10), 1000)
    conn.register_s3_relation("S3T", "bkt", ("id", "val"), lambda o: o)
    q = MyriaQuery.submit(
        conn, "T = SCAN(S3T); P = [SELECT T.val FROM T WHERE T.id < 3];"
    )
    assert sorted(r[0] for r in q.relation("P").rows) == [0, 10, 20]


def test_unknown_relation_rejected(conn):
    with pytest.raises(KeyError):
        MyriaQuery.submit(conn, "T = SCAN(Nope); P = [FROM T EMIT T.x];")


def test_three_way_join_rejected(images_conn):
    with pytest.raises(ValueError):
        MyriaQuery.submit(
            images_conn,
            "A = SCAN(Images); B = SCAN(Images); C = SCAN(Images);"
            "J = [SELECT A.subjId FROM A, B, C WHERE A.subjId = B.subjId];",
        )


def test_contention_factor_shape(worker_cluster):
    """Figure 13: 4 workers/node is the sweet spot on 8-core nodes."""
    from repro.cluster import ClusterSpec, SimulatedCluster

    def throughput(w):
        cluster = SimulatedCluster(
            ClusterSpec(n_nodes=4, workers_per_node=w, slots_per_worker=1)
        )
        conn = MyriaConnection(cluster, workers_per_node=w)
        return w / conn.server.contention_factor()

    assert throughput(4) > throughput(2) > throughput(1)
    assert throughput(4) > throughput(8)


def test_builtin_aggregates(images_conn):
    q = MyriaQuery.submit(
        images_conn,
        """
        T = SCAN(Images);
        Stats = [FROM T EMIT T.subjId, COUNT(T.imgId) AS n,
                 SUM(T.imgId) AS total, MIN(T.imgId) AS lo,
                 MAX(T.imgId) AS hi, AVG(T.imgId) AS mean];
        """,
    )
    rows = {r[0]: r[1:] for r in q.relation("Stats").rows}
    assert rows["subj0"] == (6, 15, 0, 5, 2.5)
    assert set(rows) == {"subj0", "subj1", "subj2"}


def test_builtin_aggregate_needs_no_registration(worker_cluster):
    conn = MyriaConnection(worker_cluster)
    conn.ingest_relation(
        Relation.from_rows("T", ("g", "v"), [(1, 10), (1, 20), (2, 5)]), "g"
    )
    q = MyriaQuery.submit(
        conn, "T = SCAN(T); S = [FROM T EMIT T.g, SUM(T.v) AS s];"
    )
    assert dict(q.relation("S").rows) == {1: 30, 2: 5}
