"""Unit tests for Myria's row-level operator helpers."""

import pytest

from repro.engines.base import udf
from repro.engines.myria.myrial import Column, Condition, Literal, UdfCall
from repro.engines.myria.operators import (
    RowContext,
    build_column_map,
    check_condition,
    evaluate,
    expression_cost,
    group_rows,
    hash_join,
    rows_bytes,
    shard_by_key,
    split_conditions,
)


@pytest.fixture
def refs():
    return build_column_map("T", ("id", "name", "score"))


def test_row_context_qualified(refs):
    ctx = RowContext(refs, (7, "x", 3.5))
    assert ctx.value(Column("T", "id")) == 7
    assert ctx.value(Column("T", "score")) == 3.5


def test_row_context_unqualified(refs):
    ctx = RowContext(refs, (7, "x", 3.5))
    assert ctx.value(Column("", "name")) == "x"


def test_row_context_unknown_column(refs):
    ctx = RowContext(refs, (7, "x", 3.5))
    with pytest.raises(KeyError):
        ctx.value(Column("T", "nope"))


def test_row_context_resolves_unique_name_across_aliases():
    refs = build_column_map("A", ("id", "x"))
    refs.update({("B", "y"): 2})
    ctx = RowContext(refs, (1, 2, 3))
    assert ctx.value(Column("", "y")) == 3


def test_evaluate_literal_and_udf(refs):
    ctx = RowContext(refs, (7, "x", 3.5))
    assert evaluate(Literal(42), ctx, {}) == 42
    call = UdfCall("PYUDF", "Add", [Column("T", "id"), Literal(3)])
    udfs = {"Add": udf(lambda a, b: a + b)}
    assert evaluate(call, ctx, udfs) == 10


def test_expression_cost_only_charges_udfs(refs):
    ctx = RowContext(refs, (7, "x", 3.5))
    assert expression_cost(Column("T", "id"), ctx, {}) == 0.0
    call = UdfCall("PYUDF", "Heavy", [Column("T", "id")])
    udfs = {"Heavy": udf(lambda a: a, cost=lambda a: 2.5)}
    assert expression_cost(call, ctx, udfs) == 2.5


def test_nested_udf_cost_sums(refs):
    ctx = RowContext(refs, (7, "x", 3.5))
    inner = UdfCall("PYUDF", "F", [Column("T", "id")])
    outer = UdfCall("PYUDF", "G", [inner])
    udfs = {
        "F": udf(lambda a: a, cost=lambda a: 1.0),
        "G": udf(lambda a: a, cost=lambda a: 2.0),
    }
    assert expression_cost(outer, ctx, udfs) == 3.0


def test_check_condition_comparators(refs):
    ctx = RowContext(refs, (7, "x", 3.5))
    assert check_condition(
        Condition(Column("T", "id"), ">", Literal(5)), ctx, {}
    )
    assert not check_condition(
        Condition(Column("T", "id"), "<=", Literal(5)), ctx, {}
    )
    assert check_condition(
        Condition(Column("T", "name"), "=", Literal("x")), ctx, {}
    )


def test_split_conditions():
    join = Condition(Column("A", "k"), "=", Column("B", "k"))
    select = Condition(Column("A", "v"), ">", Literal(3))
    same_alias = Condition(Column("A", "v"), "=", Column("A", "w"))
    joins, selections = split_conditions([join, select, same_alias])
    assert joins == [join]
    assert selections == [select, same_alias]


def test_non_equi_join_rejected():
    bad = Condition(Column("A", "k"), "<", Column("B", "k"))
    with pytest.raises(ValueError):
        split_conditions([bad])


def test_hash_join_matches_nested_loops():
    left_refs = build_column_map("A", ("k", "x"))
    right_refs = build_column_map("B", ("k", "y"))
    left = [(1, "a"), (2, "b"), (2, "c")]
    right = [(2, 20), (3, 30), (2, 21)]
    conditions = [Condition(Column("A", "k"), "=", Column("B", "k"))]
    out = hash_join(left, left_refs, right, right_refs, conditions, {})
    expected = {
        (2, "b", 2, 20), (2, "b", 2, 21),
        (2, "c", 2, 20), (2, "c", 2, 21),
    }
    assert set(out) == expected


def test_group_rows_preserves_order():
    rows = [(1, "a"), (2, "b"), (1, "c")]
    groups = group_rows(rows, [0])
    assert groups[(1,)] == [(1, "a"), (1, "c")]
    assert list(groups) == [(1,), (2,)]


def test_shard_by_key_conserves_rows():
    rows = [(i % 5, i) for i in range(40)]
    shards = shard_by_key(rows, [0], 8)
    assert sum(len(s) for s in shards) == 40
    # Same key always lands on the same shard.
    for key in range(5):
        owners = {
            w for w, shard in enumerate(shards) for r in shard if r[0] == key
        }
        assert len(owners) == 1


def test_rows_bytes_sums_nominal():
    import numpy as np

    from repro.formats.sizing import SizedArray

    blob = SizedArray(np.zeros(1, dtype=np.float64), nominal_shape=(100,))
    assert rows_bytes([(1, blob)]) == 64 + 800
