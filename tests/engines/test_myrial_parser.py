"""Tests for the MyriaL parser."""

import pytest

from repro.engines.myria.myrial import (
    Assign,
    Column,
    Condition,
    Emit,
    Literal,
    MyriaLSyntaxError,
    Query,
    Scan,
    Store,
    UdfCall,
    Unnest,
    parse,
    tokenize,
)


def test_tokenize_keywords_case_insensitive():
    tokens = tokenize("select FROM Scan where")
    assert [t.kind for t in tokens] == ["keyword"] * 4
    assert [t.value for t in tokens] == ["SELECT", "FROM", "SCAN", "WHERE"]


def test_tokenize_comments_skipped():
    tokens = tokenize("T1 = SCAN(Images); -- a comment\nX = SCAN(Y);")
    assert all(t.kind != "comment" for t in tokens)


def test_tokenize_rejects_garbage():
    with pytest.raises(MyriaLSyntaxError):
        tokenize("T1 = $bad")


def test_parse_scan_assignment():
    program = parse("T1 = SCAN(Images);")
    (stmt,) = program.statements
    assert isinstance(stmt, Assign)
    assert stmt.name == "T1"
    assert isinstance(stmt.source, Scan)
    assert stmt.source.table == "Images"


def test_parse_store():
    program = parse("STORE(Fitted, Results);")
    (stmt,) = program.statements
    assert isinstance(stmt, Store)
    assert stmt.source == "Fitted"
    assert stmt.table == "Results"


def test_parse_select_form():
    program = parse(
        """
        T1 = SCAN(Images);
        T2 = SCAN(Mask);
        J = [SELECT T1.subjId, T1.img, T2.mask
             FROM T1, BROADCAST(T2)
             WHERE T1.subjId = T2.subjId];
        """
    )
    query = program.statements[2].source
    assert isinstance(query, Query)
    assert [f.name for f in query.froms] == ["T1", "T2"]
    assert [f.broadcast for f in query.froms] == [False, True]
    assert len(query.emits) == 3
    (cond,) = query.conditions
    assert cond.is_join()


def test_parse_emit_form_with_udf():
    program = parse(
        "D = [FROM J EMIT PYUDF(Denoise, J.img, J.mask) AS img, J.subjId];"
    )
    query = program.statements[0].source
    first = query.emits[0]
    assert isinstance(first.expr, UdfCall)
    assert first.expr.kind == "PYUDF"
    assert first.expr.fname == "Denoise"
    assert first.alias == "img"
    assert len(first.expr.args) == 2


def test_parse_uda():
    program = parse("S = [FROM D EMIT D.subjId, UDA(Fit, D.block) AS fa];")
    query = program.statements[0].source
    uda = query.emits[1].expr
    assert uda.kind == "UDA"


def test_parse_unnest():
    program = parse(
        "B = [FROM D EMIT UNNEST(PYUDF(Repart, D.img)) AS (blockId, block)];"
    )
    (emit,) = program.statements[0].source.emits
    assert isinstance(emit, Unnest)
    assert emit.aliases == ["blockId", "block"]


def test_unnest_requires_pyudf():
    with pytest.raises(MyriaLSyntaxError):
        parse("B = [FROM D EMIT UNNEST(D.img) AS (a)];")


def test_parse_literal_conditions():
    program = parse("B = [SELECT T.a FROM T WHERE T.flag = 1 AND T.x >= 2.5];")
    conditions = program.statements[0].source.conditions
    assert len(conditions) == 2
    assert isinstance(conditions[0].right, Literal)
    assert conditions[0].right.value == 1
    assert conditions[1].op == ">="
    assert conditions[1].right.value == 2.5


def test_parse_string_literal():
    program = parse("B = [SELECT T.a FROM T WHERE T.name = 'subj001'];")
    cond = program.statements[0].source.conditions[0]
    assert cond.right.value == "subj001"


def test_unqualified_column():
    program = parse("B = [FROM T EMIT x];")
    (emit,) = program.statements[0].source.emits
    assert isinstance(emit.expr, Column)
    assert emit.expr.alias == ""
    assert emit.expr.name == "x"


def test_figure7_snippet_parses():
    """The paper's Figure 7 (modulo the registration lines)."""
    program = parse(
        """
        T1 = SCAN(Images);
        T2 = SCAN(Mask);
        Joined = [SELECT T1.subjId, T1.imgId, T1.img, T2.mask
                  FROM T1, T2
                  WHERE T1.subjId = T2.subjId];
        Denoised = [FROM Joined EMIT
                    PYUDF(Denoise, Joined.img, Joined.mask) AS img,
                    Joined.subjId, Joined.imgId];
        """
    )
    assert len(program.statements) == 4


def test_empty_program_rejected():
    with pytest.raises(MyriaLSyntaxError):
        parse("   ")


def test_unterminated_query_rejected():
    with pytest.raises(MyriaLSyntaxError):
        parse("B = [FROM T EMIT x")


def test_missing_equals_rejected():
    with pytest.raises(MyriaLSyntaxError):
        parse("B SCAN(T);")


def test_nested_udf_args():
    program = parse("B = [FROM T EMIT PYUDF(F, PYUDF(G, T.x)) AS y];")
    outer = program.statements[0].source.emits[0].expr
    assert isinstance(outer.args[0], UdfCall)
    assert outer.args[0].fname == "G"
