"""Tests for Myria's worker storage and sharding."""

import pytest

from repro.cluster.disk import LocalDisk
from repro.engines.myria.relation import Relation, Schema, infer_type
from repro.engines.myria.storage import ShardedRelation, WorkerStorage


@pytest.fixture
def storage():
    disk = LocalDisk("node-0", 10 ** 9)
    s = WorkerStorage(0, "node-0", disk)
    s.create_table("T", Schema(("id", "val")))
    s.insert_rows("T", [(1, "a"), (2, "b"), (3, "c")])
    return s


def test_scan_all(storage):
    rows, scanned, matched = storage.scan("T")
    assert len(rows) == 3
    assert scanned == matched


def test_scan_with_predicate_reads_less(storage):
    rows, scanned, _m = storage.scan("T", predicate=lambda r: r[0] > 1)
    assert len(rows) == 2
    full_rows, full_scanned, _ = storage.scan("T")
    assert scanned < full_scanned


def test_insert_appends(storage):
    storage.insert_rows("T", [(4, "d")])
    assert storage.row_count("T") == 4


def test_drop_table(storage):
    storage.drop_table("T")
    assert not storage.has_table("T")


def test_shard_bytes_positive(storage):
    assert storage.shard_bytes("T") > 0


def test_sharded_relation_routes_by_key():
    sharded = ShardedRelation("T", Schema(("subj", "img")), "subj", 8)
    rows = [(f"s{i % 3}", i) for i in range(30)]
    shards = sharded.shard_rows(rows)
    assert sum(len(s) for s in shards) == 30
    # All rows of one subject land on the same worker.
    for subject in ("s0", "s1", "s2"):
        owners = {
            w for w, shard in enumerate(shards)
            for row in shard if row[0] == subject
        }
        assert len(owners) == 1


def test_schema_validation():
    with pytest.raises(ValueError):
        Schema(("a", "a"))
    with pytest.raises(KeyError):
        Schema(("a", "b")).index_of("c")


def test_relation_arity_checked():
    with pytest.raises(ValueError):
        Relation("T", Schema(("a", "b")), rows=[(1,)])


def test_infer_type():
    import numpy as np

    assert infer_type(3) == "LONG"
    assert infer_type(2.5) == "DOUBLE"
    assert infer_type("x") == "STRING"
    assert infer_type(np.zeros(3)) == "BLOB"


def test_relation_column_access():
    rel = Relation.from_rows("T", ("a", "b"), [(1, "x"), (2, "y")])
    assert rel.column("b") == ["x", "y"]
    assert len(rel) == 2


def test_blob_columns_detected():
    import numpy as np

    rel = Relation.from_rows(
        "T", ("id", "img"), [(1, np.zeros((2, 2)))]
    )
    assert rel.blob_columns() == [1]
