"""Tests for source detection and connected-component labeling."""

import numpy as np
import pytest

from repro.algorithms.sources import Source, detect_sources, label_regions


def test_label_single_region():
    mask = np.zeros((5, 5), dtype=bool)
    mask[1:3, 1:3] = True
    labels, n = label_regions(mask)
    assert n == 1
    assert (labels > 0).sum() == 4


def test_label_two_regions():
    mask = np.zeros((8, 8), dtype=bool)
    mask[0:2, 0:2] = True
    mask[5:7, 5:7] = True
    labels, n = label_regions(mask)
    assert n == 2
    assert labels[0, 0] != labels[5, 5]


def test_diagonal_connectivity_8():
    mask = np.zeros((4, 4), dtype=bool)
    mask[0, 0] = mask[1, 1] = True
    labels8, n8 = label_regions(mask, connectivity=8)
    labels4, n4 = label_regions(mask, connectivity=4)
    assert n8 == 1
    assert n4 == 2


def test_u_shape_merges_via_unionfind():
    """A U shape forces label merging in the second pass."""
    mask = np.zeros((5, 5), dtype=bool)
    mask[0:4, 0] = True
    mask[0:4, 4] = True
    mask[4, 0:5] = True
    labels, n = label_regions(mask, connectivity=4)
    assert n == 1


def test_labels_dense_from_one():
    mask = np.zeros((6, 6), dtype=bool)
    mask[0, 0] = mask[2, 2] = mask[4, 4] = True
    labels, n = label_regions(mask, connectivity=4)
    assert n == 3
    assert sorted(np.unique(labels)) == [0, 1, 2, 3]


def test_empty_mask():
    labels, n = label_regions(np.zeros((4, 4), dtype=bool))
    assert n == 0
    assert np.all(labels == 0)


def test_label_validation():
    with pytest.raises(ValueError):
        label_regions(np.zeros(4, dtype=bool))
    with pytest.raises(ValueError):
        label_regions(np.zeros((4, 4), dtype=bool), connectivity=6)


def test_detect_two_sources(rng):
    img = rng.normal(0, 1, (64, 64))
    img[10:13, 10:13] += 60.0
    img[40:44, 50:54] += 100.0
    sources = detect_sources(img, n_sigma=5, npix_min=3)
    assert len(sources) == 2
    # Brightest first.
    assert sources[0].flux > sources[1].flux
    assert sources[0].centroid_y == pytest.approx(41.5, abs=1.0)
    assert sources[1].centroid_x == pytest.approx(11.0, abs=1.0)


def test_detect_min_pixels_filters_specks(rng):
    img = rng.normal(0, 1, (48, 48))
    img[5, 5] += 100.0  # single pixel
    img[20:24, 20:24] += 50.0
    sources = detect_sources(img, n_sigma=5, npix_min=3)
    assert len(sources) == 1
    assert sources[0].n_pixels >= 3


def test_detect_on_sloped_background(rng):
    """Sources are detected relative to robust background statistics."""
    img = rng.normal(10, 0.5, (64, 64))
    img[30:33, 30:33] += 30.0
    sources = detect_sources(img, n_sigma=5, npix_min=3)
    assert len(sources) == 1
    # Flux is background-subtracted.
    assert sources[0].flux < 9 * 45


def test_detect_nothing_in_noise(rng):
    img = rng.normal(0, 1, (64, 64))
    assert detect_sources(img, n_sigma=6, npix_min=3) == []


def test_detect_validation():
    with pytest.raises(ValueError):
        detect_sources(np.zeros(5))


def test_detect_all_nan():
    assert detect_sources(np.full((8, 8), np.nan)) == []


def test_source_is_frozen():
    s = Source(1, 0.0, 0.0, 1.0, 1.0, 3)
    with pytest.raises(Exception):
        s.flux = 2.0
