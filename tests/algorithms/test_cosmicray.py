"""Tests for cosmic-ray detection and repair."""

import numpy as np
import pytest

from repro.algorithms.cosmicray import detect_cosmic_rays, repair_cosmic_rays


def test_detects_single_pixel_hits(rng):
    img = rng.normal(0, 1, (48, 48))
    img[10, 10] = 400.0
    img[30, 25] = 250.0
    mask = detect_cosmic_rays(img)
    assert mask[10, 10]
    assert mask[30, 25]
    assert mask.sum() <= 6  # few false positives


def test_variance_plane_controls_threshold(rng):
    img = rng.normal(0, 1, (32, 32))
    img[5, 5] = 40.0
    quiet = detect_cosmic_rays(img, variance=np.full(img.shape, 1.0))
    loud = detect_cosmic_rays(img, variance=np.full(img.shape, 400.0))
    assert quiet[5, 5]
    assert not loud[5, 5]


def test_extended_sources_not_flagged(rng):
    """A PSF-wide star is not a cosmic ray."""
    yy, xx = np.mgrid[0:48, 0:48]
    star = 80.0 * np.exp(-(((yy - 24) ** 2 + (xx - 24) ** 2) / (2 * 4.0 ** 2)))
    img = star + rng.normal(0, 0.5, star.shape)
    mask = detect_cosmic_rays(img, radius=3)
    # The star's broad core survives.
    assert not mask[24, 24]


def test_repair_restores_neighborhood(rng):
    img = rng.normal(10, 0.5, (32, 32))
    img[8, 8] = 900.0
    mask = detect_cosmic_rays(img)
    repaired = repair_cosmic_rays(img, mask)
    assert abs(repaired[8, 8] - 10.0) < 2.0
    # Unflagged pixels untouched.
    assert np.array_equal(repaired[~mask], img[~mask])


def test_repair_noop_without_hits(rng):
    img = rng.normal(0, 1, (16, 16))
    mask = np.zeros_like(img, dtype=bool)
    repaired = repair_cosmic_rays(img, mask)
    assert np.array_equal(repaired, img)
    assert repaired is not img


def test_shape_validation():
    with pytest.raises(ValueError):
        detect_cosmic_rays(np.zeros(10))
    with pytest.raises(ValueError):
        detect_cosmic_rays(np.zeros((4, 4)), variance=np.zeros((5, 5)))
    with pytest.raises(ValueError):
        repair_cosmic_rays(np.zeros((4, 4)), np.zeros((5, 5), dtype=bool))
