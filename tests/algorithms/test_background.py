"""Tests for background estimation/subtraction."""

import numpy as np
import pytest

from repro.algorithms.background import (
    _sigma_clipped_median,
    estimate_background,
    subtract_background,
)


def test_flat_background_recovered():
    img = np.full((64, 64), 12.5)
    bg = estimate_background(img, box_size=16)
    assert np.allclose(bg, 12.5, atol=1e-9)


def test_gradient_background_tracked(rng):
    yy, xx = np.mgrid[0:96, 0:96]
    truth = 10 + 0.05 * yy + 0.02 * xx
    img = truth + rng.normal(0, 0.1, truth.shape)
    bg = estimate_background(img, box_size=16)
    assert np.abs(bg - truth).mean() < 0.5


def test_stars_do_not_bias_background(rng):
    img = np.full((64, 64), 5.0) + rng.normal(0, 0.2, (64, 64))
    img[20, 20] += 500.0  # a bright star
    img[40:42, 40:42] += 300.0
    bg = estimate_background(img, box_size=16)
    assert np.abs(bg - 5.0).max() < 1.5


def test_subtract_background_residual(rng):
    yy, xx = np.mgrid[0:64, 0:64]
    img = 5 + 0.03 * yy + rng.normal(0, 0.1, (64, 64))
    residual, bg = subtract_background(img, box_size=16)
    assert np.abs(residual.mean()) < 0.2
    assert residual.shape == img.shape


def test_box_size_larger_than_image():
    img = np.full((16, 16), 2.0)
    bg = estimate_background(img, box_size=100)
    assert np.allclose(bg, 2.0)


def test_invalid_inputs():
    with pytest.raises(ValueError):
        estimate_background(np.zeros(5), box_size=4)
    with pytest.raises(ValueError):
        estimate_background(np.zeros((5, 5)), box_size=0)


def test_sigma_clipped_median_resists_outliers(rng):
    values = rng.normal(10, 1, 500)
    values[:10] = 10_000.0
    assert _sigma_clipped_median(values) == pytest.approx(10.0, abs=0.5)


def test_sigma_clipped_median_empty():
    assert _sigma_clipped_median(np.array([])) == 0.0


def test_sigma_clipped_median_ignores_nan(rng):
    values = np.concatenate([rng.normal(5, 1, 100), [np.nan] * 10])
    assert _sigma_clipped_median(values) == pytest.approx(5.0, abs=0.5)
