"""Tests for non-local means denoising."""

import numpy as np
import pytest

from repro.algorithms.nlmeans import _box_sum_3d, nlmeans_3d


def test_box_sum_matches_naive(rng):
    v = rng.random((6, 7, 8))
    width = 3
    out = _box_sum_3d(v, width)
    assert out.shape == (4, 5, 6)
    naive = v[:3, :3, :3].sum()
    assert out[0, 0, 0] == pytest.approx(naive)
    naive2 = v[2:5, 3:6, 4:7].sum()
    assert out[2, 3, 4] == pytest.approx(naive2)


def test_denoising_reduces_error(rng):
    clean = np.zeros((12, 12, 12))
    clean[4:8, 4:8, 4:8] = 10.0
    noisy = clean + rng.normal(0, 1.0, clean.shape)
    denoised = nlmeans_3d(noisy, sigma=1.0)
    assert np.abs(denoised - clean).mean() < 0.5 * np.abs(noisy - clean).mean()


def test_constant_volume_unchanged():
    v = np.full((8, 8, 8), 5.0)
    assert np.allclose(nlmeans_3d(v, sigma=1.0), 5.0)


def test_mask_passthrough_outside(rng):
    noisy = rng.normal(10, 1, (10, 10, 10))
    mask = np.zeros((10, 10, 10), dtype=bool)
    mask[3:7, 3:7, 3:7] = True
    out = nlmeans_3d(noisy, sigma=1.0, mask=mask)
    # Outside the mask the volume is untouched.
    assert np.array_equal(out[~mask], noisy[~mask])
    # Inside it changed (denoised).
    assert not np.allclose(out[mask], noisy[mask])


def test_output_shape_matches(rng):
    v = rng.random((9, 10, 11))
    assert nlmeans_3d(v, sigma=0.5).shape == v.shape


def test_larger_search_window_smooths_more(rng):
    clean = np.zeros((10, 10, 10))
    noisy = clean + rng.normal(0, 1.0, clean.shape)
    small = nlmeans_3d(noisy, sigma=1.0, block_radius=1)
    large = nlmeans_3d(noisy, sigma=1.0, block_radius=3)
    assert np.abs(large).mean() <= np.abs(small).mean() + 1e-9


def test_invalid_inputs():
    with pytest.raises(ValueError):
        nlmeans_3d(np.zeros((4, 4)), sigma=1.0)
    with pytest.raises(ValueError):
        nlmeans_3d(np.zeros((4, 4, 4)), sigma=0.0)
    with pytest.raises(ValueError):
        nlmeans_3d(
            np.zeros((4, 4, 4)), sigma=1.0, mask=np.zeros((3, 3, 3), dtype=bool)
        )


def test_weights_favor_similar_patches(rng):
    """A bright structure should not bleed into a dark region."""
    v = np.zeros((12, 12, 12))
    v[:, :6, :] = 0.0
    v[:, 6:, :] = 100.0
    v += rng.normal(0, 0.5, v.shape)
    out = nlmeans_3d(v, sigma=0.5)
    assert out[:, :4, :].mean() < 5.0
    assert out[:, 8:, :].mean() > 95.0
