"""Tests for sigma-clipped co-addition."""

import numpy as np
import pytest

from repro.algorithms.coadd import coadd_stack, sigma_clip_stack


def test_outlier_nulled_with_enough_visits(rng):
    """With 24 visits (the paper's count) a cosmic-ray-like outlier is
    beyond 3 sigma and gets nulled.  (With ~6 visits a single outlier
    mathematically cannot exceed 3 sigma of the sample.)"""
    stack = np.full((24, 8, 8), 10.0) + rng.normal(0, 0.1, (24, 8, 8))
    stack[5, 3, 3] = 1000.0
    clipped = sigma_clip_stack(stack)
    assert np.isnan(clipped[5, 3, 3])
    # Only that sample was removed at that pixel.
    assert np.isnan(clipped[:, 3, 3]).sum() == 1


def test_small_stacks_cannot_clip_single_outlier():
    """The sqrt(n-1) bound: for n <= 9 a lone outlier stays within 3
    sigma, a real property of the paper's algorithm."""
    stack = np.full((6, 4, 4), 10.0)
    stack[2, 1, 1] = 1000.0
    clipped = sigma_clip_stack(stack)
    assert not np.isnan(clipped[2, 1, 1])


def test_two_iterations_catch_masked_second_outlier(rng):
    """The second cleaning iteration finds outliers unmasked by the
    first removal -- why the reference does two passes."""
    stack = np.full((24, 4, 4), 10.0) + rng.normal(0, 0.05, (24, 4, 4))
    stack[0, 2, 2] = 5000.0   # huge: inflates sigma
    stack[1, 2, 2] = 200.0    # hidden behind the first in iteration 1
    one = sigma_clip_stack(stack.copy(), n_iter=1)
    two = sigma_clip_stack(stack.copy(), n_iter=2)
    assert np.isnan(two[0, 2, 2]) and np.isnan(two[1, 2, 2])
    assert np.isnan(one[:, 2, 2]).sum() <= np.isnan(two[:, 2, 2]).sum()


def test_nan_coverage_ignored(rng):
    stack = np.full((12, 4, 4), 7.0)
    stack[3] = np.nan  # a visit with no coverage of this patch
    coadd, counts = coadd_stack(stack)
    assert np.all(counts == 11)
    assert np.allclose(coadd, 77.0)


def test_coadd_sums_surviving_values():
    stack = np.stack([np.full((3, 3), float(i)) for i in range(1, 5)])
    coadd, counts = coadd_stack(stack, n_iter=0)
    assert np.allclose(coadd, 1 + 2 + 3 + 4)
    assert np.all(counts == 4)


def test_clean_stack_untouched(rng):
    stack = np.full((10, 5, 5), 3.0) + rng.normal(0, 0.01, (10, 5, 5))
    clipped = sigma_clip_stack(stack)
    assert not np.isnan(clipped).any()


def test_validation():
    with pytest.raises(ValueError):
        sigma_clip_stack(np.zeros((4, 4)))
    with pytest.raises(ValueError):
        sigma_clip_stack(np.zeros((4, 4, 4)), n_sigma=0)


def test_all_nan_pixel():
    stack = np.full((5, 2, 2), np.nan)
    coadd, counts = coadd_stack(stack)
    assert np.all(counts == 0)
    assert np.allclose(coadd, 0.0)
