"""Tests for diffusion tensor model fitting."""

import numpy as np
import pytest

from repro.algorithms.dtm import (
    B0_THRESHOLD,
    GradientTable,
    design_matrix,
    fit_dtm,
    fractional_anisotropy,
    tensor_eigenvalues,
)
from repro.data.neuro import make_gradient_table


def _signals(gtab, diffusivity_matrix, s0=100.0):
    q = np.einsum("ni,ij,nj->n", gtab.bvecs, diffusivity_matrix, gtab.bvecs)
    return s0 * np.exp(-gtab.bvals * q)


@pytest.fixture(scope="module")
def gtab():
    return make_gradient_table(n_volumes=32)


def test_b0s_mask(gtab):
    assert gtab.b0s_mask.sum() >= 2
    assert np.all(gtab.bvals[gtab.b0s_mask] <= B0_THRESHOLD)


def test_gradient_table_validation():
    with pytest.raises(ValueError):
        GradientTable(np.array([0.0, 1000.0]), np.zeros((3, 3)))
    with pytest.raises(ValueError):
        GradientTable(np.array([-1.0]), np.zeros((1, 3)))
    with pytest.raises(ValueError):
        # Non-unit diffusion-weighted directions.
        GradientTable(np.array([1000.0]), np.array([[2.0, 0.0, 0.0]]))


def test_design_matrix_shape(gtab):
    X = design_matrix(gtab)
    assert X.shape == (len(gtab), 7)
    # b0 rows have zero diffusion coefficients and an intercept of 1.
    b0_rows = X[gtab.b0s_mask]
    assert np.allclose(b0_rows[:, :6], 0.0)
    assert np.allclose(b0_rows[:, 6], 1.0)


def test_isotropic_recovery(gtab):
    d = 0.7e-3
    signals = _signals(gtab, np.eye(3) * d)
    data = np.tile(signals, (2, 2, 2, 1))
    evals = fit_dtm(data, gtab)
    assert np.allclose(evals, d, atol=1e-6)
    assert np.allclose(fractional_anisotropy(evals), 0.0, atol=1e-4)


def test_anisotropic_recovery(gtab):
    diffusivities = np.diag([1.7e-3, 0.2e-3, 0.2e-3])
    signals = _signals(gtab, diffusivities)
    data = signals.reshape(1, 1, 1, -1)
    evals = fit_dtm(data, gtab)[0, 0, 0]
    assert evals[0] == pytest.approx(1.7e-3, rel=0.05)
    assert evals[1] == pytest.approx(0.2e-3, rel=0.15)
    fa = fractional_anisotropy(evals[None, :])[0]
    assert 0.75 < fa < 0.95


def test_rotation_changes_eigenvectors_not_eigenvalues(gtab):
    diffusivities = np.diag([1.5e-3, 0.3e-3, 0.3e-3])
    angle = 0.7
    rot = np.array(
        [
            [np.cos(angle), -np.sin(angle), 0],
            [np.sin(angle), np.cos(angle), 0],
            [0, 0, 1],
        ]
    )
    rotated = rot @ diffusivities @ rot.T
    evals_a = fit_dtm(_signals(gtab, diffusivities).reshape(1, 1, 1, -1), gtab)
    evals_b = fit_dtm(_signals(gtab, rotated).reshape(1, 1, 1, -1), gtab)
    assert np.allclose(evals_a, evals_b, atol=1e-6)


def test_mask_zeroes_outside(gtab):
    signals = _signals(gtab, np.eye(3) * 1e-3)
    data = np.tile(signals, (2, 2, 1, 1))
    mask = np.zeros((2, 2, 1), dtype=bool)
    mask[0, 0, 0] = True
    evals = fit_dtm(data, gtab, mask=mask)
    assert np.any(evals[0, 0, 0] > 0)
    assert np.allclose(evals[1, 1, 0], 0.0)


def test_fit_validates_shapes(gtab):
    with pytest.raises(ValueError):
        fit_dtm(np.zeros((2, 2, 2)), gtab)
    with pytest.raises(ValueError):
        fit_dtm(np.zeros((2, 2, 2, 7)), gtab)
    with pytest.raises(ValueError):
        fit_dtm(
            np.zeros((2, 2, 2, len(gtab))), gtab, mask=np.ones((3, 3, 3), bool)
        )


def test_empty_mask_returns_zeros(gtab):
    data = np.zeros((2, 2, 2, len(gtab)))
    evals = fit_dtm(data, gtab, mask=np.zeros((2, 2, 2), bool))
    assert np.allclose(evals, 0.0)


def test_tensor_eigenvalues_descending():
    elements = np.array([[3.0, 1.0, 2.0, 0.0, 0.0, 0.0]])
    evals = tensor_eigenvalues(elements)
    assert np.allclose(evals, [[3.0, 2.0, 1.0]])


def test_fa_range_and_extremes():
    iso = np.array([[1.0, 1.0, 1.0]])
    stick = np.array([[1.0, 0.0, 0.0]])
    assert fractional_anisotropy(iso)[0] == pytest.approx(0.0)
    assert fractional_anisotropy(stick)[0] == pytest.approx(1.0)
    zero = np.array([[0.0, 0.0, 0.0]])
    assert fractional_anisotropy(zero)[0] == 0.0


def test_fa_shape_validation():
    with pytest.raises(ValueError):
        fractional_anisotropy(np.zeros((3, 4)))


def test_noise_robustness(gtab, rng):
    diffusivities = np.diag([1.7e-3, 0.3e-3, 0.3e-3])
    signals = _signals(gtab, diffusivities)
    noisy = np.maximum(signals + rng.normal(0, 1.0, signals.shape), 1.0)
    evals = fit_dtm(noisy.reshape(1, 1, 1, -1), gtab)[0, 0, 0]
    fa = fractional_anisotropy(evals[None, :])[0]
    assert 0.6 < fa <= 1.0
