"""Tests for stencil primitives."""

import numpy as np
import pytest

from repro.algorithms.stencil import (
    convolve3d,
    local_mean_and_std,
    median_filter_2d,
    median_filter_3d,
    sliding_windows,
    uniform_filter_2d,
)


def test_sliding_windows_shape(rng):
    v = rng.random((5, 6, 7))
    w = sliding_windows(v, radius=1)
    assert w.shape == (5, 6, 7, 3, 3, 3)


def test_sliding_windows_center_matches(rng):
    v = rng.random((5, 5, 5))
    w = sliding_windows(v, radius=1)
    assert np.allclose(w[2, 2, 2, 1, 1, 1], v[2, 2, 2])


def test_median_filter_removes_impulse():
    v = np.zeros((7, 7, 7))
    v[3, 3, 3] = 100.0
    out = median_filter_3d(v, radius=1)
    assert out[3, 3, 3] == 0.0


def test_median_filter_preserves_constant():
    v = np.full((6, 6, 6), 4.0)
    assert np.array_equal(median_filter_3d(v, radius=1), v)


def test_median_filter_radius_zero_is_copy(rng):
    v = rng.random((4, 4, 4))
    out = median_filter_3d(v, radius=0)
    assert np.array_equal(out, v)
    assert out is not v


def test_median_filter_2d_impulse():
    img = np.zeros((9, 9))
    img[4, 4] = 50.0
    assert median_filter_2d(img, radius=1)[4, 4] == 0.0


def test_uniform_filter_constant(rng):
    img = np.full((8, 8), 3.0)
    assert np.allclose(uniform_filter_2d(img, radius=2), 3.0)


def test_uniform_filter_is_window_mean():
    img = np.arange(25, dtype=float).reshape(5, 5)
    out = uniform_filter_2d(img, radius=1)
    assert out[2, 2] == pytest.approx(img[1:4, 1:4].mean())


def test_convolve3d_identity_kernel(rng):
    v = rng.random((6, 6, 6))
    kernel = np.zeros((3, 3, 3))
    kernel[1, 1, 1] = 1.0
    assert np.allclose(convolve3d(v, kernel), v)


def test_convolve3d_sum_kernel_counts_neighbors():
    v = np.ones((5, 5, 5))
    kernel = np.ones((3, 3, 3))
    out = convolve3d(v, kernel)
    # Reflect padding keeps the full neighborhood sum everywhere.
    assert np.allclose(out, 27.0)


def test_convolve3d_flips_kernel():
    v = np.zeros((5, 5, 5))
    v[2, 2, 2] = 1.0
    kernel = np.zeros((3, 3, 3))
    kernel[0, 1, 1] = 1.0  # offset -1 from center along axis 0
    out = convolve3d(v, kernel)
    # Convolution (kernel flipped): the impulse shifts by -1 along
    # axis 0, matching scipy.ndimage.convolve semantics.
    assert out[1, 2, 2] == pytest.approx(1.0)
    assert out[3, 2, 2] == pytest.approx(0.0)


def test_convolve3d_matches_scipy(rng):
    scipy_ndimage = pytest.importorskip("scipy.ndimage")
    v = rng.random((6, 7, 8))
    kernel = rng.random((3, 3, 3))
    ours = convolve3d(v, kernel)
    # np.pad "reflect" (no edge duplication) is scipy's "mirror" mode.
    theirs = scipy_ndimage.convolve(v, kernel, mode="mirror")
    assert np.allclose(ours, theirs)


def test_convolve3d_rejects_even_kernel(rng):
    with pytest.raises(ValueError):
        convolve3d(rng.random((4, 4, 4)), np.ones((2, 3, 3)))


def test_dim_checks():
    with pytest.raises(ValueError):
        median_filter_3d(np.zeros((4, 4)))
    with pytest.raises(ValueError):
        median_filter_2d(np.zeros((4, 4, 4)))
    with pytest.raises(ValueError):
        uniform_filter_2d(np.zeros(4))
    with pytest.raises(ValueError):
        sliding_windows(np.zeros((4, 4)), radius=-1)


def test_local_mean_and_std(rng):
    img = rng.random((10, 10))
    mean, std = local_mean_and_std(img, radius=1)
    assert mean.shape == img.shape
    assert np.all(std >= 0)
    flat = np.full((6, 6), 2.0)
    _m, s = local_mean_and_std(flat, radius=1)
    assert np.allclose(s, 0.0)
