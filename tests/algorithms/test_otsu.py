"""Tests for Otsu thresholding and median-Otsu masking."""

import numpy as np
import pytest

from repro.algorithms.otsu import median_otsu, otsu_threshold


def test_bimodal_separation(rng):
    """Otsu separates the two modes nearly perfectly.

    Note the threshold itself may sit just past the low mode (the
    inter-class variance is nearly flat across the empty gap), so the
    check is on classification accuracy, not the threshold's position.
    """
    low = rng.normal(10, 1, 500)
    high = rng.normal(100, 5, 500)
    threshold = otsu_threshold(np.concatenate([low, high]))
    accuracy = ((low <= threshold).mean() + (high > threshold).mean()) / 2
    assert accuracy > 0.99
    assert 10 < threshold < 100


def test_threshold_between_min_and_max(rng):
    values = rng.random(1000) * 7 + 3
    t = otsu_threshold(values)
    assert 3 <= t <= 10


def test_shift_invariance(rng):
    values = np.concatenate([rng.normal(0, 1, 300), rng.normal(10, 1, 300)])
    t1 = otsu_threshold(values)
    t2 = otsu_threshold(values + 50)
    assert t2 == pytest.approx(t1 + 50, abs=0.2)


def test_constant_input_rejected():
    with pytest.raises(ValueError):
        otsu_threshold(np.full(100, 3.0))


def test_empty_input_rejected():
    with pytest.raises(ValueError):
        otsu_threshold(np.array([]))


def test_nan_values_ignored(rng):
    values = np.concatenate([rng.normal(0, 1, 300), rng.normal(10, 1, 300)])
    with_nans = np.concatenate([values, [np.nan] * 50])
    assert otsu_threshold(with_nans) == pytest.approx(
        otsu_threshold(values), abs=0.3
    )


def test_median_otsu_finds_bright_blob(rng):
    volume = rng.normal(5, 1, (16, 16, 16))
    volume[4:12, 4:12, 4:12] = rng.normal(60, 2, (8, 8, 8))
    masked, mask = median_otsu(volume, median_radius=1)
    # Mask covers the blob interior and excludes the far background.
    assert mask[8, 8, 8]
    assert not mask[0, 0, 0]
    # Background is zeroed in the masked volume.
    assert masked[0, 0, 0] == 0.0
    assert masked[8, 8, 8] != 0.0


def test_median_otsu_mask_is_boolean(rng):
    volume = rng.normal(5, 1, (10, 10, 10))
    volume[3:7, 3:7, 3:7] = 50
    _masked, mask = median_otsu(volume, median_radius=1)
    assert mask.dtype == bool


def test_median_otsu_multiple_passes(rng):
    volume = rng.normal(5, 1, (12, 12, 12))
    volume[3:9, 3:9, 3:9] = 50
    _m1, mask1 = median_otsu(volume, median_radius=1, numpass=1)
    _m2, mask2 = median_otsu(volume, median_radius=1, numpass=2)
    # More smoothing cannot create wildly different masks here.
    overlap = (mask1 & mask2).sum() / max(1, mask1.sum())
    assert overlap > 0.8


def test_median_otsu_rejects_2d():
    with pytest.raises(ValueError):
        median_otsu(np.zeros((4, 4)))
